#!/usr/bin/env python
"""Fast-path benchmark harness and regression gate.

Runs the Table-3 / §4.6-style workloads across every layer the fast-path
engine touches — plus the many-connection ``quic-scale`` lifecycle
workload, the NAT-rebinding ``migration`` workload, the batched-datapath
``goodput`` A/B and the RFC 9002 ``lossy-recovery`` A/B — and writes
``BENCH_pr10.json`` at the repository root, the trajectory file that
future PRs compare themselves against.

Usage (from the repository root)::

    python tools/bench.py            # full run, writes BENCH_pr10.json
    python tools/bench.py --quick    # smaller iteration counts (CI smoke)
    python tools/bench.py --quick --check
                                     # additionally fail on >2x regression
                                     # vs the checked-in baseline (skipped
                                     # when no baseline exists yet)
    python tools/bench.py --profile  # cProfile each workload, print the
                                     # top 25 functions by cumulative time

Metrics are throughputs (ops/sec, events/sec, bytes/sec) plus the
interpreter-vs-JIT pluglet speedup; higher is always better.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.vm import PluginMemory, VirtualMachine, assemble, compile_pluglet  # noqa: E402
from repro.vm.jit import JitVirtualMachine  # noqa: E402

#: §4.6 compute kernel (same as benchmarks/test_micro_pre_overhead.py).
KERNEL_SOURCE = """
def kernel(n):
    total = 0
    i = 0
    while i < n:
        total = (total + i * 3) % 65521
        i += 1
    return total
"""

REGRESSION_FACTOR = 2.0  # --check fails when a metric drops below 1/2x
MIN_JIT_SPEEDUP = 3.0    # acceptance floor for the JIT on the kernel
#: The proof-specialized (monitor-free) closure strictly removes work
#: from the monitored one, so it must never be slower.  Measured as an
#: interleaved best-of-N in one process, so machine drift cancels.
MIN_MONITOR_FREE_SPEEDUP = 1.0
#: Same argument for the static fuel certificate on a *looping* kernel:
#: the certified closure only drops fuel-exhaustion checks (the
#: ``_fuel -= k`` accounting stays), so it must not be slower than the
#: monitored path.  Interleaved best-of-N again.
MIN_CERTIFICATE_SPEEDUP = 1.0
#: Observability must be zero-cost when disabled: a connection that had
#: tracing/metrics/profiling enabled and then disabled may dispatch at
#: most this much slower than one that never enabled them (the latter is
#: the untouched BENCH_pr2.json-era dispatch path).  Measured interleaved
#: in one process, so machine drift cancels.
TRACE_OVERHEAD_LIMIT_PCT = 5.0
#: Acceptance floor for the batched datapath: the GSO/GRO + zero-copy
#: path must move bulk data at least this many times faster (wall-clock)
#: than the same transfer with ``REPRO_BATCH=0``, plugins attached.
MIN_GOODPUT_SPEEDUP = 2.0
#: Acceptance floor for RFC 9002 loss recovery: goodput under 2% ambient
#: loss with PTO probes must be *strictly* above the legacy
#: declare-all-lost baseline.  Measured in deterministic simulated time
#: (identical seeded topology), so the ratio cannot flake with machine
#: load.
MIN_LOSSY_RECOVERY_SPEEDUP = 1.0


def _time(fn, *args):
    t0 = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - t0, result


# --- workloads ---------------------------------------------------------------

def bench_pre_kernel(quick: bool) -> dict:
    """Interpreter vs JIT on the §4.6 compute kernel."""
    code = compile_pluglet(KERNEL_SOURCE)
    n = 4_000 if quick else 20_000
    interp = VirtualMachine(code, PluginMemory(), instruction_budget=10_000_000)
    jit = JitVirtualMachine(code, PluginMemory(), instruction_budget=10_000_000)
    assert jit.jit_enabled
    # Warm up both engines, and prove equivalence while at it.
    assert interp.run(100) == jit.run(100)

    interp_t, expected = _time(interp.run, n)
    jit_t, got = _time(jit.run, n)
    assert got == expected
    ips_interp = interp.instructions_executed / interp_t if interp_t else 0.0
    return {
        "pre_kernel_interp_ops_per_sec": (n / interp_t, "kernel-iters/s"),
        "pre_kernel_jit_ops_per_sec": (n / jit_t, "kernel-iters/s"),
        "pre_kernel_jit_speedup": (interp_t / jit_t, "x"),
        "pre_interp_instructions_per_sec": (ips_interp, "instr/s"),
    }


def _analysis_kernel(n_pairs: int = 120) -> list:
    """Loop-free, memory-heavy bytecode where every access is provable:
    the workload the analyzer's proofs specialize best (fuel checks and
    the two-region monitor both elide)."""
    from repro.vm.interpreter import HEAP_BASE

    lines = [f"lddw r6, {HEAP_BASE}", "mov r0, 0"]
    for i in range(n_pairs):
        off = (i * 8) % 1024
        lines.append(f"stdw [r6+{off}], {i + 1}")
        lines.append(f"ldxdw r1, [r6+{off}]")
        lines.append("add r0, r1")
    lines.append("exit")
    return assemble("\n".join(lines))


def _certificate_kernel(trips: int = 200) -> list:
    """A *looping* kernel with a register counter the fuel-certificate
    analysis can bound: constant start, +1 per lap, compared against a
    constant at the loop head.  Loop-freedom proofs do not apply here —
    only a certificate lets the JIT drop the batched fuel checks."""
    return assemble("\n".join([
        "mov r6, 0",
        "mov r0, 0",
        "loop:",
        "add r0, 2",
        "add r6, 1",
        f"jlt r6, {trips}, loop",
        "exit",
    ]))


def bench_analysis(quick: bool) -> dict:
    """Static-analyzer throughput plus the payoff of its proofs: the
    same JIT-compiled kernel with and without the inlined runtime
    monitor (``--check`` gates monitor-free >= monitored), and the
    ``fuel_certificate`` variant — a looping kernel where certified
    fuel-check elision must be no slower than the monitored path."""
    from repro.vm.analysis import analyze

    program = _analysis_kernel()
    rounds = 20 if quick else 100
    t, report = _time(lambda: [analyze(program)
                               for _ in range(rounds)][-1])
    assert report.ok and report.memory_safe
    assert report.fuel_bound == len(program)

    monitored = JitVirtualMachine(program, PluginMemory(),
                                  instruction_budget=10_000_000)
    free = JitVirtualMachine(program, PluginMemory(),
                             instruction_budget=10_000_000, analysis=report)
    assert monitored.jit_enabled and free.jit_specialized
    assert monitored.run() == free.run()  # equivalence while warming up

    runs = 300 if quick else 2_000

    def spin(vm):
        for _ in range(runs):
            vm.run()

    best = {"monitored": float("inf"), "free": float("inf")}
    for _ in range(5):  # interleaved best-of-N
        for name, vm in (("monitored", monitored), ("free", free)):
            dt, _ = _time(spin, vm)
            best[name] = min(best[name], dt)

    # --- fuel_certificate variant: a loop only a certificate can elide --
    loop_program = _certificate_kernel()
    loop_report = analyze(loop_program)
    assert loop_report.fuel_certificate is not None, \
        "certificate kernel must certify"
    assert not loop_report.loop_free
    cert_monitored = JitVirtualMachine(loop_program, PluginMemory(),
                                       instruction_budget=10_000_000)
    certified = JitVirtualMachine(loop_program, PluginMemory(),
                                  instruction_budget=10_000_000,
                                  analysis=loop_report)
    assert cert_monitored.jit_enabled and certified.jit_specialized
    assert cert_monitored.run() == certified.run()
    assert (cert_monitored.instructions_executed
            == certified.instructions_executed)
    cert_best = {"monitored": float("inf"), "certified": float("inf")}
    for _ in range(5):  # interleaved best-of-N
        for name, vm in (("monitored", cert_monitored),
                         ("certified", certified)):
            dt, _ = _time(spin, vm)
            cert_best[name] = min(cert_best[name], dt)

    return {
        "analysis_instrs_per_sec":
            (len(program) * rounds / t, "instr/s"),
        "jit_monitored_kernel_ops_per_sec":
            (runs / best["monitored"], "ops/s"),
        "jit_monitor_free_kernel_ops_per_sec":
            (runs / best["free"], "ops/s"),
        "jit_monitor_free_speedup":
            (best["monitored"] / best["free"], "x"),
        "jit_fuel_cert_monitored_ops_per_sec":
            (runs / cert_best["monitored"], "ops/s"),
        "jit_fuel_cert_elided_ops_per_sec":
            (runs / cert_best["certified"], "ops/s"),
        "jit_fuel_certificate_speedup":
            (cert_best["monitored"] / cert_best["certified"], "x"),
    }


def bench_pluglet_invocation(quick: bool) -> dict:
    """Invocation-rate micro-benchmark: a tiny pluglet called many times
    (per-call overhead rather than per-instruction throughput)."""
    code = assemble("add r6, r1\nmov r0, r6\nexit")
    rounds = 2_000 if quick else 20_000

    def spin(vm):
        for i in range(rounds):
            vm.run(i)

    interp = VirtualMachine(code, PluginMemory())
    jit = JitVirtualMachine(code, PluginMemory())
    spin(interp), spin(jit)  # warm-up
    interp_t, _ = _time(spin, interp)
    jit_t, _ = _time(spin, jit)
    return {
        "pluglet_invocations_per_sec_interp": (rounds / interp_t, "ops/s"),
        "pluglet_invocations_per_sec_jit": (rounds / jit_t, "ops/s"),
        "pluglet_invocation_speedup": (interp_t / jit_t, "x"),
    }


def bench_protoop_dispatch(quick: bool) -> dict:
    """Hot no-plugin dispatch through the cached protoop table."""
    from repro.quic import QuicConfiguration
    from repro.quic.connection import QuicConnection

    conn = QuicConnection(QuicConfiguration(is_client=True))
    table = conn.protoops
    rounds = 10_000 if quick else 100_000
    run = table.run
    for _ in range(1_000):  # warm plans + caches
        run(conn, "packet_sent_event", None)
    t, _ = _time(lambda: [run(conn, "packet_sent_event", None)
                          for _ in range(rounds)])
    return {"protoop_dispatch_ops_per_sec": (rounds / t, "ops/s")}


def bench_trace_overhead(quick: bool) -> dict:
    """Observability cost on the hot dispatch path, measured as an
    interleaved in-process A/B so machine drift cancels:

    * ``off``      — a connection that never saw the trace subsystem
      (byte-identical dispatch to the pre-observability engine);
    * ``detached`` — tracing + metrics + profiling enabled, then fully
      disabled again (must return to the zero-cost path);
    * ``on``       — a live tracer, metrics and profiler (the price of
      actually observing).

    ``--check`` gates ``detached`` within ``TRACE_OVERHEAD_LIMIT_PCT`` of
    ``off``.
    """
    import types

    from repro.quic import QuicConfiguration
    from repro.quic.connection import QuicConnection
    from repro.trace import (
        ConnectionMetrics,
        ConnectionTracer,
        MetricsRegistry,
        PreProfiler,
    )

    rounds = 4_000 if quick else 40_000
    repeats = 5
    # The tracer / metrics decoders read real packet fields, so every
    # variant dispatches the same fake sent-packet record.
    sent = types.SimpleNamespace(packet_number=0, size=1200, path_id=0,
                                 ack_eliciting=True)

    def make_conn():
        return QuicConnection(QuicConfiguration(is_client=True))

    conn_off = make_conn()

    conn_detached = make_conn()
    profiler = PreProfiler().attach(conn_detached)
    det_metrics = ConnectionMetrics(conn_detached, MetricsRegistry())
    det_tracer = ConnectionTracer(conn_detached, max_events=16)
    det_tracer.finish()
    det_metrics.detach()
    profiler.detach(conn_detached)

    conn_on = make_conn()
    PreProfiler().attach(conn_on)
    ConnectionMetrics(conn_on, MetricsRegistry())
    on_tracer = ConnectionTracer(conn_on, max_events=rounds * (repeats + 2))

    def dispatch(conn):
        run = conn.protoops.run
        for _ in range(rounds):
            run(conn, "packet_sent_event", None, sent)

    variants = [("off", conn_off), ("detached", conn_detached),
                ("on", conn_on)]
    for _, conn in variants:  # warm plans + caches identically
        dispatch(conn)
    best = {name: float("inf") for name, _ in variants}
    # The live tracer retains every event; left unbounded, generational
    # GC passes over that growing heap would land randomly inside the
    # gated off/detached samples.  Bound the heap and keep the collector
    # out of the timed regions.
    import gc

    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(repeats):  # interleaved best-of-N
            for name, conn in variants:
                on_tracer.events.clear()
                gc.collect()
                gc.disable()
                t, _ = _time(dispatch, conn)
                gc.enable()
                best[name] = min(best[name], t)
    finally:
        if gc_was_enabled:
            gc.enable()
        else:
            gc.disable()
    return {
        "trace_off_dispatch_ops_per_sec": (rounds / best["off"], "ops/s"),
        "trace_detached_dispatch_ops_per_sec":
            (rounds / best["detached"], "ops/s"),
        "trace_on_dispatch_ops_per_sec": (rounds / best["on"], "ops/s"),
    }


def bench_crypto(quick: bool) -> dict:
    """AEAD seal+open throughput on full-size packets."""
    from repro.quic.crypto import AeadContext

    aead = AeadContext(b"k" * 16)
    payload = b"\xa5" * 1200
    header = b"\x40" + b"\x07" * 8
    rounds = 500 if quick else 4_000

    def seal_all():
        for pn in range(rounds):
            aead.seal(pn, header, payload)

    def open_all(packets):
        for pn, ct in packets:
            aead.open(pn, header, ct)

    seal_all()  # warm the block cache path
    t_seal, _ = _time(seal_all)
    packets = [(pn, aead.seal(pn, header, payload)) for pn in range(rounds)]
    t_open, _ = _time(open_all, packets)
    return {
        "crypto_seal_bytes_per_sec": (rounds * len(payload) / t_seal, "B/s"),
        "crypto_open_bytes_per_sec": (rounds * len(payload) / t_open, "B/s"),
    }


def bench_simulator(quick: bool) -> dict:
    """Event-loop throughput with a live cancel/pending mix (the workload
    the O(1) ``pending()`` and lazy deletion target)."""
    from repro.netsim import Simulator

    n_events = 20_000 if quick else 200_000
    sim = Simulator()
    fired = [0]

    def tick():
        fired[0] += 1
        if fired[0] < n_events:
            ev = sim.schedule(0.001, tick)
            # A second, immediately-cancelled timer: the retransmission
            # alarm pattern that used to make pending() O(n).
            sim.schedule(0.002, tick).cancel()
            assert sim.pending() >= 1
            del ev

    sim.schedule(0.0, tick)
    t, _ = _time(sim.run)
    return {"sim_events_per_sec": (fired[0] / t, "events/s")}


def bench_transfer(quick: bool) -> dict:
    """End-to-end QUIC transfer over the simulated testbed topology."""
    from repro.netsim import Simulator, symmetric_topology
    from repro.quic import ClientEndpoint, ServerEndpoint

    size = 100_000 if quick else 400_000
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=20)
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    received = bytearray()
    done = [False]

    def on_conn(conn):
        conn.on_stream_data = lambda sid, d, fin: (
            received.extend(d), done.__setitem__(0, fin))

    server.on_connection = on_conn
    client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                            "server.0", 443)

    def transfer():
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=10)
        sid = client.conn.create_stream()
        client.conn.send_stream_data(sid, b"z" * size, fin=True)
        client.pump()
        assert sim.run_until(lambda: done[0], timeout=600)

    t, _ = _time(transfer)
    assert len(received) == size
    return {"e2e_transfer_bytes_per_sec": (size / t, "B/s")}


def bench_quic_scale(quick: bool) -> dict:
    """Many-connection server scale: N concurrent clients through one
    shared bottleneck against a single ``ServerEndpoint``, then a
    sequential churn loop.  Exercises the close/drain state machine,
    server-side eviction and the far-timer wheel; asserts along the way
    that server state stays bounded by the number of *open* connections.
    """
    from repro.netsim import Simulator, symmetric_topology
    from repro.quic import ClientEndpoint, ServerEndpoint
    from repro.quic.connection import ConnectionState
    from repro.trace import MetricsRegistry

    n_concurrent = 60 if quick else 500
    n_churn = 100 if quick else 1000

    # --- phase 1: N concurrent connections -----------------------------
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=20)
    metrics = MetricsRegistry()

    def on_conn(conn):
        def on_data(sid, data, fin):
            if fin:
                conn.close(0, "done")
        conn.on_stream_data = on_data

    server = ServerEndpoint(sim, topo.server, "server.0", 443,
                            on_connection=on_conn, metrics=metrics)
    clients = []
    closed_clients = [0]

    for i in range(n_concurrent):
        client = ClientEndpoint(sim, topo.client, "client.0", 5000 + i,
                                "server.0", 443)
        client.conn.on_closed = (
            lambda c: closed_clients.__setitem__(0, closed_clients[0] + 1))
        clients.append(client)

    def run_concurrent():
        # Staggered starts (2 ms apart) so the Initial burst does not
        # overrun the shared bottleneck buffer.
        for i, client in enumerate(clients):
            sim.schedule(i * 0.002, client.connect)

        def sendall():
            for client in clients:
                if client.conn.is_established and not client.conn.closed \
                        and not client.conn.streams_send:
                    sid = client.conn.create_stream()
                    client.conn.send_stream_data(sid, b"q" * 1200, fin=True)
                    client.pump()

        # Poll for establishment on a coarse clock instead of per-event.
        for k in range(1, 200):
            sim.schedule(k * 0.05, sendall)
        ok = sim.run_until(
            lambda: (server.stats["evicted"] == n_concurrent
                     and closed_clients[0] == n_concurrent),
            timeout=300,
        )
        assert ok, (
            f"scale run stalled: evicted={server.stats['evicted']}"
            f"/{n_concurrent}, clients closed={closed_clients[0]}")

    t_concurrent, _ = _time(run_concurrent)
    assert server.stats["accepted"] == n_concurrent
    assert len(server._by_cid) == 0 and len(server.connections) == 0
    assert metrics.counter("quic.server.connections_evicted").value \
        == n_concurrent

    # --- phase 2: sequential churn --------------------------------------
    sim2 = Simulator()
    topo2 = symmetric_topology(sim2, d_ms=5, bw_mbps=50)
    server2 = ServerEndpoint(sim2, topo2.server, "server.0", 443,
                             on_connection=on_conn)

    def run_churn():
        for _ in range(n_churn):
            client = ClientEndpoint(sim2, topo2.client, "client.0", 5000,
                                    "server.0", 443)
            client.connect()
            assert sim2.run_until(lambda: client.conn.is_established,
                                  timeout=10)
            sid = client.conn.create_stream()
            client.conn.send_stream_data(sid, b"q" * 600, fin=True)
            client.pump()
            assert sim2.run_until(
                lambda: client.conn.state is ConnectionState.CLOSED,
                timeout=60)
            # Bounded server state: everything from terminated
            # connections is evicted (<= one still-draining connection,
            # which holds three CIDs: initial DCID, server CID, spare).
            assert len(server2._by_cid) <= 3, len(server2._by_cid)
            assert len(server2.connections) <= 1
        # Let the last drain finish, then the event queue must be empty
        # of connection timers (only the nothing-pending steady state).
        sim2.run(until=sim2.now + 2.0)
        assert len(server2._by_cid) == 0
        assert sim2.pending() == 0, sim2.pending()

    t_churn, _ = _time(run_churn)
    assert server2.stats["evicted"] == n_churn
    return {
        "quic_scale_conns_per_sec": (n_concurrent / t_concurrent, "conns/s"),
        "quic_churn_conns_per_sec": (n_churn / t_churn, "conns/s"),
    }


def bench_migration(quick: bool) -> dict:
    """Transfer through a NAT that rebinds mid-flight: the RFC 9000 §9
    migration scenario.  Measures end-to-end goodput including the
    validation stall and how fast the server re-validates the new path
    (time from the rebind to the server's PATH_RESPONSE arriving)."""
    from repro.netsim import FaultInjector, Simulator, nat_topology
    from repro.quic import ClientEndpoint, ServerEndpoint
    from repro.quic.connection import PathState

    size = 80_000 if quick else 300_000
    sim = Simulator()
    topo = nat_topology(sim, d_ms=10, bw_mbps=20, seed=1)
    received = bytearray()
    done = [False]
    server_conn = []

    def on_conn(conn):
        server_conn.append(conn)
        conn.on_stream_data = lambda sid, d, fin: (
            received.extend(d), done.__setitem__(0, fin))

    server = ServerEndpoint(sim, topo.server, "server.0", 443,
                            on_connection=on_conn)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                            "server.0", 443)
    injector = FaultInjector(sim)
    rebind_at = [None]
    validated_at = [None]

    def watch_validation():
        conn = server_conn[0] if server_conn else None
        if (validated_at[0] is None and conn is not None
                and sim.now > rebind_at[0]
                and conn.stats["migrations"] > 0
                and conn.paths[0].state == PathState.VALIDATED):
            validated_at[0] = sim.now
        if not done[0]:
            sim.schedule(0.005, watch_validation)

    def transfer():
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=10)
        # Rebind relative to establishment, so the fault always lands
        # mid-transfer regardless of handshake duration or payload size.
        rebind_at[0] = sim.now + 0.02
        injector.schedule_nat_rebind(topo.nat, at=rebind_at[0])
        sid = client.conn.create_stream()
        client.conn.send_stream_data(sid, b"m" * size, fin=True)
        client.pump()
        sim.schedule(0.0, watch_validation)
        assert sim.run_until(lambda: done[0], timeout=600)

    t, _ = _time(transfer)
    assert len(received) == size
    sconn = server_conn[0]
    assert sconn.stats["migrations"] >= 1, "NAT rebind never migrated"
    assert validated_at[0] is not None, "new path never validated"
    revalidation_s = validated_at[0] - rebind_at[0]
    return {
        "migration_transfer_bytes_per_sec": (size / t, "B/s"),
        "migration_revalidations_per_sec": (1.0 / revalidation_s, "ops/s"),
    }


def _goodput_transfer(size: int, batch: bool) -> dict:
    """One bulk upload over the paper's lossy 100 ms-RTT bottleneck with
    the monitoring plugin attached on both ends, timed in wall-clock
    seconds.  ``batch`` toggles the GSO/GRO datapath via the same
    ``REPRO_BATCH`` kill switch users have; connections cache the flag at
    construction, so both modes coexist in this one process."""
    import os

    from repro.core.plugin import PluginInstance
    from repro.netsim import Simulator, symmetric_topology
    from repro.plugins import build_monitoring_plugin
    from repro.quic import ClientEndpoint, ServerEndpoint

    previous = os.environ.get("REPRO_BATCH")
    os.environ["REPRO_BATCH"] = "1" if batch else "0"
    try:
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=50, bw_mbps=20, loss_pct=0.5,
                                  seed=7, buffer_bytes=256 * 1024)
        received = bytearray()
        done = [False]

        def on_conn(conn):
            PluginInstance(build_monitoring_plugin(), conn).attach()
            conn.on_stream_data = lambda sid, d, fin: (
                received.extend(d), done.__setitem__(0, fin))

        ServerEndpoint(sim, topo.server, "server.0", 443,
                       on_connection=on_conn)
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        PluginInstance(build_monitoring_plugin(), client.conn).attach()

        # Establish first (the server's plugin attaches — and JIT-compiles
        # — at accept time): goodput times the bulk phase only, so that
        # fixed setup cost common to both modes does not dilute the ratio.
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=10)

        def bulk():
            sid = client.conn.create_stream()
            client.conn.send_stream_data(sid, b"g" * size, fin=True)
            client.pump()
            assert sim.run_until(lambda: done[0], timeout=600)

        t, _ = _time(bulk)
        assert len(received) == size
        assert client.conn._batch is batch
        return {"wall_s": t, "sim_s": sim.now,
                "events_coalesced": sim.events_coalesced}
    finally:
        if previous is None:
            del os.environ["REPRO_BATCH"]
        else:
            os.environ["REPRO_BATCH"] = previous


def bench_goodput(quick: bool) -> dict:
    """Batched-datapath A/B: the same plugin-laden bulk transfer over a
    100 ms RTT, 0.5 %-loss bottleneck, with the GSO/GRO + zero-copy
    datapath on (default) and off (``REPRO_BATCH=0``).  Identical seeded
    topology, identical payload; the gated ``goodput_batch_speedup`` is
    the wall-clock ratio (``--check`` enforces ``MIN_GOODPUT_SPEEDUP``)."""
    size = 300_000 if quick else 2_000_000
    batched = _goodput_transfer(size, batch=True)
    legacy = _goodput_transfer(size, batch=False)
    assert batched["events_coalesced"] > 0  # GSO actually engaged
    assert legacy["events_coalesced"] == 0  # kill switch really off
    # The absolute coalesce count scales with the payload, so it is
    # printed rather than gated (a quick CI run would trip a count gate
    # against the full-run baseline).
    print(f"    goodput: {batched['events_coalesced']:,} simulator events"
          f" coalesced; sim-time {batched['sim_s']:.2f}s batched vs"
          f" {legacy['sim_s']:.2f}s unbatched")
    return {
        "goodput_batched_bytes_per_sec":
            (size / batched["wall_s"], "B/s"),
        "goodput_unbatched_bytes_per_sec":
            (size / legacy["wall_s"], "B/s"),
        "goodput_batch_speedup":
            (legacy["wall_s"] / batched["wall_s"], "x"),
    }


def _lossy_recovery_transfer(size: int, declare_all: bool,
                             episodes: int) -> dict:
    """One bulk upload over a 50 ms-RTT, 2 %-loss path with the
    monitoring plugin attached, punctuated by deterministic delayed-ACK
    episodes (the return path stalls for 350 ms, then recovers — think
    bufferbloat bursts).  Each episode expires the PTO timer without any
    forward loss: the RFC 9002 path sends <= 2 probes and keeps its
    window; ``declare_all`` instead toggles the legacy PTO response that
    declares whole flights lost, retransmitting delivered data and
    collapsing cwnd.  Both runs share the seeded topology, so the
    simulated completion time is deterministic and the ratio cannot
    flake with machine load."""
    from repro.core.plugin import PluginInstance
    from repro.netsim import Simulator, symmetric_topology
    from repro.plugins import build_monitoring_plugin
    from repro.quic import (
        ClientEndpoint,
        QuicConfiguration,
        ServerEndpoint,
    )

    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=25, bw_mbps=10, loss_pct=2.0,
                              seed=11, buffer_bytes=256 * 1024)
    received = bytearray()
    done = [False]

    def on_conn(conn):
        PluginInstance(build_monitoring_plugin(), conn).attach()
        conn.on_stream_data = lambda sid, d, fin: (
            received.extend(d), done.__setitem__(0, fin))

    ServerEndpoint(sim, topo.server, "server.0", 443, on_connection=on_conn)
    cfg = QuicConfiguration(is_client=True, declare_all_on_pto=declare_all)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                            "server.0", 443, configuration=cfg)
    PluginInstance(build_monitoring_plugin(), client.conn).attach()

    client.connect()
    assert sim.run_until(lambda: client.conn.is_established, timeout=10)
    bulk_start = sim.now

    base_delay = topo.path_links[0].backward.delay

    def bulk():
        sid = client.conn.create_stream()
        client.conn.send_stream_data(sid, b"r" * size, fin=True)
        client.pump()
        for _ in range(episodes):
            sim.run(until=sim.now + 0.4)
            if done[0]:
                break
            for link in topo.path_links:
                link.backward.delay = 0.35
            sim.run(until=sim.now + 0.35)
            for link in topo.path_links:
                link.backward.delay = base_delay
        assert sim.run_until(lambda: done[0], timeout=600)

    t, _ = _time(bulk)
    assert len(received) == size
    stats = client.conn.stats
    assert stats["pto_fired"] > 0  # the stalls really expired the timer
    if declare_all:
        assert stats["probes_sent"] == 0  # legacy flag really engaged
    return {"wall_s": t, "sim_s": sim.now - bulk_start,
            "pto_fired": stats["pto_fired"],
            "probes_sent": stats["probes_sent"],
            "packets_lost": stats["packets_lost"]}


def bench_lossy_recovery(quick: bool) -> dict:
    """RFC 9002 loss-recovery A/B: the same 2 %-loss bulk transfer with
    PTO probes (default) versus the legacy declare-everything-lost PTO
    response (``declare_all_on_pto``).  Goodput is computed from the
    deterministic *simulated* completion time; ``--check`` enforces the
    strict ``MIN_LOSSY_RECOVERY_SPEEDUP`` floor (probing must beat the
    collapse-the-window baseline outright)."""
    size = 400_000 if quick else 1_500_000
    episodes = 3 if quick else 8
    rfc = _lossy_recovery_transfer(size, declare_all=False,
                                   episodes=episodes)
    legacy = _lossy_recovery_transfer(size, declare_all=True,
                                      episodes=episodes)
    print(f"    lossy-recovery: rfc sim-time {rfc['sim_s']:.2f}s"
          f" ({rfc['pto_fired']} PTOs, {rfc['probes_sent']} probes,"
          f" {rfc['packets_lost']} lost) vs legacy {legacy['sim_s']:.2f}s"
          f" ({legacy['pto_fired']} PTOs, {legacy['packets_lost']} lost)")
    return {
        "lossy_recovery_goodput_bytes_per_sec":
            (size / rfc["sim_s"], "B/s"),
        "lossy_recovery_legacy_bytes_per_sec":
            (size / legacy["sim_s"], "B/s"),
        "lossy_recovery_speedup":
            (legacy["sim_s"] / rfc["sim_s"], "x"),
    }


WORKLOADS = [
    ("pre-kernel", bench_pre_kernel),
    ("analysis", bench_analysis),
    ("pluglet-invocation", bench_pluglet_invocation),
    ("protoop-dispatch", bench_protoop_dispatch),
    ("trace-overhead", bench_trace_overhead),
    ("crypto", bench_crypto),
    ("simulator", bench_simulator),
    ("e2e-transfer", bench_transfer),
    ("quic-scale", bench_quic_scale),
    ("migration", bench_migration),
    ("goodput", bench_goodput),
    ("lossy-recovery", bench_lossy_recovery),
]


# --- reporting / regression gate --------------------------------------------

def run_all(quick: bool, profile: bool = False) -> dict:
    metrics = {}
    for name, fn in WORKLOADS:
        print(f"[bench] {name} ...", flush=True)
        if profile:
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            results = profiler.runcall(fn, quick)
        else:
            results = fn(quick)
        for key, (value, unit) in results.items():
            metrics[key] = {"value": round(value, 3), "unit": unit}
            print(f"    {key:42s} {value:>14,.1f} {unit}")
        if profile:
            print(f"[bench] cProfile top 25 for {name}:")
            stats = pstats.Stats(profiler)
            stats.sort_stats("cumulative").print_stats(25)
    return metrics


def check_regressions(metrics: dict, baseline_path: pathlib.Path) -> list:
    """>2x drops vs the checked-in baseline.  All metrics are
    higher-is-better throughputs/speedups.

    Ratio metrics (unit ``x``) are skipped: they divide two noisy
    timings, so they flake hardest under shared-runner load, and each
    already has a dedicated absolute floor (``MIN_JIT_SPEEDUP``)."""
    if not baseline_path.exists():
        print(f"[bench] no baseline at {baseline_path}; skipping check")
        return []
    baseline = json.loads(baseline_path.read_text()).get("metrics", {})
    failures = []
    for key, entry in metrics.items():
        base = baseline.get(key)
        if base is None or base.get("unit") != entry["unit"]:
            continue
        if entry["unit"] == "x":
            continue
        if entry["value"] * REGRESSION_FACTOR < base["value"]:
            failures.append(
                f"{key}: {entry['value']:,.1f} {entry['unit']} is >"
                f"{REGRESSION_FACTOR}x below baseline {base['value']:,.1f}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller iteration counts (CI smoke run)")
    parser.add_argument("--check", action="store_true",
                        help="fail on >2x regression vs the baseline")
    parser.add_argument("--profile", action="store_true",
                        help="run each workload under cProfile and print "
                             "the top 25 functions by cumulative time")
    parser.add_argument("--output", type=pathlib.Path,
                        default=ROOT / "BENCH_pr10.json")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=ROOT / "BENCH_pr10.json",
                        help="baseline file compared by --check")
    args = parser.parse_args(argv)

    metrics = run_all(args.quick, profile=args.profile)

    failures = []
    speedup = metrics["pre_kernel_jit_speedup"]["value"]
    if speedup < MIN_JIT_SPEEDUP:
        msg = (f"pre_kernel_jit_speedup {speedup:.2f}x below the "
               f"{MIN_JIT_SPEEDUP}x acceptance floor")
        if args.check:
            failures.append(msg)
        else:
            print(f"[bench] WARNING: {msg}")

    mf_speedup = metrics["jit_monitor_free_speedup"]["value"]
    if mf_speedup < MIN_MONITOR_FREE_SPEEDUP:
        msg = (f"jit_monitor_free_speedup {mf_speedup:.3f}x: the "
               f"proof-specialized closure must not be slower than the "
               f"monitored one ({MIN_MONITOR_FREE_SPEEDUP}x floor)")
        if args.check:
            failures.append(msg)
        else:
            print(f"[bench] WARNING: {msg}")

    cert_speedup = metrics["jit_fuel_certificate_speedup"]["value"]
    if cert_speedup < MIN_CERTIFICATE_SPEEDUP:
        msg = (f"jit_fuel_certificate_speedup {cert_speedup:.3f}x: the "
               f"certified fuel-check-elided closure must not be slower "
               f"than the monitored one ({MIN_CERTIFICATE_SPEEDUP}x floor)")
        if args.check:
            failures.append(msg)
        else:
            print(f"[bench] WARNING: {msg}")

    off = metrics["trace_off_dispatch_ops_per_sec"]["value"]
    detached = metrics["trace_detached_dispatch_ops_per_sec"]["value"]
    overhead_pct = (off - detached) / off * 100.0 if off else 0.0
    print(f"[bench] tracing-disabled dispatch overhead: {overhead_pct:+.2f}%"
          f" (limit {TRACE_OVERHEAD_LIMIT_PCT:.0f}%)")
    if overhead_pct > TRACE_OVERHEAD_LIMIT_PCT:
        msg = (f"tracing-disabled dispatch overhead {overhead_pct:.2f}% "
               f"exceeds the {TRACE_OVERHEAD_LIMIT_PCT}% budget "
               f"({detached:,.0f} vs {off:,.0f} ops/s)")
        if args.check:
            failures.append(msg)
        else:
            print(f"[bench] WARNING: {msg}")

    goodput = metrics["goodput_batch_speedup"]["value"]
    if goodput < MIN_GOODPUT_SPEEDUP:
        msg = (f"goodput_batch_speedup {goodput:.2f}x below the "
               f"{MIN_GOODPUT_SPEEDUP}x acceptance floor (batched datapath "
               f"must move bulk data >= {MIN_GOODPUT_SPEEDUP}x faster than "
               f"REPRO_BATCH=0)")
        if args.check:
            failures.append(msg)
        else:
            print(f"[bench] WARNING: {msg}")

    lossy = metrics["lossy_recovery_speedup"]["value"]
    if lossy <= MIN_LOSSY_RECOVERY_SPEEDUP:
        msg = (f"lossy_recovery_speedup {lossy:.3f}x: goodput under 2% "
               f"loss with PTO probes must be strictly above the "
               f"declare-all-lost baseline (> "
               f"{MIN_LOSSY_RECOVERY_SPEEDUP}x)")
        if args.check:
            failures.append(msg)
        else:
            print(f"[bench] WARNING: {msg}")

    if args.check:
        failures += check_regressions(metrics, args.baseline)

    report = {
        "schema": "pquic-bench-v1",
        "pr": "pr10",
        "quick": args.quick,
        "python": sys.version.split()[0],
        "metrics": metrics,
    }
    # The quick CI run must never clobber the checked-in full baseline.
    out = args.output
    if args.quick and out == args.baseline and out.exists():
        out = out.with_suffix(".quick.json")
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench] wrote {out}")
    if args.quick:
        # Stable alias so consumers (the CI artifact upload) never have
        # to track the PR-numbered report filename.
        alias = ROOT / "BENCH_quick.json"
        if alias != out:
            alias.write_text(json.dumps(report, indent=2) + "\n")
            print(f"[bench] wrote {alias}")

    if failures:
        for f in failures:
            print(f"[bench] FAIL: {f}", file=sys.stderr)
        return 1
    print(f"[bench] ok (JIT speedup {speedup:.1f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
