#!/usr/bin/env python
"""Plugin lint gate for CI.

Runs the PRE static analyzer plus the manifest linter
(:mod:`repro.vm.analysis`) over every bundled plugin and over the
bytecode corpus under ``tests/corpus/``:

* every bundled plugin must produce **zero error-severity diagnostics**
  (warnings are reported but allowed — e.g. compiler dead code);
* every program in ``tests/corpus/bad/`` must be rejected with exactly
  the rule id named in its ``; expect: PRExxx`` header;
* every program in ``tests/corpus/good/`` must be accepted;
* a *deployable* bundled set (one FEC variant) must be free of hard
  cross-plugin conflicts (``PRE200``/``PRE203``);
* every plugin pair in ``tests/corpus/pairs/*.json`` must produce the
  diagnostic named in its ``"expect"`` key (or none for ``"ok"``), and
  the fuel corpus entries must carry a static fuel certificate.

Exits non-zero on the first violated expectation, so CI can run it as a
blocking job::

    PYTHONPATH=src python tools/lint_plugins.py
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.cli import BUILTIN_PLUGINS  # noqa: E402
from repro.core.api import PluginApi  # noqa: E402
from repro.core.plugin import PluginRuntime  # noqa: E402
from repro.quic import QuicConfiguration  # noqa: E402
from repro.quic.connection import QuicConnection  # noqa: E402
from repro.vm.analysis import Severity, analyze, lint_plugin  # noqa: E402
from repro.vm.asm import assemble  # noqa: E402

_EXPECT = re.compile(r";\s*expect:\s*(\S+)")


def lint_bundled() -> int:
    """All bundled plugins must lint error-free. Returns failures."""
    conn = QuicConnection(QuicConfiguration(is_client=True))
    protoop_names = set(conn.protoops.names)
    failures = 0
    for name in sorted(BUILTIN_PLUGINS):
        plugin = BUILTIN_PLUGINS[name]()
        runtime = PluginRuntime(plugin, conn)
        helper_ids = set(PluginApi(runtime).helper_table())
        helper_ids.update(runtime.extra_helpers)
        diags = lint_plugin(plugin, protoop_names, helper_ids)
        errors = [d for d in diags if d.severity is Severity.ERROR]
        warnings = [d for d in diags if d.severity is Severity.WARNING]
        status = "FAIL" if errors else "ok"
        print(f"[{status}] {name}: {len(plugin.pluglets)} pluglets, "
              f"{len(errors)} error(s), {len(warnings)} warning(s)")
        for d in errors:
            print(f"       {name}: {d.format()}")
        if errors:
            failures += 1
    return failures


#: A plugin set meant to attach together (the builtin list also holds
#: mutually-exclusive FEC variants that replace the same protoops by
#: design, so "all builtins" is not a deployable set).
DEPLOYABLE_SET = ("monitoring", "ccontrol", "ecn", "datagram",
                  "multipath", "fec-xor")


def lint_deployable_set() -> int:
    """The deployable bundled set must have no hard conflicts."""
    from repro.core.api import FIELD_NAMES, HELPER_EFFECTS
    from repro.vm.analysis import check_plugin_set, summarize_plugin

    effects = [summarize_plugin(BUILTIN_PLUGINS[name](), HELPER_EFFECTS)
               for name in DEPLOYABLE_SET]
    diags = check_plugin_set(effects, FIELD_NAMES)
    errors = [d for d in diags if d.severity is Severity.ERROR]
    warnings = [d for d in diags if d.severity is Severity.WARNING]
    status = "FAIL" if errors else "ok"
    print(f"[{status}] deployable set {'+'.join(DEPLOYABLE_SET)}: "
          f"{len(errors)} conflict error(s), {len(warnings)} warning(s)")
    for d in errors + warnings:
        print(f"       {d.format()}")
    return 1 if errors else 0


def check_pairs_corpus() -> int:
    """Every pairs-corpus file must yield exactly its expected rule."""
    import json

    from repro.cli import _load_plugin_set_file
    from repro.core.api import FIELD_NAMES, HELPER_EFFECTS
    from repro.vm.analysis import check_plugin_set, summarize_plugin

    failures = 0
    for path in sorted((ROOT / "tests" / "corpus" / "pairs").glob("*.json")):
        expected = json.loads(path.read_text()).get("expect", "ok")
        plugins = _load_plugin_set_file(path)
        diags = []
        for plugin in plugins:
            diags.extend(lint_plugin(plugin))
        effects = [summarize_plugin(p, HELPER_EFFECTS) for p in plugins]
        diags.extend(check_plugin_set(effects, FIELD_NAMES))
        rules = sorted({d.rule for d in diags})
        if expected == "ok":
            if rules:
                print(f"[FAIL] pairs/{path.name}: expected clean, "
                      f"got {', '.join(rules)}")
                failures += 1
                continue
        elif expected not in rules:
            print(f"[FAIL] pairs/{path.name}: expected {expected}, "
                  f"got {', '.join(rules) or 'none'}")
            failures += 1
            continue
        # The fuel corpus additionally proves the certificate machinery
        # runs end to end: each bounded_sum pluglet must be certified.
        if path.name.startswith("fuel_"):
            report = next(iter(plugins[0].analyze_all().values()))
            if report.fuel_certificate is None:
                print(f"[FAIL] pairs/{path.name}: no fuel certificate "
                      f"for {plugins[0].name}")
                failures += 1
                continue
        print(f"[ok]   pairs/{path.name}: "
              f"{expected if expected != 'ok' else 'clean'} as expected")
    return failures


def check_corpus() -> int:
    """Bad corpus must fail with its expected rule; good must pass."""
    failures = 0
    for path in sorted((ROOT / "tests" / "corpus" / "bad").glob("*.s")):
        text = path.read_text()
        match = _EXPECT.search(text)
        if match is None:
            print(f"[FAIL] {path.name}: missing '; expect:' header")
            failures += 1
            continue
        expected = match.group(1)
        report = analyze(assemble(text))
        hit = [d for d in report.errors() if d.rule == expected]
        if not hit:
            got = sorted({d.rule for d in report.errors()}) or ["none"]
            print(f"[FAIL] bad/{path.name}: expected error {expected}, "
                  f"got {', '.join(got)}")
            failures += 1
        else:
            d = hit[0]
            print(f"[ok]   bad/{path.name}: rejected by "
                  f"{d.rule} at pc {d.pc}")
    for path in sorted((ROOT / "tests" / "corpus" / "good").glob("*.s")):
        report = analyze(assemble(path.read_text()))
        if report.errors():
            print(f"[FAIL] good/{path.name}: unexpected error(s): "
                  + "; ".join(d.format() for d in report.errors()))
            failures += 1
        else:
            print(f"[ok]   good/{path.name}: accepted "
                  f"(memory_safe={report.memory_safe}, "
                  f"loop_free={report.loop_free})")
    return failures


def main() -> int:
    failures = lint_bundled()
    failures += lint_deployable_set()
    failures += check_corpus()
    failures += check_pairs_corpus()
    if failures:
        print(f"\n{failures} lint expectation(s) violated")
        return 1
    print("\nall plugins and corpus expectations hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
