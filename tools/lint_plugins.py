#!/usr/bin/env python
"""Plugin lint gate for CI.

Runs the PRE static analyzer plus the manifest linter
(:mod:`repro.vm.analysis`) over every bundled plugin and over the
bytecode corpus under ``tests/corpus/``:

* every bundled plugin must produce **zero error-severity diagnostics**
  (warnings are reported but allowed — e.g. compiler dead code);
* every program in ``tests/corpus/bad/`` must be rejected with exactly
  the rule id named in its ``; expect: PRExxx`` header;
* every program in ``tests/corpus/good/`` must be accepted.

Exits non-zero on the first violated expectation, so CI can run it as a
blocking job::

    PYTHONPATH=src python tools/lint_plugins.py
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.cli import BUILTIN_PLUGINS  # noqa: E402
from repro.core.api import PluginApi  # noqa: E402
from repro.core.plugin import PluginRuntime  # noqa: E402
from repro.quic import QuicConfiguration  # noqa: E402
from repro.quic.connection import QuicConnection  # noqa: E402
from repro.vm.analysis import Severity, analyze, lint_plugin  # noqa: E402
from repro.vm.asm import assemble  # noqa: E402

_EXPECT = re.compile(r";\s*expect:\s*(\S+)")


def lint_bundled() -> int:
    """All bundled plugins must lint error-free. Returns failures."""
    conn = QuicConnection(QuicConfiguration(is_client=True))
    protoop_names = set(conn.protoops.names)
    failures = 0
    for name in sorted(BUILTIN_PLUGINS):
        plugin = BUILTIN_PLUGINS[name]()
        runtime = PluginRuntime(plugin, conn)
        helper_ids = set(PluginApi(runtime).helper_table())
        helper_ids.update(runtime.extra_helpers)
        diags = lint_plugin(plugin, protoop_names, helper_ids)
        errors = [d for d in diags if d.severity is Severity.ERROR]
        warnings = [d for d in diags if d.severity is Severity.WARNING]
        status = "FAIL" if errors else "ok"
        print(f"[{status}] {name}: {len(plugin.pluglets)} pluglets, "
              f"{len(errors)} error(s), {len(warnings)} warning(s)")
        for d in errors:
            print(f"       {name}: {d.format()}")
        if errors:
            failures += 1
    return failures


def check_corpus() -> int:
    """Bad corpus must fail with its expected rule; good must pass."""
    failures = 0
    for path in sorted((ROOT / "tests" / "corpus" / "bad").glob("*.s")):
        text = path.read_text()
        match = _EXPECT.search(text)
        if match is None:
            print(f"[FAIL] {path.name}: missing '; expect:' header")
            failures += 1
            continue
        expected = match.group(1)
        report = analyze(assemble(text))
        hit = [d for d in report.errors() if d.rule == expected]
        if not hit:
            got = sorted({d.rule for d in report.errors()}) or ["none"]
            print(f"[FAIL] bad/{path.name}: expected error {expected}, "
                  f"got {', '.join(got)}")
            failures += 1
        else:
            d = hit[0]
            print(f"[ok]   bad/{path.name}: rejected by "
                  f"{d.rule} at pc {d.pc}")
    for path in sorted((ROOT / "tests" / "corpus" / "good").glob("*.s")):
        report = analyze(assemble(path.read_text()))
        if report.errors():
            print(f"[FAIL] good/{path.name}: unexpected error(s): "
                  + "; ".join(d.format() for d in report.errors()))
            failures += 1
        else:
            print(f"[ok]   good/{path.name}: accepted "
                  f"(memory_safe={report.memory_safe}, "
                  f"loop_free={report.loop_free})")
    return failures


def main() -> int:
    failures = lint_bundled()
    failures += check_corpus()
    if failures:
        print(f"\n{failures} lint expectation(s) violated")
        return 1
    print("\nall plugins and corpus expectations hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
