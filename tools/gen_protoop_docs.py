"""Regenerate docs/protocol-operations.md from the live registry.

Run from the repository root:  python tools/gen_protoop_docs.py
"""

import pathlib

from repro.quic import QuicConfiguration
from repro.quic.connection import QuicConnection


def main() -> None:
    conn = QuicConnection(QuicConfiguration(is_client=True))
    table = conn.protoops
    lines = [
        "# Protocol operations reference",
        "",
        "Generated from the live registry "
        f"(`QuicConnection` registers {table.operation_count()} operations, "
        f"{table.parameterized_count()} parameterized — the paper's §2.2 "
        "counts).",
        "",
        "Each operation exposes `replace` / `pre` / `post` anchors; "
        "operations",
        "marked *external* are callable only by the application (§2.4);",
        "operations with no default are empty-anchor connection events.",
        "",
        "| operation | parameterized | external | default behaviour |",
        "|---|---|---|---|",
    ]
    for name in table.names:
        op = table.get(name)
        default = "yes" if op.defaults else "event hook (none)"
        if op.parameterized and op.defaults:
            default = f"yes ({len(op.defaults)} parameter values)"
        lines.append(
            f"| `{name}` | {'yes' if op.parameterized else ''} "
            f"| {'yes' if op.external else ''} | {default} |"
        )
    out = pathlib.Path(__file__).resolve().parent.parent / "docs"
    out.mkdir(exist_ok=True)
    (out / "protocol-operations.md").write_text("\n".join(lines) + "\n")
    print(f"wrote {table.operation_count()} operations")


if __name__ == "__main__":
    main()
