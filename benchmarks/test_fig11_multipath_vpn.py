"""Figure 11: DCT ratio of TCP in and outside a *multipath* VPN tunnel.

Paper (§4.5): the datagram and multipath plugins combined — "as file size
grows the benefits of multipath become clear.  By spreading the traffic
over the two symmetric paths, our combined plugins reach a DCT ratio that
tends to 0.55."
"""

import statistics

import pytest

from repro.experiments import DEFAULT_RANGES, run_tcp_direct, run_tcp_through_tunnel, wsp_sample

from _util import FULL, cdf_summary, print_table, write_rows

SIZES = [1_500, 10_000, 50_000, 1_000_000] + ([10_000_000] if FULL else [])
N_POINTS = 8 if FULL else 3


def run_figure11():
    points = wsp_sample(DEFAULT_RANGES, count=N_POINTS, seed=11)
    ratios = {size: [] for size in SIZES}
    for i, point in enumerate(points):
        for size in SIZES:
            direct = run_tcp_direct(size, d_ms=point["d"],
                                    bw_mbps=point["bw"], seed=400 + i)
            tunnel = run_tcp_through_tunnel(
                size, d_ms=point["d"], bw_mbps=point["bw"], seed=400 + i,
                multipath=True,
            )
            if direct.completed and tunnel.completed:
                ratios[size].append(tunnel.dct / direct.dct)
    return ratios


def test_fig11_multipath_vpn_ratio(benchmark):
    ratios = benchmark.pedantic(run_figure11, rounds=1, iterations=1)
    header = ("size        DCT in/out CDF  "
              "(paper: ~1 for short transfers, tending to 0.55 for large)")
    rows = [f"{size:>10}  {cdf_summary(values)}"
            for size, values in ratios.items()]
    print_table("Figure 11 — multipath VPN DCT ratio", header, rows)
    write_rows("fig11_multipath_vpn", header, rows)

    # Shape: no benefit for short transfers...
    small_median = statistics.median(ratios[SIZES[0]])
    assert small_median > 0.85
    # ...clear benefit for the largest size (two paths: ratio well below 1,
    # toward the paper's 0.55 asymptote).
    big_median = statistics.median(ratios[SIZES[-1]])
    assert big_median < 0.8
    assert big_median < small_median
