"""Figure 9: multipath speedup over two symmetric paths.

Paper: "with small files, there is little gain in using two paths [...]
With larger files, both mp-quic and our plugin efficiently use the two
available paths.  The speedup ratio of both [...] tends to reach 2 with
10 MB files."  The mp-quic baseline differs by its 32 kB initial path
window (inherited from quic-go), twice PQUIC's 16 kB — which explains its
small gain on 50 kB files.
"""

import statistics

import pytest

from repro.experiments import DEFAULT_RANGES, median, run_quic_transfer, wsp_sample
from repro.plugins.multipath import build_multipath_plugin

from _util import FULL, print_table, write_rows

SIZES = [10_000, 50_000, 1_000_000] + ([10_000_000] if FULL else [])
N_POINTS = 8 if FULL else 3


def speedup_for(size, d, bw, seed, initial_window):
    single = run_quic_transfer(size, d_ms=d, bw_mbps=bw, seed=seed,
                               initial_window=initial_window)
    multi = run_quic_transfer(
        size, d_ms=d, bw_mbps=bw, seed=seed, multipath=True,
        initial_window=initial_window,
        client_plugins=[build_multipath_plugin],
        server_plugins=[build_multipath_plugin],
    )
    if not (single.completed and multi.completed):
        return None
    return single.dct / multi.dct


def run_figure9():
    points = wsp_sample(DEFAULT_RANGES, count=N_POINTS, seed=9)
    table = {}
    for size in SIZES:
        plugin_ratios = []
        mpquic_ratios = []
        for i, point in enumerate(points):
            r = speedup_for(size, point["d"], point["bw"], 200 + i,
                            initial_window=16 * 1024)  # PQUIC default
            if r:
                plugin_ratios.append(r)
            r = speedup_for(size, point["d"], point["bw"], 200 + i,
                            initial_window=32 * 1024)  # mp-quic-like
            if r:
                mpquic_ratios.append(r)
        table[size] = (median(plugin_ratios), median(mpquic_ratios))
    return table


def test_fig9_multipath_speedup(benchmark):
    table = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    header = (f"{'size':>10} {'plugin speedup':>15} {'mp-quic speedup':>16}"
              "   (paper: ~1 small, ->2 at 10MB)")
    rows = [f"{size:>10} {table[size][0]:>15.2f} {table[size][1]:>16.2f}"
            for size in SIZES]
    print_table("Figure 9 — multipath speedup", header, rows)
    write_rows("fig9_multipath_speedup", header, rows)

    small_plugin, _small_mp = table[SIZES[0]]
    big_plugin, big_mp = table[SIZES[-1]]
    # Shape: little gain for small files...
    assert small_plugin < 1.4
    # ...growing toward 2x: at 1 MB the paper's curve sits around 1.5;
    # only the 10 MB point (REPRO_FULL=1) approaches 2.
    floor = 1.7 if SIZES[-1] >= 10_000_000 else 1.35
    assert big_plugin > floor
    assert big_mp > floor
    # Monotone-ish growth with file size for the plugin.
    speedups = [table[s][0] for s in SIZES]
    assert speedups[-1] > speedups[0]
