"""Shared helpers for the benchmark/reproduction harness.

Each benchmark regenerates one table or figure of the paper and writes its
rows under ``results/``.  Set ``REPRO_FULL=1`` for the paper-scale sweeps
(the default configuration is sized to finish in minutes).
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

FULL = os.environ.get("REPRO_FULL", "") == "1"


def design_points(count_small: int, count_full: int):
    """How many WSP design points to run (paper: 139 x 9 repetitions)."""
    return count_full if FULL else count_small


def write_rows(name: str, header: str, rows: list) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    with open(path, "w") as fh:
        fh.write(header.rstrip() + "\n")
        for row in rows:
            fh.write(str(row).rstrip() + "\n")
    return path


def print_table(title: str, header: str, rows: list) -> None:
    print(f"\n=== {title} ===")
    print(header)
    for row in rows:
        print(row)


def cdf_summary(values: list) -> str:
    """Compact CDF description: min / p25 / median / p75 / max."""
    if not values:
        return "no data"
    ordered = sorted(values)

    def pct(p: float) -> float:
        index = min(len(ordered) - 1, int(p * len(ordered)))
        return ordered[index]

    return (f"min={ordered[0]:.3f} p25={pct(0.25):.3f} "
            f"median={pct(0.5):.3f} p75={pct(0.75):.3f} "
            f"max={ordered[-1]:.3f} (n={len(ordered)})")
