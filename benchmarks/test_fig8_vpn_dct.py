"""Figure 8: DCT ratio of TCP in and outside a client-server PQUIC tunnel.

Paper setup: TCPCubic file transfers of 1.5 kB - 10 MB, default parameter
ranges {d in [2.5, 25] ms, bw in [5, 50] Mbps, l = 0}, WSP-sampled; the
CDF of DCT(in)/DCT(out).  Expected shape: short files near or below the
44-byte/packet bound (1.031), longer files stable slightly above it.
"""

import pytest

from repro.experiments import DEFAULT_RANGES, run_tcp_direct, run_tcp_through_tunnel, wsp_sample

from _util import FULL, cdf_summary, print_table, write_rows

SIZES = [1_500, 10_000, 50_000, 1_000_000] + ([10_000_000] if FULL else [])
N_POINTS = 12 if FULL else 4


def run_figure8():
    points = wsp_sample(DEFAULT_RANGES, count=N_POINTS, seed=8)
    ratios = {size: [] for size in SIZES}
    for i, point in enumerate(points):
        for size in SIZES:
            direct = run_tcp_direct(size, d_ms=point["d"],
                                    bw_mbps=point["bw"], seed=100 + i)
            tunnel = run_tcp_through_tunnel(size, d_ms=point["d"],
                                            bw_mbps=point["bw"], seed=100 + i)
            if direct.completed and tunnel.completed:
                ratios[size].append(tunnel.dct / direct.dct)
    return ratios


def test_fig8_dct_ratio_cdf(benchmark):
    ratios = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    header = "size        DCT in/out CDF  (paper: mostly within [0.95, 1.25], bound 1.031 for small files)"
    rows = [f"{size:>10}  {cdf_summary(values)}"
            for size, values in ratios.items()]
    print_table("Figure 8 — VPN DCT ratio", header, rows)
    write_rows("fig8_vpn_dct", header, rows)

    all_values = [v for values in ratios.values() for v in values]
    assert all_values, "no completed runs"
    # Shape: the tunnel costs a bounded overhead — ratios cluster near 1.
    import statistics

    med = statistics.median(all_values)
    assert 0.9 < med < 1.3
    # Small transfers stay near/below the per-packet overhead bound.
    small = ratios[1_500]
    assert statistics.median(small) < 1.1
    # No catastrophic blowup anywhere.
    assert max(all_values) < 2.0
