"""§4.6 micro-benchmarks.

Paper: "the PRE is two times slower than native code" and "our get/set API
is five times slower compared to direct memory accesses".  Interpreting
bytecode in Python is of course slower than 2x native — what must
reproduce is the *relative* story: PRE execution costs a constant factor
over host execution, and get/set costs a constant factor over direct field
reads.  Both factors are measured and reported.
"""

import time

import pytest

from repro.core import Plugin, PluginInstance, Pluglet
from repro.core.api import FLD_PACKETS_SENT
from repro.quic import QuicConfiguration
from repro.quic.connection import QuicConnection
from repro.vm import PluginMemory, VirtualMachine, compile_pluglet

from _util import print_table, write_rows

KERNEL_SOURCE = """
def kernel(n):
    total = 0
    i = 0
    while i < n:
        total = (total + i * 3) % 65521
        i += 1
    return total
"""


def native_kernel(n):
    total = 0
    i = 0
    while i < n:
        total = (total + i * 3) % 65521
        i += 1
    return total


def test_pre_vs_native_compute(benchmark):
    code = compile_pluglet(KERNEL_SOURCE)
    vm = VirtualMachine(code, PluginMemory(), instruction_budget=10_000_000)
    n = 20_000
    expected = native_kernel(n)

    t0 = time.perf_counter()
    assert vm.run(n) == expected
    pre_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    native_kernel(n)
    native_time = time.perf_counter() - t0

    factor = pre_time / native_time
    rows = [
        f"native kernel:  {native_time * 1000:8.2f} ms",
        f"PRE kernel:     {pre_time * 1000:8.2f} ms",
        f"slowdown:       {factor:8.1f}x   (paper: ~2x for JITed eBPF)",
    ]
    print_table("§4.6 — PRE vs native execution", "", rows)
    write_rows("micro_pre_overhead", "PRE vs native", rows)
    benchmark.pedantic(vm.run, args=(2000,), rounds=3, iterations=1)
    assert factor > 1.0  # interpretation is never free


def test_getset_vs_direct_access(benchmark):
    conn = QuicConnection(QuicConfiguration(is_client=True))
    reader = Pluglet.from_source(
        "reader", "bench_read", "replace",
        f"""
def reader(n):
    total = 0
    i = 0
    while i < n:
        total += get({FLD_PACKETS_SENT}, 0)
        i += 1
    return total
""",
    )
    instance = PluginInstance(Plugin("org.bench.getset", [reader]), conn)
    instance.attach()
    conn.stats["packets_sent"] = 7
    n = 5_000

    t0 = time.perf_counter()
    assert conn.protoops.run(conn, "bench_read", None, n) == 7 * n
    getset_time = time.perf_counter() - t0

    # Direct access baseline: the same loop inside the VM but reading a
    # plugin-memory cell with a native load instead of the get() helper.
    direct = Pluglet.from_source(
        "direct", "bench_direct", "replace",
        """
def direct(n):
    cell = get_opaque_data(1, 8)
    total = 0
    i = 0
    while i < n:
        total += mem64[cell]
        i += 1
    return total
""",
    )
    conn2 = QuicConnection(QuicConfiguration(is_client=True))
    instance2 = PluginInstance(Plugin("org.bench.direct", [direct]), conn2)
    instance2.attach()
    instance2.runtime.memory.data[0:8] = (7).to_bytes(8, "little")

    t0 = time.perf_counter()
    assert conn2.protoops.run(conn2, "bench_direct", None, n) == 7 * n
    direct_time = time.perf_counter() - t0

    factor = getset_time / direct_time
    rows = [
        f"direct memory read loop: {direct_time * 1000:8.2f} ms",
        f"get() API read loop:     {getset_time * 1000:8.2f} ms",
        f"slowdown:                {factor:8.1f}x   (paper: ~5x)",
    ]
    print_table("§4.6 — get/set vs direct access", "", rows)
    write_rows("micro_getset_overhead", "get/set vs direct", rows)
    benchmark.pedantic(
        conn2.protoops.run, args=(conn2, "bench_direct", None, 500),
        rounds=3, iterations=1,
    )
    assert factor > 1.0
