"""Appendix B.3: efficiency of the plugin management system.

Claims reproduced:

* checking a proof of consistency is Θ(log n + α) hash computations —
  essentially flat as the number of plugins grows;
* the bandwidth (authentication-path size) grows as Θ(λ(log n + α));
* building the full tree, which a PV does once per epoch, stays cheap
  ("the binary tree can be computed within a few seconds for millions of
  entries" — we measure tens of thousands).
"""

import time

import pytest

from repro.secure.merkle import MerklePrefixTree, verify_path

from _util import FULL, print_table, write_rows

SIZES = [256, 1024, 4096, 16384] + ([65536] if FULL else [])


def build_tree(n, depth=20):
    tree = MerklePrefixTree(depth=depth)
    for i in range(n):
        tree.insert(f"plugin-{i:06d}", b"C" * 64)
    return tree


def test_proof_scaling(benchmark):
    rows = []
    verify_times = []
    path_sizes = []
    for n in SIZES:
        tree = build_tree(n)
        t0 = time.perf_counter()
        root = tree.root()
        build_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        path = tree.prove("plugin-000000")
        prove_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        for _ in range(50):
            assert verify_path(root, "plugin-000000", b"C" * 64, path)
        verify_time = (time.perf_counter() - t0) / 50

        rows.append(
            f"n={n:>6}  tree build={build_time * 1000:8.1f} ms  "
            f"prove={prove_time * 1000:7.1f} ms  "
            f"verify={verify_time * 1e6:7.1f} us  "
            f"path={path.size_bytes():>5} B"
        )
        verify_times.append(verify_time)
        path_sizes.append(path.size_bytes())

    header = "Merkle prefix tree proof-of-consistency scaling"
    print_table("Appendix B.3", header, rows)
    write_rows("appendixB_merkle", header, rows)

    benchmark.pedantic(
        lambda: verify_path(_BENCH_ROOT, "plugin-000000", b"C" * 64,
                            _BENCH_PATH),
        rounds=5, iterations=10,
    )

    # Verification cost must be ~flat (Θ(log n + α) with fixed depth).
    assert verify_times[-1] < 10 * verify_times[0]
    # Path size grows sub-linearly: 64x more plugins, < 4x more bytes.
    assert path_sizes[-1] < 4 * path_sizes[0]


_BENCH_TREE = build_tree(256)
_BENCH_ROOT = _BENCH_TREE.root()
_BENCH_PATH = _BENCH_TREE.prove("plugin-000000")


def test_epoch_rebuild_cost(benchmark):
    """A PV rebuilds its tree each epoch; must stay fast."""
    def rebuild():
        return build_tree(2048).root()

    result = benchmark.pedantic(rebuild, rounds=2, iterations=1)
    assert result is not None
