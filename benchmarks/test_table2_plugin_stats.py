"""Table 2: statistics for each implemented plugin.

Paper columns: LoC, pluglets, proven terminating, ELF size, compressed
size.  Our analogues: pluglet-source lines, pluglet count, termination
proofs from :mod:`repro.termination`, serialized bytecode size and
zlib-compressed size (§3.4's exchange format).
"""

import pytest

from repro.plugins.datagram import build_datagram_plugin
from repro.plugins.fec import build_fec_plugin
from repro.plugins.monitoring import build_monitoring_plugin
from repro.plugins.multipath import build_multipath_plugin
from repro.termination import check_termination

from _util import print_table, write_rows

#: Paper's Table 2, for side-by-side comparison in the output.
PAPER = {
    "Monitoring": (500, 14, 13, "86 kB", "27 kB"),
    "Datagram": (500, 11, 8, "28 kB", "25 kB"),
    "Multipath": (2600, 32, 29, "138 kB", "40 kB"),
    "FEC": (2500, 51, 37, "238 kB", "61 kB"),
}


def fec_all_variants():
    """The paper's FEC row sums the window framework with both ECCs and
    both transmission modes; mirror that aggregation."""
    return [build_fec_plugin(ecc, mode)
            for ecc in ("xor", "rlc") for mode in ("full", "eos")]


def analyze(label, plugins):
    pluglets = [p for plugin in plugins for p in plugin.pluglets]
    proven = sum(
        1 for p in pluglets if check_termination(p.instructions).proven
    )
    instructions = sum(len(p.instructions) for p in pluglets)
    size = sum(len(plugin.serialize()) for plugin in plugins)
    compressed = sum(len(plugin.compressed()) for plugin in plugins)
    return {
        "label": label,
        "pluglets": len(pluglets),
        "proven": proven,
        "instructions": instructions,
        "size": size,
        "compressed": compressed,
    }


def build_table():
    return [
        analyze("Monitoring", [build_monitoring_plugin()]),
        analyze("Datagram", [build_datagram_plugin()]),
        analyze("Multipath", [build_multipath_plugin("rr"),
                              build_multipath_plugin("lowrtt")]),
        analyze("FEC", fec_all_variants()),
    ]


def test_table2_plugin_statistics(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    header = (f"{'Plugin':<12} {'Pluglets':>8} {'Proven':>7} {'Instr':>7} "
              f"{'Size':>8} {'Compressed':>10}   (paper: pluglets/proven/sizes)")
    rows = []
    for entry in table:
        paper = PAPER[entry["label"]]
        rows.append(
            f"{entry['label']:<12} {entry['pluglets']:>8} "
            f"{entry['proven']:>7} {entry['instructions']:>7} "
            f"{entry['size']:>7}B {entry['compressed']:>9}B"
            f"   ({paper[1]}/{paper[2]}, {paper[3]}/{paper[4]})"
        )
    print_table("Table 2 — plugin statistics", header, rows)
    write_rows("table2_plugin_stats", header, rows)

    by_label = {e["label"]: e for e in table}
    # Shape checks against the paper.
    assert by_label["Monitoring"]["pluglets"] == 14  # exact match
    # FEC is the largest plugin, monitoring/datagram the smallest.
    assert by_label["FEC"]["pluglets"] > by_label["Multipath"]["pluglets"] \
        or by_label["FEC"]["size"] > by_label["Datagram"]["size"]
    assert by_label["FEC"]["size"] > by_label["Monitoring"]["size"]
    # Compression always helps (§3.4: duplicate code across pluglets).
    for entry in table:
        assert entry["compressed"] < entry["size"]
    # Most pluglets provable, as in the paper.
    for entry in table:
        assert entry["proven"] >= 0.7 * entry["pluglets"]
