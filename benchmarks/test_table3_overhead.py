"""Table 3: benchmarking plugins (goodput and plugin load time).

The paper's 10 Gbps testbed measures CPU-bound goodput for a 1 GB
download under each plugin configuration, plus plugin loading times (cold
vs cached).  Our substrate is a simulator, so the CPU-bound analogue is
the *wall-clock* cost of pushing a fixed transfer through the stack:
goodput = bytes / host-CPU-seconds.  What must reproduce is the ordering
and rough factors of Table 3:

    no plugin > monitoring > multipath(1 path) > monitoring+multipath
              > FEC XOR EOS ~ FEC RLC EOS > FEC XOR full > FEC RLC full

and cached plugin loading orders of magnitude below cold loading.
"""

import statistics
import time

import pytest

from repro.core import PluginCache, PluginInstance
from repro.experiments import run_quic_transfer
from repro.plugins.datagram import build_datagram_plugin
from repro.plugins.fec import build_fec_plugin
from repro.plugins.monitoring import build_monitoring_plugin
from repro.plugins.multipath import build_multipath_plugin
from repro.quic import QuicConfiguration
from repro.quic.connection import QuicConnection

from _util import FULL, print_table, write_rows

SIZE = 3_000_000 if FULL else 1_000_000
RUNS = 5 if FULL else 3

CONFIGS = [
    ("PQUIC, no plugin", []),
    ("Monitoring (a)", [build_monitoring_plugin]),
    ("Multipath 1-path (b)", [build_multipath_plugin]),
    ("a and b", [build_monitoring_plugin, build_multipath_plugin]),
    ("FEC XOR EOS", [lambda: build_fec_plugin("xor", "eos")]),
    ("FEC RLC EOS", [lambda: build_fec_plugin("rlc", "eos")]),
    ("FEC XOR", [lambda: build_fec_plugin("xor", "full")]),
    ("FEC RLC", [lambda: build_fec_plugin("rlc", "full")]),
]


def goodput_for(builders):
    samples = []
    for run in range(RUNS):
        t0 = time.perf_counter()
        result = run_quic_transfer(
            SIZE, d_ms=1, bw_mbps=10_000, seed=run + 1,
            client_plugins=builders, server_plugins=builders,
        )
        wall = time.perf_counter() - t0
        assert result.completed
        samples.append(SIZE * 8 / wall / 1e6)  # Mbps of host CPU
    med = statistics.median(samples)
    spread = (statistics.pstdev(samples) / med) if med else 0.0
    return med, spread


def load_times():
    """Cold load (build+verify+instantiate PREs) vs cached reuse (§2.5)."""
    builders = {
        "Monitoring": build_monitoring_plugin,
        "Multipath": build_multipath_plugin,
        "FEC RLC": lambda: build_fec_plugin("rlc", "full"),
    }
    rows = {}
    for label, build in builders.items():
        plugin = build()
        wire = plugin.serialize()
        conn = QuicConnection(QuicConfiguration(is_client=True))
        # Cold load = what a host does with a plugin it has never seen:
        # decode the bytecode, statically verify it, build the PREs.
        from repro.core.plugin import Plugin

        t0 = time.perf_counter()
        fresh = Plugin.deserialize(wire)
        instance = PluginInstance(fresh, conn)
        instance.attach()
        cold = time.perf_counter() - t0

        cache = PluginCache()
        cache.store(plugin)
        inst = cache.instantiate(plugin.name, conn)
        cache.release(inst)
        conn2 = QuicConnection(QuicConfiguration(is_client=True))
        t0 = time.perf_counter()
        reused = cache.instantiate(plugin.name, conn2)
        reused.attach()
        cached = time.perf_counter() - t0
        rows[label] = (cold, cached)
    return rows


def test_table3_plugin_overhead(benchmark):
    results = benchmark.pedantic(
        lambda: [(label, *goodput_for(builders)) for label, builders in CONFIGS],
        rounds=1, iterations=1,
    )
    loads = load_times()
    header = (f"{'Plugin':<22} {'x~ Goodput':>12} {'sigma/x~':>9}"
              "   (relative to no-plugin)")
    base = results[0][1]
    rows = []
    for label, med, spread in results:
        rows.append(f"{label:<22} {med:>9.1f} Mbps {spread:>8.1%}"
                    f"   {med / base:>6.2f}x")
    rows.append("")
    rows.append(f"{'Plugin load time':<22} {'cold':>12} {'cached':>12}")
    for label, (cold, cached) in loads.items():
        rows.append(f"{label:<22} {cold * 1000:>9.2f} ms {cached * 1e6:>9.1f} us")
    print_table("Table 3 — plugin overhead & load time", header, rows)
    write_rows("table3_overhead", header, rows)

    by_label = {label: med for label, med, _ in results}
    base = by_label["PQUIC, no plugin"]
    # Ordering (paper's story): every plugin costs something...
    assert by_label["Monitoring (a)"] < base
    # ...multipath costs more than monitoring alone...
    assert by_label["Multipath 1-path (b)"] < by_label["Monitoring (a)"] * 1.1
    # ...combining is still efficient (less than additive)...
    assert by_label["a and b"] > 0.5 * by_label["Multipath 1-path (b)"]
    # ...full FEC costs more than EOS FEC, and RLC more than XOR.
    assert by_label["FEC RLC"] < by_label["FEC RLC EOS"]
    assert by_label["FEC RLC"] < by_label["FEC XOR"] * 1.2
    assert by_label["FEC RLC"] < base
    # Cached reuse is orders of magnitude cheaper than cold loading.
    for label, (cold, cached) in loads.items():
        assert cached < cold / 10, label
