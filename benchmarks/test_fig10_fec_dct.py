"""Figure 10: DCT ratio between PQUIC with and without the FEC plugin.

Paper setup: the In-Flight Communications scenario — {d in [100, 400] ms,
bw in [0.3, 10] Mbps, l in [1, 8]%} — downloading an HTTP object with and
without FEC (sliding-window RLC, 5 repair symbols per 25 source symbols).
Left graph: only the end of stream protected; right: whole stream.

Expected shape: EOS protection helps or is neutral for larger transfers
(median ratio <= ~1); full protection costs bandwidth and can hurt large
transfers while helping small ones on very lossy links.
"""

import statistics

import pytest

from repro.experiments import INFLIGHT_RANGES, run_quic_transfer, wsp_sample
from repro.plugins.fec import build_fec_plugin

from _util import FULL, cdf_summary, print_table, write_rows

SIZES = [1_500, 10_000, 50_000] + ([1_000_000] if FULL else [200_000])
N_POINTS = 10 if FULL else 4


def ratio_for(size, point, seed, mode):
    base = run_quic_transfer(size, d_ms=point["d"], bw_mbps=point["bw"],
                             loss_pct=point["l"], seed=seed)
    fec = run_quic_transfer(
        size, d_ms=point["d"], bw_mbps=point["bw"], loss_pct=point["l"],
        seed=seed,
        client_plugins=[lambda m=mode: build_fec_plugin("rlc", m)],
        server_plugins=[lambda m=mode: build_fec_plugin("rlc", m)],
    )
    if not (base.completed and fec.completed):
        return None
    return fec.dct / base.dct


def run_figure10():
    points = wsp_sample(INFLIGHT_RANGES, count=N_POINTS, seed=10)
    out = {"eos": {}, "full": {}}
    for mode in ("eos", "full"):
        for size in SIZES:
            ratios = []
            for i, point in enumerate(points):
                r = ratio_for(size, point, 300 + i, mode)
                if r is not None:
                    ratios.append(r)
            out[mode][size] = ratios
    return out


def test_fig10_fec_dct_ratio(benchmark):
    data = benchmark.pedantic(run_figure10, rounds=1, iterations=1)
    rows = []
    for mode in ("eos", "full"):
        rows.append(f"-- {mode.upper()} protection "
                    f"({'end of stream only' if mode == 'eos' else 'whole stream'})")
        for size in SIZES:
            rows.append(f"{size:>10}  {cdf_summary(data[mode][size])}")
    header = "DCT ratio PQUIC_FEC / PQUIC (paper: EOS helps large files; full protection costs bandwidth)"
    print_table("Figure 10 — FEC DCT ratio", header, rows)
    write_rows("fig10_fec_dct", header, rows)

    eos_all = [v for vs in data["eos"].values() for v in vs]
    full_all = [v for vs in data["full"].values() for v in vs]
    assert eos_all and full_all
    # Shape checks: on the largest size, EOS protection is no worse than
    # full protection in the median (the paper's headline finding).
    big = SIZES[-1]
    assert statistics.median(data["eos"][big]) <= (
        statistics.median(data["full"][big]) + 0.10
    )
    # FEC never catastrophically degrades the transfer.
    assert statistics.median(eos_all) < 1.5
