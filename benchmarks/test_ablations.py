"""Ablations on PQUIC's design choices, beyond the paper's figures.

1. FEC code rate: how the number of repair symbols per 25-source window
   trades bandwidth against recovery (the §4.4 "code rate 5/6" choice).
2. Packet schedulers on asymmetric paths: the paper implements a
   lowest-RTT scheduler "to mimic Multipath TCP" but does not evaluate it
   (§4.3) — we do.
3. Plugin cache: connection-setup cost with cold vs cached plugin
   injection (§2.5's motivation).
"""

import statistics
import time

import pytest

from repro.core import PluginCache, PluginInstance
from repro.experiments import median, run_quic_transfer
from repro.netsim import Simulator
from repro.netsim.topology import Figure7Topology, PathParams
from repro.plugins.fec import build_fec_plugin
from repro.plugins.monitoring import build_monitoring_plugin
from repro.plugins.multipath import build_multipath_plugin
from repro.quic import ClientEndpoint, QuicConfiguration, ServerEndpoint

from _util import FULL, print_table, write_rows


def test_ablation_fec_code_rate(benchmark):
    """More repair symbols recover more losses but consume bandwidth."""
    def sweep():
        rows = []
        for repair in (1, 3, 5, 8):
            dcts = []
            recovered = 0
            for seed in (21, 22, 23):
                result = run_quic_transfer(
                    150_000, d_ms=200, bw_mbps=2, loss_pct=5, seed=seed,
                    client_plugins=[lambda r=repair: build_fec_plugin(
                        "rlc", "full", window=25, repair=r)],
                    server_plugins=[lambda r=repair: build_fec_plugin(
                        "rlc", "full", window=25, repair=r)],
                )
                if result.completed:
                    dcts.append(result.dct)
                    recovered += sum(
                        i.runtime.fec_state.recovered_total
                        for i in result.plugin_instances
                        if hasattr(i.runtime, "fec_state"))
            rows.append((repair, median(dcts), recovered))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = f"{'repair/25':>10} {'median DCT':>11} {'recovered':>10}"
    printable = [f"{r:>10} {d:>10.2f}s {rec:>10}" for r, d, rec in rows]
    print_table("Ablation — FEC code rate", header, printable)
    write_rows("ablation_fec_code_rate", header, printable)
    # More redundancy recovers at least as many packets.
    assert rows[-1][2] >= rows[0][2]


def _multipath_transfer(scheduler, d2_ms, size=400_000, seed=31):
    sim = Simulator()
    topo = Figure7Topology(
        sim,
        PathParams.from_paper_units(5, 10),
        PathParams.from_paper_units(d2_ms, 10),
        seed=seed,
    )
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    client.conn.extra_local_addresses = ["client.1"]
    PluginInstance(build_multipath_plugin(scheduler), client.conn).attach()
    state = {}

    def on_conn(conn):
        PluginInstance(build_multipath_plugin(scheduler), conn).attach()
        state["sconn"] = conn

    server.on_connection = on_conn
    client.connect()
    assert sim.run_until(
        lambda: client.conn.is_established and "sconn" in state, timeout=5)
    done = [False]
    state["sconn"].on_stream_data = lambda sid, d, fin: done.__setitem__(0, fin)
    t0 = sim.now
    sid = client.conn.create_stream()
    client.conn.send_stream_data(sid, b"a" * size, fin=True)
    client.pump()
    assert sim.run_until(lambda: done[0], timeout=120)
    return sim.now - t0


def test_ablation_schedulers_on_asymmetric_paths(benchmark):
    """Round-robin suffers when one path is much slower; lowest-RTT (the
    Multipath-TCP-style scheduler) adapts."""
    def sweep():
        rows = []
        for d2 in (5, 25, 100):
            rr = _multipath_transfer("rr", d2)
            lowrtt = _multipath_transfer("lowrtt", d2)
            rows.append((d2, rr, lowrtt))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = (f"{'path2 delay':>12} {'round-robin':>12} {'lowest-RTT':>11}"
              "  (path1 fixed at 5 ms)")
    printable = [f"{d2:>10}ms {rr:>11.3f}s {lr:>10.3f}s"
                 for d2, rr, lr in rows]
    print_table("Ablation — multipath packet schedulers", header, printable)
    write_rows("ablation_schedulers", header, printable)
    # On very asymmetric paths lowest-RTT should not be slower than RR.
    d2, rr, lowrtt = rows[-1]
    assert lowrtt <= rr * 1.1


def test_ablation_plugin_cache_setup_cost(benchmark):
    """§2.5: reusing cached PREs cuts per-connection injection cost."""
    plugins = [build_monitoring_plugin(), build_multipath_plugin(),
               build_fec_plugin("rlc", "eos")]
    wires = [p.serialize() for p in plugins]
    cache = PluginCache()
    for p in plugins:
        cache.store(p)

    def cold_setup():
        """What a host without the cache does: decode, verify, build."""
        from repro.core.plugin import Plugin
        from repro.quic.connection import QuicConnection

        conn = QuicConnection(QuicConfiguration(is_client=True))
        for wire in wires:
            PluginInstance(Plugin.deserialize(wire), conn).attach()
        return conn

    def cached_setup(release=True):
        from repro.quic.connection import QuicConnection

        conn = QuicConnection(QuicConfiguration(is_client=True))
        instances = [cache.instantiate(p.name, conn) for p in plugins]
        for i in instances:
            i.attach()
        if release:
            for i in instances:
                cache.release(i)
        return conn

    cached_setup()  # warm the idle pool
    t0 = time.perf_counter()
    for _ in range(5):
        cold_setup()
    cold = (time.perf_counter() - t0) / 5
    t0 = time.perf_counter()
    for _ in range(5):
        cached_setup()
    cached = (time.perf_counter() - t0) / 5
    rows = [
        f"cold (verify + build PREs): {cold * 1000:8.2f} ms",
        f"cached (reuse PREs):        {cached * 1000:8.2f} ms",
        f"speedup:                    {cold / cached:8.1f}x",
    ]
    print_table("Ablation — plugin cache setup cost", "", rows)
    write_rows("ablation_plugin_cache", "setup cost", rows)
    benchmark.pedantic(cached_setup, rounds=3, iterations=1)
    assert cached < cold
