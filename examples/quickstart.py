"""Quickstart: a pluginized QUIC connection with live monitoring.

Builds the paper's Figure-7 network, connects a PQUIC client to a server,
attaches the monitoring plugin (fourteen bytecode pluglets running in the
PRE), transfers 200 kB and prints the performance indicators the plugin
exported.

Run:  python examples/quickstart.py
"""

from repro.core import PluginInstance
from repro.netsim import Simulator, symmetric_topology
from repro.plugins.monitoring import MonitoringCollector, build_monitoring_plugin
from repro.quic import ClientEndpoint, ServerEndpoint


def main() -> None:
    sim = Simulator()
    # One-way delay 10 ms, 20 Mbps, 1% random loss on each direction.
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=20, loss_pct=1, seed=7)

    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)

    # Attach the monitoring plugin: compiled to PRE bytecode, verified,
    # then hooked at pre/post anchors of the protocol operations.
    plugin = build_monitoring_plugin()
    print(f"plugin {plugin.name}: {len(plugin.pluglets)} pluglets, "
          f"{plugin.stats()['instructions']} instructions, "
          f"{plugin.stats()['compressed_bytes']} bytes compressed")
    instance = PluginInstance(plugin, client.conn)
    instance.attach()

    collector = MonitoringCollector()
    collector.attach(client.conn)

    # Server side: echo nothing, just consume the stream.
    received = {"bytes": 0, "fin": False}

    def on_connection(conn):
        def on_data(stream_id, data, fin):
            received["bytes"] += len(data)
            received["fin"] |= fin
        conn.on_stream_data = on_data

    server.on_connection = on_connection

    client.connect()
    assert sim.run_until(lambda: client.conn.is_established, timeout=5.0)
    print(f"handshake complete at t={sim.now * 1000:.1f} ms")

    stream_id = client.conn.create_stream()
    client.conn.send_stream_data(stream_id, b"x" * 200_000, fin=True)
    client.pump()
    assert sim.run_until(lambda: received["fin"], timeout=60.0)
    print(f"transferred {received['bytes']} bytes by t={sim.now:.3f} s")

    client.close()
    report = collector.reports[-1]
    print("\nperformance indicators exported by the monitoring plugin:")
    for key in ("packets_sent", "packets_received", "packets_lost",
                "packets_acked", "rtt_min_us", "rtt_max_us", "max_cwnd",
                "spin_flips", "final_srtt_us"):
        print(f"  {key:>20}: {report[key]}")
    executed = sum(vm.instructions_executed for vm in instance.vms.values())
    print(f"\nPRE executed {executed} bytecode instructions across "
          f"{len(instance.vms)} pluglets")


if __name__ == "__main__":
    main()
