"""The §4.2 use case: a QUIC VPN carrying TCP Cubic traffic.

Runs the same TCP Cubic file download twice — once directly over the
network, once through a PQUIC tunnel built on the Datagram plugin — and
reports the Download Completion Time ratio, the paper's Figure-8 metric.

Run:  python examples/vpn_tunnel.py
"""

from repro.experiments import run_tcp_direct, run_tcp_through_tunnel


def main() -> None:
    print(f"{'size':>10} {'direct DCT':>12} {'tunnel DCT':>12} {'ratio':>7}")
    for size in (1_500, 10_000, 50_000, 1_000_000, 10_000_000):
        direct = run_tcp_direct(size, d_ms=10, bw_mbps=20, seed=3)
        tunnel = run_tcp_through_tunnel(size, d_ms=10, bw_mbps=20, seed=3)
        ratio = tunnel.dct / direct.dct
        print(f"{size:>10} {direct.dct:>11.3f}s {tunnel.dct:>11.3f}s "
              f"{ratio:>7.3f}")
    print("\nThe VPN adds a fixed per-packet encapsulation cost, so short "
          "transfers sit near 1.0 and long transfers approach the "
          "overhead bound (paper: 1.031 for 44 B per 1400-B packet).")


if __name__ == "__main__":
    main()
