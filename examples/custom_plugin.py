"""Writing your own protocol plugin, end to end.

This example builds a small "tail-loss keepalive" plugin from scratch —
the kind of extension §4 says takes under 100 lines: while the connection
has data in flight and the peer has gone quiet, it books PING frames so
acknowledgements keep flowing.  You will see every stage of the paper's
pipeline:

1. author pluglets in restricted Python;
2. compile them to PRE bytecode and statically verify them (§2.1);
3. check termination (§5);
4. attach to a live connection and watch it act.

Run:  python examples/custom_plugin.py
"""

from repro.core import Plugin, PluginInstance, Pluglet
from repro.core.api import FLD_BYTES_IN_FLIGHT, H_PLUGIN_BASE
from repro.netsim import Simulator, symmetric_topology
from repro.quic import ClientEndpoint, ServerEndpoint
from repro.termination import check_termination
from repro.vm import verify

PLUGIN_NAME = "org.example.keepalive"
H_SEND_PING = H_PLUGIN_BASE + 0
HELPERS = {"send_ping": H_SEND_PING}

# State layout in plugin memory: the last time (us) we saw a packet.
ST, ST_SIZE = 1, 16
QUIET_US = 50_000  # book a PING after 50 ms of receive silence


def host_helpers(runtime):
    """One host function exposed to the bytecode: queue a PING frame."""
    from repro.quic import ReservedFrame
    from repro.quic.frames import PingFrame

    def h_send_ping(vm, *_):
        runtime.conn.reserve_frames([
            ReservedFrame(frame=PingFrame(), plugin=PLUGIN_NAME,
                          retransmittable=False)
        ])
        return 1

    return {H_SEND_PING: h_send_ping}


def build_keepalive_plugin() -> Plugin:
    on_receive = Pluglet.from_source(
        "note_activity", "packet_received_event", "post",
        f"""
def note_activity(epoch, path_id, pn):
    st = get_opaque_data({ST}, {ST_SIZE})
    mem64[st] = get_time_us()
""",
        helpers=HELPERS,
    )
    on_send = Pluglet.from_source(
        "maybe_ping", "before_sending_packet", "post",
        f"""
def maybe_ping():
    st = get_opaque_data({ST}, {ST_SIZE})
    last = mem64[st]
    if last == 0:
        return 0
    inflight = get({FLD_BYTES_IN_FLIGHT}, 0)
    now = get_time_us()
    if inflight > 0 and now - last > {QUIET_US}:
        send_ping()
        mem64[st] = now
        mem64[st + 8] = mem64[st + 8] + 1
    return 0
""",
        helpers=HELPERS,
    )
    return Plugin(PLUGIN_NAME, [on_receive, on_send],
                  host_helpers=host_helpers)


def main() -> None:
    plugin = build_keepalive_plugin()

    # Stage 2: static verification — every §2.1 check, per pluglet.
    for pluglet in plugin.pluglets:
        verify(pluglet.instructions)
        print(f"verified  {pluglet.name}: {len(pluglet.instructions)} instructions")

    # Stage 3: termination proofs (what a Plugin Validator would run).
    for pluglet in plugin.pluglets:
        report = check_termination(pluglet.instructions)
        print(f"terminates {pluglet.name}: {report.proven} ({report.reason})")

    # Stage 4: attach to a live connection on a blackout-prone link.
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=10, loss_pct=15, seed=5)
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    instance = PluginInstance(plugin, client.conn)
    instance.attach()
    done = [False]
    server.on_connection = lambda conn: setattr(
        conn, "on_stream_data", lambda sid, d, fin: done.__setitem__(0, fin))
    client.connect()
    assert sim.run_until(lambda: client.conn.is_established, timeout=5)
    sid = client.conn.create_stream()
    client.conn.send_stream_data(sid, b"k" * 300_000, fin=True)
    client.pump()
    assert sim.run_until(lambda: done[0], timeout=120)

    pings = int.from_bytes(
        instance.runtime.memory.data[8:16], "little")
    print(f"\ntransfer done at t={sim.now:.2f}s on a 15%-loss link; "
          f"the plugin booked {pings} keepalive PINGs")


if __name__ == "__main__":
    main()
