"""The §3 use case: secure plugin distribution over a QUIC connection.

A developer publishes the FEC plugin on the Plugin Repository; three
Plugin Validators validate it and sign their Merkle roots.  A client that
does not have the plugin requires the validation formula
``PV1 & (PV2 | PV3)``, receives the plugin in-band (PLUGIN_VALIDATE /
PLUGIN_PROOF / PLUGIN frames), checks the proofs of consistency against
its cached STRs, caches the plugin — and injects it instantly on the next
connection.

Run:  python examples/plugin_exchange.py
"""

from repro.core import PluginCache
from repro.core.exchange import PluginExchanger, TrustStore, make_proof_provider
from repro.netsim import Simulator, symmetric_topology
from repro.plugins.fec import build_fec_plugin
from repro.quic import ClientEndpoint, QuicConfiguration, ServerEndpoint
from repro.secure import PluginRepository, PluginValidator, developer_epoch_check


def main() -> None:
    plugin = build_fec_plugin("rlc", "eos")
    code = plugin.serialize()
    print(f"plugin {plugin.name}: {len(code)} bytes serialized, "
          f"{len(plugin.compressed())} compressed")

    # --- the distributed trust system --------------------------------
    repo = PluginRepository()
    validators = {f"PV{i}": PluginValidator(f"PV{i}", seed=i) for i in (1, 2, 3)}
    for pv in validators.values():
        repo.register_validator(pv)
    repo.publish("alice", plugin.name, code)
    repo.advance_epoch()
    print(f"epoch {repo.epoch}: all three PVs validated and signed")

    # The developer checks her bindings at each PV (§B.2.1).
    for pv in validators.values():
        ok = developer_epoch_check(repo, "alice", pv, plugin.name)
        assert ok, f"developer lookup failed at {pv.validator_id}"
    print("developer lookups: no spurious bindings anywhere")

    # The client trusts the three PVs and caches their current STRs.
    trust = TrustStore()
    for pv in validators.values():
        trust.trust_validator(pv.validator_id, pv.public_key)
        trust.cache_str(repo.get_str(pv.validator_id))

    # --- first connection: the plugin travels in-band ------------------
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=20)
    client_cache = PluginCache()
    server_cache = PluginCache()
    server_cache.store(plugin)
    provider = make_proof_provider(repo, validators)

    server = ServerEndpoint(
        sim, topo.server, "server.0", 443,
        configuration_factory=lambda: QuicConfiguration(
            is_client=False, plugins_to_inject=[plugin.name]),
    )
    server.on_connection = lambda conn: PluginExchanger(
        conn, server_cache, proof_provider=provider)

    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    exchanger = PluginExchanger(
        client.conn, client_cache, trust=trust,
        formula="PV1 & (PV2 | PV3)",
    )
    client.connect()
    assert sim.run_until(lambda: exchanger.received, timeout=10)
    print(f"connection 1 (t={sim.now * 1000:.0f} ms): plugin received, "
          f"proofs satisfied {exchanger.formula_text!r}, cached locally")

    # --- second connection: injected from the cache --------------------
    client2 = ClientEndpoint(sim, topo.client, "client.0", 5001, "server.0", 443)
    exchanger2 = PluginExchanger(
        client2.conn, client_cache, trust=trust,
        formula="PV1 & (PV2 | PV3)",
    )
    client2.connect()
    assert sim.run_until(lambda: exchanger2.injected, timeout=10)
    print(f"connection 2: plugin {exchanger2.injected[0]!r} injected "
          f"locally — no transfer, no re-verification")
    assert plugin.name in client2.conn.plugins


if __name__ == "__main__":
    main()
