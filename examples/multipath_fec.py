"""The §4.3 + §4.4 use cases: multipath and Forward Erasure Correction.

Part 1 — multipath speedup (Figure 9's metric): the same GET over one
path and over the two Figure-7 paths with the multipath plugin.

Part 2 — FEC in the In-Flight Communications scenario (Figure 10): a
satellite-like link (high delay, low bandwidth, 1-8% loss) with and
without the RLC FEC plugin, in both protection modes.

Run:  python examples/multipath_fec.py
"""

from repro.experiments import run_quic_transfer
from repro.plugins.fec import build_fec_plugin
from repro.plugins.multipath import build_multipath_plugin


def multipath_demo() -> None:
    print("== Multipath (two symmetric 10 Mbps / 10 ms paths) ==")
    print(f"{'size':>10} {'1 path':>9} {'2 paths':>9} {'speedup':>8}")
    for size in (10_000, 50_000, 1_000_000):
        single = run_quic_transfer(size, d_ms=10, bw_mbps=10, seed=4)
        multi = run_quic_transfer(
            size, d_ms=10, bw_mbps=10, seed=4, multipath=True,
            client_plugins=[build_multipath_plugin],
            server_plugins=[build_multipath_plugin],
        )
        speedup = single.dct / multi.dct
        print(f"{size:>10} {single.dct:>8.3f}s {multi.dct:>8.3f}s "
              f"{speedup:>8.2f}")
    print("Small files gain little (initial congestion window); large "
          "files approach 2x.\n")


def fec_demo() -> None:
    print("== FEC, In-Flight Communications (250 ms, 2 Mbps, 4% loss) ==")
    print(f"{'variant':>22} {'DCT':>9} {'recovered':>10}")
    base = run_quic_transfer(200_000, d_ms=250, bw_mbps=2, loss_pct=4, seed=9)
    print(f"{'no FEC':>22} {base.dct:>8.2f}s {'-':>10}")
    for ecc in ("xor", "rlc"):
        for mode in ("eos", "full"):
            fec = run_quic_transfer(
                200_000, d_ms=250, bw_mbps=2, loss_pct=4, seed=9,
                client_plugins=[lambda e=ecc, m=mode: build_fec_plugin(e, m)],
                server_plugins=[lambda e=ecc, m=mode: build_fec_plugin(e, m)],
            )
            recovered = sum(
                inst.runtime.fec_state.recovered_total
                for inst in fec.plugin_instances
                if hasattr(inst.runtime, "fec_state")
            )
            label = f"FEC {ecc.upper()} {mode}"
            print(f"{label:>22} {fec.dct:>8.2f}s {recovered:>10}")
    print("Repair symbols recover tail losses without waiting a "
          "retransmission RTT on this 500 ms-RTT link.")


if __name__ == "__main__":
    multipath_demo()
    fec_demo()
