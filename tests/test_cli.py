"""CLI smoke tests (``python -m repro``)."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_protoops_lists_registry(capsys):
    code, out = run_cli(capsys, "protoops")
    assert code == 0
    assert "72 protocol operations" in out
    assert "process_frame" in out


def test_inspect_plugin(capsys):
    code, out = run_cli(capsys, "inspect", "datagram")
    assert code == 0
    assert "org.pquic.datagram" in out
    assert "verification: all pluglets pass" in out
    assert "NOT PROVEN" not in out


def test_transfer_with_plugin(capsys):
    code, out = run_cli(capsys, "transfer", "--size", "50000",
                        "--plugins", "monitoring")
    assert code == 0
    assert "downloaded 50000 bytes" in out
    assert "packets_sent" in out


def test_vpn_comparison(capsys):
    code, out = run_cli(capsys, "vpn", "--size", "20000")
    assert code == 0
    assert "ratio:" in out


def test_trace_outputs_qlog_json(capsys):
    code, out = run_cli(capsys, "trace", "--size", "5000")
    assert code == 0
    doc = json.loads(out)
    assert doc["traces"][0]["events"]


def test_unknown_plugin_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["transfer", "--plugins", "bogus"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])
