"""CLI smoke tests (``python -m repro``)."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_protoops_lists_registry(capsys):
    code, out = run_cli(capsys, "protoops")
    assert code == 0
    assert "72 protocol operations" in out
    assert "process_frame" in out


def test_inspect_plugin(capsys):
    code, out = run_cli(capsys, "inspect", "datagram")
    assert code == 0
    assert "org.pquic.datagram" in out
    assert "verification: all pluglets pass" in out
    assert "NOT PROVEN" not in out


def test_transfer_with_plugin(capsys):
    code, out = run_cli(capsys, "transfer", "--size", "50000",
                        "--plugins", "monitoring")
    assert code == 0
    assert "downloaded 50000 bytes" in out
    assert "packets_sent" in out


def test_vpn_comparison(capsys):
    code, out = run_cli(capsys, "vpn", "--size", "20000")
    assert code == 0
    assert "ratio:" in out


def test_trace_outputs_qlog_json(capsys):
    code, out = run_cli(capsys, "trace", "--size", "5000")
    assert code == 0
    doc = json.loads(out)
    assert doc["traces"][0]["events"]


def test_trace_streams_validated_jsonl(capsys, tmp_path):
    from repro.trace import read_jsonl, validate_stream

    path = tmp_path / "trace.jsonl"
    code, out = run_cli(capsys, "trace", "--size", "20000",
                        "--plugins", "monitoring",
                        "--jsonl", str(path), "--validate")
    assert code == 0
    assert "wrote" in out and "events" in out
    doc = read_jsonl(path)
    counts = validate_stream(doc["records"])
    assert counts["events"] > 0
    assert counts["by_name"]["plugin_injected"] == 1
    # Profiling rides along when plugins are traced.
    assert counts["by_name"]["pluglet_profile"] > 0
    assert doc["footer"]["dropped"] == 0


def test_trace_max_events_reports_truncation(capsys, tmp_path):
    from repro.trace import read_jsonl

    path = tmp_path / "trace.jsonl"
    code, out = run_cli(capsys, "trace", "--size", "20000",
                        "--jsonl", str(path), "--max-events", "5")
    assert code == 0
    assert "dropped" in out
    doc = read_jsonl(path)
    assert doc["events"][-1]["name"] == "truncated"
    assert doc["footer"]["dropped"] > 0


def test_profile_attributes_pluglet_costs(capsys):
    code, out = run_cli(capsys, "profile", "--size", "30000",
                        "--plugins", "monitoring", "fec-xor")
    assert code == 0
    # The attribution table names both plugins and carries the columns
    # the acceptance demo asks for.
    assert "monitoring" in out
    assert "fec" in out
    assert "fuel" in out and "wall-ms" in out and "helpers" in out
    assert "total:" in out
    assert "host protoop dispatches:" in out


def test_unknown_plugin_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["transfer", "--plugins", "bogus"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_lint_builtin_plugins_pass(capsys):
    code, out = run_cli(capsys, "lint")
    assert code == 0
    assert "0 error(s)" in out


def test_lint_single_plugin_quiet(capsys):
    code, out = run_cli(capsys, "lint", "--quiet", "monitoring")
    assert code == 0
    assert "1 target(s)" in out


def test_lint_bad_corpus_fails(capsys):
    from pathlib import Path

    bad = Path(__file__).parent / "corpus" / "bad"
    code, out = run_cli(capsys, "lint", str(bad))
    assert code == 1
    assert "error[PRE" in out


def test_lint_good_corpus_passes(capsys):
    from pathlib import Path

    good = Path(__file__).parent / "corpus" / "good"
    code, out = run_cli(capsys, "lint", str(good))
    assert code == 0


def test_lint_unknown_target_is_usage_error(capsys):
    code, _out = run_cli(capsys, "lint", "no-such-plugin")
    assert code == 2


def test_lint_conflicting_pair_file_fails(capsys):
    from pathlib import Path

    pair = Path(__file__).parent / "corpus" / "pairs" / "replace_collision.json"
    code, out = run_cli(capsys, "lint", str(pair))
    assert code == 1
    assert "PRE200" in out


def test_lint_trigger_cycle_pair_file_fails(capsys):
    from pathlib import Path

    pair = Path(__file__).parent / "corpus" / "pairs" / "trigger_cycle.json"
    code, out = run_cli(capsys, "lint", str(pair))
    assert code == 1
    assert "PRE203" in out


def test_lint_compatible_pair_file_passes(capsys):
    from pathlib import Path

    pair = Path(__file__).parent / "corpus" / "pairs" / "compatible.json"
    code, out = run_cli(capsys, "lint", str(pair))
    assert code == 0
    assert "0 error(s)" in out


def test_lint_fuel_exceeds_pair_warns_pre110(capsys):
    from pathlib import Path

    pair = Path(__file__).parent / "corpus" / "pairs" / "fuel_exceeds.json"
    code, out = run_cli(capsys, "lint", str(pair))
    assert code == 0  # warning by default...
    assert "PRE110" in out
    strict_code, _ = run_cli(capsys, "lint", "--strict", str(pair))
    assert strict_code == 1  # ...blocking under --strict


def test_lint_multiple_named_plugins_cross_checked(capsys):
    # Two FEC variants replace the same protoops by design: naming them
    # together must surface the hard conflict the no-argument form
    # (which lints builtins individually) deliberately tolerates.
    code, out = run_cli(capsys, "lint", "fec-xor", "fec-rlc")
    assert code == 1
    assert "PRE200" in out


def test_lint_deployable_set_has_no_hard_conflicts(capsys):
    code, out = run_cli(capsys, "lint", "monitoring", "ccontrol", "ecn",
                        "datagram", "multipath", "fec-xor")
    assert code == 0
    # The known deliberate composition (ecn + ccontrol both write the
    # congestion window) stays visible as a warning.
    assert "PRE201" in out
