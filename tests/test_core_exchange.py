"""Plugin exchange over QUIC connections (§3.4, Figure 6)."""

import pytest

from repro.core import Plugin, PluginCache, Pluglet, QuarantineRegistry
from repro.core.exchange import (
    PLUGIN_CHUNK,
    PluginExchanger,
    PluginFrame,
    PluginProofFrame,
    PluginValidateFrame,
    ProofEntry,
    TrustStore,
    _IncomingPlugin,
    make_proof_provider,
)
from repro.netsim import Simulator, symmetric_topology
from repro.quic import ClientEndpoint, QuicConfiguration, ServerEndpoint
from repro.quic.wire import Buffer
from repro.secure import EquivocatingValidator, PluginRepository, PluginValidator
from repro.vm import assemble


def make_plugin(name="org.x.exch"):
    return Plugin(name, [
        Pluglet("nop", "packet_sent_event", "post", assemble("exit")),
    ])


def build_world(n_validators=3, plugin=None):
    plugin = plugin or make_plugin()
    repo = PluginRepository()
    validators = {}
    for i in range(1, n_validators + 1):
        pv = PluginValidator(f"PV{i}", seed=i)
        repo.register_validator(pv)
        validators[pv.validator_id] = pv
    repo.publish("dev", plugin.name, plugin.serialize())
    repo.advance_epoch()
    trust = TrustStore()
    for pv in validators.values():
        trust.trust_validator(pv.validator_id, pv.public_key)
        trust.cache_str(repo.get_str(pv.validator_id))
    return plugin, repo, validators, trust


def connect_with_exchange(plugin, repo, validators, trust, formula,
                          client_has_plugin=False):
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=20)
    client_cache = PluginCache()
    if client_has_plugin:
        client_cache.store(plugin)
    server_cache = PluginCache()
    server_cache.store(plugin)
    provider = make_proof_provider(repo, validators)
    server = ServerEndpoint(
        sim, topo.server, "server.0", 443,
        configuration_factory=lambda: QuicConfiguration(
            is_client=False, plugins_to_inject=[plugin.name]),
    )
    server.on_connection = lambda conn: PluginExchanger(
        conn, server_cache, proof_provider=provider)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    exchanger = PluginExchanger(client.conn, client_cache, trust=trust,
                                formula=formula)
    client.connect()
    sim.run_until(lambda: client.conn.is_established, timeout=5)
    sim.run(until=sim.now + 2.0)
    return sim, client, exchanger, client_cache


class TestFrameCodecs:
    def test_validate_frame_roundtrip(self):
        frame = PluginValidateFrame(plugin_name="org.x", formula="PV1 & PV2")
        buf = Buffer(frame.to_bytes())
        parsed = PluginValidateFrame.parse(buf, buf.pull_varint())
        assert parsed.plugin_name == "org.x"
        assert parsed.formula == "PV1 & PV2"

    def test_plugin_frame_roundtrip(self):
        frame = PluginFrame(plugin_name="org.x", offset=1000, data=b"chunk")
        buf = Buffer(frame.to_bytes())
        parsed = PluginFrame.parse(buf, buf.pull_varint())
        assert (parsed.plugin_name, parsed.offset, parsed.data) == (
            "org.x", 1000, b"chunk")

    def test_proof_frame_roundtrip(self):
        plugin, repo, validators, trust = build_world(1)
        pv = validators["PV1"]
        signed = pv.current_str
        entry = ProofEntry(pv.validator_id, signed.epoch, signed.root,
                           signed.signature, pv.lookup(plugin.name))
        frame = PluginProofFrame(plugin_name=plugin.name, total_length=123,
                                 proof=entry)
        buf = Buffer(frame.to_bytes())
        parsed = PluginProofFrame.parse(buf, buf.pull_varint())
        assert parsed.total_length == 123
        assert parsed.proof.validator_id == "PV1"
        assert parsed.proof.str_root == signed.root
        assert parsed.proof.path.siblings == entry.path.siblings


class TestChunkReassembly:
    """The PLUGIN-chunk reassembly buffer must survive out-of-order,
    duplicated and hostile chunk streams."""

    def test_out_of_order_chunks_complete(self):
        state = _IncomingPlugin(total_length=2500)
        assert state.add_chunk(2000, b"c" * 500) == "ok"
        assert not state.complete()
        assert state.add_chunk(0, b"a" * 1000) == "ok"
        assert state.add_chunk(1000, b"b" * 1000) == "ok"
        assert state.complete()
        assert state.assemble() == b"a" * 1000 + b"b" * 1000 + b"c" * 500

    def test_exact_multiple_of_chunk_size(self):
        """Boundary bug: a body of exactly k * PLUGIN_CHUNK bytes must
        complete with k chunks, not wait for a phantom k+1-th."""
        total = 2 * PLUGIN_CHUNK
        state = _IncomingPlugin(total_length=total)
        state.add_chunk(0, b"x" * PLUGIN_CHUNK)
        state.add_chunk(PLUGIN_CHUNK, b"y" * PLUGIN_CHUNK)
        assert state.complete()
        assert len(state.assemble()) == total

    def test_hole_not_masked_by_byte_count(self):
        """Two 1000-byte chunks covering [0,1000) and [500,1500) total
        2000 bytes but leave [1500,2000) unreceived: must NOT complete."""
        state = _IncomingPlugin(total_length=2000)
        state.chunks = {0: b"a" * 1000, 500: b"b" * 1000}
        assert not state.complete()

    def test_zero_length_chunk_rejected(self):
        state = _IncomingPlugin(total_length=100)
        assert state.add_chunk(0, b"") == "rejected"
        assert state.chunks == {}

    def test_out_of_range_chunk_rejected(self):
        state = _IncomingPlugin(total_length=100)
        assert state.add_chunk(50, b"z" * 100) == "rejected"

    def test_identical_duplicate_tolerated(self):
        state = _IncomingPlugin(total_length=100)
        assert state.add_chunk(0, b"z" * 100) == "ok"
        assert state.add_chunk(0, b"z" * 100) == "duplicate"
        assert state.complete()

    def test_conflicting_duplicate_rejected(self):
        state = _IncomingPlugin(total_length=100)
        assert state.add_chunk(0, b"z" * 100) == "ok"
        assert state.add_chunk(0, b"w" * 100) == "rejected"
        assert state.assemble() == b"z" * 100

    def test_partial_overlap_rejected(self):
        state = _IncomingPlugin(total_length=200)
        assert state.add_chunk(0, b"a" * 100) == "ok"
        assert state.add_chunk(50, b"b" * 100) == "rejected"

    def test_unknown_total_never_complete(self):
        state = _IncomingPlugin()
        state.add_chunk(0, b"a" * 10)
        assert not state.complete()

    def test_integrity_check(self):
        import hashlib

        state = _IncomingPlugin(total_length=5,
                                digest=hashlib.sha256(b"hello").digest())
        assert state.integrity_ok(b"hello")
        assert not state.integrity_ok(b"hellp")
        # No digest announced -> nothing to check against.
        assert _IncomingPlugin(total_length=5).integrity_ok(b"anything")


class TestExchangeResilience:
    def test_request_retries_then_degrades_when_provider_silent(self):
        """A server with no proof provider never answers: the client
        retries with backoff and then gives up gracefully — connection
        alive, no plugin."""
        plugin, repo, validators, trust = build_world(1)
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=20)
        server = ServerEndpoint(
            sim, topo.server, "server.0", 443,
            configuration_factory=lambda: QuicConfiguration(
                is_client=False, plugins_to_inject=[plugin.name]),
        )
        # The server speaks the exchange frames but has no proof provider:
        # every PLUGIN_VALIDATE is swallowed without an answer.
        server.on_connection = lambda conn: PluginExchanger(
            conn, PluginCache(), proof_provider=None)
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        exchanger = PluginExchanger(client.conn, PluginCache(), trust=trust,
                                    formula="PV1", request_timeout=0.2,
                                    max_retries=2)
        client.connect()
        assert sim.run_until(lambda: plugin.name in exchanger.degraded,
                             timeout=30)
        assert not client.conn.closed
        assert exchanger.received == []
        assert exchanger.stats["retries"] == 2
        assert "no response" in exchanger.degraded[plugin.name]

    def test_proof_digest_announced_and_verified(self):
        plugin, repo, validators, trust = build_world(1)
        sim, client, exchanger, cache = connect_with_exchange(
            plugin, repo, validators, trust, "PV1")
        assert exchanger.received == [plugin.name]
        assert exchanger.stats["integrity_failures"] == 0

    def test_digest_mismatch_discards_chunks(self):
        """A reassembled body that does not hash to the announced digest
        is thrown away (and the transfer stays pending for retry)."""
        conn_stub = None
        exchanger = object.__new__(PluginExchanger)  # skip connection wiring
        exchanger.stats = {"integrity_failures": 0, "chunks_rejected": 0,
                           "chunks_duplicated": 0}
        exchanger.pending = {}
        exchanger.rejected = {}
        exchanger.degraded = {}
        exchanger._incoming = {}
        state = _IncomingPlugin(total_length=4, digest=b"\x00" * 32)
        state.add_chunk(0, b"zzzz")
        exchanger._incoming["org.x.p"] = state
        exchanger._maybe_finish("org.x.p")
        assert exchanger.stats["integrity_failures"] == 1
        assert state.chunks == {}  # cleared for re-request
        assert "org.x.p" in exchanger._incoming

    def test_quarantined_plugin_not_injected_degrades_instead(self):
        """negotiate() skips a quarantined cached plugin instead of
        blowing up the connection."""
        plugin, repo, validators, trust = build_world(1)
        registry = QuarantineRegistry(blocklist_threshold=1)
        registry.record_crash(plugin.name, now=0.0)
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=20)
        client_cache = PluginCache(quarantine=registry)
        client_cache.store(plugin)
        server = ServerEndpoint(
            sim, topo.server, "server.0", 443,
            configuration_factory=lambda: QuicConfiguration(
                is_client=False, plugins_to_inject=[plugin.name]),
        )
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        exchanger = PluginExchanger(client.conn, client_cache, trust=trust)
        client.connect()
        assert sim.run_until(lambda: plugin.name in exchanger.degraded,
                             timeout=10)
        assert exchanger.injected == []
        assert not client.conn.closed
        assert "blocklisted" in exchanger.degraded[plugin.name]


class TestExchange:
    def test_full_exchange_and_cache(self):
        plugin, repo, validators, trust = build_world()
        sim, client, exchanger, cache = connect_with_exchange(
            plugin, repo, validators, trust, "PV1 & (PV2 | PV3)")
        assert exchanger.received == [plugin.name]
        assert cache.has(plugin.name)
        # Received plugins are NOT activated on this connection (§3.4).
        assert plugin.name not in client.conn.plugins

    def test_cached_plugin_injected_immediately(self):
        plugin, repo, validators, trust = build_world()
        sim, client, exchanger, cache = connect_with_exchange(
            plugin, repo, validators, trust, "PV1", client_has_plugin=True)
        assert exchanger.injected == [plugin.name]
        assert exchanger.received == []
        assert plugin.name in client.conn.plugins

    def test_unsatisfiable_formula_rejects(self):
        plugin, repo, validators, trust = build_world(1)
        sim, client, exchanger, cache = connect_with_exchange(
            plugin, repo, validators, trust, "PV1 & PV9")
        assert exchanger.received == []
        assert not cache.has(plugin.name)
        assert "unsatisfied" in exchanger.rejected.get(plugin.name, "")

    def test_untrusted_validator_proofs_ignored(self):
        plugin, repo, validators, trust = build_world(2)
        empty_trust = TrustStore()  # trusts no one
        sim, client, exchanger, cache = connect_with_exchange(
            plugin, repo, validators, empty_trust, "PV1")
        assert exchanger.received == []

    def test_tampered_plugin_rejected(self):
        """The binding check: the received code must hash into the PV's
        tree at the plugin-name leaf."""
        plugin, repo, validators, trust = build_world(1)
        # The server serves a DIFFERENT plugin body under the same name.
        evil = Plugin(plugin.name, [
            Pluglet("evil", "connection_closing", "post", assemble("exit")),
        ])
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=20)
        provider_honest = make_proof_provider(repo, validators)

        def evil_provider(name, formula):
            result = provider_honest(name, formula)
            if result is None:
                return None
            _compressed, proofs = result
            return evil.compressed(), proofs

        server_cache = PluginCache()
        server_cache.store(evil)
        server = ServerEndpoint(
            sim, topo.server, "server.0", 443,
            configuration_factory=lambda: QuicConfiguration(
                is_client=False, plugins_to_inject=[plugin.name]),
        )
        server.on_connection = lambda conn: PluginExchanger(
            conn, server_cache, proof_provider=evil_provider)
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        cache = PluginCache()
        exchanger = PluginExchanger(client.conn, cache, trust=trust,
                                    formula="PV1")
        client.connect()
        sim.run_until(lambda: client.conn.is_established, timeout=5)
        sim.run(until=sim.now + 2.0)
        assert exchanger.received == []
        assert not cache.has(plugin.name)

    def test_equivocating_str_not_accepted(self):
        """A proof against a shadow STR differs from the cached one."""
        plugin = make_plugin()
        repo = PluginRepository()
        pv = EquivocatingValidator("PV1", seed=1)
        repo.register_validator(pv)
        repo.publish("dev", plugin.name, plugin.serialize())
        repo.advance_epoch()
        trust = TrustStore()
        trust.trust_validator("PV1", pv.public_key)
        trust.cache_str(repo.get_str("PV1"))
        evil = Plugin(plugin.name, [
            Pluglet("evil", "connection_closing", "post", assemble("exit"))])
        pv.inject_spurious(plugin.name, evil.serialize())
        shadow_path, shadow_str = pv.lookup_for_victim(plugin.name)

        def shadow_provider(name, formula):
            return evil.compressed(), [ProofEntry(
                "PV1", shadow_str.epoch, shadow_str.root,
                shadow_str.signature, shadow_path)]

        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=20)
        server_cache = PluginCache()
        server_cache.store(evil)
        server = ServerEndpoint(
            sim, topo.server, "server.0", 443,
            configuration_factory=lambda: QuicConfiguration(
                is_client=False, plugins_to_inject=[plugin.name]),
        )
        server.on_connection = lambda conn: PluginExchanger(
            conn, server_cache, proof_provider=shadow_provider)
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        cache = PluginCache()
        exchanger = PluginExchanger(client.conn, cache, trust=trust,
                                    formula="PV1")
        client.connect()
        sim.run_until(lambda: client.conn.is_established, timeout=5)
        sim.run(until=sim.now + 2.0)
        assert exchanger.received == []
        assert "equivocation" in exchanger.rejected.get(plugin.name, "")

    def test_exchange_multiplexes_with_data(self):
        """§3.4: 'data and plugin streams can be concurrently used'."""
        plugin, repo, validators, trust = build_world()
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=20)
        server_cache = PluginCache()
        server_cache.store(plugin)
        provider = make_proof_provider(repo, validators)
        received = bytearray()
        done = [False]

        def on_conn(conn):
            PluginExchanger(conn, server_cache, proof_provider=provider)
            conn.on_stream_data = lambda sid, d, fin: (
                received.extend(d), done.__setitem__(0, fin))

        server = ServerEndpoint(
            sim, topo.server, "server.0", 443,
            configuration_factory=lambda: QuicConfiguration(
                is_client=False, plugins_to_inject=[plugin.name]),
        )
        server.on_connection = on_conn
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        cache = PluginCache()
        exchanger = PluginExchanger(client.conn, cache, trust=trust,
                                    formula="PV1")
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5)
        sid = client.conn.create_stream()
        client.conn.send_stream_data(sid, b"d" * 100_000, fin=True)
        client.pump()
        assert sim.run_until(
            lambda: done[0] and exchanger.received, timeout=60)
        assert len(received) == 100_000

    def test_reverse_direction_client_provides_plugin(self):
        """The exchange is symmetric: a client can push a plugin the
        server is missing (plugins_to_inject in the ClientHello)."""
        plugin, repo, validators, trust = build_world(1)
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=20)
        provider = make_proof_provider(repo, validators)
        server_exchangers = []

        def on_conn(conn):
            server_exchangers.append(PluginExchanger(
                conn, PluginCache(), trust=trust, formula="PV1"))

        server = ServerEndpoint(sim, topo.server, "server.0", 443)
        server.on_connection = on_conn
        client = ClientEndpoint(
            sim, topo.client, "client.0", 5000, "server.0", 443,
            configuration=QuicConfiguration(
                is_client=True, plugins_to_inject=[plugin.name]),
        )
        client_cache = PluginCache()
        client_cache.store(plugin)
        PluginExchanger(client.conn, client_cache, proof_provider=provider)
        client.connect()
        assert sim.run_until(
            lambda: server_exchangers and server_exchangers[0].received,
            timeout=10,
        )
        assert server_exchangers[0].cache.has(plugin.name)

    def test_exchange_survives_packet_loss(self):
        """PLUGIN_VALIDATE/PROOF/PLUGIN frames are retransmittable: the
        transfer completes across a lossy path."""
        plugin, repo, validators, trust = build_world(1)
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=20, loss_pct=10,
                                  seed=13)
        server_cache = PluginCache()
        server_cache.store(plugin)
        provider = make_proof_provider(repo, validators)
        server = ServerEndpoint(
            sim, topo.server, "server.0", 443,
            configuration_factory=lambda: QuicConfiguration(
                is_client=False, plugins_to_inject=[plugin.name]),
        )
        server.on_connection = lambda conn: PluginExchanger(
            conn, server_cache, proof_provider=provider)
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        cache = PluginCache()
        exchanger = PluginExchanger(client.conn, cache, trust=trust,
                                    formula="PV1")
        client.connect()
        assert sim.run_until(lambda: bool(exchanger.received), timeout=60)
        assert cache.has(plugin.name)

    def test_supported_plugins_advertised(self):
        plugin, repo, validators, trust = build_world(1)
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=20)
        cache = PluginCache()
        cache.store(plugin)
        server = ServerEndpoint(sim, topo.server, "server.0", 443)
        sconns = []
        server.on_connection = sconns.append
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        PluginExchanger(client.conn, cache, trust=trust)
        client.connect()
        assert sim.run_until(lambda: bool(sconns), timeout=5)
        sim.run(until=sim.now + 0.2)
        assert sconns[0].peer_transport_parameters.supported_plugins == [
            plugin.name]
