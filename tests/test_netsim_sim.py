"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.netsim import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_simultaneous_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(1.0, fired.append, name)
    sim.run()
    assert fired == list("abcde")


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, fired.append, "x")
    sim.schedule(2.0, fired.append, "y")
    ev.cancel()
    sim.run()
    assert fired == ["y"]


def test_cancel_is_idempotent():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()
    assert sim.pending() == 0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_run_until_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0
    sim.run()
    assert fired == ["a", "b"]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_schedule_at_absolute():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    fired = []
    sim.schedule_at(0.5, fired.append, "late")  # in the past -> now
    sim.run()
    assert fired == ["late"]
    assert sim.now == 1.0


def test_run_until_predicate():
    sim = Simulator()
    state = {"done": False}
    sim.schedule(1.0, lambda: state.update(done=True))
    sim.schedule(10.0, lambda: None)
    ok = sim.run_until(lambda: state["done"], timeout=100.0)
    assert ok
    assert sim.now == 1.0
    # The 10.0 event is still pending.
    assert sim.pending() == 1


def test_run_until_timeout():
    sim = Simulator()
    sim.schedule(50.0, lambda: None)
    ok = sim.run_until(lambda: False, timeout=10.0)
    assert not ok
    assert sim.now == 10.0


def test_runaway_guard():
    sim = Simulator()

    def loop():
        sim.schedule(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(RuntimeError):
        sim.run(max_events=1000)


def test_runaway_guard_message_is_diagnostic():
    """The error must say when the simulation was stuck and how much work
    was still queued, not just that it stopped."""
    sim = Simulator()

    def loop():
        sim.schedule(0.25, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(RuntimeError) as err:
        sim.run(max_events=100)
    msg = str(err.value)
    assert "100 events" in msg
    assert "t=" in msg
    assert "pending" in msg


def test_runaway_guard_warn_mode_keeps_state():
    sim = Simulator()

    def loop():
        sim.schedule(0.5, loop)

    sim.schedule(0.0, loop)
    with pytest.warns(RuntimeWarning, match="exceeded 10 events"):
        sim.run(max_events=10, on_max_events="warn")
    # The stuck state is inspectable instead of torn down.
    assert sim.pending() == 1
    assert sim.now == pytest.approx(4.5)


def test_runaway_guard_warn_mode_run_until():
    sim = Simulator()

    def loop():
        sim.schedule(0.5, loop)

    sim.schedule(0.0, loop)
    with pytest.warns(RuntimeWarning):
        ok = sim.run_until(lambda: False, max_events=10,
                           on_max_events="warn")
    assert not ok


def test_invalid_on_max_events_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.run(on_max_events="explode")


def test_step_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()


# --- hybrid near-heap / far-wheel queue --------------------------------------

def test_cross_horizon_ordering():
    """Near (heap) and far (wheel) events interleave in exact time order."""
    from repro.netsim.sim import NEAR_HORIZON

    sim = Simulator()
    fired = []
    delays = [0.001, NEAR_HORIZON - 1e-6, NEAR_HORIZON, NEAR_HORIZON + 1e-6,
              0.1, 0.9, 0.3, 5.0, 0.24, 0.26, 2.5, 0.0]
    for d in delays:
        sim.schedule(d, fired.append, d)
    sim.run()
    assert fired == sorted(delays)


def test_cross_horizon_scheduling_order_tiebreak():
    """Identical deadlines fire in scheduling order even when the events
    landed in different queues at schedule time."""
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "far-first")   # wheel
    sim.run(until=0.9)                             # 1.0 is now near
    sim.schedule(0.1, fired.append, "near-second")  # heap, same deadline
    sim.run()
    assert fired == ["far-first", "near-second"]


def test_far_event_cancellation_and_compaction():
    sim = Simulator()
    fired = []
    events = [sim.schedule(10.0 + i, fired.append, i) for i in range(100)]
    keep = events[::10]
    for ev in events:
        if ev not in keep:
            ev.cancel()
    assert sim.pending() == len(keep)
    sim.run()
    assert fired == [0, 10, 20, 30, 40, 50, 60, 70, 80, 90]


def test_hybrid_determinism_against_reference():
    """A mixed schedule/cancel workload fires exactly like a sorted list."""
    sim = Simulator()
    fired = []
    expected = []
    # A deterministic pseudo-random stream (no RNG: keep the test simple).
    seq = [(i * 2654435761 % 1000) / 250.0 for i in range(300)]
    handles = []
    for i, d in enumerate(seq):
        handles.append((d, i, sim.schedule(d, fired.append, (d, i))))
    for j, (d, i, ev) in enumerate(handles):
        if j % 3 == 0:
            ev.cancel()
        else:
            expected.append((d, i))
    expected.sort()
    sim.run()
    assert fired == expected


def test_wheel_overflow_beyond_horizon():
    """Events past the wheel's top-level horizon park in its overflow
    heap and still fire (the idle-timeout-of-the-far-future case)."""
    sim = Simulator()
    fired = []
    sim.schedule(2_000_000.0, fired.append, "overflow")
    sim.schedule(1.0, fired.append, "wheel")
    sim.schedule(0.01, fired.append, "heap")
    sim.run()
    assert fired == ["heap", "wheel", "overflow"]


def test_run_until_pushback_across_horizon():
    """run_until may pop a far event past its deadline; the push-back
    must preserve its place in the order."""
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "far")
    assert not sim.run_until(lambda: False, timeout=1.0)
    assert sim.pending() == 1
    sim.schedule(0.5, fired.append, "near")  # now at t=1.0 -> fires at 1.5
    sim.run()
    assert fired == ["near", "far"]


def test_rearm_churn_stays_bounded():
    """Cancel + reschedule of standing far timers (the per-packet idle
    alarm pattern) must not accumulate dead events."""
    sim = Simulator()
    alarm = sim.schedule(30.0, lambda: None)
    for _ in range(5000):
        alarm.cancel()
        alarm = sim.schedule(30.0, lambda: None)
    assert sim.pending() == 1
    # The internal queues hold at most O(live + recent garbage) entries.
    assert len(sim._heap) + len(sim._wheel) < 64

