"""Plugin composition (§4.5): orthogonal plugins on one connection.

"Given the isolation provided by PQUIC, it is possible to load different
plugins on a given PQUIC implementation provided that they do not replace
the same protocol operation.  All the plugins discussed in this section
have orthogonal features."
"""

import pytest

from repro.core import PluginInstance
from repro.core.protoop import ProtoopError
from repro.netsim import Simulator, symmetric_topology
from repro.plugins.ccontrol import build_ccontrol_plugin
from repro.plugins.datagram import DatagramSocket, build_datagram_plugin
from repro.plugins.monitoring import MonitoringCollector, build_monitoring_plugin
from repro.plugins.multipath import build_multipath_plugin
from repro.quic import ClientEndpoint, ServerEndpoint


def setup_composed(builders_client, builders_server, loss=0, seed=3):
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=10, loss_pct=loss,
                              seed=seed)
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    client.conn.extra_local_addresses = ["client.1"]
    instances = [PluginInstance(b(), client.conn) for b in builders_client]
    for inst in instances:
        inst.attach()
    state = {}

    def on_conn(conn):
        for b in builders_server:
            PluginInstance(b(), conn).attach()
        state["sconn"] = conn

    server.on_connection = on_conn
    client.connect()
    assert sim.run_until(
        lambda: client.conn.is_established and "sconn" in state, timeout=5)
    return sim, client, state, instances


def test_four_orthogonal_plugins_compose():
    """Monitoring + datagram + multipath + bytecode congestion control,
    all live on one connection, streams and messages flowing."""
    builders = [build_monitoring_plugin, build_datagram_plugin,
                build_multipath_plugin, build_ccontrol_plugin]
    sim, client, state, instances = setup_composed(builders, builders)
    collector = MonitoringCollector()
    collector.attach(client.conn)
    messages = []
    DatagramSocket(state["sconn"], on_message=messages.append)
    sock = DatagramSocket(client.conn)
    received = [0]
    done = [False]
    state["sconn"].on_stream_data = lambda sid, d, fin: (
        received.__setitem__(0, received[0] + len(d)),
        done.__setitem__(0, fin))

    sid = client.conn.create_stream()
    client.conn.send_stream_data(sid, b"c" * 400_000, fin=True)
    for i in range(20):
        sock.send(b"msg-%02d" % i)
    client.pump()
    assert sim.run_until(lambda: done[0] and len(messages) == 20, timeout=60)
    assert received[0] == 400_000

    # Every plugin demonstrably acted:
    assert len(client.conn.plugins) == 4
    # - multipath used both paths
    pns = [p.space.next_packet_number for p in client.conn.paths]
    assert len(pns) == 2 and min(pns) > 0
    # - datagram kept boundaries
    assert messages[0] == b"msg-00"
    client.close()
    # - monitoring exported its final report
    assert collector.reports
    assert collector.reports[-1]["packets_sent"] > 100


def test_combined_overhead_reasonable():
    """§4.5: 'plugins with orthogonal features are efficiently combined'
    — the composed connection still completes in comparable simulated
    time."""
    sim1, client1, state1, _ = setup_composed([], [])
    done = [False]
    state1["sconn"].on_stream_data = lambda sid, d, fin: done.__setitem__(0, fin)
    t0 = sim1.now
    sid = client1.conn.create_stream()
    client1.conn.send_stream_data(sid, b"x" * 200_000, fin=True)
    client1.pump()
    assert sim1.run_until(lambda: done[0], timeout=60)
    plain = sim1.now - t0

    builders = [build_monitoring_plugin, build_datagram_plugin]
    sim2, client2, state2, _ = setup_composed(builders, builders)
    done2 = [False]
    state2["sconn"].on_stream_data = lambda sid, d, fin: done2.__setitem__(0, fin)
    t0 = sim2.now
    sid = client2.conn.create_stream()
    client2.conn.send_stream_data(sid, b"x" * 200_000, fin=True)
    client2.pump()
    assert sim2.run_until(lambda: done2[0], timeout=60)
    composed = sim2.now - t0
    # Simulated completion time is protocol-determined: plugins add
    # (host) CPU, not simulated wire time.
    assert composed < plain * 1.5


def test_conflicting_replacements_roll_back():
    """Two plugins replacing select_sending_path cannot coexist (§4.5:
    'provided that they do not replace the same protocol operation')."""
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    PluginInstance(build_multipath_plugin("rr"), client.conn).attach()
    second = PluginInstance(build_multipath_plugin("lowrtt"), client.conn)
    with pytest.raises(ProtoopError):
        second.attach()
    assert "org.pquic.multipath" in client.conn.plugins  # first one intact


def test_composition_under_loss():
    builders = [build_monitoring_plugin, build_datagram_plugin,
                build_multipath_plugin]
    sim, client, state, _ = setup_composed(builders, builders, loss=3, seed=9)
    done = [False]
    state["sconn"].on_stream_data = lambda sid, d, fin: done.__setitem__(0, fin)
    sid = client.conn.create_stream()
    client.conn.send_stream_data(sid, b"L" * 300_000, fin=True)
    client.pump()
    assert sim.run_until(lambda: done[0], timeout=300)
