"""SendStream / ReceiveStream unit and property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quic.errors import (
    FinalSizeError,
    FlowControlError,
    StreamStateError,
)
from repro.quic.stream import ReceiveStream, SendStream


class TestSendStream:
    def make(self, limit=1 << 20):
        return SendStream(0, limit)

    def test_write_then_chunks(self):
        s = self.make()
        s.write(b"hello world")
        s.finish()
        offset, data, fin = s.next_chunk(5)
        assert (offset, data, fin) == (0, b"hello", False)
        offset, data, fin = s.next_chunk(100)
        assert (offset, data, fin) == (5, b" world", True)
        assert s.next_chunk(100) is None

    def test_fin_only_stream(self):
        s = self.make()
        s.finish()
        assert s.has_pending
        offset, data, fin = s.next_chunk(100)
        assert (offset, data, fin) == (0, b"", True)
        assert not s.has_pending

    def test_write_after_fin_rejected(self):
        s = self.make()
        s.finish()
        with pytest.raises(StreamStateError):
            s.write(b"late")

    def test_loss_requeues_data(self):
        s = self.make()
        s.write(b"abcdefgh")
        offset, data, fin = s.next_chunk(8)
        assert data == b"abcdefgh"
        assert s.next_chunk(8) is None
        s.on_loss(offset, len(data), fin)
        offset2, data2, _ = s.next_chunk(8)
        assert (offset2, data2) == (0, b"abcdefgh")

    def test_ack_prevents_retransmission_of_acked_part(self):
        s = self.make()
        s.write(b"abcdefgh")
        s.next_chunk(8)
        s.on_ack(0, 4, False)  # first half acked
        s.on_loss(0, 8, False)  # whole packet declared lost afterwards
        offset, data, _ = s.next_chunk(8)
        assert (offset, data) == (4, b"efgh")

    def test_all_acked(self):
        s = self.make()
        s.write(b"abcd")
        s.finish()
        offset, data, fin = s.next_chunk(10)
        assert not s.all_acked
        s.on_ack(offset, len(data), fin)
        assert s.all_acked

    def test_fin_retransmitted_on_loss(self):
        s = self.make()
        s.write(b"x")
        s.finish()
        offset, data, fin = s.next_chunk(10)
        assert fin
        s.on_loss(offset, len(data), fin)
        _, _, fin2 = s.next_chunk(10)
        assert fin2

    def test_flow_limit_blocks(self):
        s = self.make(limit=4)
        s.write(b"abcdefgh")
        offset, data, _ = s.next_chunk(100)
        assert data == b"abcd"
        assert s.next_chunk(100) is None
        assert s.blocked
        s.update_max_stream_data(8)
        offset, data, _ = s.next_chunk(100)
        assert (offset, data) == (4, b"efgh")

    def test_max_stream_data_never_shrinks(self):
        s = self.make(limit=10)
        s.update_max_stream_data(5)
        assert s.max_stream_data == 10

    def test_fin_at_limit_still_pending_and_sendable(self):
        # The FIN-at-limit edge: every data byte left exactly at
        # max_stream_data and only the FIN remains.  The empty FIN frame
        # consumes no flow-control credit, so the stream must keep
        # reporting pending work and emit the FIN-only frame.
        s = self.make(limit=4)
        s.write(b"abcd")
        s.finish()
        offset, data, fin = s.next_chunk(100)
        assert (offset, data, fin) == (0, b"abcd", True)
        # The data+FIN frame is lost; only the FIN needs resending and
        # the final offset sits exactly at the limit.
        s.on_ack(0, 4, False)
        s.on_loss(0, 4, True)
        assert s.has_pending
        offset, data, fin = s.next_chunk(100)
        assert (offset, data, fin) == (4, b"", True)
        assert not s.has_pending

    def test_flow_blocked_stream_reports_no_pending(self):
        # While every pending byte sits at/above the peer's limit the
        # stream is flow-blocked, and a FIN queued behind that data
        # cannot jump the queue: scheduling it would only stall the
        # packet builder and starve other streams.
        s = self.make(limit=4)
        s.write(b"abcdefgh")
        s.finish()
        s.next_chunk(100)  # sends b"abcd", now blocked at the limit
        assert not s.has_pending
        assert s.next_chunk(100) is None
        assert s.blocked
        s.update_max_stream_data(8)
        assert s.has_pending
        offset, data, fin = s.next_chunk(100)
        assert (offset, data, fin) == (4, b"efgh", True)

    @given(st.lists(st.binary(min_size=1, max_size=50), max_size=20),
           st.integers(1, 17))
    @settings(max_examples=100)
    def test_chunking_reassembles_exactly(self, writes, chunk_size):
        s = self.make()
        total = b"".join(writes)
        for w in writes:
            s.write(w)
        s.finish()
        out = bytearray(len(total))
        fin_seen = False
        while True:
            chunk = s.next_chunk(chunk_size)
            if chunk is None:
                break
            offset, data, fin = chunk
            out[offset:offset + len(data)] = data
            fin_seen = fin_seen or fin
        assert bytes(out) == total
        assert fin_seen


class TestReceiveStream:
    def make(self, limit=1 << 20):
        return ReceiveStream(0, limit)

    def test_in_order_delivery(self):
        r = self.make()
        assert r.receive(0, b"abc", False) == b"abc"
        assert r.receive(3, b"def", True) == b"def"
        assert r.is_finished

    def test_out_of_order_reassembly(self):
        r = self.make()
        assert r.receive(3, b"def", False) == b""
        assert r.receive(0, b"abc", False) == b"abcdef"

    def test_duplicate_and_overlap(self):
        r = self.make()
        r.receive(0, b"abcd", False)
        assert r.receive(2, b"cdef", False) == b"ef"
        assert r.receive(0, b"abcd", False) == b""

    def test_final_size_conflict(self):
        r = self.make()
        r.receive(0, b"abc", True)
        with pytest.raises(FinalSizeError):
            r.receive(0, b"abcd", True)

    def test_data_beyond_final_size(self):
        r = self.make()
        r.receive(0, b"abc", True)
        with pytest.raises(FinalSizeError):
            r.receive(3, b"d", False)

    def test_fin_below_received_data(self):
        r = self.make()
        r.receive(0, b"abcdef", False)
        with pytest.raises(FinalSizeError):
            r.receive(0, b"abc", True)

    def test_flow_control_enforced(self):
        r = self.make(limit=4)
        with pytest.raises(FlowControlError):
            r.receive(0, b"abcdef", False)

    def test_grant_credit_advances_limit(self):
        r = self.make(limit=4)
        r.receive(0, b"abcd", False)
        new_limit = r.grant_credit(8)
        assert new_limit == 12  # 4 read + window 8
        r.receive(4, b"efgh", False)

    def test_grant_credit_no_regression(self):
        r = self.make(limit=100)
        assert r.grant_credit(10) == 0
        assert r.max_stream_data == 100

    @given(st.binary(min_size=1, max_size=300), st.integers(1, 20),
           st.randoms(use_true_random=False))
    @settings(max_examples=100)
    def test_random_arrival_order(self, payload, chunk_size, rng):
        r = self.make()
        chunks = [
            (off, payload[off:off + chunk_size])
            for off in range(0, len(payload), chunk_size)
        ]
        rng.shuffle(chunks)
        out = bytearray()
        for off, data in chunks:
            fin = off + len(data) == len(payload)
            out.extend(r.receive(off, data, fin))
        assert bytes(out) == payload
        assert r.is_finished
