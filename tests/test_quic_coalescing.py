"""Datagram coalescing (RFC 9000 §12.2) and the batched zero-copy datapath.

Covers the send-side packer (`_coalesce_datagrams`), the multi-packet
receive loop (runt tails, mixed long/short trains, stateless-reset
reachability), the scatter-gather sealers, and the differential
guarantees of the batched path: bit-identical wire bytes via shadow
encoding, and unchanged per-packet plugin protoop semantics (one
invocation per packet, same fuel) with the GSO/GRO datapath on.
"""

from repro.core.plugin import PluginInstance
from repro.netsim import Simulator, symmetric_topology
from repro.plugins import build_monitoring_plugin
from repro.plugins.monitoring import (
    OFF_PACKETS_RECEIVED,
    OFF_PACKETS_SENT,
    PI_AREA_ID,
    PI_SIZE,
)
from repro.quic import ClientEndpoint, QuicConfiguration, ServerEndpoint
from repro.quic.connection import ConnectionState, QuicConnection
from repro.quic.crypto import AeadContext
from repro.quic.packet import FORM_LONG, seal_packet, seal_packet_into
from repro.quic.reset import stateless_reset_token
from repro.vm.interpreter import HEAP_BASE


def exchange(a: QuicConnection, b: QuicConnection, rounds: int = 10) -> None:
    """Shuttle datagrams between two in-memory connections until quiet."""
    for _ in range(rounds):
        moved = False
        for src, dst in ((a, b), (b, a)):
            for payload, _path in src.datagrams_to_send(0.0):
                moved = True
                dst.receive_datagram(payload, now=0.0)
        if not moved:
            return


def established_pair() -> tuple:
    client = QuicConnection(QuicConfiguration(is_client=True))
    server = QuicConnection(QuicConfiguration(is_client=False))
    exchange(client, server)
    assert client.is_established and server.is_established
    return client, server


class TestCoalescePacker:
    """Unit tests for the send-side datagram packer."""

    def _packer(self):
        return QuicConnection(QuicConfiguration(is_client=True))

    def test_two_long_header_packets_share_a_datagram(self):
        conn = self._packer()
        a = bytes([0xC0]) + b"a" * 99
        b = bytes([0xC1]) + b"b" * 49
        out = conn._coalesce_datagrams([(a, 0), (b, 0)])
        assert out == [(a + b, 0)]

    def test_short_header_rides_last(self):
        conn = self._packer()
        long_pkt = bytes([0xC0]) + b"L" * 99
        short_pkt = bytes([0x40]) + b"S" * 29
        out = conn._coalesce_datagrams([(long_pkt, 0), (short_pkt, 0)])
        assert out == [(long_pkt + short_pkt, 0)]

    def test_nothing_follows_a_short_header(self):
        # A short-header packet extends to the end of the datagram, so it
        # terminates the train: the next packet starts a new datagram.
        conn = self._packer()
        short_pkt = bytes([0x40]) + b"S" * 29
        long_pkt = bytes([0xC0]) + b"L" * 99
        out = conn._coalesce_datagrams([(short_pkt, 0), (long_pkt, 0)])
        assert out == [(short_pkt, 0), (long_pkt, 0)]

    def test_mtu_bounds_the_train(self):
        conn = self._packer()
        mtu = conn.configuration.max_udp_payload_size
        a = bytes([0xC0]) + b"a" * (mtu - 101)  # mtu - 100 total
        b = bytes([0xC1]) + b"b" * 98           # 99: fits (mtu - 1)
        c = bytes([0xC2]) + b"c" * 9            # 10: would overflow
        out = conn._coalesce_datagrams([(a, 0), (b, 0), (c, 0)])
        assert out == [(a + b, 0), (c, 0)]
        assert all(len(payload) <= mtu for payload, _ in out)

    def test_path_change_flushes_the_train(self):
        conn = self._packer()
        a = bytes([0xC0]) + b"a" * 49
        b = bytes([0xC1]) + b"b" * 49
        out = conn._coalesce_datagrams([(a, 0), (b, 1)])
        assert out == [(a, 0), (b, 1)]


class TestCoalescedReceive:
    """The multi-packet receive loop against real handshake flights."""

    def test_handshake_flight_coalesces_long_and_short(self):
        """The client's second flight travels as ONE datagram carrying an
        Initial (long header) plus a 1-RTT packet (short header, last)."""
        client = QuicConnection(QuicConfiguration(is_client=True))
        server = QuicConnection(QuicConfiguration(is_client=False))
        # Flight 1: client Initial; flight 2: server Initial reply.
        (first, _), = client.datagrams_to_send(0.0)
        server.receive_datagram(first, now=0.0)
        for payload, _ in server.datagrams_to_send(0.0):
            client.receive_datagram(payload, now=0.0)
        # Flight 3: the coalesced train.
        flight = client.datagrams_to_send(0.0)
        assert len(flight) == 1
        payload = flight[0][0]
        assert payload[0] & FORM_LONG
        before = server.stats["packets_received"]
        server.receive_datagram(payload, now=0.0)
        assert server.stats["packets_received"] == before + 2
        exchange(client, server)
        assert client.is_established and server.is_established

    def test_kill_switch_restores_one_packet_per_datagram(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "0")
        client = QuicConnection(QuicConfiguration(is_client=True))
        server = QuicConnection(QuicConfiguration(is_client=False))
        assert not client._batch
        (first, _), = client.datagrams_to_send(0.0)
        server.receive_datagram(first, now=0.0)
        for payload, _ in server.datagrams_to_send(0.0):
            client.receive_datagram(payload, now=0.0)
        # The same flight now goes out as two datagrams, one per packet.
        flight = client.datagrams_to_send(0.0)
        assert len(flight) == 2
        for payload, _ in flight:
            server.receive_datagram(payload, now=0.0)
        exchange(client, server)
        assert client.is_established and server.is_established

    def test_runt_tail_is_dropped_silently(self):
        """§12.2: once one packet authenticated, an undecodable tail is
        ignored — the datagram must not be treated as an error."""
        client = QuicConnection(QuicConfiguration(is_client=True))
        server = QuicConnection(QuicConfiguration(is_client=False))
        (initial, _), = client.datagrams_to_send(0.0)
        server.receive_datagram(initial + b"\x01\x02\x03", now=0.0)
        assert server.state is ConnectionState.ACTIVE
        assert server.stats["packets_received"] == 1

    def test_undecryptable_short_tail_is_dropped_silently(self):
        """A well-formed but unauthenticatable short-header tail behind a
        good Initial is dropped, not fatal (and is not a reset)."""
        client = QuicConnection(QuicConfiguration(is_client=True))
        server = QuicConnection(QuicConfiguration(is_client=False))
        (initial, _), = client.datagrams_to_send(0.0)
        tail = bytes([0x40]) + b"\x07" * 40  # short header, garbage AEAD
        server.receive_datagram(initial + tail, now=0.0)
        assert server.state is ConnectionState.ACTIVE
        assert server.stats["packets_received"] == 1
        assert server.stats["stateless_resets_received"] == 0

    def test_stateless_reset_detection_still_fires(self):
        """A datagram with NO authenticatable packet must still surface
        as CryptoError so the §10.3 token check runs — the multi-packet
        loop cannot swallow it."""
        from repro.quic.reset import build_stateless_reset
        import random

        client, _server = established_pair()
        token = stateless_reset_token(b"k" * 32, b"\x07" * 8)
        client._peer_reset_tokens.add(token)
        reset = build_stateless_reset(token, random.Random(3), 1200)
        client.receive_datagram(reset, now=0.0)
        assert client.stats["stateless_resets_received"] == 1
        assert client.state is ConnectionState.DRAINING

    def test_authenticated_datagram_is_never_a_reset(self):
        """A reset-token-shaped tail behind an authenticated packet does
        not tear the connection down."""
        client = QuicConnection(QuicConfiguration(is_client=True))
        server = QuicConnection(QuicConfiguration(is_client=False))
        token = stateless_reset_token(b"k" * 32, b"\x07" * 8)
        client._peer_reset_tokens.add(token)
        (initial, _), = client.datagrams_to_send(0.0)
        server.receive_datagram(initial, now=0.0)
        (reply, _), = server.datagrams_to_send(0.0)
        tail = bytes([0x41]) + b"\x00" * 23 + token  # ends in the token
        client.receive_datagram(reply + tail, now=0.0)
        assert client.stats["stateless_resets_received"] == 0
        assert client.state is ConnectionState.ACTIVE


class TestScatterGatherSeal:
    """The pooled-buffer sealers are bit-identical to the legacy ones."""

    def test_aead_seal_into_matches_seal(self):
        aead = AeadContext(b"k" * 16)
        header = b"\x40" + b"\x07" * 8
        payload = b"\xa5" * 1200
        for pn in (0, 1, 2 ** 30):
            out = bytearray(b"prefix")
            aead.seal_into(out, pn, header, payload)
            assert bytes(out) == b"prefix" + header + aead.seal(
                pn, header, payload)

    def test_seal_into_accepts_memoryviews(self):
        aead = AeadContext(b"k" * 16)
        header = bytearray(b"\x40" + b"\x07" * 8)
        payload = memoryview(bytearray(b"\xa5" * 64))
        out = bytearray()
        aead.seal_into(out, 5, memoryview(header), payload)
        assert bytes(out) == bytes(header) + aead.seal(
            5, bytes(header), bytes(payload))

    def test_seal_packet_into_matches_seal_packet(self):
        aead = AeadContext(b"s" * 16)
        header = b"\xc0" + b"\x01" * 10
        payload = b"frame-bytes" * 20
        out = bytearray()
        seal_packet_into(out, header, payload, aead, 42)
        assert bytes(out) == seal_packet(header, payload, aead, 42)


def _lossy_transfer(size=60_000, shadow=False, plugin=False, seed=5):
    """One bulk transfer over a seeded lossy link; returns the client
    endpoint, the server connection, and the delivered bytes."""
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=20, loss_pct=1.0,
                              seed=seed)
    received = bytearray()
    done = [False]
    sconns = []

    def on_conn(conn):
        sconns.append(conn)
        if shadow:
            conn._shadow_encode = True
        if plugin:
            PluginInstance(build_monitoring_plugin(), conn).attach()
        conn.on_stream_data = lambda sid, d, fin: (
            received.extend(d), done.__setitem__(0, fin))

    ServerEndpoint(sim, topo.server, "server.0", 443, on_connection=on_conn)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                            "server.0", 443)
    if shadow:
        client.conn._shadow_encode = True
    instance = (PluginInstance(build_monitoring_plugin(), client.conn)
                if plugin else None)
    if instance is not None:
        instance.attach()
    client.connect()
    assert sim.run_until(lambda: client.conn.is_established, timeout=10)
    sid = client.conn.create_stream()
    client.conn.send_stream_data(sid, b"d" * size, fin=True)
    client.pump()
    assert sim.run_until(lambda: done[0], timeout=600)
    assert len(received) == size
    return client, sconns[0], bytes(received), instance


def _pi_counter(instance: PluginInstance, offset: int) -> int:
    """Read one 64-bit counter out of the monitoring plugin's PI area."""
    addr = instance.runtime.opaque_data(PI_AREA_ID, PI_SIZE) - HEAP_BASE
    data = instance.runtime.memory.data
    return int.from_bytes(data[addr + offset:addr + offset + 8], "little")


class TestBatchedDifferential:
    """The batched datapath changes timing, never bytes or semantics."""

    def test_shadow_encode_is_bit_identical_under_loss(self):
        """Every packet both sides sent had its scatter-gather plaintext
        and sealed bytes compared against the legacy concatenating
        encoder in-line; a lossy transfer must produce zero mismatches."""
        client, sconn, _, _ = _lossy_transfer(shadow=True)
        assert client.conn.stats["packets_sent"] > 50
        assert client.conn.shadow_mismatches == []
        assert sconn.shadow_mismatches == []

    def test_delivered_bytes_identical_across_modes(self, monkeypatch):
        payload_batched = _lossy_transfer()[2]
        monkeypatch.setenv("REPRO_BATCH", "0")
        payload_legacy = _lossy_transfer()[2]
        assert payload_batched == payload_legacy

    def test_plugin_sees_every_packet_exactly_once(self, monkeypatch):
        """GRO batch receive and GSO bursts must not change protoop
        cardinality: the monitoring plugin's per-packet counters equal
        the connection's own packet stats, in both modes, and each
        invocation burns identical fuel."""
        reports = {}
        for mode in ("1", "0"):
            monkeypatch.setenv("REPRO_BATCH", mode)
            client, _, _, instance = _lossy_transfer(plugin=True)
            stats = client.conn.stats
            sent = _pi_counter(instance, OFF_PACKETS_SENT)
            recv = _pi_counter(instance, OFF_PACKETS_RECEIVED)
            assert sent == stats["packets_sent"]
            assert recv == stats["packets_received"]
            vm = instance.vms["count_received"]
            reports[mode] = vm.instructions_executed / recv
        # Fuel accounting per invocation is mode-independent.
        assert reports["1"] == reports["0"]


class TestGsoBursts:
    """End-to-end: bulk transfers actually ride coalesced sim events."""

    def test_bursts_coalesce_simulator_events(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=20)
        received = bytearray()
        done = [False]

        def on_conn(conn):
            conn.on_stream_data = lambda sid, d, fin: (
                received.extend(d), done.__setitem__(0, fin))

        ServerEndpoint(sim, topo.server, "server.0", 443,
                       on_connection=on_conn)
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=10)
        sid = client.conn.create_stream()
        client.conn.send_stream_data(sid, b"b" * 120_000, fin=True)
        client.pump()
        assert sim.run_until(lambda: done[0], timeout=600)
        assert len(received) == 120_000
        assert sim.events_coalesced > 50

    def test_kill_switch_disables_bursts(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "0")
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=20)
        received = bytearray()
        done = [False]

        def on_conn(conn):
            conn.on_stream_data = lambda sid, d, fin: (
                received.extend(d), done.__setitem__(0, fin))

        ServerEndpoint(sim, topo.server, "server.0", 443,
                       on_connection=on_conn)
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=10)
        sid = client.conn.create_stream()
        client.conn.send_stream_data(sid, b"b" * 60_000, fin=True)
        client.pump()
        assert sim.run_until(lambda: done[0], timeout=600)
        assert len(received) == 60_000
        assert sim.events_coalesced == 0
