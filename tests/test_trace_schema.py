"""Schema validation: every cataloged event, every failure mode, and a
real traced transfer checked strictly against the catalog."""

import pytest

from repro.trace import (
    EVENT_CATALOG,
    SchemaError,
    TRACE_SCHEMA_VERSION,
    validate_event,
    validate_record,
    validate_stream,
)
from repro.trace.schema import CATEGORIES

#: One schema-valid example value per type tag.
EXAMPLES = {"int": 7, "float": 1.25, "bool": True, "str": "x"}


def example_data(spec, include_optional=True):
    return {
        name: EXAMPLES[tag] for name, tag in spec.fields.items()
        if include_optional or name not in spec.optional
    }


def example_record(spec, **overrides):
    record = {"type": "event", "time": 12.5, "category": spec.category,
              "name": spec.name, "data": example_data(spec)}
    record.update(overrides)
    return record


class TestCatalog:
    def test_catalog_is_nonempty_and_covers_all_layers(self):
        categories = {spec.category for spec in EVENT_CATALOG.values()}
        # The tentpole requirement: transport, recovery, plugin lifecycle
        # and PRE execution all observable through one schema.
        for required in ("transport", "recovery", "plugin", "pre", "trace"):
            assert required in categories

    def test_every_category_is_declared(self):
        for spec in EVENT_CATALOG.values():
            assert spec.category in CATEGORIES

    @pytest.mark.parametrize("name", sorted(EVENT_CATALOG))
    def test_every_event_validates_with_example_data(self, name):
        validate_event(example_record(EVENT_CATALOG[name]))

    @pytest.mark.parametrize("name", sorted(EVENT_CATALOG))
    def test_optional_fields_may_be_absent(self, name):
        spec = EVENT_CATALOG[name]
        record = example_record(spec)
        record["data"] = example_data(spec, include_optional=False)
        validate_event(record)


class TestStrictness:
    def spec(self):
        return EVENT_CATALOG["packet_sent"]

    def test_unknown_event_rejected(self):
        record = example_record(self.spec(), name="no_such_event")
        with pytest.raises(SchemaError, match="unknown event"):
            validate_event(record)

    def test_missing_required_field_rejected(self):
        record = example_record(self.spec())
        del record["data"]["packet_number"]
        with pytest.raises(SchemaError, match="missing required field"):
            validate_event(record)

    def test_extra_field_rejected(self):
        record = example_record(self.spec())
        record["data"]["surprise"] = 1
        with pytest.raises(SchemaError, match="unknown field"):
            validate_event(record)

    def test_type_mismatch_rejected(self):
        record = example_record(self.spec())
        record["data"]["packet_number"] = "not-an-int"
        with pytest.raises(SchemaError, match="expects int"):
            validate_event(record)

    def test_bool_is_not_an_int(self):
        # bool subclasses int in Python; the schema must not accept it.
        record = example_record(self.spec())
        record["data"]["size"] = True
        with pytest.raises(SchemaError, match="expects int"):
            validate_event(record)

    def test_int_accepted_where_float_expected(self):
        record = example_record(EVENT_CATALOG["metrics_updated"])
        record["data"]["latest_rtt_ms"] = 3  # JSON has one number type
        validate_event(record)

    def test_category_mismatch_rejected(self):
        record = example_record(self.spec(), category="recovery")
        with pytest.raises(SchemaError, match="category"):
            validate_event(record)

    def test_negative_time_rejected(self):
        record = example_record(self.spec(), time=-1.0)
        with pytest.raises(SchemaError, match="bad event time"):
            validate_event(record)


class TestStreamValidation:
    def header(self):
        return {"type": "header", "schema": TRACE_SCHEMA_VERSION,
                "vantage_point": "client"}

    def footer(self, events=0, dropped=0):
        return {"type": "footer", "events": events, "dropped": dropped}

    def test_valid_stream(self):
        stream = [self.header(),
                  example_record(EVENT_CATALOG["packet_sent"]),
                  example_record(EVENT_CATALOG["packet_lost"]),
                  self.footer(events=2)]
        counts = validate_stream(stream)
        assert counts["events"] == 2
        assert counts["by_name"] == {"packet_sent": 1, "packet_lost": 1}

    def test_wrong_schema_version_rejected(self):
        bad = self.header()
        bad["schema"] = "repro-trace/999.0"
        with pytest.raises(SchemaError, match="unsupported schema"):
            validate_stream([bad, self.footer()])

    def test_missing_header_rejected(self):
        with pytest.raises(SchemaError, match="no header"):
            validate_stream([self.footer()])

    def test_missing_footer_rejected(self):
        with pytest.raises(SchemaError, match="no footer"):
            validate_stream([self.header()])

    def test_footer_count_mismatch_rejected(self):
        stream = [self.header(),
                  example_record(EVENT_CATALOG["packet_sent"]),
                  self.footer(events=5)]
        with pytest.raises(SchemaError, match="footer claims"):
            validate_stream(stream)

    def test_event_after_footer_rejected(self):
        stream = [self.header(), self.footer(),
                  example_record(EVENT_CATALOG["packet_sent"])]
        with pytest.raises(SchemaError, match="after footer"):
            validate_stream(stream)

    def test_validate_record_returns_type_tags(self):
        assert validate_record(self.header()) == "header"
        assert validate_record(self.footer()) == "footer"
        assert validate_record(
            example_record(EVENT_CATALOG["packet_sent"])) == "event"


class TestRealTraceIsSchemaValid:
    def test_traced_transfer_validates_strictly(self):
        """End-to-end: every event a real plugin-bearing transfer emits
        conforms to the catalog (validate=True raises on the first
        violation, at the emitter)."""
        from repro.core import PluginInstance
        from repro.netsim import Simulator, symmetric_topology
        from repro.plugins.monitoring import build_monitoring_plugin
        from repro.quic import ClientEndpoint, ServerEndpoint
        from repro.trace import ConnectionTracer

        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=20, loss_pct=2.0,
                                  seed=3)
        server = ServerEndpoint(sim, topo.server, "server.0", 443)
        done = [False]
        server.on_connection = lambda conn: setattr(
            conn, "on_stream_data",
            lambda sid, d, fin: done.__setitem__(0, fin))
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        tracer = ConnectionTracer(client.conn, validate=True)
        PluginInstance(build_monitoring_plugin(), client.conn).attach()
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5)
        sid = client.conn.create_stream()
        client.conn.send_stream_data(sid, b"s" * 60_000, fin=True)
        client.pump()
        assert sim.run_until(lambda: done[0], timeout=120)
        tracer.finish()

        assert tracer.events, "trace recorded nothing"
        # Re-validate the whole lot as records (belt and braces) and
        # check the layers all showed up.
        names = set()
        for event in tracer.events:
            validate_event(event.as_record())
            names.add(event.name)
        assert "packet_sent" in names
        assert "packet_received" in names
        assert "plugin_injected" in names
        # 2% loss on a 60 kB transfer: recovery events must appear.
        assert "metrics_updated" in names
