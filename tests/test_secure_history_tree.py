"""History tree tests (Appendix B.1's alternative STR log)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.secure.history_tree import HistoryTree, combine_spans


def make_tree(n):
    tree = HistoryTree()
    for i in range(n):
        tree.append(b"STR-%d" % i)
    return tree


class TestMembership:
    def test_all_entries_provable_at_all_versions(self):
        tree = make_tree(10)
        for version in range(1, 11):
            root = tree.root(version)
            for index in range(version):
                proof = tree.prove_membership(index, version)
                assert HistoryTree.verify_membership(
                    root, b"STR-%d" % index, proof)

    def test_wrong_payload_rejected(self):
        tree = make_tree(8)
        proof = tree.prove_membership(3)
        assert not HistoryTree.verify_membership(tree.root(), b"EVIL", proof)

    def test_wrong_version_root_rejected(self):
        tree = make_tree(8)
        proof = tree.prove_membership(3, version=5)
        assert not HistoryTree.verify_membership(tree.root(8), b"STR-3", proof)

    def test_index_outside_version_rejected(self):
        tree = make_tree(5)
        with pytest.raises(ValueError):
            tree.prove_membership(4, version=4)

    def test_proof_is_logarithmic(self):
        tree = make_tree(1024)
        proof = tree.prove_membership(100)
        assert len(proof.path) == 10  # log2(1024)


class TestIncremental:
    def test_every_version_pair_consistent(self):
        tree = make_tree(13)
        for m in range(1, 14):
            for n in range(m, 14):
                proof = tree.prove_incremental(m, n)
                assert HistoryTree.verify_incremental(
                    tree.root(m), tree.root(n), proof), (m, n)

    def test_rewritten_history_detected(self):
        """The property the appendix wants: a PV that rewrites an old STR
        cannot produce a consistency proof to its old root."""
        tree = make_tree(9)
        old_root = tree.root(6)
        # A second tree that shares only a prefix then diverges at entry 4.
        evil = HistoryTree()
        for i in range(9):
            evil.append(b"STR-%d" % i if i != 4 else b"REWRITTEN")
        proof = evil.prove_incremental(6, 9)
        assert not HistoryTree.verify_incremental(old_root, evil.root(9), proof)

    def test_forged_span_hash_rejected(self):
        tree = make_tree(10)
        proof = tree.prove_incremental(6, 10)
        start, stop, _h = proof.old_subtrees[0]
        proof.old_subtrees[0] = (start, stop, b"\x00" * 32)
        assert not HistoryTree.verify_incremental(
            tree.root(6), tree.root(10), proof)

    def test_same_version_consistency(self):
        tree = make_tree(7)
        proof = tree.prove_incremental(7, 7)
        assert HistoryTree.verify_incremental(tree.root(7), tree.root(7), proof)

    def test_bad_versions_rejected(self):
        tree = make_tree(5)
        with pytest.raises(ValueError):
            tree.prove_incremental(0, 3)
        with pytest.raises(ValueError):
            tree.prove_incremental(4, 3)

    def test_proof_logarithmic_size(self):
        tree = make_tree(2048)
        proof = tree.prove_incremental(1000, 2048)
        assert len(proof.old_subtrees) + len(proof.added_subtrees) < 30


class TestCombineSpans:
    def test_empty_and_gap_rejected(self):
        assert combine_spans([]) is None
        assert combine_spans([(0, 2, b"a" * 32), (3, 4, b"b" * 32)]) is None


@given(st.integers(1, 120), st.data())
@settings(max_examples=60, deadline=None)
def test_incremental_property(n, data):
    tree = make_tree(n)
    m = data.draw(st.integers(1, n))
    proof = tree.prove_incremental(m, n)
    assert HistoryTree.verify_incremental(tree.root(m), tree.root(n), proof)
    # A divergent history never verifies against the honest old root.
    if m >= 2:
        evil = HistoryTree()
        for i in range(n):
            evil.append(b"STR-%d" % i if i != m - 1 else b"X")
        eproof = evil.prove_incremental(m, n)
        assert not HistoryTree.verify_incremental(
            tree.root(m), evil.root(n), eproof)
