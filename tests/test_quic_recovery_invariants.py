"""Property-based RFC 9002 invariants for the recovery core.

A seeded loss/reorder/delay schedule is driven through
:class:`PacketNumberSpace` and the invariants of RFC 9002 are asserted
after every step:

* no packet is simultaneously acknowledged and lost (a late ACK of a
  declared-lost packet moves it from lost to spurious, never to both);
* ``persistent_congestion`` only reports true when the lost run actually
  spans the §7.6 duration;
* a PTO expiry yields at most two probe candidates;
* the send-side ledger is conserved: every packet ever sent is exactly
  one of in-flight, acked, or lost.

The whole property is repeated across the 8 kill-switch modes
(``REPRO_JIT`` x ``REPRO_BATCH`` x ``REPRO_ANALYSIS``): the recovery
arithmetic is pure Python and must be bit-identical regardless of how
the plugin runtime executes.
"""

import os
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quic.frames import AckFrame
from repro.quic.recovery import (
    MAX_PTO_PROBES,
    PacketNumberSpace,
    RttEstimator,
    SentPacket,
)
from repro.quic.wire import RangeSet

MODES = ["".join(bits) for bits in product("01", repeat=3)]


#: One packet's fate: (delivered, one-way delay in ms).
fates = st.tuples(st.booleans(), st.integers(min_value=1, max_value=400))

schedules = st.lists(fates, min_size=2, max_size=40)


def _run_schedule(schedule):
    """Send one packet per schedule entry, then deliver cumulative ACKs
    in arrival order; yields (space, result, now) after every ACK."""
    space = PacketNumberSpace()
    rtt = RttEstimator()
    send_gap = 0.01
    arrivals = []  # (ack_arrival_time, pn)
    for pn, (delivered, delay_ms) in enumerate(schedule):
        t = pn * send_gap
        space.on_packet_sent(SentPacket(
            packet_number=pn, sent_time=t, size=1200,
            ack_eliciting=True, in_flight=True))
        if delivered:
            arrivals.append((t + delay_ms / 1000.0, pn))
    arrivals.sort()
    seen = RangeSet()
    for when, pn in arrivals:
        seen.add(pn)
        ack = AckFrame(ranges=RangeSet(list(seen)), ack_delay=0.0)
        result = space.on_ack_received(ack, now=when, rtt=rtt)
        yield space, result, when


@pytest.mark.parametrize("mode", MODES)
@given(schedule=schedules)
@settings(max_examples=25, deadline=None)
def test_rfc9002_invariants(mode, schedule):
    env_before = {k: os.environ.get(k)
                  for k in ("REPRO_JIT", "REPRO_BATCH", "REPRO_ANALYSIS")}
    os.environ["REPRO_JIT"], os.environ["REPRO_BATCH"], \
        os.environ["REPRO_ANALYSIS"] = mode[0], mode[1], mode[2]
    try:
        acked: set = set()
        lost: set = set()
        n_sent = len(schedule)
        for space, result, now in _run_schedule(schedule):
            for pkt in result.newly_acked:
                acked.add(pkt.packet_number)
            for pkt in result.lost:
                lost.add(pkt.packet_number)
            for pkt in result.spurious:
                # A spurious loss moves lost -> acked; it must have been
                # declared lost before, and is never in newly_acked too.
                assert pkt.packet_number in lost
                lost.discard(pkt.packet_number)
                acked.add(pkt.packet_number)
            # No packet both acked and lost.
            assert not (acked & lost)
            # Conservation: sent == in_flight + acked + lost.
            assert n_sent == len(space.sent) + len(acked) + len(lost)
            # Probe count per PTO expiry is bounded.
            assert len(space.probe_candidates()) <= MAX_PTO_PROBES
            # Persistent congestion needs a duration-spanning run.
            duration = 3 * RttEstimator().pto()
            if result.lost and space.persistent_congestion(
                    result.lost, duration):
                times = [p.sent_time for p in result.lost if p.ack_eliciting]
                assert max(times) - min(times) > duration
    finally:
        for key, value in env_before.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@given(schedule=schedules)
@settings(max_examples=50, deadline=None)
def test_pto_deadline_advances_on_forward_progress(schedule):
    """The PTO deadline re-arms from the newest ack-eliciting send, and
    disappears entirely once nothing ack-eliciting is in flight."""
    space = PacketNumberSpace()
    rtt = RttEstimator()
    for pn, (_, _) in enumerate(schedule):
        space.on_packet_sent(SentPacket(
            packet_number=pn, sent_time=pn * 0.01, size=1200,
            ack_eliciting=True, in_flight=True))
    d0 = space.pto_deadline(rtt, 0)
    assert d0 is not None
    # Acking everything clears the deadline (no timer without flight).
    ack = AckFrame(ranges=RangeSet([range(0, len(schedule))]), ack_delay=0.0)
    space.on_ack_received(ack, now=1000.0, rtt=rtt)
    assert space.pto_deadline(rtt, 0) is None
    # And backoff growth is monotone in pto_count.
    space.on_packet_sent(SentPacket(
        packet_number=len(schedule), sent_time=1000.0, size=1200,
        ack_eliciting=True, in_flight=True))
    assert space.pto_deadline(rtt, 1) > space.pto_deadline(rtt, 0)
