"""Jitter/reordering links and NAT-rebinding survival."""

import pytest

from repro.netsim import Host, Link, Simulator, symmetric_topology
from repro.quic import ClientEndpoint, ServerEndpoint


class TestJitter:
    def test_jitter_delays_within_bounds(self):
        sim = Simulator()
        link = Link(sim, delay=0.010, bandwidth=1e9, jitter=0.005, seed=3)
        arrivals = []
        link.forward.connect(lambda p: arrivals.append(sim.now))
        for i in range(50):
            sim.schedule(i * 0.001, link.forward.send, i, 100)
        sim.run()
        for i, t in enumerate(arrivals):
            base = i * 0.001 + 0.010
            assert base - 1e-9 <= t
            # serialization negligible at 1 Gbps; jitter bounded by 5 ms.
            assert t <= base + 0.005 + 0.001

    def test_jitter_reorders_packets(self):
        sim = Simulator()
        link = Link(sim, delay=0.001, bandwidth=1e9, jitter=0.050, seed=4)
        order = []
        link.forward.connect(order.append)
        for i in range(100):
            sim.schedule(i * 0.0001, link.forward.send, i, 100)
        sim.run()
        assert order != sorted(order)  # genuine reordering happened
        assert sorted(order) == list(range(100))  # nothing lost

    def test_jitter_deterministic_per_seed(self):
        def run(seed):
            sim = Simulator()
            link = Link(sim, delay=0.001, bandwidth=1e9, jitter=0.02, seed=seed)
            order = []
            link.forward.connect(order.append)
            for i in range(60):
                sim.schedule(i * 0.0001, link.forward.send, i, 100)
            sim.run()
            return order

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_negative_jitter_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, delay=0.001, bandwidth=1e9, jitter=-1)

    def test_quic_transfer_survives_reordering(self):
        """QUIC's reassembly and packet-threshold loss detection must cope
        with a badly reordering path."""
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10, seed=2)
        # Replace the bottleneck pipes' jitter post-hoc.
        import random as _random

        for link in topo.path_links:
            for pipe in (link.forward, link.backward):
                pipe.jitter = 0.008
                pipe._jitter_rng = _random.Random(9)
        server = ServerEndpoint(sim, topo.server, "server.0", 443)
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        received = bytearray()
        done = [False]
        server.on_connection = lambda conn: setattr(
            conn, "on_stream_data",
            lambda sid, d, fin: (received.extend(d),
                                 done.__setitem__(0, fin)))
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5)
        sid = client.conn.create_stream()
        payload = bytes(i % 251 for i in range(150_000))
        client.conn.send_stream_data(sid, payload, fin=True)
        client.pump()
        assert sim.run_until(lambda: done[0], timeout=120)
        assert bytes(received) == payload  # byte-exact despite reordering


class TestNatRebinding:
    def test_connection_survives_client_address_change(self):
        """§4.3: 'a QUIC connection is not bound to a given 4-tuple but to
        [connection] IDs.  This makes QUIC resilient to events such as NAT
        rebinding.'"""
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10, seed=1)
        server = ServerEndpoint(sim, topo.server, "server.0", 443)
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        received = bytearray()
        done = [False]
        server.on_connection = lambda conn: setattr(
            conn, "on_stream_data",
            lambda sid, d, fin: (received.extend(d),
                                 done.__setitem__(0, fin)))
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5)
        sid = client.conn.create_stream()
        client.conn.send_stream_data(sid, b"a" * 30_000)
        client.pump()
        sim.run(until=sim.now + 0.5)
        # NAT rebinding: the client's packets now leave from client.1
        # (same connection, new address).  The routing still reaches the
        # server; the server must follow the new address for replies.
        client.conn.paths[0].local_addr = "client.1"
        client.driver.local_port = 5001
        topo.client.bind(5001, client.driver.receive)
        client.conn.send_stream_data(sid, b"b" * 30_000, fin=True)
        client.pump()
        assert sim.run_until(lambda: done[0], timeout=60)
        assert len(received) == 60_000
        sconn = server.connections[0]
        assert sconn.paths[0].peer_addr == "client.1"

    def test_unauthenticated_packets_do_not_migrate(self):
        """An off-path attacker spoofing a new source address must not
        steal the connection: migration requires AEAD-valid packets."""
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10, seed=1)
        server = ServerEndpoint(sim, topo.server, "server.0", 443)
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5)
        sconn = server.connections[0]
        original = sconn.paths[0].peer_addr
        # Forge a short-header packet with the server's CID but garbage
        # payload, from a different address.
        forged = bytes([0x40]) + sconn.local_cid + (123).to_bytes(4, "big") \
            + b"\x00" * 40
        topo.client.sendto(forged, "client.1", 6666, "server.0", 443)
        sim.run(until=sim.now + 0.5)
        assert sconn.paths[0].peer_addr == original
