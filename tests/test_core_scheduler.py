"""Frame scheduler tests: CBQ core guarantee + DRR fairness (§2.3)."""

import pytest

from repro.core.scheduler import DRR_QUANTUM, _drr_fill, schedule_packet_frames
from repro.quic import QuicConfiguration, ReservedFrame
from repro.quic import frames as F
from repro.quic.connection import QuicConnection
from repro.quic.packet import Epoch


def make_established_conn():
    conn = QuicConnection(QuicConfiguration(is_client=True))
    from repro.quic.crypto import CryptoPair

    conn.crypto[Epoch.ONE_RTT] = CryptoPair(b"k" * 32, b"k" * 32)
    conn.handshake_complete = True
    conn.max_data_remote = 1 << 30
    return conn


def ping_reservation(plugin, size=0):
    # A PING frame padded via datagram-ish payload: use CRYPTO-like filler.
    frame = F.StreamFrame(stream_id=0, offset=0, data=b"p" * max(1, size))
    return ReservedFrame(frame=frame, plugin=plugin)


class TestCoreGuarantee:
    def test_plugins_cannot_starve_application_data(self):
        """Rule 1: while payload data is pending, core frames keep at
        least the guaranteed fraction of the packet budget."""
        conn = make_established_conn()
        sid = conn.create_stream()
        conn.send_stream_data(sid, b"a" * 10_000)
        # A greedy plugin floods reservations.
        for _ in range(50):
            conn.reserved_frames.append(ping_reservation("greedy", 400))
        frames, ack_only = schedule_packet_frames(conn, Epoch.ONE_RTT, 0, 1200)
        stream_bytes = sum(
            len(f.data) for f in frames
            if isinstance(f, F.StreamFrame) and f.stream_id == sid
        )
        assert stream_bytes >= 400  # roughly half the budget net of headers
        assert not ack_only

    def test_unused_core_budget_flows_to_plugins(self):
        conn = make_established_conn()
        for _ in range(10):
            conn.reserved_frames.append(ping_reservation("solo", 300))
        frames, _ = schedule_packet_frames(conn, Epoch.ONE_RTT, 0, 1200)
        plugin_bytes = sum(len(f.to_bytes()) for f in frames)
        assert plugin_bytes > 600  # no core pending: plugins get it all

    def test_ack_always_first(self):
        conn = make_established_conn()
        conn.paths[0].space.record_received(0, 0.0, True)
        frames, ack_only = schedule_packet_frames(conn, Epoch.ONE_RTT, 0, 1200)
        assert isinstance(frames[0], F.AckFrame)
        assert ack_only  # nothing else pending

    def test_congestion_window_blocks_data_not_acks(self):
        conn = make_established_conn()
        conn.paths[0].cc.bytes_in_flight = conn.paths[0].cc.cwnd  # full
        sid = conn.create_stream()
        conn.send_stream_data(sid, b"a" * 5000)
        conn.paths[0].space.record_received(0, 0.0, True)
        frames, ack_only = schedule_packet_frames(conn, Epoch.ONE_RTT, 0, 1200)
        assert ack_only
        assert all(isinstance(f, F.AckFrame) for f in frames)

    def test_non_congestion_controlled_reservations_bypass_window(self):
        conn = make_established_conn()
        conn.paths[0].cc.bytes_in_flight = conn.paths[0].cc.cwnd
        conn.reserved_frames.append(ReservedFrame(
            frame=F.PingFrame(), plugin="p", congestion_controlled=False))
        frames, _ = schedule_packet_frames(conn, Epoch.ONE_RTT, 0, 1200)
        assert any(isinstance(f, F.PingFrame) for f in frames)


class TestDrr:
    def test_two_plugins_share_fairly(self):
        """Rule 2: 'a plugin sending many large frames should not be able
        to starve other plugins' — deficit round robin."""
        conn = make_established_conn()
        for _ in range(40):
            conn.reserved_frames.append(ping_reservation("big", 500))
        for _ in range(40):
            conn.reserved_frames.append(ping_reservation("small", 100))
        sent = {"big": 0, "small": 0}
        for _ in range(12):  # schedule a dozen packets
            frames, _ = schedule_packet_frames(conn, Epoch.ONE_RTT, 0, 1200)
            if not frames:
                break
            conn.paths[0].cc.bytes_in_flight = 0  # refill window
            for f in frames:
                size = len(f.to_bytes())
                if isinstance(f, F.StreamFrame) and len(f.data) >= 400:
                    sent["big"] += size
                elif isinstance(f, F.StreamFrame):
                    sent["small"] += size
        assert sent["big"] > 0 and sent["small"] > 0
        ratio = sent["big"] / max(1, sent["small"])
        assert 0.4 < ratio < 2.5  # byte-fair within DRR quantum effects

    def test_drr_preserves_per_plugin_fifo(self):
        conn = make_established_conn()
        for i in range(5):
            frame = F.StreamFrame(stream_id=0, offset=i, data=bytes([i]))
            conn.reserved_frames.append(ReservedFrame(frame=frame, plugin="p"))
        used, picked = _drr_fill(conn, 10_000)
        offsets = [f.offset for f in picked]
        assert offsets == sorted(offsets)

    def test_oversized_frame_does_not_wedge_queue(self):
        conn = make_established_conn()
        conn.reserved_frames.append(ping_reservation("p", 5000))  # > budget
        conn.reserved_frames.append(ping_reservation("q", 100))
        used, picked = _drr_fill(conn, 1200)
        # The small frame still goes out even though the big one can't.
        assert any(len(f.data) == 100 for f in picked)
