"""Monitoring plugin tests (§4.1)."""

import pytest

from repro.core import PluginInstance
from repro.netsim import Simulator, symmetric_topology
from repro.plugins.monitoring import (
    MonitoringCollector,
    PerformanceReport,
    build_monitoring_plugin,
)
from repro.quic import ClientEndpoint, ServerEndpoint
from repro.termination import check_termination


@pytest.fixture
def plugin():
    return build_monitoring_plugin()


def run_monitored_transfer(size=50_000, loss=0, seed=2):
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=10, loss_pct=loss, seed=seed)
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    instance = PluginInstance(build_monitoring_plugin(), client.conn)
    instance.attach()
    collector = MonitoringCollector()
    collector.attach(client.conn)
    done = [False]
    server.on_connection = lambda conn: setattr(
        conn, "on_stream_data", lambda sid, d, fin: done.__setitem__(0, fin))
    client.connect()
    assert sim.run_until(lambda: client.conn.is_established, timeout=5)
    sid = client.conn.create_stream()
    client.conn.send_stream_data(sid, b"m" * size, fin=True)
    client.pump()
    assert sim.run_until(lambda: done[0], timeout=120)
    client.close()
    return client.conn, collector, instance


def test_paper_pluglet_count(plugin):
    """Table 2: the monitoring plugin has 14 pluglets."""
    assert len(plugin.pluglets) == 14


def test_all_pluglets_are_passive(plugin):
    """§4.1: 'passive pluglets, i.e. pluglets that hook to pre and post
    anchors'."""
    assert all(p.anchor in ("pre", "post") for p in plugin.pluglets)


def test_all_pluglets_proven_terminating(plugin):
    proven = sum(
        1 for p in plugin.pluglets if check_termination(p.instructions).proven
    )
    assert proven == len(plugin.pluglets)


def test_two_report_sets_exported():
    """§4.1: one PI set at the handshake, a second while active /at close."""
    conn, collector, _ = run_monitored_transfer()
    assert len(collector.reports) == 2
    handshake, final = collector.reports
    assert handshake["handshake_us"] > 0
    assert final["final_packets_sent"] > handshake["packets_sent"]


def test_counters_match_connection_stats():
    conn, collector, _ = run_monitored_transfer()
    final = collector.reports[-1]
    # The final report fires at connection_closing, before the CLOSE
    # packet itself is counted.
    assert conn.stats["packets_sent"] - final["final_packets_sent"] in (0, 1)
    assert final["final_packets_received"] == conn.stats["packets_received"]
    assert conn.stats["bytes_sent"] >= final["final_bytes_sent"]
    # The event-counted value lags the final snapshot by at most the
    # close packet itself.
    assert 0 <= final["final_packets_sent"] - final["packets_sent"] <= 1


def test_loss_and_rtt_indicators():
    conn, collector, _ = run_monitored_transfer(size=200_000, loss=3)
    final = collector.reports[-1]
    assert final["packets_lost"] > 0
    assert final["packets_lost"] == conn.stats["packets_lost"]
    assert 0 < final["rtt_min_us"] <= final["rtt_max_us"]
    assert final["final_srtt_us"] > 0
    assert final["max_cwnd"] >= 16 * 1024


def test_collector_forwarding():
    forwarded = []
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    PluginInstance(build_monitoring_plugin(), client.conn).attach()
    collector = MonitoringCollector(forward=forwarded.append)
    collector.attach(client.conn)
    client.connect()
    assert sim.run_until(lambda: client.conn.is_established, timeout=5)
    assert len(forwarded) == 1  # the handshake report
    report = PerformanceReport.parse(forwarded[0])
    assert report["handshake_packets"] >= 1


def test_monitoring_daemon_over_udp():
    """The §4.1 architecture end to end: the local daemon forwards PI
    blocks over (simulated) UDP to a remote collector."""
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
    received = []
    topo.server.bind(9999, lambda d: received.append(d.payload))
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    PluginInstance(build_monitoring_plugin(), client.conn).attach()
    collector = MonitoringCollector(
        forward=lambda data: topo.client.sendto(
            data, "client.0", 9998, "server.0", 9999)
    )
    collector.attach(client.conn)
    client.connect()
    assert sim.run_until(lambda: bool(received), timeout=5)
    report = PerformanceReport.parse(received[0])
    assert report["handshake_us"] > 0


def test_plugin_stats_for_table2(plugin):
    stats = plugin.stats()
    assert stats["pluglets"] == 14
    assert stats["instructions"] > 100
    assert 0 < stats["compressed_bytes"] < stats["size_bytes"]
