"""Frame codec tests: roundtrips, registry behaviour, edge cases."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic import frames as F
from repro.quic.errors import FrameEncodingError
from repro.quic.wire import Buffer, RangeSet


def roundtrip(frame):
    registry = F.FrameRegistry()
    data = frame.to_bytes()
    frame_type, parsed = registry.parse_one(Buffer(data))
    return frame_type, parsed


class TestRoundtrips:
    def test_ping(self):
        t, parsed = roundtrip(F.PingFrame())
        assert t == F.PING
        assert isinstance(parsed, F.PingFrame)

    def test_ack_single_range(self):
        ranges = RangeSet([range(0, 11)])
        t, parsed = roundtrip(F.AckFrame(ranges=ranges, ack_delay=0.001))
        assert t == F.ACK
        assert parsed.ranges == ranges
        assert parsed.ack_delay == pytest.approx(0.001)

    def test_ack_multiple_ranges(self):
        ranges = RangeSet([range(0, 3), range(7, 9), range(20, 21)])
        _, parsed = roundtrip(F.AckFrame(ranges=ranges))
        assert parsed.ranges == ranges

    def test_ack_empty_rejected(self):
        with pytest.raises(FrameEncodingError):
            F.AckFrame(ranges=RangeSet()).to_bytes()

    def test_crypto(self):
        _, parsed = roundtrip(F.CryptoFrame(offset=100, data=b"tls bytes"))
        assert parsed.offset == 100
        assert parsed.data == b"tls bytes"

    def test_stream_all_flag_combinations(self):
        for offset in (0, 1234):
            for fin in (False, True):
                frame = F.StreamFrame(stream_id=4, offset=offset,
                                      data=b"abc", fin=fin)
                _, parsed = roundtrip(frame)
                assert parsed.stream_id == 4
                assert parsed.offset == offset
                assert parsed.data == b"abc"
                assert parsed.fin == fin

    def test_stream_empty_fin(self):
        _, parsed = roundtrip(F.StreamFrame(stream_id=0, offset=10, data=b"", fin=True))
        assert parsed.data == b""
        assert parsed.fin

    def test_max_data(self):
        _, parsed = roundtrip(F.MaxDataFrame(maximum=1 << 20))
        assert parsed.maximum == 1 << 20

    def test_max_stream_data(self):
        _, parsed = roundtrip(F.MaxStreamDataFrame(stream_id=8, maximum=999))
        assert (parsed.stream_id, parsed.maximum) == (8, 999)

    def test_reset_stream(self):
        _, parsed = roundtrip(F.ResetStreamFrame(stream_id=4, error_code=7, final_size=100))
        assert (parsed.stream_id, parsed.error_code, parsed.final_size) == (4, 7, 100)

    def test_connection_close(self):
        _, parsed = roundtrip(F.ConnectionCloseFrame(error_code=0x0A, reason="bye"))
        assert parsed.error_code == 0x0A
        assert parsed.reason == "bye"

    def test_path_challenge_response(self):
        _, c = roundtrip(F.PathChallengeFrame(data=b"12345678"))
        assert c.data == b"12345678"
        _, r = roundtrip(F.PathResponseFrame(data=b"abcdefgh"))
        assert r.data == b"abcdefgh"

    def test_new_connection_id(self):
        _, parsed = roundtrip(F.NewConnectionIdFrame(sequence=3, connection_id=b"\x01" * 8))
        assert parsed.sequence == 3
        assert parsed.connection_id == b"\x01" * 8

    def test_padding_run(self):
        buf = Buffer(b"\x00" * 7 + F.PingFrame().to_bytes())
        registry = F.FrameRegistry()
        t, pad = registry.parse_one(buf)
        assert t == F.PADDING
        assert pad.length == 7
        t2, _ = registry.parse_one(buf)
        assert t2 == F.PING


class TestAckElicitation:
    def test_non_eliciting_types(self):
        assert not F.AckFrame(ranges=RangeSet([range(0, 1)])).ack_eliciting
        assert not F.PaddingFrame().ack_eliciting
        assert not F.ConnectionCloseFrame(error_code=0).ack_eliciting

    def test_eliciting_types(self):
        assert F.PingFrame().ack_eliciting
        assert F.StreamFrame(stream_id=0, data=b"x").ack_eliciting
        assert F.MaxDataFrame(maximum=1).ack_eliciting

    def test_retransmittable_defaults_to_eliciting(self):
        assert F.StreamFrame(stream_id=0, data=b"x").retransmittable
        assert not F.PaddingFrame().retransmittable


class TestRegistry:
    def test_unknown_frame_type_raises(self):
        registry = F.FrameRegistry()
        with pytest.raises(FrameEncodingError):
            registry.parse_one(Buffer(bytes([0x3F])))

    def test_register_extension_frame(self):
        class NoopFrame(F.Frame):
            type = 0x3F

            def serialize(self, buf):
                buf.push_varint(self.type)

            @classmethod
            def parse(cls, buf, frame_type):
                return cls()

        registry = F.FrameRegistry()
        registry.register(0x3F, NoopFrame)
        t, parsed = registry.parse_one(Buffer(bytes([0x3F])))
        assert t == 0x3F
        assert isinstance(parsed, NoopFrame)
        registry.unregister(0x3F)
        assert not registry.known(0x3F)

    def test_parse_all_multiple_frames(self):
        payload = (
            F.PingFrame().to_bytes()
            + F.MaxDataFrame(maximum=5).to_bytes()
            + F.StreamFrame(stream_id=0, data=b"hi", fin=True).to_bytes()
        )
        parsed = F.FrameRegistry().parse_all(payload)
        assert [t for t, _ in parsed] == [F.PING, F.MAX_DATA, 0x0B]


@given(
    st.lists(
        st.tuples(st.integers(0, 10_000), st.integers(1, 50)),
        min_size=1, max_size=20,
    ),
    st.floats(min_value=0, max_value=1.0),
)
def test_ack_roundtrip_property(spans, delay):
    ranges = RangeSet()
    for start, length in spans:
        ranges.add(start, start + length)
    _, parsed = roundtrip(F.AckFrame(ranges=ranges, ack_delay=delay))
    assert parsed.ranges == ranges
    assert parsed.ack_delay == pytest.approx(delay, abs=1e-5)


@given(st.integers(0, 1000), st.integers(0, 100_000), st.binary(max_size=500),
       st.booleans())
def test_stream_roundtrip_property(stream_id, offset, data, fin):
    frame = F.StreamFrame(stream_id=stream_id * 4, offset=offset, data=data, fin=fin)
    _, parsed = roundtrip(frame)
    assert parsed.stream_id == stream_id * 4
    assert parsed.offset == offset
    assert parsed.data == data
    assert parsed.fin == fin
