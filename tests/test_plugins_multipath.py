"""Multipath plugin tests (§4.3)."""

import pytest

from repro.core import PluginInstance
from repro.netsim import Simulator, symmetric_topology
from repro.netsim.topology import Figure7Topology, PathParams
from repro.plugins.multipath import (
    AddAddressFrame,
    MpAckFrame,
    build_multipath_plugin,
)
from repro.quic import ClientEndpoint, ServerEndpoint
from repro.quic import frames as F
from repro.quic.wire import Buffer, RangeSet


def setup_pair(sim, topo, scheduler="rr"):
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    client.conn.extra_local_addresses = ["client.1"]
    PluginInstance(build_multipath_plugin(scheduler), client.conn).attach()
    state = {}

    def on_conn(conn):
        PluginInstance(build_multipath_plugin(scheduler), conn).attach()
        state["sconn"] = conn

    server.on_connection = on_conn
    client.connect()
    assert sim.run_until(
        lambda: client.conn.is_established and "sconn" in state, timeout=5)
    return client, server, state


def transfer(sim, client, state, size, timeout=120):
    done = [False]
    rx = [0]
    state["sconn"].on_stream_data = lambda sid, d, fin: (
        rx.__setitem__(0, rx[0] + len(d)), done.__setitem__(0, fin))
    sid = client.conn.create_stream()
    client.conn.send_stream_data(sid, b"m" * size, fin=True)
    client.pump()
    assert sim.run_until(lambda: done[0], timeout=timeout)
    return rx[0]


class TestFrames:
    def test_add_address_roundtrip(self):
        frame = AddAddressFrame(address="client.1", address_id=1)
        buf = Buffer(frame.to_bytes())
        ftype = buf.pull_varint()
        parsed = AddAddressFrame.parse(buf, ftype)
        assert parsed.address == "client.1"
        assert parsed.address_id == 1

    def test_mp_ack_roundtrip(self):
        ack = F.AckFrame(ranges=RangeSet([range(0, 5), range(8, 10)]),
                         ack_delay=0.002)
        frame = MpAckFrame(path_id=1, ack=ack)
        buf = Buffer(frame.to_bytes())
        ftype = buf.pull_varint()
        parsed = MpAckFrame.parse(buf, ftype)
        assert parsed.path_id == 1
        assert parsed.ack.ranges == ack.ranges

    def test_mp_ack_not_ack_eliciting(self):
        frame = MpAckFrame(path_id=0, ack=F.AckFrame(
            ranges=RangeSet([range(0, 1)])))
        assert not frame.ack_eliciting


class TestPathEstablishment:
    def test_both_sides_open_second_path(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
        client, server, state = setup_pair(sim, topo)
        sim.run(until=sim.now + 0.5)
        assert len(client.conn.paths) == 2
        assert len(state["sconn"].paths) == 2
        assert client.conn.paths[1].local_addr == "client.1"
        assert state["sconn"].paths[1].peer_addr == "client.1"

    def test_single_homed_client_stays_single_path(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
        server = ServerEndpoint(sim, topo.server, "server.0", 443)
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        PluginInstance(build_multipath_plugin(), client.conn).attach()
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5)
        sim.run(until=sim.now + 0.5)
        assert len(client.conn.paths) == 1


class TestScheduling:
    def test_round_robin_splits_traffic(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10, seed=2)
        client, server, state = setup_pair(sim, topo)
        transfer(sim, client, state, 500_000)
        pns = [p.space.next_packet_number for p in client.conn.paths]
        assert min(pns) > 0.3 * max(pns)  # both paths genuinely used

    def test_multipath_speedup_on_large_file(self):
        """Figure 9: with 1 MB, two symmetric paths approach 2x."""
        sim1 = Simulator()
        topo1 = symmetric_topology(sim1, d_ms=10, bw_mbps=10, seed=2)
        server1 = ServerEndpoint(sim1, topo1.server, "server.0", 443)
        client1 = ClientEndpoint(sim1, topo1.client, "client.0", 5000,
                                 "server.0", 443)
        done = [False]
        server1.on_connection = lambda conn: setattr(
            conn, "on_stream_data",
            lambda sid, d, fin: done.__setitem__(0, fin))
        client1.connect()
        assert sim1.run_until(lambda: client1.conn.is_established, timeout=5)
        t0 = sim1.now
        sid = client1.conn.create_stream()
        client1.conn.send_stream_data(sid, b"m" * 1_000_000, fin=True)
        client1.pump()
        assert sim1.run_until(lambda: done[0], timeout=60)
        single = sim1.now - t0

        sim2 = Simulator()
        topo2 = symmetric_topology(sim2, d_ms=10, bw_mbps=10, seed=2)
        client2, server2, state2 = setup_pair(sim2, topo2)
        t0 = sim2.now
        transfer(sim2, client2, state2, 1_000_000)
        multi = sim2.now - t0
        assert single / multi > 1.6

    def test_lowrtt_scheduler_prefers_faster_path(self):
        sim = Simulator()
        topo = Figure7Topology(
            sim,
            PathParams.from_paper_units(5, 20),
            PathParams.from_paper_units(60, 20),
            seed=3,
        )
        client, server, state = setup_pair(sim, topo, scheduler="lowrtt")
        transfer(sim, client, state, 300_000)
        fast = client.conn.paths[0].space.next_packet_number
        slow = client.conn.paths[1].space.next_packet_number
        assert fast > slow

    def test_asymmetric_delays_still_complete(self):
        sim = Simulator()
        topo = Figure7Topology(
            sim,
            PathParams.from_paper_units(5, 10),
            PathParams.from_paper_units(50, 10),
            seed=4,
        )
        client, server, state = setup_pair(sim, topo)
        assert transfer(sim, client, state, 200_000) == 200_000

    def test_multipath_with_loss(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10, loss_pct=3, seed=5)
        client, server, state = setup_pair(sim, topo)
        assert transfer(sim, client, state, 200_000, timeout=300) == 200_000

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            build_multipath_plugin("priority")


class TestMpAcks:
    def test_per_path_packet_numbers_acknowledged(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10, seed=2)
        client, server, state = setup_pair(sim, topo)
        transfer(sim, client, state, 300_000)
        sim.run(until=sim.now + 1.0)
        for path in client.conn.paths:
            # Every path's in-flight data was eventually acknowledged.
            assert path.space.largest_acked >= 0
            assert path.cc.bytes_in_flight == 0
