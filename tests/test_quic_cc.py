"""NewReno congestion controller tests."""

import pytest

from repro.quic.cc import (
    DEFAULT_INITIAL_WINDOW,
    MAX_DATAGRAM_SIZE,
    MINIMUM_WINDOW,
    NewRenoController,
)


def test_paper_default_initial_window_is_16kb():
    # §4.3: "the default one of PQUIC (16 kB)".
    assert DEFAULT_INITIAL_WINDOW == 16 * 1024
    assert NewRenoController().cwnd == 16 * 1024


def test_custom_initial_window():
    # Figure 9's mp-quic baseline uses 32 kB.
    cc = NewRenoController(initial_window=32 * 1024)
    assert cc.cwnd == 32 * 1024


def test_bytes_in_flight_accounting():
    cc = NewRenoController()
    cc.on_packet_sent(1200)
    cc.on_packet_sent(1200)
    assert cc.bytes_in_flight == 2400
    assert cc.available_window == cc.cwnd - 2400
    cc.on_ack(1200, now=1.0, sent_time=0.5)
    assert cc.bytes_in_flight == 1200


def test_slow_start_doubles_per_rtt():
    cc = NewRenoController()
    start = cc.cwnd
    # ACK a full window worth of data in slow start.
    sent = 0
    while sent < start:
        cc.on_packet_sent(1200)
        sent += 1200
    acked = 0
    while acked < start:
        cc.on_ack(1200, now=1.0, sent_time=0.5)
        acked += 1200
    assert cc.cwnd >= 2 * start


def test_loss_halves_window_and_sets_ssthresh():
    cc = NewRenoController()
    cc.cwnd = 100_000
    cc.on_packet_sent(1200)
    cc.on_loss(1200, now=1.0, sent_time=0.5)
    assert cc.cwnd == 50_000
    assert cc.ssthresh == 50_000
    assert not cc.in_slow_start


def test_single_reduction_per_loss_epoch():
    cc = NewRenoController()
    cc.cwnd = 100_000
    for _ in range(5):
        cc.on_packet_sent(1200)
    cc.on_loss(1200, now=1.0, sent_time=0.5)
    w = cc.cwnd
    # Further losses of packets sent before recovery began: no extra cut.
    cc.on_loss(1200, now=1.1, sent_time=0.6)
    cc.on_loss(1200, now=1.2, sent_time=0.9)
    assert cc.cwnd == w
    # A loss of a packet sent after recovery start cuts again.
    cc.on_packet_sent(1200)
    cc.on_loss(1200, now=2.0, sent_time=1.5)
    assert cc.cwnd == w // 2


def test_window_floor():
    cc = NewRenoController()
    for i in range(20):
        cc.on_packet_sent(1200)
        cc.on_loss(1200, now=float(i), sent_time=float(i) - 0.1)
    assert cc.cwnd >= MINIMUM_WINDOW


def test_congestion_avoidance_linear_growth():
    # Byte counting (RFC 3465-style): one MSS of growth per cwnd of
    # bytes acknowledged — +1 MSS per RTT on a saturated path.
    cc = NewRenoController()
    cc.cwnd = 48_000
    cc.ssthresh = 24_000  # in congestion avoidance
    before = cc.cwnd
    acked = 0
    while acked < before:
        cc.on_packet_sent(1200)
        cc.on_ack(1200, now=1.0, sent_time=0.5)
        acked += 1200
    assert cc.cwnd == before + MAX_DATAGRAM_SIZE


def test_congestion_avoidance_grows_on_small_acks():
    # Regression: the old `MSS * size // cwnd` increment rounds to zero
    # for small ACKed sizes at large cwnd, freezing growth forever.  The
    # byte accumulator must keep the window growing monotonically.
    cc = NewRenoController()
    cc.cwnd = 200_000
    cc.ssthresh = 100_000  # in congestion avoidance
    assert MAX_DATAGRAM_SIZE * 64 // cc.cwnd == 0  # the old bug's shape
    start = cc.cwnd
    last = cc.cwnd
    for _ in range(2 * (cc.cwnd // 64) + 64):
        cc.on_packet_sent(64)
        cc.on_ack(64, now=1.0, sent_time=0.5)
        assert cc.cwnd >= last  # monotone, never shrinks
        last = cc.cwnd
    assert cc.cwnd >= start + 2 * MAX_DATAGRAM_SIZE


def test_persistent_congestion_collapses_to_minimum():
    cc = NewRenoController()
    cc.cwnd = 100_000
    cc.ssthresh = 50_000
    cc.on_persistent_congestion()
    assert cc.cwnd == MINIMUM_WINDOW
    assert cc.in_slow_start is (MINIMUM_WINDOW < cc.ssthresh)


def test_spurious_loss_undoes_reduction():
    cc = NewRenoController()
    cc.cwnd = 100_000
    cc.on_packet_sent(1200)
    cc.on_loss(1200, now=1.0, sent_time=0.5)
    assert cc.cwnd == 50_000
    # The one loss of the epoch turns out spurious: full undo.
    cc.on_spurious_loss(1200, lost_time=1.0, sent_time=0.5)
    assert cc.cwnd == 100_000
    assert cc.ssthresh == float("inf")


def test_spurious_loss_no_undo_while_real_losses_remain():
    cc = NewRenoController()
    cc.cwnd = 100_000
    for _ in range(3):
        cc.on_packet_sent(1200)
    cc.on_loss(1200, now=1.0, sent_time=0.5)
    cc.on_loss(1200, now=1.1, sent_time=0.6)  # same epoch: 2 losses
    w = cc.cwnd
    cc.on_spurious_loss(1200, lost_time=1.0, sent_time=0.5)
    assert cc.cwnd == w  # one genuine loss still stands
    cc.on_spurious_loss(1200, lost_time=1.1, sent_time=0.6)
    assert cc.cwnd == 100_000  # every loss of the epoch was spurious


def test_app_limited_ack_does_not_grow_window():
    cc = NewRenoController()
    start = cc.cwnd
    cc.on_packet_sent(1200)
    cc.on_ack(1200, now=1.0, sent_time=0.5, app_limited=True)
    assert cc.cwnd == start
    assert cc.bytes_in_flight == 0  # flight accounting still happens


def test_no_growth_for_pre_recovery_acks():
    cc = NewRenoController()
    cc.on_packet_sent(1200)
    cc.on_packet_sent(1200)
    cc.on_loss(1200, now=1.0, sent_time=0.5)
    w = cc.cwnd
    cc.on_ack(1200, now=1.1, sent_time=0.6)  # sent before recovery start
    assert cc.cwnd == w


def test_can_send_respects_window():
    cc = NewRenoController(initial_window=2400)
    assert cc.can_send()
    cc.on_packet_sent(2400)
    assert not cc.can_send()


def test_discard_releases_flight_bytes():
    cc = NewRenoController()
    cc.on_packet_sent(500)
    cc.on_packet_discarded(500)
    assert cc.bytes_in_flight == 0
    cc.on_packet_discarded(500)  # never negative
    assert cc.bytes_in_flight == 0
