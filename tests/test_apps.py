"""VPN tunnel and bulk-transfer application tests."""

import pytest

from repro.apps.transfer import BulkClient, BulkServer
from repro.apps.vpn import VpnTunnel
from repro.core import PluginInstance
from repro.netsim import Simulator, symmetric_topology
from repro.plugins.datagram import build_datagram_plugin
from repro.quic import ClientEndpoint, ServerEndpoint


def setup_tunnel(loss=0, seed=1):
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=20, loss_pct=loss,
                              seed=seed)
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    PluginInstance(build_datagram_plugin(), client.conn).attach()
    tunnels = {}

    def on_conn(conn):
        PluginInstance(build_datagram_plugin(), conn).attach()
        tunnels["server"] = VpnTunnel(
            conn, server._by_cid[conn.local_cid].pump)

    server.on_connection = on_conn
    client.connect()
    assert sim.run_until(
        lambda: client.conn.is_established and "server" in tunnels, timeout=5)
    tunnels["client"] = VpnTunnel(client.conn, client.pump)
    return sim, tunnels, client


class TestVpnTunnel:
    def test_packet_roundtrip(self):
        sim, tunnels, client = setup_tunnel()
        got = []
        tunnels["server"].bind(1, got.append)
        assert tunnels["client"].send(1, b"inner ip packet")
        sim.run(until=sim.now + 0.5)
        assert got == [b"inner ip packet"]

    def test_flow_demultiplexing(self):
        sim, tunnels, client = setup_tunnel()
        flows = {1: [], 2: []}
        tunnels["server"].bind(1, flows[1].append)
        tunnels["server"].bind(2, flows[2].append)
        tunnels["client"].send(1, b"one")
        tunnels["client"].send(2, b"two")
        sim.run(until=sim.now + 0.5)
        assert flows[1] == [b"one"]
        assert flows[2] == [b"two"]

    def test_mtu_enforced(self):
        sim, tunnels, client = setup_tunnel()
        tunnel = tunnels["client"]
        assert not tunnel.send(1, b"z" * (tunnel.mtu + 1))
        assert tunnel.dropped_mtu == 1

    def test_mtu_clamped_to_datagram_limit(self):
        sim, tunnels, client = setup_tunnel()
        from repro.plugins.datagram import DatagramSocket

        sock_limit = DatagramSocket(client.conn).max_size()
        assert tunnels["client"].mtu <= sock_limit - 1

    def test_queue_cap_drops(self):
        sim, tunnels, client = setup_tunnel()
        tunnel = tunnels["client"]
        accepted = sum(
            1 for _ in range(300) if tunnel.send(1, b"q" * 1000)
        )
        assert tunnel.dropped_queue > 0
        assert accepted < 300

    def test_unbound_flow_dropped_silently(self):
        sim, tunnels, client = setup_tunnel()
        tunnels["client"].send(7, b"nobody listens")
        sim.run(until=sim.now + 0.5)
        assert tunnels["server"].packets_in == 1  # counted, not delivered

    def test_losses_reach_inner_traffic(self):
        """The tunnel is unreliable: inner packets vanish on loss, which
        is exactly what lets inner TCP do its own congestion control."""
        sim, tunnels, client = setup_tunnel(loss=15, seed=9)
        got = []
        tunnels["server"].bind(1, got.append)
        for i in range(80):
            tunnels["client"].send(1, b"p%02d" % i)
            client.pump()
        sim.run(until=sim.now + 5)
        assert 0 < len(got) < 80


class TestBulkTransfer:
    def test_get_request_response(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=20)
        bulk_server = BulkServer()
        server = ServerEndpoint(sim, topo.server, "server.0", 443)

        def on_conn(conn):
            bulk_server.attach(conn, server._by_cid[conn.local_cid].pump)

        server.on_connection = on_conn
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        bulk = BulkClient(client.conn, client.pump)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5)
        bulk.request(40_000, now=sim.now)
        assert sim.run_until(lambda: bulk.completed, timeout=30)
        assert bulk.received == 40_000
        assert bulk.dct > 0
        assert bulk_server.requests == 1

    def test_sequential_requests(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=20)
        bulk_server = BulkServer()
        server = ServerEndpoint(sim, topo.server, "server.0", 443)
        server.on_connection = lambda conn: bulk_server.attach(
            conn, server._by_cid[conn.local_cid].pump)
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        bulk = BulkClient(client.conn, client.pump)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5)
        dcts = []
        for size in (5_000, 20_000):
            bulk.request(size, now=sim.now)
            assert sim.run_until(lambda: bulk.completed, timeout=30)
            dcts.append(bulk.dct)
        assert bulk_server.requests == 2
        assert all(d > 0 for d in dcts)
