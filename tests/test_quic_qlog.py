"""Connection tracer tests (dogfooding the protoop anchors)."""

import json

from repro.core import PluginInstance
from repro.netsim import Simulator, symmetric_topology
from repro.plugins.monitoring import build_monitoring_plugin
from repro.quic import ClientEndpoint, ServerEndpoint
from repro.quic.qlog import ConnectionTracer


def traced_transfer(size=40_000, loss=0, seed=3):
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=10, loss_pct=loss,
                              seed=seed)
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    tracer = ConnectionTracer(client.conn)
    done = [False]
    server.on_connection = lambda conn: setattr(
        conn, "on_stream_data", lambda sid, d, fin: done.__setitem__(0, fin))
    client.connect()
    assert sim.run_until(lambda: client.conn.is_established, timeout=5)
    sid = client.conn.create_stream()
    client.conn.send_stream_data(sid, b"t" * size, fin=True)
    client.pump()
    assert sim.run_until(lambda: done[0], timeout=60)
    return tracer, client


def test_events_recorded_in_order():
    tracer, client = traced_transfer()
    names = [e.name for e in tracer.events]
    assert "connection_established" in names
    assert names.index("connection_established") < names.index("stream_opened")
    assert tracer.summary()["packet_sent"] == client.conn.stats["packets_sent"]


def test_loss_events_traced():
    tracer, client = traced_transfer(size=150_000, loss=4, seed=8)
    assert tracer.summary().get("packet_lost", 0) > 0
    assert tracer.summary().get("metrics_updated", 0) > 0


def test_plugin_injection_traced():
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    tracer = ConnectionTracer(client.conn)
    PluginInstance(build_monitoring_plugin(), client.conn).attach()
    assert any(
        e.name == "plugin_injected"
        and e.data["plugin"] == "org.pquic.monitoring"
        for e in tracer.events
    )


def test_json_output_parses():
    tracer, client = traced_transfer(size=5_000)
    doc = json.loads(tracer.to_json())
    assert doc["traces"][0]["vantage_point"]["type"] == "client"
    assert len(doc["traces"][0]["events"]) == len(tracer.events)


def test_detach_stops_recording():
    tracer, client = traced_transfer(size=5_000)
    count = len(tracer.events)
    tracer.detach()
    client.conn.protoops.run(client.conn, "stream_opened", None, 99)
    assert len(tracer.events) == count


def test_event_cap():
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    tracer = ConnectionTracer(client.conn, max_events=3)
    for i in range(10):
        client.conn.protoops.run(client.conn, "stream_opened", None, i)
    assert len(tracer.events) == 3


def test_qlog_shim_emits_single_deprecation_warning():
    """The repro.quic.qlog alias warns exactly once, on (re-)import."""
    import importlib
    import sys
    import warnings

    sys.modules.pop("repro.quic.qlog", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.quic.qlog as shim
        importlib.import_module("repro.quic.qlog")  # cached: no 2nd warning
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)
                    and "repro.quic.qlog" in str(w.message)]
    assert len(deprecations) == 1
    assert "repro.trace" in str(deprecations[0].message)
    assert shim.ConnectionTracer is ConnectionTracer
