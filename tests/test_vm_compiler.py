"""Restricted-Python → bytecode compiler tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm import (
    CompileError,
    ExecutionError,
    PluginMemory,
    VirtualMachine,
    compile_pluglet,
    verify,
)

WORD = (1 << 64) - 1


def build(source, helpers_map=None, helpers_impl=None):
    code = compile_pluglet(source, helpers=helpers_map)
    verify(code)  # everything the compiler emits must verify
    return VirtualMachine(code, PluginMemory(), helpers=helpers_impl)


class TestBasics:
    def test_return_constant(self):
        assert build("def f():\n    return 7").run() == 7

    def test_bare_return_and_fallthrough(self):
        assert build("def f():\n    return").run() == 0
        assert build("def f():\n    pass").run() == 0

    def test_parameters(self):
        vm = build("def f(a, b, c):\n    return a + b * c")
        assert vm.run(1, 2, 3) == 7

    def test_locals(self):
        vm = build(
            """
def f(a):
    x = a + 1
    y = x * 2
    return y - a
"""
        )
        assert vm.run(10) == 12

    def test_augmented_assignment(self):
        vm = build(
            """
def f(a):
    x = 0
    x += a
    x *= 3
    x -= 1
    return x
"""
        )
        assert vm.run(5) == 14

    def test_true_false_constants(self):
        assert build("def f():\n    return True").run() == 1
        assert build("def f():\n    return False").run() == 0

    def test_large_constant(self):
        assert build("def f():\n    return 0xdeadbeefcafebabe").run() == 0xDEADBEEFCAFEBABE

    def test_unary_ops(self):
        assert build("def f(a):\n    return -a").run(1) == WORD
        assert build("def f(a):\n    return ~a").run(0) == WORD


class TestControlFlow:
    def test_if_else(self):
        vm = build(
            """
def f(a):
    if a > 10:
        return 1
    else:
        return 2
"""
        )
        assert vm.run(11) == 1
        assert vm.run(10) == 2

    def test_elif_chain(self):
        vm = build(
            """
def f(a):
    if a == 0:
        r = 10
    elif a == 1:
        r = 20
    else:
        r = 30
    return r
"""
        )
        assert [vm.run(i) for i in range(3)] == [10, 20, 30]

    def test_while_loop(self):
        vm = build(
            """
def f(n):
    total = 0
    i = 1
    while i <= n:
        total += i
        i += 1
    return total
"""
        )
        assert vm.run(10) == 55

    def test_break_continue(self):
        vm = build(
            """
def f(n):
    total = 0
    i = 0
    while True:
        i += 1
        if i > n:
            break
        if i % 2 == 0:
            continue
        total += i
    return total
"""
        )
        assert vm.run(10) == 25  # 1+3+5+7+9

    def test_nested_loops(self):
        vm = build(
            """
def f(n):
    total = 0
    i = 0
    while i < n:
        j = 0
        while j < n:
            total += 1
            j += 1
        i += 1
    return total
"""
        )
        assert vm.run(7) == 49

    def test_boolean_operators(self):
        vm = build(
            """
def f(a, b):
    if a > 1 and b > 1 and a + b > 10:
        return 1
    if a == 0 or b == 0:
        return 2
    return 3
"""
        )
        assert vm.run(6, 6) == 1
        assert vm.run(0, 5) == 2
        assert vm.run(2, 2) == 3

    def test_not_operator(self):
        vm = build(
            """
def f(a):
    if not a > 3:
        return 1
    return 0
"""
        )
        assert vm.run(2) == 1
        assert vm.run(4) == 0

    def test_truthiness_condition(self):
        vm = build("def f(a):\n    if a:\n        return 1\n    return 0")
        assert vm.run(7) == 1
        assert vm.run(0) == 0


class TestHelpers:
    def test_helper_call_with_args(self):
        log = []

        def record(vm, a, b, *rest):
            log.append((a, b))
            return a * 10 + b

        vm = build(
            "def f(x):\n    return emit(x, x + 1)",
            helpers_map={"emit": 4},
            helpers_impl={4: record},
        )
        assert vm.run(3) == 34
        assert log == [(3, 4)]

    def test_nested_helper_calls(self):
        vm = build(
            "def f(x):\n    return g(g(x))",
            helpers_map={"g": 1},
            helpers_impl={1: lambda vm, a, *r: a + 1},
        )
        assert vm.run(5) == 7

    def test_bare_call_statement(self):
        hits = []
        vm = build(
            "def f():\n    ping()\n    return 1",
            helpers_map={"ping": 2},
            helpers_impl={2: lambda vm, *a: hits.append(1)},
        )
        assert vm.run() == 1
        assert hits == [1]


class TestMemorySubscripts:
    """The mem8/mem16/mem32/mem64 pseudo-arrays compile to real load and
    store instructions, so every access runs under the memory monitor."""

    def test_store_load_roundtrip(self):
        from repro.vm.interpreter import HEAP_BASE

        vm = build(f"""
def f(v):
    base = {HEAP_BASE}
    mem64[base] = v
    mem32[base + 8] = v
    mem16[base + 12] = v
    mem8[base + 14] = v
    return mem64[base] + mem8[base + 14]
""")
        assert vm.run(0x1FF) == 0x1FF + 0xFF

    def test_subscript_in_expression(self):
        from repro.vm.interpreter import HEAP_BASE

        vm = build(f"""
def f(a, b):
    mem64[{HEAP_BASE}] = a
    mem64[{HEAP_BASE} + 8] = b
    return mem64[{HEAP_BASE}] * mem64[{HEAP_BASE} + 8]
""")
        assert vm.run(6, 7) == 42

    def test_out_of_bounds_subscript_trips_monitor(self):
        vm = build("def f():\n    return mem64[12345]")
        from repro.vm.interpreter import MemoryViolation

        with pytest.raises(MemoryViolation):
            vm.run()

    def test_unknown_pseudo_array_rejected(self):
        with pytest.raises(CompileError):
            compile_pluglet("def f():\n    return mem128[0]")
        with pytest.raises(CompileError):
            compile_pluglet("def f(a):\n    return a[0]")


class TestRejections:
    @pytest.mark.parametrize(
        "source",
        [
            "def f():\n    return 1.5",            # float constant
            "def f():\n    return 'str'",           # string constant
            "def f():\n    for i in range(3):\n        pass",  # for loop
            "def f():\n    x, y = 1, 2",            # tuple assignment
            "def f():\n    return unknown_helper()",  # unknown call
            "def f():\n    return a",                # undefined name
            "def f():\n    return 1 < 2 < 3",        # chained comparison
            "def f(a, b, c, d, e, g):\n    return 0",  # too many params
            "def f(*args):\n    return 0",           # varargs
            "def f():\n    while True:\n        pass\n    else:\n        pass",
            "def f():\n    import os",
            "def f():\n    return [1]",
            "def f():\n    x = lambda: 1",
        ],
    )
    def test_unsupported_constructs(self, source):
        with pytest.raises(CompileError):
            compile_pluglet(source)

    def test_two_functions_rejected(self):
        with pytest.raises(CompileError):
            compile_pluglet("def f():\n    return 0\ndef g():\n    return 1")


class TestSemantics:
    def test_division_is_unsigned_floor(self):
        vm = build("def f(a, b):\n    return a // b")
        assert vm.run(7, 2) == 3
        # -1 is WORD: unsigned division.
        assert vm.run(WORD, 2) == WORD // 2

    def test_runtime_division_by_zero_faults(self):
        vm = build("def f(a, b):\n    return a // b")
        with pytest.raises(ExecutionError):
            vm.run(1, 0)

    @given(st.integers(0, 1000), st.integers(0, 1000))
    @settings(max_examples=50)
    def test_arith_matches_python(self, a, b):
        vm = build("def f(a, b):\n    return (a + b) * 2 + (a ^ b) + (a & b)")
        expected = ((a + b) * 2 + (a ^ b) + (a & b)) & WORD
        assert vm.run(a, b) == expected

    @given(st.integers(0, 50))
    @settings(max_examples=30)
    def test_loop_matches_python(self, n):
        vm = build(
            """
def f(n):
    total = 0
    i = 0
    while i < n:
        total += i * i
        i += 1
    return total
"""
        )
        assert vm.run(n) == sum(i * i for i in range(n)) & WORD

    def test_deep_expression_spills(self):
        # Deep nesting uses temp slots; must still verify and compute.
        expr = "a" + " + a" * 30
        vm = build(f"def f(a):\n    return {expr}")
        assert vm.run(2) == 62

    def test_excessively_deep_expression_rejected(self):
        # Right-nested additions need one temp slot per level; past the
        # 512-byte stack the compiler must refuse.
        expr = "a + (" * 80 + "a" + ")" * 80
        with pytest.raises(CompileError):
            compile_pluglet(f"def f(a):\n    return {expr}")

    def test_left_nested_expression_constant_depth(self):
        # Left-nested additions evaluate with one temp slot, however long.
        expr = "(" * 60 + "a" + " + a)" * 60
        vm = build(f"def f(a):\n    return {expr}")
        assert vm.run(1) == 61
