"""Address resilience: path validation, migration, anti-amplification
and stateless resets (RFC 9000 §8-§10.3) under netsim adversaries."""

import pytest

from repro.netsim import FaultInjector, Simulator, nat_topology, symmetric_topology
from repro.quic import ClientEndpoint, ServerEndpoint
from repro.quic.connection import (
    AMP_FACTOR,
    ConnectionState,
    Path,
    PathState,
    QuicConfiguration,
    QuicConnection,
)
from repro.quic import frames as F
from repro.quic.reset import (
    MIN_STATELESS_RESET_SIZE,
    build_stateless_reset,
    is_stateless_reset,
    stateless_reset_token,
)
from repro.trace import ConnectionMetrics, ConnectionTracer, MetricsRegistry


def _serve(server_holder, tracers, registry):
    """on_connection hook: keep the connection, attach tracer+metrics."""
    def on_conn(conn):
        server_holder.append(conn)
        tracers.append(ConnectionTracer(conn, validate=True))
        ConnectionMetrics(conn, registry)
    return on_conn


def _nat_transfer(seed, size=120_000, rebind_offset=0.05, injector_kwargs=None):
    """Run a client->server transfer through the NAT topology with a
    rebind scheduled ``rebind_offset`` after the handshake completes (so
    it always lands mid-transfer); returns everything worth asserting on."""
    sim = Simulator()
    topo = nat_topology(sim, d_ms=10, bw_mbps=10, seed=seed)
    registry = MetricsRegistry()
    sconns, tracers = [], []
    received = bytearray()
    done = [False]

    def on_conn(conn):
        sconns.append(conn)
        tracers.append(ConnectionTracer(conn, validate=True))
        ConnectionMetrics(conn, registry)
        conn.on_stream_data = lambda sid, d, fin: (
            received.extend(d), done.__setitem__(0, fin))

    server = ServerEndpoint(sim, topo.server, "server.0", 443,
                            on_connection=on_conn)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                            "server.0", 443)
    injector = FaultInjector(sim, seed=seed, **(injector_kwargs or {}))
    if injector_kwargs:
        injector.inject_link(topo.wan)

    client.connect()
    assert sim.run_until(lambda: client.conn.is_established, timeout=10)
    injector.schedule_nat_rebind(topo.nat, at=sim.now + rebind_offset)
    sid = client.conn.create_stream()
    payload = bytes(i % 251 for i in range(size))
    client.conn.send_stream_data(sid, payload, fin=True)
    client.pump()
    assert sim.run_until(lambda: done[0], timeout=300), \
        "transfer did not survive the NAT rebind"
    assert bytes(received) == payload
    assert injector.stats.nat_rebinds == 1, "rebind fired after the transfer"
    return sim, topo, server, client, sconns[0], tracers[0], registry, injector


class TestNatRebindMigration:
    def test_transfer_survives_rebind_and_revalidates(self):
        """The ISSUE acceptance scenario: a mid-transfer NAT rebind moves
        the client to a new external address; the server migrates, probes
        the new path, and the transfer completes byte-exact."""
        (sim, topo, server, client, sconn, tracer, registry,
         injector) = _nat_transfer(seed=1)
        assert topo.nat.generation == 1
        # The server followed the peer to the post-rebind address...
        assert sconn.paths[0].peer_addr == "nat.1"
        assert sconn.stats["migrations"] >= 1
        # ...and the new path earned VALIDATED through challenge/response.
        assert sconn.paths[0].state == PathState.VALIDATED
        assert not sconn.paths[0].amp_limited
        assert sconn.stats["path_challenges_sent"] >= 1
        assert client.conn.stats["path_responses_sent"] >= 1
        # Trace events (schema-validated as they were recorded).
        summary = tracer.summary()
        assert summary.get("connection_migrated", 0) >= 1
        assert summary.get("path_validation_state_changed", 0) >= 2
        transitions = [
            (e.data["old"], e.data["new"]) for e in tracer.events
            if e.name == "path_validation_state_changed"
        ]
        assert ("probing", "validated") in transitions
        # Metrics counters.
        assert registry.counter("quic.path.migrations").value >= 1
        assert registry.counter("quic.path.challenges_sent").value >= 1
        assert registry.counter("quic.path.validated").value >= 1

    def test_server_push_is_amplification_limited_until_validated(self):
        """§8.1: after the rebind the server may send at most 3x the bytes
        received on the unvalidated address, so a server mid-push bumps
        into the limit and resumes only once the path validates."""
        sim = Simulator()
        topo = nat_topology(sim, d_ms=10, bw_mbps=10, seed=2)
        registry = MetricsRegistry()
        sconns = []
        received = bytearray()
        done = [False]
        size = 150_000

        def on_conn(conn):
            sconns.append(conn)
            ConnectionMetrics(conn, registry)
            sid = conn.create_stream()
            conn.send_stream_data(sid, b"s" * size, fin=True)

        server = ServerEndpoint(sim, topo.server, "server.0", 443,
                                on_connection=on_conn)
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        client.conn.on_stream_data = lambda sid, d, fin: (
            received.extend(d), done.__setitem__(0, fin))
        injector = FaultInjector(sim)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=10)
        injector.schedule_nat_rebind(topo.nat, at=sim.now + 0.05)
        # NAT keep-alive: a downstream-only client must transmit
        # *something* through the NAT or the server can never learn the
        # post-rebind address (its own packets die at the stale binding).
        ka_sid = client.conn.create_stream()

        def keepalive():
            if not done[0] and not client.conn.closed:
                client.conn.send_stream_data(ka_sid, b"k")
                client.pump()
                sim.schedule(0.05, keepalive)

        sim.schedule(0.05, keepalive)
        assert sim.run_until(lambda: done[0], timeout=300)
        assert injector.stats.nat_rebinds == 1
        assert len(received) == size
        sconn = sconns[0]
        assert sconn.stats["migrations"] >= 1
        # The push ran into the 3x budget at least once before the
        # PATH_RESPONSE lifted it.
        assert sconn.stats["amp_blocked"] >= 1
        assert registry.counter("quic.path.amp_blocked").value >= 1
        assert sconn.paths[0].state == PathState.VALIDATED
        assert not sconn.paths[0].amp_limited

    def test_rebind_is_deterministic_per_seed(self):
        def fingerprint(seed):
            *_, sconn, tracer, registry, injector = _nat_transfer(
                seed=seed, size=40_000)
            return (sconn.stats["migrations"],
                    sconn.stats["path_challenges_sent"],
                    tracer.summary().get("path_validation_state_changed"))

        assert fingerprint(3) == fingerprint(3)


class TestProbeChaos:
    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_duplicate_and_reorder_on_probes_converges(self, seed):
        """Satellite: duplicated and reordered ack-eliciting probe packets
        (PATH_CHALLENGE / PATH_RESPONSE among them) must not wedge the
        validation machine — it converges to VALIDATED and the transfer
        completes byte-exact."""
        *_, sconn, tracer, registry, injector = _nat_transfer(
            seed=seed, size=60_000,
            injector_kwargs=dict(duplicate_rate=0.2, reorder_rate=0.2,
                                 reorder_delay=0.02))
        assert injector.stats.duplicated > 0
        assert injector.stats.reordered > 0
        assert sconn.paths[0].state == PathState.VALIDATED
        # A duplicated PATH_RESPONSE to an already-consumed challenge is
        # benign: the state machine stays VALIDATED, never regresses.
        transitions = [
            (e.data["old"], e.data["new"]) for e in tracer.events
            if e.name == "path_validation_state_changed"
        ]
        assert transitions.count(("validated", "probing")) == 0


class TestOffPathRejection:
    def test_spoofed_datagram_does_not_steal_connection(self):
        """§9.3.2: an off-path attacker writing a new source address on a
        forged datagram must not migrate the connection or corrupt any
        per-path state."""
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10, seed=1)
        registry = MetricsRegistry()
        sconns, tracers = [], []
        server = ServerEndpoint(sim, topo.server, "server.0", 443,
                                on_connection=_serve(sconns, tracers, registry))
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5)
        sconn = sconns[0]
        before_state = (sconn.paths[0].peer_addr, sconn.paths[0].state)
        # Forge a short-header packet bearing the server's CID, injected
        # from the client's second interface with a foreign address.
        forged = bytes([0x40]) + sconn.local_cid \
            + (123).to_bytes(4, "big") + b"\x00" * 40
        injector = FaultInjector(sim)
        injector.schedule_address_spoof(
            topo.client, sim.now + 0.05, forged,
            "client.1", 6666, "server.0", 443)
        sim.run(until=sim.now + 0.5)
        assert injector.stats.spoofed == 1
        assert sconn.stats["off_path_rejected"] == 1
        assert registry.counter("quic.path.off_path_rejected").value == 1
        # Nothing moved: address and validation state are exactly as
        # before the spoof, and no migration was recorded.
        assert (sconn.paths[0].peer_addr, sconn.paths[0].state) == before_state
        assert sconn.stats["migrations"] == 0
        assert sconn.state is ConnectionState.ACTIVE


class TestActiveClientMigration:
    def test_migrate_rotates_cid_and_revalidates(self):
        """§9.5: an actively migrating client moves to a fresh local
        address, rotates to a server-issued CID so the paths cannot be
        linked, and the server follows after validation."""
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10, seed=1)
        registry = MetricsRegistry()
        sconns, tracers = [], []
        received = bytearray()
        done = [False]

        def on_conn(conn):
            sconns.append(conn)
            tracers.append(ConnectionTracer(conn, validate=True))
            ConnectionMetrics(conn, registry)
            conn.on_stream_data = lambda sid, d, fin: (
                received.extend(d), done.__setitem__(0, fin))

        server = ServerEndpoint(sim, topo.server, "server.0", 443,
                                on_connection=on_conn)
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5)
        sid = client.conn.create_stream()
        client.conn.send_stream_data(sid, b"a" * 30_000)
        client.pump()
        # Let the server's NEW_CONNECTION_ID arrive before migrating.
        assert sim.run_until(
            lambda: client.conn.peer_cids_available, timeout=5)
        old_cid = client.conn.peer_cid
        client.migrate("client.1", 5001)
        assert client.conn.stats["migrations"] == 1
        assert client.conn.stats["cids_rotated"] == 1
        assert client.conn.peer_cid != old_cid
        assert client.conn.peer_cid in sconns[0].issued_cids
        client.conn.send_stream_data(sid, b"b" * 30_000, fin=True)
        client.pump()
        assert sim.run_until(lambda: done[0], timeout=60)
        assert len(received) == 60_000
        assert sconns[0].paths[0].peer_addr == "client.1"
        assert client.conn.paths[0].state == PathState.VALIDATED


class TestStatelessReset:
    def test_reset_from_rebooted_server_moves_client_to_draining(self):
        """§10.3: a rebooted server holds no connection state but the
        same static reset key; its stateless reset must tear the stale
        client down into DRAINING, not leave it retrying forever."""
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10, seed=1)
        server = ServerEndpoint(sim, topo.server, "server.0", 443)
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        tracer = ConnectionTracer(client.conn, validate=True)
        registry = MetricsRegistry()
        ConnectionMetrics(client.conn, registry)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5)
        # The handshake advertised a reset token for the server's CID.
        assert client.conn._peer_reset_tokens
        # Let the final handshake flights settle so no Initial-epoch
        # packet is in flight across the reboot.
        sim.run(until=sim.now + 0.5)
        # Reboot: all connection state evaporates, the listener returns
        # on the same address/port and derives the same reset key.
        server.shutdown()
        server2 = ServerEndpoint(sim, topo.server, "server.0", 443)
        assert server2.reset_key == server.reset_key
        sid = client.conn.create_stream()
        client.conn.send_stream_data(sid, b"into the void" * 100, fin=True)
        client.pump()
        assert sim.run_until(
            lambda: client.conn.state is ConnectionState.DRAINING,
            timeout=30)
        assert server2.stats["stateless_resets_sent"] >= 1
        assert client.conn.stats["stateless_resets_received"] == 1
        assert registry.counter("quic.path.stateless_resets").value == 1
        assert tracer.summary().get("stateless_reset") == 1
        # DRAINING runs out into CLOSED on its own.
        assert sim.run_until(
            lambda: client.conn.state is ConnectionState.CLOSED, timeout=60)

    def test_reset_datagram_shape(self):
        """§10.3: a reset is >= 21 bytes, strictly smaller than the
        datagram that triggered it, looks like a short-header packet and
        carries the token in its final 16 bytes."""
        import random

        key, cid = b"k" * 32, b"\x07" * 8
        token = stateless_reset_token(key, cid)
        assert len(token) == 16
        assert token == stateless_reset_token(key, cid)  # deterministic
        assert token != stateless_reset_token(key, b"\x08" * 8)
        reset = build_stateless_reset(token, random.Random(1), 1200)
        assert reset is not None
        assert MIN_STATELESS_RESET_SIZE <= len(reset) < 1200
        assert not reset[0] & 0x80 and reset[0] & 0x40
        assert reset[-16:] == token
        assert is_stateless_reset(reset, {token})
        assert not is_stateless_reset(reset, {b"x" * 16})
        # A too-small trigger cannot be answered without a reset loop.
        assert build_stateless_reset(
            token, random.Random(1), MIN_STATELESS_RESET_SIZE) is None
        # Long-header datagrams are never mistaken for resets.
        assert not is_stateless_reset(b"\xc0" + reset[1:], {token})


class TestUndersizedInitials:
    def test_server_endpoint_drops_small_initials(self):
        """§14.1: a sub-1200-byte client Initial earns neither server
        state nor any reply bytes (no amplification for spoofers)."""
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
        server = ServerEndpoint(sim, topo.server, "server.0", 443)
        # A plausible long-header Initial, far below the padding target.
        runt = bytes([0xC0, 0, 0, 0, 1, 8]) + b"\x01" * 8 + b"\x00" * 60
        topo.client.sendto(runt, "client.0", 7777, "server.0", 443)
        sim.run(until=sim.now + 0.5)
        assert server.stats["undersized_initials"] == 1
        assert server.stats["accepted"] == 0
        assert server.connections == []
        # A real handshake still works afterwards.
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5)

    def test_connection_counts_undersized_initial(self):
        """The connection-level gate (for datagrams that reach an already
        accepted connection) counts and drops before key derivation."""
        from repro.quic.packet import PacketType, encode_long_header

        conn = QuicConnection(QuicConfiguration(is_client=False))
        header = encode_long_header(
            PacketType.INITIAL, b"\x01" * 8, b"\x02" * 8,
            packet_number=0, payload_length=64)
        conn.receive_datagram(header + b"\x00" * 64, now=0.0)
        assert conn.stats["undersized_initials_dropped"] == 1
        assert conn.stats["packets_received"] == 0


class TestProbeRetransmission:
    def test_path_response_never_retransmitted_on_loss(self):
        """Satellite pin (was `ignore` by accident, now by design):
        §13.3 — a lost PATH_RESPONSE is NOT retransmitted; the peer's
        timer-driven PATH_CHALLENGE repeat elicits a fresh response."""
        conn = QuicConnection(QuicConfiguration(is_client=True))
        frame = F.PathResponseFrame(data=b"\x11" * 8)
        conn.protoops.run(conn, "notify_frame", F.PATH_RESPONSE,
                          frame, False, None)
        assert conn._control_frames == []
        assert all(not p.probe_frames for p in conn.paths)

    def test_path_challenge_retransmit_is_timer_driven(self):
        """A lost PATH_CHALLENGE is likewise not frame-requeued — the
        probe timer re-sends it with PTO backoff on its own path."""
        conn = QuicConnection(QuicConfiguration(is_client=True))
        conn.start_path_validation(0)
        challenge = conn.paths[0].probe_frames[0]
        conn.paths[0].probe_frames.clear()  # "sent"
        conn.protoops.run(conn, "notify_frame", F.PATH_CHALLENGE,
                          challenge, False, None)
        assert conn._control_frames == []
        assert conn.paths[0].probe_frames == []
        # The timer path: same token, counted, backed-off deadline.
        deadline = conn.paths[0].probe_deadline
        conn.now = deadline
        conn.handle_timer(deadline)
        assert len(conn.paths[0].probe_frames) == 1
        assert conn.paths[0].probe_frames[0].data == challenge.data
        assert conn.paths[0].probe_deadline > deadline
        assert conn.stats["path_challenges_sent"] == 2

    def test_probe_gives_up_after_max_probes(self):
        from repro.quic.connection import MAX_PATH_PROBES

        conn = QuicConnection(QuicConfiguration(is_client=True))
        conn.start_path_validation(0)
        for _ in range(MAX_PATH_PROBES):
            deadline = conn.paths[0].probe_deadline
            assert deadline is not None
            conn.now = deadline
            conn.handle_timer(deadline)
        path = conn.paths[0]
        assert path.state == PathState.FAILED
        assert path.probe_deadline is None
        assert path.challenge_data is None
        assert not any(f.type == F.PATH_CHALLENGE for f in path.probe_frames)


class TestAmpBudget:
    def test_budget_arithmetic(self):
        path = Path(0, 12_000)
        assert path.amp_budget() > 1 << 60  # unlimited by default
        path.amp_limited = True
        path.amp_received = 1_000
        assert path.amp_budget() == AMP_FACTOR * 1_000
        path.amp_sent = 2_900
        assert path.amp_budget() == 100
        path.validated = True  # validation lifts the limit
        assert not path.amp_limited
        assert path.amp_budget() > 1 << 60

    def test_server_initial_path_is_limited_until_handshake(self):
        server = QuicConnection(QuicConfiguration(is_client=False))
        assert server.paths[0].amp_limited
        client = QuicConnection(QuicConfiguration(is_client=True))
        assert not client.paths[0].amp_limited
