"""TCP Cubic model tests."""

import pytest

from repro.netsim import Simulator, symmetric_topology
from repro.netsim.tcp import (
    CUBIC_BETA,
    CubicWindow,
    Segment,
    TcpBulkTransfer,
    FLAG_ACK,
    FLAG_FIN,
    FLAG_SYN,
)


class TestSegment:
    def test_roundtrip(self):
        seg = Segment(seq=1000, ack=2000, flags=FLAG_ACK | FLAG_FIN,
                      data=b"payload")
        parsed = Segment.decode(seg.encode())
        assert (parsed.seq, parsed.ack) == (1000, 2000)
        assert parsed.flags & FLAG_ACK and parsed.flags & FLAG_FIN
        assert parsed.data == b"payload"

    def test_sack_blocks_roundtrip(self):
        seg = Segment(ack=5, flags=FLAG_ACK,
                      sacks=[(10, 20), (40, 55), (100, 101)])
        parsed = Segment.decode(seg.encode())
        assert parsed.sacks == [(10, 20), (40, 55), (100, 101)]
        assert parsed.data == b""

    def test_header_overhead_is_40_bytes(self):
        assert Segment(data=b"").size == 40
        assert Segment(data=b"x" * 100).size == 140


class TestCubicWindow:
    def test_slow_start_doubles(self):
        win = CubicWindow(mss=1000)
        start = win.cwnd
        win.on_ack(int(start), now=1.0, rtt=0.1)
        assert win.cwnd == pytest.approx(2 * start)

    def test_loss_multiplies_by_beta(self):
        win = CubicWindow(mss=1000)
        win.cwnd = 100_000
        win.on_loss()
        assert win.cwnd == pytest.approx(100_000 * CUBIC_BETA)
        assert not win.in_slow_start

    def test_timeout_resets_to_one_mss(self):
        win = CubicWindow(mss=1000)
        win.cwnd = 50_000
        win.on_timeout()
        assert win.cwnd == 1000

    def test_cubic_growth_accelerates_past_wmax(self):
        win = CubicWindow(mss=1000)
        win.cwnd = 50_000
        win.on_loss()  # sets w_max, leaves slow start
        growth = []
        now = 0.0
        for _ in range(100):
            before = win.cwnd
            win.on_ack(1000, now=now, rtt=0.05)
            growth.append(win.cwnd - before)
            now += 0.01
        # Concave then convex: late growth exceeds mid growth.
        assert win.cwnd > 35_000

    def test_floor_two_mss(self):
        win = CubicWindow(mss=1000)
        for _ in range(20):
            win.on_loss()
        assert win.cwnd >= 2000


def run_flow(size, loss=0, d_ms=10, bw=20, seed=1, buffer_bytes=200_000,
             timeout=120):
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=d_ms, bw_mbps=bw, loss_pct=loss,
                              seed=seed, buffer_bytes=buffer_bytes)
    flow = TcpBulkTransfer(sim, size)
    flow.wire(
        lambda seg: topo.client.sendto(seg, "client.0", 1, "server.0", 2),
        lambda seg: topo.server.sendto(seg, "server.0", 2, "client.0", 1),
    )
    topo.client.bind(1, lambda d: flow.sender.on_segment(d.payload))
    topo.server.bind(2, lambda d: flow.receiver.on_segment(d.payload))
    flow.start()
    sim.run_until(lambda: flow.completed, timeout=timeout)
    return flow, sim


class TestBulkTransfer:
    def test_small_transfer_completes(self):
        flow, sim = run_flow(5_000)
        assert flow.completed
        assert flow.receiver.finished
        assert flow.receiver.bytes_received == 5_000

    def test_dct_includes_handshake_rtt(self):
        flow, sim = run_flow(1_000, d_ms=50, bw=100)
        # SYN/SYNACK (1 RTT) + data (1 RTT-ish).
        assert 0.2 < flow.dct < 0.35

    def test_large_transfer_near_link_rate(self):
        flow, sim = run_flow(5_000_000, bw=20)
        ideal = 5_000_000 * 8 / 20e6
        assert flow.completed
        assert flow.dct < 1.8 * ideal

    def test_transfer_with_random_loss(self):
        flow, sim = run_flow(500_000, loss=2, seed=5, timeout=300)
        assert flow.completed
        assert flow.sender.retransmissions > 0

    def test_transfer_through_tiny_buffer(self):
        flow, sim = run_flow(500_000, buffer_bytes=20_000, timeout=300)
        assert flow.completed

    def test_heavy_loss_still_completes(self):
        flow, sim = run_flow(100_000, loss=10, seed=7, timeout=600)
        assert flow.completed

    def test_rto_recovers_from_total_blackout(self):
        """Drop everything for a while, then heal: RTO must recover."""
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=20,
                                  buffer_bytes=200_000)
        blackout = {"on": False}
        flow = TcpBulkTransfer(sim, 50_000)

        def send_c(seg):
            if not blackout["on"]:
                topo.client.sendto(seg, "client.0", 1, "server.0", 2)

        flow.wire(send_c,
                  lambda seg: topo.server.sendto(seg, "server.0", 2,
                                                 "client.0", 1))
        topo.client.bind(1, lambda d: flow.sender.on_segment(d.payload))
        topo.server.bind(2, lambda d: flow.receiver.on_segment(d.payload))
        flow.start()
        sim.run(until=0.05)
        blackout["on"] = True
        sim.run(until=1.0)
        blackout["on"] = False
        assert sim.run_until(lambda: flow.completed, timeout=120)

    def test_mss_respected(self):
        sizes = []
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=50,
                                  buffer_bytes=500_000)
        flow = TcpBulkTransfer(sim, 100_000, mss=700)

        def send_c(seg):
            sizes.append(len(Segment.decode(seg).data))
            topo.client.sendto(seg, "client.0", 1, "server.0", 2)

        flow.wire(send_c,
                  lambda seg: topo.server.sendto(seg, "server.0", 2,
                                                 "client.0", 1))
        topo.client.bind(1, lambda d: flow.sender.on_segment(d.payload))
        topo.server.bind(2, lambda d: flow.receiver.on_segment(d.payload))
        flow.start()
        assert sim.run_until(lambda: flow.completed, timeout=60)
        assert max(sizes) <= 700
