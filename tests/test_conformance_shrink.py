"""Shrinker and ``repro conform`` CLI.

The acceptance bar for this harness: a deliberately-planted divergence
(a plugin whose behavior depends on the JIT kill switch) must be caught
by the oracles and shrunk — deterministically — to a minimal scenario,
and the CLI must speak in exit codes (0 pass, 1 oracle failure, 2 usage
error) so CI can gate on it.
"""

import json

import pytest

import repro.conformance as conf
from repro.cli import main
from repro.conformance.shrink import MIN_WORKLOAD


# --- ddmin in isolation ----------------------------------------------------

def test_ddmin_finds_minimal_pair():
    items = list(range(1, 9))
    calls = []

    def still_fails(subset):
        calls.append(tuple(subset))
        return 3 in subset and 6 in subset

    assert sorted(ddmin_result := conf.ddmin(items, still_fails)) == [3, 6]
    # 1-minimal: removing either survivor makes the failure vanish
    for item in ddmin_result:
        assert not still_fails([x for x in ddmin_result if x != item])


def test_ddmin_prefers_empty_and_single():
    assert conf.ddmin([1, 2, 3], lambda s: True) == []
    assert conf.ddmin([1, 2, 3], lambda s: 2 in s) == [2]
    assert conf.ddmin([], lambda s: False) == []


# --- scenario shrinking ----------------------------------------------------

def _planted() -> conf.Scenario:
    """A noisy scenario whose only real problem is the JIT-divergent
    plugin: everything else is an innocent bystander to shrink away."""
    return conf.Scenario(
        name="planted",
        workload=conf.Workload(size=16_000),
        topology=conf.Topology(d_ms=5.0, bw_mbps=50.0, loss_pct=1.0),
        plugins=("monitoring", "x-jit-divergent"),
        faults=(
            conf.FaultEvent(kind="duplicate", rate=0.01),
            conf.FaultEvent(kind="reorder", rate=0.02),
            conf.FaultEvent(kind="flap", at=0.3, duration=0.05),
        ),
        seed=97,
    )


def test_planted_divergence_shrinks_to_minimal_scenario():
    result = conf.shrink(_planted(), modes=conf.FAST_MODES)
    minimal = result.minimal
    assert result.failures, "shrinker lost the failure"
    # ≤3-event acceptance bar — in fact every fault is a bystander here
    assert len(minimal.faults) <= 3
    assert minimal.faults == ()
    assert minimal.plugins == ("x-jit-divergent",)
    assert minimal.workload.size == MIN_WORKLOAD
    assert minimal.topology.loss_pct == 0.0
    assert minimal.name == "planted.min"

    again = conf.shrink(_planted(), modes=conf.FAST_MODES)
    assert again.minimal.to_dict() == minimal.to_dict()
    assert again.evaluations == result.evaluations


def test_shrink_passing_scenario_is_identity():
    scenario = conf.load_suite("tiny")[0]
    result = conf.shrink(scenario, modes=(conf.Mode(),))
    assert result.minimal == scenario
    assert result.failures == []
    assert result.evaluations == 1


# --- CLI exit codes --------------------------------------------------------

def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_conform_cli_pass_exit_zero(capsys):
    code, out = run_cli(capsys, "conform", "--suite", "tiny",
                        "--modes", "J1-B1-A1,J0-B1-A1")
    assert code == 0
    assert "1/1 scenario(s) pass" in out


def test_conform_cli_failure_exit_one_and_writes_repro(capsys, tmp_path):
    repro_in = tmp_path / "case.repro.json"
    scenario = conf.load_suite("tiny")[0].with_(
        name="tiny-divergent", plugins=("x-jit-divergent",))
    conf.save_repro(repro_in, scenario, modes=conf.FAST_MODES)

    code, out = run_cli(capsys, "conform", "--repro", str(repro_in),
                        "--out", str(tmp_path / "repros"))
    assert code == 1
    assert "FAIL  tiny-divergent" in out
    assert "mode-parity" in out
    shrunk = tmp_path / "repros" / "tiny-divergent.repro.json"
    assert shrunk.exists()
    data = json.loads(shrunk.read_text())
    assert data["schema"] == conf.REPRO_SCHEMA
    assert data["scenario"]["plugins"] == ["x-jit-divergent"]
    assert data["failures"]


def test_conform_cli_usage_errors_exit_two(capsys, tmp_path):
    assert run_cli(capsys, "conform")[0] == 2
    assert run_cli(capsys, "conform", "--suite", "nope")[0] == 2
    assert run_cli(capsys, "conform", "--suite", "tiny",
                   "--modes", "J9-B1-A1")[0] == 2
    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"schema": "something-else"}')
    assert run_cli(capsys, "conform", "--repro", str(bogus))[0] == 2


def test_conform_cli_list(capsys):
    code, out = run_cli(capsys, "conform", "--list")
    assert code == 0
    for name in ("smoke", "faults", "tiny"):
        assert name in out
