"""Endpoint adapter tests: demultiplexing, timers, lifecycle."""

import pytest

from repro.netsim import Simulator, symmetric_topology
from repro.quic import ClientEndpoint, ServerEndpoint
from repro.quic.endpoint import ServerEndpoint as SE


def test_short_header_for_unknown_connection_dropped():
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    # A short-header packet (no FORM_LONG bit) with a random DCID.
    bogus = bytes([0x40]) + b"\xaa" * 8 + b"\x00" * 20
    topo.client.sendto(bogus, "client.0", 5000, "server.0", 443)
    sim.run()
    assert server.connections == []


def test_empty_datagram_ignored():
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    topo.client.sendto(b"", "client.0", 5000, "server.0", 443)
    sim.run()
    assert server.connections == []


def test_garbage_initial_does_not_crash_server():
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    garbage = bytes([0xC0]) + b"\x00\x00\x00\x0e" + bytes([8]) + b"\x01" * 8 \
        + bytes([8]) + b"\x02" * 8 + b"\x00" + b"\x00" * 40
    topo.client.sendto(garbage, "client.0", 5000, "server.0", 443)
    sim.run()
    # A connection object may be created, but the server keeps serving.
    client = ClientEndpoint(sim, topo.client, "client.0", 5001, "server.0", 443)
    client.connect()
    assert sim.run_until(lambda: client.conn.is_established, timeout=5)


def test_destination_cid_extraction():
    long_pkt = bytes([0xC0]) + b"\x00\x00\x00\x0e" + bytes([4]) + b"ABCD" + bytes([0])
    assert SE._destination_cid(long_pkt) == b"ABCD"
    short_pkt = bytes([0x40]) + b"12345678" + b"rest"
    assert SE._destination_cid(short_pkt) == b"12345678"
    assert SE._destination_cid(b"") is None
    assert SE._destination_cid(bytes([0xC0, 0x00])) is None


def test_client_timer_drives_retransmission():
    """Drop the first client Initial: the PTO timer must retry it."""
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    drop_next = {"on": True}
    original_sendto = topo.client.sendto

    def flaky_sendto(payload, *args):
        if drop_next["on"]:
            drop_next["on"] = False
            return False
        return original_sendto(payload, *args)

    topo.client.sendto = flaky_sendto
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    client.connect()
    assert sim.run_until(lambda: client.conn.is_established, timeout=10)


def test_close_stops_timers():
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    client.connect()
    assert sim.run_until(lambda: client.conn.is_established, timeout=5)
    client.close()
    sim.run(until=sim.now + 0.2)
    before = sim.now
    sim.run(until=before + 120)
    # No runaway timer events kept the simulation alive beyond the
    # server's idle timeout handling.
    assert client.conn.closed


def test_two_clients_same_port_different_hosts_addresses():
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    c1 = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    c2 = ClientEndpoint(sim, topo.client, "client.1", 5001, "server.0", 443)
    c1.connect()
    c2.connect()
    assert sim.run_until(
        lambda: c1.conn.is_established and c2.conn.is_established, timeout=5)
    assert len(server.connections) == 2
