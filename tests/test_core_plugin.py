"""Plugin / pluglet framework tests: serialization, attachment semantics,
memory isolation, runtime failure handling (§2)."""

import pytest

from repro.core import Anchor, Plugin, Pluglet, PluginCache, PluginInstance
from repro.core.api import FLD_SPIN_BIT, ApiViolation
from repro.core.cache import FieldPolicy
from repro.core.protoop import ProtoopError
from repro.quic import QuicConfiguration
from repro.quic.connection import QuicConnection
from repro.vm import VerificationError, assemble
from repro.vm.interpreter import HEAP_BASE


def make_conn():
    return QuicConnection(QuicConfiguration(is_client=True))


def noop_pluglet(name="nop", protoop="packet_sent_event", anchor="post", param=None):
    return Pluglet(name, protoop, anchor, assemble("exit"), param=param)


class TestSerialization:
    def test_roundtrip(self):
        plugin = Plugin("org.x.p", [
            noop_pluglet("a", "process_frame", "replace", param=0x30),
            noop_pluglet("b", "update_rtt", "pre"),
            noop_pluglet("c", "my_new_op", "external", param="stream"),
        ], memory_size=8192)
        data = plugin.serialize()
        back = Plugin.deserialize(data)
        assert back.name == plugin.name
        assert back.memory_size == 8192
        assert [(p.name, p.protoop, p.anchor, p.param) for p in back.pluglets] == [
            ("a", "process_frame", "replace", 0x30),
            ("b", "update_rtt", "pre", None),
            ("c", "my_new_op", "external", "stream"),
        ]
        assert back.serialize() == data

    def test_compression_roundtrip(self):
        plugin = Plugin("org.x.q", [noop_pluglet()])
        assert Plugin.decompress(plugin.compressed()).serialize() == plugin.serialize()

    def test_compressed_smaller_for_real_plugins(self):
        from repro.plugins.monitoring import build_monitoring_plugin

        plugin = build_monitoring_plugin()
        stats = plugin.stats()
        assert stats["compressed_bytes"] < stats["size_bytes"]

    def test_bad_anchor_rejected(self):
        with pytest.raises(ValueError):
            Pluglet("x", "op", "sideways", assemble("exit"))

    def test_verify_all_rejects_bad_bytecode(self):
        from repro.vm.isa import Instruction, Op

        bad = Pluglet("bad", "op", "post", [Instruction(Op.MOV_IMM, dst=0)])
        plugin = Plugin("org.x.bad", [bad])
        with pytest.raises(VerificationError):
            plugin.verify_all()
        with pytest.raises(VerificationError):
            PluginInstance(plugin, make_conn())


class TestAttachment:
    def test_post_pluglet_runs(self):
        conn = make_conn()
        pluglet = Pluglet("count", "packet_sent_event", "post", assemble("""
            mov r1, 1
            mov r2, 8
            call 5      ; get_opaque_data
            ldxdw r1, [r0+0]
            add r1, 1
            stxdw [r0+0], r1
            exit
        """))
        inst = PluginInstance(Plugin("org.x.c", [pluglet]), conn)
        inst.attach()
        conn.protoops.run(conn, "packet_sent_event", None, "pkt")
        conn.protoops.run(conn, "packet_sent_event", None, "pkt")
        assert int.from_bytes(inst.runtime.memory.data[0:8], "little") == 2

    def test_replace_pluglet_overrides(self):
        conn = make_conn()
        pluglet = Pluglet("always7", "select_sending_path", "replace",
                          assemble("mov r0, 0\nexit"))
        inst = PluginInstance(Plugin("org.x.r", [pluglet]), conn)
        inst.attach()
        assert conn.protoops.run(conn, "select_sending_path", None) == 0

    def test_double_replace_rolls_back_whole_plugin(self):
        """§2.2: if a second pluglet tries to replace the same operation,
        the plugin it belongs to is rolled back."""
        conn = make_conn()
        first = PluginInstance(Plugin("org.x.one", [
            Pluglet("r1", "select_sending_path", "replace",
                    assemble("mov r0, 0\nexit")),
        ]), conn)
        first.attach()
        second = PluginInstance(Plugin("org.x.two", [
            Pluglet("obs", "packet_sent_event", "post", assemble("exit")),
            Pluglet("r2", "select_sending_path", "replace",
                    assemble("mov r0, 0\nexit")),
        ]), conn)
        with pytest.raises(ProtoopError):
            second.attach()
        # The whole second plugin is gone, including its post pluglet.
        assert "org.x.two" not in conn.plugins
        op = conn.protoops.get("packet_sent_event")
        assert not op.post.get(None)
        # The first plugin still works.
        assert "org.x.one" in conn.plugins

    def test_detach_restores_builtin(self):
        conn = make_conn()
        inst = PluginInstance(Plugin("org.x.d", [
            Pluglet("r", "select_sending_path", "replace",
                    assemble("mov r0, 0\nexit")),
        ]), conn)
        inst.attach()
        inst.detach()
        assert conn.plugins == {}
        assert conn.protoops.run(conn, "select_sending_path", None) == 0

    def test_plugin_injected_event_fires(self):
        conn = make_conn()
        seen = []
        conn.protoops.attach("plugin_injected", Anchor.POST,
                             lambda c, args, res: seen.append(args[0]))
        PluginInstance(Plugin("org.x.e", [noop_pluglet()]), conn).attach()
        assert seen == ["org.x.e"]


class TestIsolation:
    def test_plugins_have_separate_memories(self):
        """§2: each plugin instance has its own memory, shared only among
        its pluglets."""
        conn = make_conn()
        writer = assemble(f"""
            mov r1, 1
            mov r2, 8
            call 5
            stdw [r0+0], 77
            exit
        """)
        p1 = PluginInstance(Plugin("org.x.p1", [
            Pluglet("w", "packet_sent_event", "post", writer)]), conn)
        p2 = PluginInstance(Plugin("org.x.p2", [
            Pluglet("w", "packet_lost_event", "post", writer)]), conn)
        p1.attach()
        p2.attach()
        conn.protoops.run(conn, "packet_sent_event", None)
        assert int.from_bytes(p1.runtime.memory.data[0:8], "little") == 77
        assert int.from_bytes(p2.runtime.memory.data[0:8], "little") == 0

    def test_pluglets_of_same_plugin_share_heap(self):
        conn = make_conn()
        writer = assemble("mov r1, 1\nmov r2, 8\ncall 5\nstdw [r0+0], 5\nexit")
        reader = assemble("mov r1, 1\nmov r2, 8\ncall 5\nldxdw r0, [r0+0]\nexit")
        inst = PluginInstance(Plugin("org.x.share", [
            Pluglet("w", "packet_sent_event", "post", writer),
            Pluglet("r", "my_reader", "replace", reader),
        ]), conn)
        inst.attach()
        conn.protoops.run(conn, "packet_sent_event", None)
        assert conn.protoops.run(conn, "my_reader", None) == 5

    def test_memory_violation_kills_plugin_and_connection(self):
        """§2.1: any violation of memory safety results in the removal of
        the plugin and the termination of the connection."""
        conn = make_conn()
        bad = Pluglet("wild", "packet_sent_event", "post",
                      assemble("lddw r2, 0x7f00000000\nldxdw r0, [r2+0]\nexit"))
        inst = PluginInstance(Plugin("org.x.bad", [bad]), conn)
        inst.attach()
        with pytest.raises(Exception):
            conn.protoops.run(conn, "packet_sent_event", None)
        assert conn.closed
        assert "org.x.bad" not in conn.plugins
        assert not inst.attached

    def test_passive_pluglet_cannot_set(self):
        """§2.2: pre/post pluglets have read-only access."""
        conn = make_conn()
        bad = Pluglet("setter", "packet_sent_event", "post", assemble(f"""
            mov r1, {FLD_SPIN_BIT}
            mov r2, 0
            mov r3, 1
            call 2       ; set
            exit
        """))
        inst = PluginInstance(Plugin("org.x.pw", [bad]), conn)
        inst.attach()
        with pytest.raises(ApiViolation):
            conn.protoops.run(conn, "packet_sent_event", None)
        assert conn.closed

    def test_replace_pluglet_can_set(self):
        conn = make_conn()
        ok = Pluglet("setter", "my_setter", "replace", assemble(f"""
            mov r1, {FLD_SPIN_BIT}
            mov r2, 0
            mov r3, 1
            call 2
            exit
        """))
        PluginInstance(Plugin("org.x.rw", [ok]), conn).attach()
        conn.protoops.run(conn, "my_setter", None)
        assert conn.spin_bit is True

    def test_field_policy_blocks_spin_bit_write(self):
        """§2.3: 'a client could refuse plugins that modify the Spin Bit'."""
        conn = make_conn()
        conn.field_policy = FieldPolicy(forbidden_writes={"spin_bit"})
        bad = Pluglet("setter", "my_setter", "replace", assemble(f"""
            mov r1, {FLD_SPIN_BIT}
            mov r2, 0
            mov r3, 1
            call 2
            exit
        """))
        PluginInstance(Plugin("org.x.pol", [bad]), conn).attach()
        with pytest.raises(ApiViolation):
            conn.protoops.run(conn, "my_setter", None)

    def test_field_accesses_recorded(self):
        conn = make_conn()
        reader = Pluglet("rd", "my_rd", "replace",
                         assemble("mov r1, 0x10\nmov r2, 0\ncall 1\nexit"))
        inst = PluginInstance(Plugin("org.x.acct", [reader]), conn)
        inst.attach()
        conn.protoops.run(conn, "my_rd", None)
        assert "srtt" in inst.runtime.fields_read


class TestCache:
    def test_instantiate_requires_store(self):
        cache = PluginCache()
        with pytest.raises(KeyError):
            cache.instantiate("nope", make_conn())

    def test_reuse_resets_heap(self):
        """§2.5: cached PREs are reused; the plugin heap must be
        reinitialized to avoid leaking information between connections."""
        cache = PluginCache()
        writer = Pluglet("w", "packet_sent_event", "post", assemble(
            "mov r1, 1\nmov r2, 8\ncall 5\nstdw [r0+0], 9\nexit"))
        cache.store(Plugin("org.x.cache", [writer]))
        conn1 = make_conn()
        inst1 = cache.instantiate("org.x.cache", conn1)
        inst1.attach()
        conn1.protoops.run(conn1, "packet_sent_event", None)
        assert any(inst1.runtime.memory.data)
        cache.release(inst1)
        conn2 = make_conn()
        inst2 = cache.instantiate("org.x.cache", conn2)
        assert inst2 is inst1  # same PREs reused
        assert not any(inst2.runtime.memory.data)  # heap reinitialized
        assert inst2.conn is conn2
        assert cache.hits == 1

    def test_fresh_instances_without_release(self):
        cache = PluginCache()
        cache.store(Plugin("org.x.f", [noop_pluglet()]))
        a = cache.instantiate("org.x.f", make_conn())
        b = cache.instantiate("org.x.f", make_conn())
        assert a is not b
        assert cache.misses == 2

    def test_store_verifies(self):
        from repro.vm.isa import Instruction, Op

        cache = PluginCache()
        bad = Plugin("org.x.nv", [
            Pluglet("b", "op", "post", [Instruction(Op.MOV_IMM, dst=0)])])
        with pytest.raises(VerificationError):
            cache.store(bad)
