"""Connection lifecycle tests: close/drain state machine (RFC 9000 §10),
server-side eviction, CID retirement and many-connection churn."""

import pytest

from repro.netsim import Simulator, symmetric_topology
from repro.quic import ClientEndpoint, ServerEndpoint
from repro.quic.connection import ConnectionState
from repro.trace import MetricsRegistry


def handshake(sim, topo, port=5000, server=None):
    client = ClientEndpoint(sim, topo.client, "client.0", port,
                            "server.0", 443)
    client.connect()
    assert sim.run_until(lambda: client.conn.is_established, timeout=5)
    return client


class TestStateMachine:
    def test_local_close_enters_closing_then_closed(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
        ServerEndpoint(sim, topo.server, "server.0", 443)
        client = handshake(sim, topo)
        client.close(3, "bye")
        assert client.conn.state is ConnectionState.CLOSING
        assert client.conn.closed
        assert client.conn.drain_deadline is not None
        # The drain timer must terminate the connection on its own.
        assert sim.run_until(
            lambda: client.conn.state is ConnectionState.CLOSED, timeout=30)
        assert client.conn.drain_deadline is None
        assert client.conn.close_error == (3, "bye")

    def test_peer_close_enters_draining(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
        server = ServerEndpoint(sim, topo.server, "server.0", 443)
        client = handshake(sim, topo)
        conn = server.connections[0]
        client.close(0, "done")
        # The server sees CONNECTION_CLOSE and drains without replying.
        assert sim.run_until(
            lambda: conn.state is ConnectionState.DRAINING, timeout=5)
        sent_while_draining = conn.stats["packets_sent"]
        assert sim.run_until(
            lambda: conn.state is ConnectionState.CLOSED, timeout=30)
        assert conn.stats["packets_sent"] == sent_while_draining
        assert conn.close_error == (0, "done")

    def test_idle_timeout_closes_silently(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
        ServerEndpoint(sim, topo.server, "server.0", 443)
        client = handshake(sim, topo)
        # Let the post-handshake exchange settle (the server's
        # NEW_CONNECTION_ID draws one final ACK) before going idle.
        sim.run(until=sim.now + 1.0)
        sent = client.conn.stats["packets_sent"]
        # No drain period for an idle timeout: nothing to say, nobody
        # listening — straight to CLOSED without sending a close frame.
        assert sim.run_until(
            lambda: client.conn.state is ConnectionState.CLOSED, timeout=120)
        assert client.conn.close_error == (0, "idle timeout")
        assert client.conn.stats["packets_sent"] == sent

    def test_on_closed_fires_once_at_termination(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
        ServerEndpoint(sim, topo.server, "server.0", 443)
        client = handshake(sim, topo)
        fired = []
        client.conn.on_closed = lambda c: fired.append(c)
        client.close()
        assert fired == []  # not yet: the drain period is still running
        assert sim.run_until(
            lambda: client.conn.state is ConnectionState.CLOSED, timeout=30)
        client.conn.handle_timer(sim.now + 99)  # must stay idempotent
        assert fired == [client.conn]

    def test_termination_retires_cids_and_releases_state(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
        ServerEndpoint(sim, topo.server, "server.0", 443)
        client = handshake(sim, topo)
        sid = client.conn.create_stream()
        client.conn.send_stream_data(sid, b"x", fin=True)
        client.close()
        assert sim.run_until(
            lambda: client.conn.state is ConnectionState.CLOSED, timeout=30)
        assert client.conn.local_cid in client.conn.retired_cids
        assert not client.conn.streams_send
        assert not client.conn.streams_recv
        for path in client.conn.paths:
            assert not path.space.sent

    def test_close_frame_retransmit_is_rate_limited(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
        server = ServerEndpoint(sim, topo.server, "server.0", 443)
        client = handshake(sim, topo)
        conn = server.connections[0]
        conn.close(0, "server closed")
        # Keep poking the closing server with datagrams: §10.2.1 requires
        # backoff — close-frame retransmits per packet must *decrease*.
        driver = server._by_cid[conn.local_cid]
        replies = []
        for _ in range(8):
            before = conn.stats["packets_sent"]
            for _ in range(8):
                client.pump()
                sim.run(until=sim.now + 0.001)
                client.conn.send_stream_data(client.conn.create_stream(),
                                             b"poke")
                client.pump()
                sim.run(until=sim.now + 0.02)
            replies.append(conn.stats["packets_sent"] - before)
            if conn.state is not ConnectionState.CLOSING:
                break
        assert replies[-1] <= replies[0]


class TestServerEviction:
    def test_eviction_unbinds_cids_and_counts(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
        metrics = MetricsRegistry()
        server = ServerEndpoint(sim, topo.server, "server.0", 443,
                                metrics=metrics)
        client = handshake(sim, topo)
        # Client's initial DCID, the server's own CID, and the spare CID
        # issued for migration (§9.5) at handshake completion.
        assert len(server._by_cid) == 3
        client.close()
        assert sim.run_until(lambda: server.stats["evicted"] == 1, timeout=30)
        assert server._by_cid == {}
        assert server.connections == []
        assert server.stats["cids_retired"] == 3
        assert metrics.counter("quic.server.connections_accepted").value == 1
        assert metrics.counter("quic.server.connections_evicted").value == 1
        assert metrics.counter("quic.server.cids_retired").value == 3

    def test_duplicate_initial_does_not_spawn_second_connection(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
        server = ServerEndpoint(sim, topo.server, "server.0", 443)
        captured = []
        original_sendto = topo.client.sendto

        def capturing_sendto(payload, *args):
            if not captured:
                captured.append((payload, args))
            return original_sendto(payload, *args)

        topo.client.sendto = capturing_sendto
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5)
        assert server.stats["accepted"] == 1
        # Replay the captured client Initial: the DCID is still bound, so
        # the datagram must demux onto the existing connection.
        payload, args = captured[0]
        original_sendto(payload, *args)
        sim.run(until=sim.now + 1.0)
        assert server.stats["accepted"] == 1
        assert len(server.connections) == 1

    def test_client_port_unbinds_after_termination(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
        ServerEndpoint(sim, topo.server, "server.0", 443)
        client = handshake(sim, topo)
        client.close()
        assert sim.run_until(
            lambda: client.conn.state is ConnectionState.CLOSED, timeout=30)
        sim.run(until=sim.now + 1.0)
        # The port is free again: a fresh client may bind it.
        client2 = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                 "server.0", 443)
        client2.connect()
        assert sim.run_until(lambda: client2.conn.is_established, timeout=5)


class TestChurn:
    def test_sequential_churn_keeps_server_bounded(self):
        """200 sequential connections: the demux table and the event
        queue stay bounded by the number of *open* connections."""
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=50)
        server = ServerEndpoint(sim, topo.server, "server.0", 443)
        for i in range(200):
            client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                    "server.0", 443)
            client.connect()
            assert sim.run_until(lambda: client.conn.is_established,
                                 timeout=10)
            client.close()
            assert sim.run_until(
                lambda: client.conn.state is ConnectionState.CLOSED,
                timeout=30)
            # <= one still-draining connection, three CIDs each (initial
            # DCID, the server CID, and the spare issued for migration).
            assert len(server._by_cid) <= 3
            assert len(server.connections) <= 1
        sim.run(until=sim.now + 2.0)
        assert server.stats["accepted"] == 200
        assert server.stats["evicted"] == 200
        assert server._by_cid == {}
        assert sim.pending() == 0

    def test_concurrent_connections_all_complete(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=20)
        closed = []

        def on_conn(conn):
            def on_data(sid, data, fin):
                if fin:
                    conn.close(0, "done")
            conn.on_stream_data = on_data

        server = ServerEndpoint(sim, topo.server, "server.0", 443,
                                on_connection=on_conn)
        clients = []
        for i in range(20):
            client = ClientEndpoint(sim, topo.client, "client.0", 5000 + i,
                                    "server.0", 443)
            client.conn.on_closed = lambda c: closed.append(c)
            clients.append(client)
            sim.schedule(i * 0.002, client.connect)

        def send_when_ready():
            for client in clients:
                if (client.conn.is_established and not client.conn.closed
                        and not client.conn.streams_send):
                    sid = client.conn.create_stream()
                    client.conn.send_stream_data(sid, b"q" * 800, fin=True)
                    client.pump()

        for k in range(1, 100):
            sim.schedule(k * 0.05, send_when_ready)
        assert sim.run_until(
            lambda: server.stats["evicted"] == 20 and len(closed) == 20,
            timeout=120)
        assert server.stats["peak_connections"] <= 20
        assert server._by_cid == {}
