"""JSONL writer: header/footer framing, crash-tolerant prefixes, and a
hypothesis round-trip property."""

import io
import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trace import (
    JsonlTraceWriter,
    TRACE_SCHEMA_VERSION,
    read_jsonl,
    validate_stream,
)

#: Generates schema-valid packet_sent event records.
event_records = st.builds(
    lambda t, pn, size, path, ae: {
        "type": "event", "time": t, "category": "transport",
        "name": "packet_sent",
        "data": {"packet_number": pn, "size": size, "path": path,
                 "ack_eliciting": ae},
    },
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    st.integers(min_value=0, max_value=2**62),
    st.integers(min_value=0, max_value=65535),
    st.integers(min_value=0, max_value=7),
    st.booleans(),
)


class TestFraming:
    def test_header_events_footer(self, tmp_path):
        path = tmp_path / "t.jsonl"
        w = JsonlTraceWriter(path)
        w.write_header(vantage_point="client")
        w.write_event({"time": 1.0, "category": "recovery",
                       "name": "loss_alarm_fired", "data": {}})
        w.close(dropped=2)
        doc = read_jsonl(path)
        assert doc["header"]["schema"] == TRACE_SCHEMA_VERSION
        assert doc["header"]["vantage_point"] == "client"
        assert len(doc["events"]) == 1
        assert doc["events"][0]["type"] == "event"
        assert doc["footer"] == {"type": "footer", "events": 1, "dropped": 2}
        validate_stream(doc["records"])

    def test_header_written_lazily_and_once(self):
        buf = io.StringIO()
        w = JsonlTraceWriter(buf)
        w.write_event({"time": 0.0, "category": "connectivity",
                       "name": "connection_established", "data": {}})
        w.write_header()  # second call is a no-op
        w.close()
        lines = [json.loads(line) for line in
                 buf.getvalue().splitlines()]
        assert [r["type"] for r in lines] == ["header", "event", "footer"]

    def test_write_after_close_rejected(self):
        w = JsonlTraceWriter(io.StringIO())
        w.close()
        with pytest.raises(ValueError):
            w.write_event({"time": 0.0, "category": "trace",
                           "name": "truncated",
                           "data": {"dropped": 1, "recorded": 1}})

    def test_crashed_run_leaves_parseable_prefix(self):
        # No close(): the stream must still parse line-by-line, with the
        # missing footer detectable by the consumer.
        buf = io.StringIO()
        w = JsonlTraceWriter(buf)
        w.write_event({"time": 0.0, "category": "connectivity",
                       "name": "connection_closed", "data": {}})
        doc = read_jsonl(io.StringIO(buf.getvalue()))
        assert doc["footer"] is None
        assert len(doc["events"]) == 1
        validate_stream(doc["records"], require_footer=False)


class TestRoundTrip:
    @given(st.lists(event_records, max_size=30),
           st.integers(min_value=0, max_value=1000))
    def test_write_read_round_trip(self, events, dropped):
        """What goes in comes back out: same events, same order, same
        values, with a footer that accounts for every line."""
        buf = io.StringIO()
        w = JsonlTraceWriter(buf)
        w.write_header(vantage_point="server")
        for record in events:
            w.write_event(dict(record))
        w.close(dropped=dropped)

        doc = read_jsonl(io.StringIO(buf.getvalue()))
        assert doc["events"] == events
        assert doc["footer"]["events"] == len(events)
        assert doc["footer"]["dropped"] == dropped
        counts = validate_stream(doc["records"])
        assert counts["events"] == len(events)
