"""ECN plugin tests (the §4 '<100 lines' case study)."""

import struct

import pytest

from repro.core import PluginInstance
from repro.netsim import Simulator, symmetric_topology
from repro.plugins.ecn import (
    OFF_LAST_REACTED,
    OFF_REDUCTIONS,
    ST_AREA,
    EcnFeedbackFrame,
    build_ecn_plugin,
)
from repro.quic import ClientEndpoint, ServerEndpoint
from repro.quic.wire import Buffer
from repro.termination import check_termination
from repro.vm.interpreter import HEAP_BASE


def sender_state(instance):
    addr = instance.runtime._opaque.get(ST_AREA)
    if addr is None:
        return None
    vals = struct.unpack_from("<4Q", instance.runtime.memory.data,
                              addr - HEAP_BASE)
    return {"reported": vals[0], "reacted": vals[1],
            "reductions": vals[2], "last_cut_us": vals[3]}


def run_ecn_transfer(size=600_000, threshold=20_000, use_ecn=True, seed=3):
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=20, bw_mbps=10, seed=seed)
    if threshold is not None:
        for link in topo.path_links:
            for pipe in (link.forward, link.backward):
                pipe.ecn_threshold = threshold
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    ci = None
    if use_ecn:
        ci = PluginInstance(build_ecn_plugin(), client.conn)
        ci.attach()
    state = {}

    def on_conn(conn):
        if use_ecn:
            PluginInstance(build_ecn_plugin(), conn).attach()
        state["sconn"] = conn

    server.on_connection = on_conn
    client.connect()
    done = [False]
    assert sim.run_until(
        lambda: client.conn.is_established and "sconn" in state, timeout=5)
    state["sconn"].on_stream_data = lambda sid, d, fin: done.__setitem__(0, fin)
    sid = client.conn.create_stream()
    client.conn.send_stream_data(sid, b"e" * size, fin=True)
    client.pump()
    assert sim.run_until(lambda: done[0], timeout=120)
    return sim, topo, client, state["sconn"], ci


def test_frame_roundtrip():
    frame = EcnFeedbackFrame(ce_count=1234)
    buf = Buffer(frame.to_bytes())
    parsed = EcnFeedbackFrame.parse(buf, buf.pull_varint())
    assert parsed.ce_count == 1234
    assert not frame.ack_eliciting


def test_pluglets_verified_and_terminating():
    plugin = build_ecn_plugin()
    plugin.verify_all()
    for pluglet in plugin.pluglets:
        assert check_termination(pluglet.instructions).proven


def test_router_marks_instead_of_dropping():
    sim, topo, client, sconn, ci = run_ecn_transfer()
    marked = sum(p.ecn_marked for l in topo.path_links
                 for p in (l.forward, l.backward))
    assert marked > 0
    assert sconn.stats["ecn_ce_received"] > 0


def test_sender_reacts_at_most_once_per_rtt():
    sim, topo, client, sconn, ci = run_ecn_transfer()
    state = sender_state(ci)
    assert state["reductions"] > 0
    # RFC 3168 pacing: far fewer cuts than CE marks echoed.
    assert state["reductions"] < state["reacted"] / 3
    # Whole transfer lasted ~1-2s, RTT 40 ms: cuts bounded accordingly.
    assert state["reductions"] < 40


def test_ecn_reduces_losses():
    """The point of ECN: congestion signalled by marks, not drops."""
    _sim, topo1, client_ecn, _s1, _ci = run_ecn_transfer(use_ecn=True)
    _sim2, topo2, client_plain, _s2, _ = run_ecn_transfer(use_ecn=False,
                                                          threshold=None)
    # With ECN + AQM, the sender backs off before the buffer overflows.
    assert (client_ecn.conn.stats["packets_lost"]
            <= client_plain.conn.stats["packets_lost"])


def test_no_marks_without_congestion():
    sim, topo, client, sconn, ci = run_ecn_transfer(size=5_000)
    assert sconn.stats["ecn_ce_received"] == 0
    state = sender_state(ci)
    assert state is None or state["reductions"] == 0
