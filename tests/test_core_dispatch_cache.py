"""Protoop dispatch-cache invalidation.

The ``ProtoopTable`` precomputes a flat call plan per (protoop, param).
These tests pin the invalidation protocol: any anchor change —
``register``/``attach``/``detach``, including a containment-triggered
quarantine mid-connection — must drop stale plans, and a plan captured at
the start of a run must not fire anchors that were removed while the run
was in flight.
"""

import pytest

from repro.core import ContainmentPolicy, Plugin, PluginInstance, Pluglet
from repro.core.protoop import Anchor, ProtoopTable
from repro.quic import QuicConfiguration
from repro.quic.connection import QuicConnection
from repro.vm import assemble

LOOP = "top:\nja top\nexit"  # statically verifiable, never terminates


def make_table():
    table = ProtoopTable()
    table.register("greet", lambda conn, *a: "default")
    return table


def make_conn():
    return QuicConnection(QuicConfiguration(is_client=True))


def looping_plugin(name="org.x.spin", fuel=200):
    return Plugin(name, [
        Pluglet("spin", "packet_sent_event", "post", assemble(LOOP),
                fuel=fuel),
    ])


class TestPlanCache:
    def test_plan_built_once_and_reused(self):
        table = make_table()
        for _ in range(5):
            assert table.run(None, "greet") == "default"
        assert table.plan_builds == 1
        assert table.runs == 5

    def test_attach_invalidates_plan(self):
        table = make_table()
        table.run(None, "greet")
        fired = []
        table.attach("greet", Anchor.PRE, lambda conn, args: fired.append(1))
        assert table.run(None, "greet") == "default"
        assert fired == [1]
        assert table.plan_builds == 2

    def test_detach_invalidates_plan(self):
        table = make_table()
        fired = []
        table.attach("greet", Anchor.POST, lambda conn, args, res: fired.append(1))
        table.run(None, "greet")
        assert fired == [1]
        # detach expects the exact callable; re-fetch it from the op.
        post = table.get("greet").post[None][0]
        table.detach("greet", Anchor.POST, post)
        table.run(None, "greet")
        assert fired == [1]  # did not fire again

    def test_replace_attach_and_detach(self):
        table = make_table()
        assert table.run(None, "greet") == "default"

        def replacement(conn, *a):
            return "plugged"

        table.attach("greet", Anchor.REPLACE, replacement)
        assert table.run(None, "greet") == "plugged"
        table.detach("greet", Anchor.REPLACE, replacement)
        assert table.run(None, "greet") == "default"

    def test_known_params_tracks_attach(self):
        table = ProtoopTable()
        table.register("process_frame", lambda conn, *a: None, param=0x01,
                       parameterized=True)
        assert table.known_params("process_frame") == frozenset({0x01})
        table.attach("process_frame", Anchor.REPLACE,
                     lambda conn, *a: "new", param=0x42)
        assert 0x42 in table.known_params("process_frame")

    def test_has_behavior_follows_replacements(self):
        table = ProtoopTable()
        table.declare("event_hook")
        assert not table.has_behavior("event_hook")
        table.attach("event_hook", Anchor.REPLACE, lambda conn, *a: 1)
        assert table.has_behavior("event_hook")

    def test_midrun_detach_resolves_fresh_behavior(self):
        """A pre anchor that detaches the replacement mid-run must cause
        the default behaviour to run, exactly as uncached dispatch (which
        resolved the behaviour only after the pre chain) did."""
        table = make_table()

        def replacement(conn, *a):
            return "plugged"

        table.attach("greet", Anchor.REPLACE, replacement)

        def saboteur(conn, args):
            table.detach("greet", Anchor.REPLACE, replacement)

        table.attach("greet", Anchor.PRE, saboteur)
        assert table.run(None, "greet") == "default"

    def test_midrun_attach_of_post_fires(self):
        """Uncached dispatch snapshotted post anchors after the behaviour
        ran; a post attached by the behaviour itself therefore fired."""
        table = ProtoopTable()
        fired = []

        def behavior(conn, *a):
            table.attach("late", Anchor.POST,
                         lambda conn, args, res: fired.append(res))
            return "r"

        table.register("late", behavior)
        assert table.run(None, "late") == "r"
        assert fired == ["r"]


class TestQuarantineInvalidation:
    def test_quarantined_plugin_anchors_never_fire_again(self):
        """Containment detaches a faulting plugin mid-connection; the next
        dispatch must rebuild its plan and skip the stale post anchor."""
        conn = make_conn()
        ContainmentPolicy().attach(conn)
        inst = PluginInstance(looping_plugin(fuel=200), conn)
        inst.attach()
        table = conn.protoops

        conn.protoops.run(conn, "packet_sent_event", None)
        assert not conn.closed
        assert not inst.attached
        executed_after_fault = inst.vms["spin"].instructions_executed
        assert executed_after_fault == 200  # fuel budget, fully charged

        builds = table.plan_builds
        conn.protoops.run(conn, "packet_sent_event", None)
        assert table.plan_builds > builds  # plan was rebuilt...
        assert inst.vms["spin"].instructions_executed == executed_after_fault
        # ...and stays cached afterwards.
        builds = table.plan_builds
        conn.protoops.run(conn, "packet_sent_event", None)
        assert table.plan_builds == builds

    def test_attach_mid_connection_visible_immediately(self):
        conn = make_conn()
        table = conn.protoops
        # Warm the plan for the event with no plugins attached.
        table.run(conn, "packet_sent_event", None)
        seen = []
        counter = Plugin("org.x.count", [
            Pluglet("count", "packet_sent_event", "post",
                    assemble("mov r0, 1\nexit")),
        ])
        inst = PluginInstance(counter, conn)
        inst.attach()
        table.run(conn, "packet_sent_event", None)
        assert inst.vms["count"].instructions_executed > 0
        inst.detach()
        executed = inst.vms["count"].instructions_executed
        table.run(conn, "packet_sent_event", None)
        assert inst.vms["count"].instructions_executed == executed
        assert seen == []  # nothing unexpected fired


class TestPlanCorrectness:
    def test_loop_detection_survives_caching(self):
        table = ProtoopTable()

        def recurse(conn, *a):
            return table.run(conn, "selfcall")

        table.register("selfcall", recurse)
        with pytest.raises(Exception, match="loop"):
            table.run(None, "selfcall")

    def test_external_protoop_still_guarded(self):
        table = ProtoopTable()
        table.register("app_op", lambda conn, *a: "app", external=True)
        with pytest.raises(Exception, match="external"):
            table.run(None, "app_op")
        assert table.run_external(None, "app_op") == "app"
