"""Static verifier tests: the five §2.1 checks plus stack validation."""

import pytest

from repro.vm import Instruction, Op, VerificationError, assemble, verify
from repro.vm.verifier import verify_bytecode
from repro.vm.isa import encode_program


def test_accepts_minimal_program():
    verify(assemble("exit"))


def test_check_i_exit_required():
    with pytest.raises(VerificationError, match="no exit"):
        verify([Instruction(Op.MOV_IMM, dst=0, imm=1)])


def test_empty_program_rejected():
    with pytest.raises(VerificationError, match="empty"):
        verify([])


def test_check_ii_unknown_opcode():
    with pytest.raises(VerificationError, match="unknown opcode"):
        verify([Instruction(0xFE, 0, 0, 0, 0), Instruction(Op.EXIT)])


def test_check_ii_invalid_registers():
    with pytest.raises(VerificationError, match="invalid dst"):
        verify([Instruction(Op.MOV_IMM, dst=12), Instruction(Op.EXIT)])
    with pytest.raises(VerificationError, match="invalid src"):
        verify([Instruction(Op.MOV, dst=0, src=11), Instruction(Op.EXIT)])


def test_check_iii_division_by_zero_immediate():
    with pytest.raises(VerificationError, match="division by zero"):
        verify(assemble("div r1, 0\nexit"))
    with pytest.raises(VerificationError, match="division by zero"):
        verify(assemble("mod r1, 0\nexit"))


def test_check_iii_shift_out_of_range():
    with pytest.raises(VerificationError, match="shift"):
        verify(assemble("lsh r1, 64\nexit"))


def test_check_iv_jump_out_of_bounds():
    with pytest.raises(VerificationError, match="jump target"):
        verify([Instruction(Op.JA, offset=5), Instruction(Op.EXIT)])
    with pytest.raises(VerificationError, match="jump target"):
        verify([Instruction(Op.JA, offset=-2), Instruction(Op.EXIT)])


def test_check_iv_conditional_jump_bounds():
    with pytest.raises(VerificationError, match="jump target"):
        verify([
            Instruction(Op.JEQ_IMM, dst=0, imm=0, offset=100),
            Instruction(Op.EXIT),
        ])


def test_check_v_write_to_readonly_register():
    # r10 (frame pointer) is read-only, like the paper's reserved register.
    with pytest.raises(VerificationError, match="read-only"):
        verify(assemble("mov r10, 5\nexit"))
    with pytest.raises(VerificationError, match="read-only"):
        verify(assemble("add r10, 1\nexit"))
    with pytest.raises(VerificationError, match="read-only"):
        verify(assemble("ldxdw r10, [r1+0]\nexit"))


def test_r10_readable():
    verify(assemble("mov r1, r10\nldxdw r0, [r10-8]\nexit"))


def test_stack_access_in_bounds_accepted():
    verify(assemble("stxdw [r10-8], r1\nldxdw r0, [r10-512]\nexit"))


def test_stack_overflow_rejected():
    with pytest.raises(VerificationError, match="stack access"):
        verify(assemble("stxdw [r10-520], r1\nexit"))


def test_stack_underflow_rejected():
    # Positive offsets from r10 point above the stack.
    with pytest.raises(VerificationError, match="stack access"):
        verify(assemble("stxdw [r10+8], r1\nexit"))


def test_stack_access_straddling_top_rejected():
    # [-4, +4): the dword crosses the top of the stack.
    with pytest.raises(VerificationError, match="stack access"):
        verify(assemble("ldxdw r0, [r10-4]\nexit"))


def test_non_fp_memory_accesses_deferred_to_monitor():
    # Accesses through other registers cannot be statically bounded; they
    # are accepted here and checked at run time by the memory monitor.
    verify(assemble("ldxdw r0, [r1+0]\nexit"))


def test_program_size_limit():
    prog = [Instruction(Op.MOV_IMM, dst=0, imm=0)] * 70000 + [Instruction(Op.EXIT)]
    with pytest.raises(VerificationError, match="too large"):
        verify(prog)


def test_call_negative_helper_rejected():
    with pytest.raises(VerificationError, match="helper"):
        verify([Instruction(Op.CALL, imm=-1), Instruction(Op.EXIT)])


def test_verify_bytecode_roundtrip():
    prog = assemble("mov r0, 42\nexit")
    assert verify_bytecode(encode_program(prog)) == prog


def test_verify_bytecode_malformed():
    with pytest.raises(VerificationError, match="malformed"):
        verify_bytecode(b"\x01\x02")


def test_error_reports_pc():
    try:
        verify(assemble("mov r0, 1\ndiv r1, 0\nexit"))
    except VerificationError as exc:
        assert exc.pc == 1
    else:
        pytest.fail("expected VerificationError")
