"""WSP design sampler and experiment harness tests."""

import numpy as np
import pytest

from repro.experiments import (
    median,
    run_quic_transfer,
    run_tcp_direct,
    run_tcp_through_tunnel,
    wsp_design,
    wsp_sample,
)
from repro.experiments.design import min_interpoint_distance


class TestWsp:
    def test_design_size_close_to_target(self):
        design = wsp_design(50, 3, seed=1)
        assert abs(len(design) - 50) <= 5

    def test_points_in_unit_cube(self):
        design = wsp_design(30, 2, seed=2)
        assert design.min() >= 0.0
        assert design.max() <= 1.0

    def test_deterministic(self):
        a = wsp_design(25, 3, seed=3)
        b = wsp_design(25, 3, seed=3)
        assert np.array_equal(a, b)

    def test_better_spread_than_random(self):
        """The WSP selection's minimum pairwise distance beats plain
        random sampling of the same size."""
        design = wsp_design(40, 2, seed=4)
        rng = np.random.default_rng(4)
        random_points = rng.random((len(design), 2))
        assert (min_interpoint_distance(design)
                > 2 * min_interpoint_distance(random_points))

    def test_sample_maps_ranges(self):
        points = wsp_sample(
            {"d": (2.5, 25.0), "bw": (5.0, 50.0), "l": 0.0},
            count=20, seed=5,
        )
        assert len(points) == len(points)
        for p in points:
            assert 2.5 <= p["d"] <= 25.0
            assert 5.0 <= p["bw"] <= 50.0
            assert p["l"] == 0.0

    def test_sample_all_fixed(self):
        points = wsp_sample({"d": 5.0}, count=3)
        assert points == [{"d": 5.0}] * 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            wsp_design(0, 2)
        with pytest.raises(ValueError):
            wsp_design(5, 0)


class TestMedian:
    def test_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even(self):
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_empty(self):
        with pytest.raises(ValueError):
            median([])


class TestHarness:
    def test_quic_transfer_runs(self):
        result = run_quic_transfer(20_000, d_ms=10, bw_mbps=20)
        assert result.completed
        assert result.dct > 0.02  # at least one RTT

    def test_tcp_direct_runs(self):
        result = run_tcp_direct(20_000, d_ms=10, bw_mbps=20)
        assert result.completed

    def test_tunnel_runs(self):
        result = run_tcp_through_tunnel(20_000, d_ms=10, bw_mbps=20)
        assert result.completed

    def test_seeded_runs_reproducible(self):
        a = run_quic_transfer(30_000, d_ms=10, bw_mbps=10, loss_pct=3, seed=5)
        b = run_quic_transfer(30_000, d_ms=10, bw_mbps=10, loss_pct=3, seed=5)
        assert a.dct == b.dct

    def test_different_seeds_differ_under_loss(self):
        a = run_quic_transfer(100_000, d_ms=10, bw_mbps=10, loss_pct=5, seed=5)
        b = run_quic_transfer(100_000, d_ms=10, bw_mbps=10, loss_pct=5, seed=6)
        assert a.dct != b.dct

    def test_initial_window_override(self):
        small = run_quic_transfer(40_000, d_ms=25, bw_mbps=50,
                                  initial_window=16 * 1024)
        large = run_quic_transfer(40_000, d_ms=25, bw_mbps=50,
                                  initial_window=32 * 1024)
        # Figure 9's explanation: a 32 kB initial window finishes small
        # transfers in fewer RTTs.
        assert large.dct < small.dct

    def test_vpn_overhead_ratio_band(self):
        """Figure 8: the DCT ratio stays near 1, bounded by per-packet
        overhead."""
        direct = run_tcp_direct(50_000, d_ms=10, bw_mbps=20, seed=2)
        tunnel = run_tcp_through_tunnel(50_000, d_ms=10, bw_mbps=20, seed=2)
        ratio = tunnel.dct / direct.dct
        assert 0.9 < ratio < 1.25
