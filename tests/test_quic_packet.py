"""Packet header encoding/decoding and packet-number reconstruction."""

import pytest

from repro.quic.crypto import AeadContext
from repro.quic.errors import ProtocolViolation
from repro.quic.packet import (
    PN_WIRE_BYTES,
    Epoch,
    PacketType,
    decode_packet_number,
    encode_long_header,
    encode_short_header,
    open_payload,
    parse_header,
    seal_packet,
)
from repro.quic.wire import Buffer

DCID = b"\xaa" * 8
SCID = b"\xbb" * 8


def test_long_header_roundtrip_initial():
    hdr = encode_long_header(PacketType.INITIAL, DCID, SCID, 5, 100, token=b"tok")
    parsed, payload_len = parse_header(Buffer(hdr + b"\x00" * 100), 8)
    assert parsed.packet_type is PacketType.INITIAL
    assert parsed.destination_cid == DCID
    assert parsed.source_cid == SCID
    assert parsed.token == b"tok"
    assert parsed.packet_number == 5
    assert payload_len == 100
    assert parsed.epoch is Epoch.INITIAL


def test_long_header_roundtrip_handshake():
    hdr = encode_long_header(PacketType.HANDSHAKE, DCID, SCID, 1, 10)
    parsed, payload_len = parse_header(Buffer(hdr + b"\x00" * 10), 8)
    assert parsed.packet_type is PacketType.HANDSHAKE
    assert payload_len == 10


def test_long_header_rejects_short_type():
    with pytest.raises(ValueError):
        encode_long_header(PacketType.ONE_RTT, DCID, SCID, 0, 0)


def test_short_header_roundtrip():
    hdr = encode_short_header(DCID, 77, spin_bit=True)
    parsed, payload_len = parse_header(Buffer(hdr + b"xyz"), 8)
    assert parsed.packet_type is PacketType.ONE_RTT
    assert parsed.destination_cid == DCID
    assert parsed.spin_bit is True
    assert parsed.packet_number == 77
    assert payload_len == 3
    assert parsed.epoch is Epoch.ONE_RTT


def test_short_header_spin_bit_clear():
    hdr = encode_short_header(DCID, 0, spin_bit=False)
    parsed, _ = parse_header(Buffer(hdr), 8)
    assert parsed.spin_bit is False


def test_fixed_bit_violation():
    with pytest.raises(ProtocolViolation):
        parse_header(Buffer(b"\x00" + b"\x00" * 20), 8)


def test_length_field_validated():
    hdr = encode_long_header(PacketType.INITIAL, DCID, SCID, 0, 1000)
    # Truncate the datagram: length says 1000 but nothing follows.
    with pytest.raises(Exception):
        parse_header(Buffer(hdr), 8)


class TestPacketNumberDecode:
    def test_sequential(self):
        for expected in (0, 1, 100, 2**20):
            truncated = (expected + 1) & 0xFFFFFFFF
            assert decode_packet_number(truncated, expected) == expected + 1

    def test_wraparound_forward(self):
        largest = (1 << 32) - 2
        truncated = 1  # the next packet crossed the 32-bit boundary
        assert decode_packet_number(truncated, largest) == (1 << 32) + 1

    def test_late_packet_below_window(self):
        largest = (1 << 32) + 5
        truncated = (1 << 32) - 1 & 0xFFFFFFFF
        decoded = decode_packet_number(truncated, largest)
        assert decoded == (1 << 32) - 1

    def test_first_packet(self):
        assert decode_packet_number(0, -1) == 0


def test_seal_and_open_packet():
    aead = AeadContext(b"k" * 32)
    hdr = encode_short_header(DCID, 3)
    packet = seal_packet(hdr, b"frame bytes", aead, 3)
    parsed, payload_len = parse_header(Buffer(packet), 8)
    assert payload_len == len(packet) - len(hdr)
    plaintext = open_payload(hdr, packet[len(hdr):], aead, 3)
    assert plaintext == b"frame bytes"
