"""Termination checker tests (§5)."""

import pytest

from repro.termination import ControlFlowGraph, check_termination
from repro.vm import assemble, compile_pluglet


class TestCfg:
    def test_straight_line_single_block(self):
        cfg = ControlFlowGraph(assemble("mov r0, 1\nadd r0, 2\nexit"))
        assert len(cfg.blocks) == 1
        assert cfg.back_edges == []

    def test_branch_makes_blocks(self):
        cfg = ControlFlowGraph(assemble("""
            jeq r1, 0, skip
            mov r0, 1
        skip:
            exit
        """))
        assert len(cfg.blocks) == 3
        assert cfg.back_edges == []

    def test_loop_detected(self):
        cfg = ControlFlowGraph(assemble("""
        top:
            sub r1, 1
            jne r1, 0, top
            exit
        """))
        assert len(cfg.back_edges) == 1

    def test_self_loop(self):
        cfg = ControlFlowGraph(assemble("top:\nja top\nexit"))
        assert len(cfg.back_edges) == 1

    def test_natural_loop_members(self):
        cfg = ControlFlowGraph(assemble("""
            mov r1, 10
        top:
            sub r1, 1
            jne r1, 0, top
            exit
        """))
        tail, head = cfg.back_edges[0]
        loop = cfg.natural_loop(tail, head)
        assert head in loop


class TestProofs:
    def test_loop_free_proven(self):
        report = check_termination(compile_pluglet(
            "def f(a, b):\n    return a * b + 1"))
        assert report.proven
        assert report.reason == "loop-free"

    def test_branching_no_loop_proven(self):
        src = """
def f(a):
    if a > 10:
        return 1
    if a > 5:
        return 2
    return 3
"""
        assert check_termination(compile_pluglet(src)).proven

    def test_counting_up_proven(self):
        src = """
def f(n):
    i = 0
    while i < n:
        i += 1
    return i
"""
        report = check_termination(compile_pluglet(src))
        assert report.proven
        assert "increases" in report.loops[0].ranking

    def test_counting_down_proven(self):
        src = """
def f(n):
    while n > 0:
        n -= 1
    return n
"""
        report = check_termination(compile_pluglet(src))
        assert report.proven
        assert "decreases" in report.loops[0].ranking

    def test_step_by_constant_proven(self):
        src = """
def f(n):
    i = 0
    while i < n:
        i += 7
    return i
"""
        assert check_termination(compile_pluglet(src)).proven

    def test_nested_loops_proven(self):
        src = """
def f(n):
    total = 0
    i = 0
    while i < n:
        j = 0
        while j < 100:
            total += 1
            j += 1
        i += 1
    return total
"""
        report = check_termination(compile_pluglet(src))
        assert report.proven
        assert len(report.loops) == 2

    def test_loop_with_break_proven(self):
        src = """
def f(n):
    i = 0
    while i < n:
        if i == 7:
            break
        i += 1
    return i
"""
        assert check_termination(compile_pluglet(src)).proven

    def test_helpers_assumed_terminating(self):
        """Like T2: 'The T2 prover assumes the termination of external
        functions'."""
        src = """
def f(x):
    a = helper(x)
    b = helper(a)
    return a + b
"""
        report = check_termination(compile_pluglet(src, helpers={"helper": 9}))
        assert report.proven


class TestRefusals:
    def test_infinite_loop_not_proven(self):
        assert not check_termination(assemble("top:\nja top\nexit")).proven

    def test_unmodified_guard_not_proven(self):
        report = check_termination(assemble("""
            mov r1, 10
        top:
            jeq r1, 0, end
            ja top
        end:
            exit
        """))
        assert not report.proven

    def test_helper_driven_guard_not_proven(self):
        src = """
def f(n):
    while probe(n) > 0:
        n = probe(n)
    return n
"""
        report = check_termination(compile_pluglet(src, helpers={"probe": 1}))
        assert not report.proven

    def test_moving_bound_not_proven(self):
        # Both the counter and the bound move: no invariant bound.
        src = """
def f(n):
    i = 0
    while i < n:
        i += 1
        n += 1
    return i
"""
        assert not check_termination(compile_pluglet(src)).proven

    def test_wrong_direction_not_proven(self):
        src = """
def f(n):
    i = 100
    while i < n:
        i -= 1
    return i
"""
        assert not check_termination(compile_pluglet(src)).proven

    def test_zero_step_not_proven(self):
        src = """
def f(n):
    i = 0
    while i < n:
        i += 0
    return i
"""
        assert not check_termination(compile_pluglet(src)).proven


class TestPluginCorpus:
    @pytest.mark.parametrize("builder_name", [
        "monitoring", "datagram", "multipath", "fec",
    ])
    def test_shipped_plugins_fully_proven(self, builder_name):
        """Table 2 analogue: our pluglets are simple enough that every one
        gets a termination proof (the paper proved most of theirs)."""
        from repro.plugins.datagram import build_datagram_plugin
        from repro.plugins.fec import build_fec_plugin
        from repro.plugins.monitoring import build_monitoring_plugin
        from repro.plugins.multipath import build_multipath_plugin

        builders = {
            "monitoring": build_monitoring_plugin,
            "datagram": build_datagram_plugin,
            "multipath": build_multipath_plugin,
            "fec": build_fec_plugin,
        }
        plugin = builders[builder_name]()
        for pluglet in plugin.pluglets:
            report = check_termination(pluglet.instructions)
            assert report.proven, f"{pluglet.name}: {report.reason}"
