"""Robustness fuzzing: the PRE must contain arbitrary verified bytecode.

The security story of §2.1 is that *any* bytecode passing the static
checks can be executed safely: the run either terminates with a value,
exhausts its instruction budget, or trips the memory monitor — it can
never corrupt or crash the host.  These tests generate random programs
and hold the VM to that contract.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm import (
    ExecutionError,
    MemoryViolation,
    PluginMemory,
    VerificationError,
    VirtualMachine,
    verify,
)
from repro.vm.isa import (
    ALU_IMM_OPS,
    ALU_REG_OPS,
    JMP_IMM_OPS,
    JMP_REG_OPS,
    LOAD_OPS,
    STORE_IMM_OPS,
    STORE_REG_OPS,
    Instruction,
    Op,
    decode_program,
    encode_program,
)

ALL_OPS = (
    list(ALU_REG_OPS) + list(ALU_IMM_OPS) + list(JMP_REG_OPS)
    + list(JMP_IMM_OPS) + list(LOAD_OPS) + list(STORE_REG_OPS)
    + list(STORE_IMM_OPS) + [Op.JA, Op.NEG, Op.LDDW, Op.EXIT, Op.CALL]
)


def random_program(rng, length):
    program = []
    for _ in range(length):
        op = rng.choice(ALL_OPS)
        program.append(Instruction(
            op,
            dst=rng.randrange(11),
            src=rng.randrange(11),
            offset=rng.randrange(-length, length),
            imm=rng.randrange(-1000, 1000),
        ))
    program.append(Instruction(Op.EXIT))
    return program


@given(st.integers(0, 100_000), st.integers(1, 60))
@settings(max_examples=300, deadline=None)
def test_random_programs_never_crash_host(seed, length):
    rng = random.Random(seed)
    program = random_program(rng, length)
    try:
        verify(program)
    except VerificationError:
        return  # rejected statically: fine
    vm = VirtualMachine(program, PluginMemory(1024),
                        helpers={1: lambda vm_, *a: sum(a) & 0xFF},
                        instruction_budget=5_000)
    try:
        result = vm.run(rng.randrange(1 << 32), rng.randrange(1 << 32))
        assert 0 <= result < (1 << 64)
    except (MemoryViolation, ExecutionError):
        pass  # contained failures are the contract


@given(st.integers(0, 100_000))
@settings(max_examples=200, deadline=None)
def test_random_programs_roundtrip_bytecode(seed):
    rng = random.Random(seed)
    program = random_program(rng, rng.randrange(1, 40))
    assert decode_program(encode_program(program)) == program


@given(st.binary(min_size=0, max_size=512))
@settings(max_examples=200, deadline=None)
def test_arbitrary_bytes_never_crash_verifier(data):
    """Hostile wire bytes (a malicious PLUGIN frame) must be rejected
    cleanly, never crash."""
    from repro.vm.verifier import verify_bytecode

    try:
        verify_bytecode(data)
    except VerificationError:
        pass


@given(st.binary(min_size=0, max_size=400))
@settings(max_examples=200, deadline=None)
def test_arbitrary_bytes_never_crash_plugin_deserializer(data):
    """Same contract one layer up: Plugin.deserialize on hostile input."""
    from repro.core.plugin import Plugin
    from repro.errors import QuicError

    try:
        Plugin.deserialize(data)
    except (QuicError, ValueError, UnicodeDecodeError, KeyError):
        pass
