"""ISA encoding and assembler/disassembler tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.vm import (
    INSTRUCTION_SIZE,
    AssemblyError,
    Instruction,
    Op,
    assemble,
    decode_program,
    disassemble,
    encode_program,
)


class TestEncoding:
    def test_instruction_roundtrip(self):
        ins = Instruction(Op.ADD, dst=1, src=2, offset=-3, imm=99)
        assert Instruction.decode(ins.encode()) == ins

    def test_negative_immediate_roundtrip(self):
        ins = Instruction(Op.MOV_IMM, dst=0, imm=-1 & ((1 << 64) - 1))
        decoded = Instruction.decode(ins.encode())
        assert decoded.imm & ((1 << 64) - 1) == (1 << 64) - 1

    def test_program_roundtrip(self):
        prog = [
            Instruction(Op.MOV_IMM, dst=0, imm=7),
            Instruction(Op.EXIT),
        ]
        data = encode_program(prog)
        assert len(data) == 2 * INSTRUCTION_SIZE
        assert decode_program(data) == prog

    def test_malformed_length_rejected(self):
        with pytest.raises(ValueError):
            decode_program(b"\x01\x02\x03")

    @given(
        st.sampled_from(list(Op)),
        st.integers(0, 10),
        st.integers(0, 10),
        st.integers(-1000, 1000),
        st.integers(-(1 << 31), (1 << 31) - 1),
    )
    def test_roundtrip_property(self, op, dst, src, offset, imm):
        ins = Instruction(op, dst=dst, src=src, offset=offset, imm=imm)
        decoded = Instruction.decode(ins.encode())
        assert decoded.opcode == op
        assert (decoded.dst, decoded.src, decoded.offset) == (dst, src, offset)
        assert decoded.imm == imm


class TestAssembler:
    def test_alu_reg_and_imm_forms(self):
        prog = assemble("add r1, r2\nadd r1, 5\nexit")
        assert prog[0] == Instruction(Op.ADD, dst=1, src=2)
        assert prog[1] == Instruction(Op.ADD_IMM, dst=1, imm=5)

    def test_labels_forward_and_back(self):
        prog = assemble(
            """
            top:
                jeq r1, 0, end
                sub r1, 1
                ja top
            end:
                exit
            """
        )
        assert prog[0].offset == 2  # to 'end' (pc 3) from pc 0
        assert prog[2].offset == -3  # back to 'top'

    def test_memory_operands(self):
        prog = assemble(
            "ldxw r0, [r1+4]\nstxdw [r10-8], r2\nstb [r3+0], 7\nexit"
        )
        assert prog[0] == Instruction(Op.LDXW, dst=0, src=1, offset=4)
        assert prog[1] == Instruction(Op.STXDW, dst=10, src=2, offset=-8)
        assert prog[2] == Instruction(Op.STB, dst=3, imm=7)

    def test_call_by_name_and_id(self):
        prog = assemble("call get\ncall 7\nexit", helpers={"get": 3})
        assert prog[0].imm == 3
        assert prog[1].imm == 7

    def test_lddw_large_constant(self):
        prog = assemble("lddw r1, 0x123456789abc\nexit")
        assert prog[0] == Instruction(Op.LDDW, dst=1, imm=0x123456789ABC)

    def test_comments_and_blank_lines(self):
        prog = assemble("; a comment\n\nmov r0, 1 ; inline\nexit")
        assert len(prog) == 2

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("x:\nx:\nexit")

    def test_unknown_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("ja nowhere\nexit")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate r1\nexit")

    def test_bad_register_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("mov rx, 1\nexit")

    def test_relative_offsets(self):
        prog = assemble("ja +1\nexit\nexit")
        assert prog[0].offset == 1


class TestDisassembler:
    def test_roundtrip_through_text(self):
        source = """
            mov r0, 0
            add r0, r1
            jeq r0, 5, +1
            ldxdw r2, [r10-16]
            stxw [r1+4], r2
            call 9
            exit
        """
        prog = assemble(source)
        text = disassemble(prog)
        prog2 = assemble(text)
        assert prog == prog2

    def test_disassemble_imm_alu(self):
        text = disassemble(assemble("mul r3, 10\nexit"))
        assert "mul r3, 10" in text
