"""Unit and property tests for varints, Buffer and RangeSet."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quic.errors import FrameEncodingError
from repro.quic.wire import (
    VARINT_MAX,
    Buffer,
    RangeSet,
    decode_varint,
    encode_varint,
    varint_size,
)


class TestVarint:
    @pytest.mark.parametrize(
        "value,size",
        [(0, 1), (63, 1), (64, 2), (16383, 2), (16384, 4), ((1 << 30) - 1, 4),
         (1 << 30, 8), (VARINT_MAX, 8)],
    )
    def test_sizes(self, value, size):
        assert varint_size(value) == size
        assert len(encode_varint(value)) == size

    def test_known_encodings(self):
        # RFC 9000 A.1 examples.
        assert encode_varint(151288809941952652) == bytes.fromhex("c2197c5eff14e88c")
        assert encode_varint(494878333) == bytes.fromhex("9d7f3e7d")
        assert encode_varint(15293) == bytes.fromhex("7bbd")
        assert encode_varint(37) == bytes.fromhex("25")

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            encode_varint(-1)
        with pytest.raises(ValueError):
            encode_varint(VARINT_MAX + 1)

    def test_truncated_decode(self):
        with pytest.raises(FrameEncodingError):
            decode_varint(b"")
        with pytest.raises(FrameEncodingError):
            decode_varint(bytes([0xC0]))  # 8-byte varint, only 1 byte

    @given(st.integers(min_value=0, max_value=VARINT_MAX))
    def test_roundtrip(self, value):
        data = encode_varint(value)
        decoded, offset = decode_varint(data)
        assert decoded == value
        assert offset == len(data)


class TestBuffer:
    def test_push_pull_roundtrip(self):
        buf = Buffer()
        buf.push_uint8(0xAB)
        buf.push_uint16(0x1234)
        buf.push_uint32(0xDEADBEEF)
        buf.push_uint64(1 << 40)
        buf.push_varint(12345)
        buf.push_varint_prefixed_bytes(b"hello")
        rd = Buffer(buf.data())
        assert rd.pull_uint8() == 0xAB
        assert rd.pull_uint16() == 0x1234
        assert rd.pull_uint32() == 0xDEADBEEF
        assert rd.pull_uint64() == 1 << 40
        assert rd.pull_varint() == 12345
        assert rd.pull_varint_prefixed_bytes() == b"hello"
        assert rd.eof()

    def test_read_past_end(self):
        rd = Buffer(b"ab")
        with pytest.raises(FrameEncodingError):
            rd.pull_bytes(3)

    def test_capacity_enforced(self):
        buf = Buffer(capacity=4)
        buf.push_bytes(b"1234")
        with pytest.raises(FrameEncodingError):
            buf.push_uint8(5)

    def test_seek(self):
        rd = Buffer(b"abcdef")
        rd.pull_bytes(4)
        rd.seek(1)
        assert rd.pull_bytes(2) == b"bc"
        with pytest.raises(FrameEncodingError):
            rd.seek(100)


class TestRangeSet:
    def test_add_and_coalesce(self):
        rs = RangeSet()
        rs.add(0, 5)
        rs.add(5, 10)
        assert list(rs) == [range(0, 10)]

    def test_disjoint_ranges_kept_sorted(self):
        rs = RangeSet()
        rs.add(10, 20)
        rs.add(0, 5)
        rs.add(30)
        assert list(rs) == [range(0, 5), range(10, 20), range(30, 31)]

    def test_overlapping_merge(self):
        rs = RangeSet()
        rs.add(0, 10)
        rs.add(20, 30)
        rs.add(5, 25)
        assert list(rs) == [range(0, 30)]

    def test_single_value_add(self):
        rs = RangeSet()
        rs.add(7)
        assert 7 in rs
        assert 6 not in rs
        assert 8 not in rs

    def test_empty_range_rejected(self):
        rs = RangeSet()
        with pytest.raises(ValueError):
            rs.add(5, 5)

    def test_subtract_splits(self):
        rs = RangeSet([range(0, 10)])
        rs.subtract(3, 6)
        assert list(rs) == [range(0, 3), range(6, 10)]

    def test_subtract_noop_outside(self):
        rs = RangeSet([range(0, 10)])
        rs.subtract(20, 30)
        assert list(rs) == [range(0, 10)]

    def test_bounds_largest_smallest(self):
        rs = RangeSet([range(5, 8), range(20, 25)])
        assert rs.bounds() == range(5, 25)
        assert rs.largest() == 24
        assert rs.smallest() == 5

    def test_prune_below_drops_wholly_covered_ranges(self):
        rs = RangeSet([range(0, 5), range(10, 15), range(20, 25)])
        assert rs.prune_below(5) == 1
        assert list(rs) == [range(10, 15), range(20, 25)]

    def test_prune_below_keeps_straddling_range_whole(self):
        rs = RangeSet([range(0, 5), range(10, 15)])
        assert rs.prune_below(12) == 1
        assert list(rs) == [range(10, 15)]

    def test_prune_below_everything(self):
        rs = RangeSet([range(0, 5), range(10, 15)])
        assert rs.prune_below(100) == 2
        assert list(rs) == []

    def test_prune_below_noop(self):
        rs = RangeSet([range(10, 15)])
        assert rs.prune_below(0) == 0
        assert list(rs) == [range(10, 15)]

    def test_empty_accessors_raise(self):
        rs = RangeSet()
        with pytest.raises(ValueError):
            rs.largest()
        with pytest.raises(ValueError):
            rs.bounds()

    def test_descending(self):
        rs = RangeSet([range(0, 2), range(5, 6)])
        assert rs.descending() == [range(5, 6), range(0, 2)]

    def test_copy_is_independent(self):
        rs = RangeSet([range(0, 5)])
        cp = rs.copy()
        cp.add(10, 12)
        assert list(rs) == [range(0, 5)]
        assert list(cp) == [range(0, 5), range(10, 12)]

    def test_tail_keeps_highest(self):
        rs = RangeSet([range(0, 1), range(3, 4), range(6, 7), range(9, 10)])
        t = rs.tail(2)
        assert list(t) == [range(6, 7), range(9, 10)]

    @given(st.lists(st.tuples(st.integers(0, 200), st.integers(1, 20)), max_size=40))
    @settings(max_examples=200)
    def test_matches_python_set_semantics(self, spans):
        rs = RangeSet()
        model = set()
        for start, length in spans:
            rs.add(start, start + length)
            model.update(range(start, start + length))
        # Invariants: sorted, disjoint, non-adjacent after coalescing by
        # membership; and identical membership to the model set.
        prev_stop = None
        for r in rs:
            assert r.start < r.stop
            if prev_stop is not None:
                assert r.start > prev_stop
            prev_stop = r.stop
        assert rs.covered() == len(model)
        for probe in range(0, 230):
            assert (probe in rs) == (probe in model)

    @given(
        st.lists(st.tuples(st.integers(0, 100), st.integers(1, 10)), max_size=20),
        st.tuples(st.integers(0, 100), st.integers(1, 30)),
    )
    @settings(max_examples=200)
    def test_subtract_matches_model(self, spans, cut):
        rs = RangeSet()
        model = set()
        for start, length in spans:
            rs.add(start, start + length)
            model.update(range(start, start + length))
        rs.subtract(cut[0], cut[0] + cut[1])
        model -= set(range(cut[0], cut[0] + cut[1]))
        for probe in range(0, 140):
            assert (probe in rs) == (probe in model)
