"""ConnectionTracer: drop accounting, the truncated marker, streaming,
profiler export, and finish idempotence."""

import io
import json

from repro.core import PluginInstance
from repro.netsim import Simulator, symmetric_topology
from repro.plugins.monitoring import build_monitoring_plugin
from repro.quic import ClientEndpoint, QuicConfiguration, ServerEndpoint
from repro.quic.connection import QuicConnection
from repro.trace import (
    ConnectionTracer,
    JsonlTraceWriter,
    PreProfiler,
    read_jsonl,
    validate_stream,
)


def run_traced_transfer(size=40_000, max_events=100_000, writer=None,
                        validate=False, profile=False, plugins=()):
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=5, bw_mbps=20, seed=2)
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    done = [False]
    server.on_connection = lambda conn: setattr(
        conn, "on_stream_data", lambda sid, d, fin: done.__setitem__(0, fin))
    client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                            "server.0", 443)
    if profile:
        PreProfiler().attach(client.conn)
    tracer = ConnectionTracer(client.conn, max_events=max_events,
                              writer=writer, validate=validate)
    for build in plugins:
        PluginInstance(build(), client.conn).attach()
    client.connect()
    assert sim.run_until(lambda: client.conn.is_established, timeout=5)
    sid = client.conn.create_stream()
    client.conn.send_stream_data(sid, b"x" * size, fin=True)
    client.pump()
    assert sim.run_until(lambda: done[0], timeout=120)
    tracer.finish()
    return tracer


class TestDropAccounting:
    def test_drops_are_counted_not_silent(self):
        tracer = run_traced_transfer(max_events=10)
        assert tracer.dropped > 0
        # The cap holds for regular events; the truncated marker rides
        # on top of it, because losing the loss report would be absurd.
        assert len(tracer.events) == 11
        marker = tracer.events[-1]
        assert marker.name == "truncated"
        assert marker.category == "trace"
        assert marker.data["dropped"] == tracer.dropped
        assert marker.data["recorded"] == 10

    def test_no_marker_when_nothing_dropped(self):
        tracer = run_traced_transfer(max_events=100_000)
        assert tracer.dropped == 0
        assert all(e.name != "truncated" for e in tracer.events)

    def test_truncated_marker_streams_to_writer(self):
        buf = io.StringIO()
        tracer = run_traced_transfer(max_events=10,
                                     writer=JsonlTraceWriter(buf))
        doc = read_jsonl(io.StringIO(buf.getvalue()))
        assert doc["events"][-1]["name"] == "truncated"
        assert doc["footer"]["dropped"] == tracer.dropped
        validate_stream(doc["records"])


class TestStreaming:
    def test_jsonl_stream_is_schema_valid(self):
        buf = io.StringIO()
        tracer = run_traced_transfer(writer=JsonlTraceWriter(buf),
                                     validate=True,
                                     plugins=[build_monitoring_plugin])
        doc = read_jsonl(io.StringIO(buf.getvalue()))
        counts = validate_stream(doc["records"])
        assert counts["events"] == len(tracer.events)
        assert doc["header"]["vantage_point"] == "client"
        assert counts["by_name"]["packet_sent"] > 0
        assert counts["by_name"]["plugin_injected"] == 1

    def test_events_stream_as_recorded_not_buffered(self):
        buf = io.StringIO()
        writer = JsonlTraceWriter(buf)
        conn = QuicConnection(QuicConfiguration(is_client=True))
        conn.now = 0.0
        tracer = ConnectionTracer(conn, writer=writer)
        tracer.record_event("connectivity", "connection_established")
        # Before finish(): header + the event are already on the wire.
        lines = buf.getvalue().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["name"] == "connection_established"
        tracer.finish()


class TestProfileExport:
    def test_profiled_run_exports_pluglet_profile_events(self):
        tracer = run_traced_transfer(profile=True,
                                     plugins=[build_monitoring_plugin])
        profile_events = [e for e in tracer.events
                          if e.name == "pluglet_profile"]
        assert profile_events
        for event in profile_events:
            assert event.category == "pre"
            assert event.data["fuel"] > 0
            assert event.data["invocations"] > 0


class TestFinish:
    def test_finish_is_idempotent(self):
        buf = io.StringIO()
        tracer = run_traced_transfer(writer=JsonlTraceWriter(buf))
        before = (len(tracer.events), buf.getvalue())
        tracer.finish()
        tracer.finish()
        assert (len(tracer.events), buf.getvalue()) == before

    def test_finish_detaches_hooks(self):
        tracer = run_traced_transfer()
        table = tracer.conn.protoops
        for opname in ("packet_sent_event", "rtt_updated"):
            op = table.get(opname)
            assert not any(op.post.values()), opname

    def test_detach_alone_stops_recording(self):
        conn = QuicConnection(QuicConfiguration(is_client=True))
        conn.now = 0.0
        tracer = ConnectionTracer(conn)
        tracer.detach()
        conn.protoops.run(conn, "connection_established", None)
        assert tracer.events == []
