"""Congestion-control plugin tests (§6: CC as a protocol plugin)."""

import struct

import pytest

from repro.core import PluginInstance
from repro.experiments import run_quic_transfer
from repro.plugins.ccontrol import ST_AREA, build_ccontrol_plugin
from repro.quic import QuicConfiguration
from repro.quic.connection import QuicConnection
from repro.termination import check_termination
from repro.vm.interpreter import HEAP_BASE


def plugin_state(instance):
    addr = instance.runtime._opaque.get(ST_AREA)
    if addr is None:
        return None
    off = addr - HEAP_BASE
    ssthresh, acked, losses, acks = struct.unpack_from(
        "<4Q", instance.runtime.memory.data, off)
    return {"ssthresh": ssthresh, "acked": acked,
            "losses": losses, "acks": acks}


def test_pluglets_verified_and_terminating():
    for variant in ("aimd", "fixed"):
        plugin = build_ccontrol_plugin(variant)
        plugin.verify_all()
        for p in plugin.pluglets:
            assert check_termination(p.instructions).proven


def test_replaces_congestion_operations():
    conn = QuicConnection(QuicConfiguration(is_client=True))
    inst = PluginInstance(build_ccontrol_plugin("aimd"), conn)
    inst.attach()
    op = conn.protoops.get("congestion_on_ack")
    assert None in op.replacements
    inst.detach()
    assert None not in op.replacements


def test_aimd_drives_transfer_and_reacts_to_loss():
    result = run_quic_transfer(
        300_000, d_ms=10, bw_mbps=10, loss_pct=2, seed=4,
        server_plugins=[lambda: build_ccontrol_plugin("aimd")],
    )
    assert result.completed
    state = plugin_state(result.plugin_instances[0])
    assert state["acks"] > 100       # the control law actually ran
    assert state["losses"] > 0       # ...and saw losses
    assert state["ssthresh"] > 0     # ...and halved the window


def test_aimd_slow_start_grows_window():
    result = run_quic_transfer(
        100_000, d_ms=10, bw_mbps=50, seed=3,
        server_plugins=[lambda: build_ccontrol_plugin("aimd")],
    )
    assert result.completed
    inst = result.plugin_instances[0]
    # No losses: window grew beyond the 16 kB initial value.
    assert inst.conn.paths[0].cc.cwnd > 16 * 1024


def test_fixed_window_is_constant():
    result = run_quic_transfer(
        200_000, d_ms=10, bw_mbps=10, seed=3,
        server_plugins=[lambda: build_ccontrol_plugin(
            "fixed", fixed_window=48_000)],
    )
    assert result.completed
    inst = result.plugin_instances[0]
    assert inst.conn.paths[0].cc.cwnd == 48_000


def test_fixed_window_outpaces_slow_start_on_long_rtt():
    # A long-RTT path where the slow-start ramp dominates; the fixed
    # window is sized under the bottleneck buffer so the burst survives.
    base = run_quic_transfer(150_000, d_ms=50, bw_mbps=10, seed=5)
    fixed = run_quic_transfer(
        150_000, d_ms=50, bw_mbps=10, seed=5,
        server_plugins=[lambda: build_ccontrol_plugin(
            "fixed", fixed_window=100_000)],
    )
    assert fixed.dct < base.dct  # skips the slow-start ramp


def test_behaviour_differs_from_default_newreno():
    base = run_quic_transfer(300_000, d_ms=10, bw_mbps=10, loss_pct=2, seed=4)
    aimd = run_quic_transfer(
        300_000, d_ms=10, bw_mbps=10, loss_pct=2, seed=4,
        server_plugins=[lambda: build_ccontrol_plugin("aimd")],
    )
    assert base.completed and aimd.completed
    assert base.dct != aimd.dct


def test_unknown_variant_rejected():
    with pytest.raises(ValueError):
        build_ccontrol_plugin("bbr")
