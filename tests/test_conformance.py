"""Conformance harness: scenario model, runner reports, oracles.

The heavyweight full-matrix sweeps live in CI (``repro conform``); these
tests pin the machinery itself — mode/scenario round-trips, the shape of
a run report, that a clean scenario passes the oracle catalog on a
reduced mode set, that observer transparency holds, and that the planted
JIT-divergent plugin is caught by the mode-parity oracle.
"""

import pytest

import repro.conformance as conf
from repro.conformance.suites import tiny_suite


# --- scenario model --------------------------------------------------------

def test_mode_name_parse_roundtrip():
    for mode in conf.ALL_MODES:
        assert conf.Mode.parse(mode.name) == mode
    assert conf.Mode.parse("J0-B1-A0") == conf.Mode(jit=False, analysis=False)


def test_mode_env_and_timing_class():
    mode = conf.Mode(jit=True, batch=False, analysis=True)
    assert mode.env() == {"REPRO_JIT": "1", "REPRO_BATCH": "0",
                          "REPRO_ANALYSIS": "1"}
    assert mode.timing_class == "B0"
    assert conf.Mode().timing_class == "B1"


def test_parse_modes_spec():
    modes = conf.parse_modes("J1-B1-A1,J0-B1-A1")
    assert modes == conf.FAST_MODES
    with pytest.raises(ValueError):
        conf.parse_modes("J2-B1-A1")


def test_scenario_json_roundtrip():
    for scenario in conf.load_suite("smoke"):
        again = conf.Scenario.from_dict(scenario.to_dict())
        assert again == scenario
        assert again.key() == scenario.key()


def test_scenario_validation():
    with pytest.raises(ValueError):
        # nat_rebind needs a NAT on the path
        conf.Scenario(name="bad", workload=conf.Workload(size=1000),
                      topology=conf.Topology(),
                      faults=(conf.FaultEvent(kind="nat_rebind", at=0.1),),
                      seed=1)
    with pytest.raises(ValueError):
        conf.FaultEvent(kind="corrupt", rate=2.0)
    with pytest.raises(ValueError):
        conf.FaultEvent(kind="warp")


def test_expected_payload_is_seed_determined():
    a = conf.Scenario(name="a", workload=conf.Workload(size=500),
                      topology=conf.Topology(), seed=42)
    b = a.with_(name="b")
    assert a.expected_payload() == b.expected_payload()
    assert a.expected_digest() != a.with_(seed=43).expected_digest()


def test_random_scenarios_deterministic():
    first = conf.random_scenarios(seed=123, count=6)
    second = conf.random_scenarios(seed=123, count=6)
    assert [s.to_dict() for s in first] == [s.to_dict() for s in second]
    assert first != conf.random_scenarios(seed=124, count=6)
    for scenario in first:
        # every generated scenario must survive its own validation
        conf.Scenario.from_dict(scenario.to_dict())


# --- runner + oracles ------------------------------------------------------

def test_run_scenario_report_shape():
    scenario = tiny_suite()[0]
    report = conf.run_scenario(scenario, conf.Mode())
    assert report.error is None
    assert report.completed
    assert report.received == scenario.workload.size
    assert report.digest == scenario.expected_digest()
    for side in ("client", "server"):
        ledger = report.ledger[side]
        assert ledger["sent"] == (ledger["acked"] + ledger["lost"]
                                  + ledger["in_flight"])
    assert report.trace_events > 0
    assert not report.schema_errors
    assert "packet_received_event" in report.protoop_runs
    assert any("monitoring" in key for key in report.pluglet_rows)
    assert conf.check_run(report, scenario) == []


def test_tiny_scenario_passes_fast_modes():
    verdict = conf.run_conformance(tiny_suite()[0], modes=conf.FAST_MODES)
    assert verdict.passed, [f.format() for f in verdict.failures]
    # observer plugin set => a bare transparency baseline ran too
    assert len(verdict.reports) == len(conf.FAST_MODES) + 1


def test_batch_off_same_bytes_different_timing_class():
    scenario = tiny_suite()[0]
    modes = (conf.Mode(), conf.Mode(batch=False))
    verdict = conf.run_conformance(scenario, modes=modes, transparency=False)
    assert verdict.passed, [f.format() for f in verdict.failures]
    a, b = (verdict.reports[m.name] for m in modes)
    assert a.digest == b.digest
    assert a.timing_class != b.timing_class


def test_jit_divergent_plugin_is_caught():
    scenario = tiny_suite()[0].with_(
        name="tiny-divergent", plugins=("x-jit-divergent",))
    verdict = conf.run_conformance(scenario, modes=conf.FAST_MODES,
                                   transparency=False)
    assert not verdict.passed
    oracles = {failure.oracle for failure in verdict.failures}
    assert "mode-parity" in oracles
    # the divergence is in pluglet work (fuel/invocations), not in bytes
    assert "cross-mode-bytes" not in oracles


def test_conflicting_pair_rejected_identically_across_modes():
    # The second conflict plugin must be rejected whether the static
    # conflict checker (A1) or the protoop table's "already replaced"
    # check (A0) does it — the mode-parity oracle compares the
    # plugins_rejected lists, so a mode-dependent rejection would fail.
    scenario = tiny_suite()[0].with_(
        name="tiny-conflict",
        plugins=("monitoring", "x-conflict-a", "x-conflict-b"))
    modes = (conf.Mode(), conf.Mode(analysis=False))
    verdict = conf.run_conformance(scenario, modes=modes,
                                   transparency=False)
    assert verdict.passed, [f.format() for f in verdict.failures]
    for mode in modes:
        report = verdict.reports[mode.name]
        assert report.plugins_rejected == ["x-conflict-b"]


def test_repro_file_roundtrip(tmp_path):
    scenario = tiny_suite()[0]
    path = tmp_path / "case.repro.json"
    conf.save_repro(path, scenario, modes=conf.FAST_MODES, failures=[],
                    note="unit test")
    loaded, modes = conf.load_repro(path)
    assert loaded == scenario
    assert tuple(modes) == conf.FAST_MODES
