"""Validators, repository, STR log, formulas: the §3 trust system."""

import pytest

from repro.core import Plugin, Pluglet
from repro.secure import (
    EquivocatingValidator,
    FormulaError,
    HashChainLog,
    KeyPair,
    PluginRepository,
    PluginValidator,
    PublicationError,
    developer_epoch_check,
    parse_formula,
    verify_path,
    verify_signature,
)
from repro.vm import assemble
from repro.vm.isa import Instruction, Op


def make_plugin(name="org.t.p", good=True):
    code = assemble("exit") if good else [Instruction(Op.MOV_IMM, dst=0)]
    return Plugin(name, [Pluglet("x", "packet_sent_event", "post", code)])


class TestSigning:
    def test_sign_verify(self):
        keys = KeyPair.generate(seed=1)
        sig = keys.sign(b"message")
        assert verify_signature(keys.public, b"message", sig)
        assert not verify_signature(keys.public, b"other", sig)

    def test_unknown_key_fails(self):
        keys = KeyPair.generate(seed=2)
        assert not verify_signature(b"\x00" * 32, b"m", keys.sign(b"m"))

    def test_deterministic_from_seed(self):
        assert KeyPair.generate(seed=3).public == KeyPair.generate(seed=3).public


class TestFormula:
    def test_paper_example(self):
        f = parse_formula("PV1 & (PV2 | PV3)")
        assert f.evaluate({"PV1", "PV2"})
        assert f.evaluate({"PV1", "PV3"})
        assert not f.evaluate({"PV1"})
        assert not f.evaluate({"PV2", "PV3"})

    def test_unicode_and_word_operators(self):
        for text in ("PV1 ∧ (PV2 ∨ PV3)", "PV1 and (PV2 or PV3)"):
            assert parse_formula(text) == parse_formula("PV1 & (PV2 | PV3)")

    def test_precedence_and_binds_tighter(self):
        f = parse_formula("A | B & C")
        assert f.evaluate({"A"})
        assert f.evaluate({"B", "C"})
        assert not f.evaluate({"B"})

    def test_minimal_sets(self):
        f = parse_formula("PV1 & (PV2 | PV3)")
        assert f.minimal_sets() == [{"PV1", "PV2"}, {"PV1", "PV3"}]
        g = parse_formula("A | A & B")
        assert g.minimal_sets() == [{"A"}]

    def test_validators_listed(self):
        assert parse_formula("A & (B | C)").validators() == {"A", "B", "C"}

    @pytest.mark.parametrize("bad", ["", "&", "A &", "(A", "A B", "A & & B"])
    def test_malformed(self, bad):
        with pytest.raises(FormulaError):
            parse_formula(bad)


class TestHashChain:
    def test_append_and_verify(self):
        log = HashChainLog()
        for i in range(5):
            log.append(b"entry-%d" % i)
        assert log.verify()
        assert len(log) == 5

    def test_tampering_detected(self):
        log = HashChainLog()
        log.append(b"a")
        log.append(b"b")
        # Rewriting an entry breaks the chain.
        from repro.secure.str_log import ChainEntry

        log._entries[0] = ChainEntry(0, b"EVIL", log._entries[0].prev_hash)
        assert not log.verify()

    def test_head_changes_per_entry(self):
        log = HashChainLog()
        log.append(b"a")
        h1 = log.head
        log.append(b"b")
        assert log.head != h1


class TestValidator:
    def test_epoch_validation_and_str(self):
        pv = PluginValidator("PV1", seed=1)
        plugin = make_plugin()
        signed = pv.run_epoch({plugin.name: plugin.serialize()}, epoch=1)
        assert signed.verify(pv.public_key)
        assert pv.validated(plugin.name)
        path = pv.lookup(plugin.name)
        assert verify_path(signed.root, plugin.name, plugin.serialize(), path)

    def test_failed_validation_recorded(self):
        pv = PluginValidator("PV1", seed=1)
        bad = make_plugin("org.t.bad", good=False)
        pv.run_epoch({bad.name: bad.serialize()}, epoch=1)
        assert not pv.validated(bad.name)
        assert bad.name in pv.failures
        # Absence is provable.
        proof = pv.lookup_absence(bad.name)
        from repro.secure import verify_absence

        assert verify_absence(pv.current_str.root, bad.name, proof)

    def test_one_tree_per_epoch(self):
        pv = PluginValidator("PV1", seed=1)
        pv.run_epoch({}, epoch=1)
        with pytest.raises(ValueError):
            pv.run_epoch({}, epoch=1)

    def test_termination_validator_accepts_provable_plugin(self):
        from repro.secure.validator import termination_validation

        pv = PluginValidator("PVt", seed=8, validate_fn=termination_validation)
        plugin = make_plugin()
        pv.run_epoch({plugin.name: plugin.serialize()}, epoch=1)
        assert pv.validated(plugin.name)

    def test_termination_validator_rejects_unprovable_loop(self):
        """§5: a pluglet stuck in an infinite loop would be unsafe; the
        formal-methods PV refuses to vouch for it."""
        from repro.secure.validator import termination_validation

        looping = Plugin("org.t.loop", [
            Pluglet("spin", "packet_sent_event", "post",
                    assemble("top:\nja top\nexit")),
        ])
        pv = PluginValidator("PVt", seed=8, validate_fn=termination_validation)
        pv.run_epoch({looping.name: looping.serialize()}, epoch=1)
        assert not pv.validated(looping.name)
        assert "termination" in pv.failures[looping.name]

    def test_all_builtin_plugins_pass_termination_validator(self):
        from repro.plugins.datagram import build_datagram_plugin
        from repro.plugins.fec import build_fec_plugin
        from repro.plugins.monitoring import build_monitoring_plugin
        from repro.plugins.multipath import build_multipath_plugin
        from repro.secure.validator import termination_validation

        pv = PluginValidator("PVt", seed=8, validate_fn=termination_validation)
        plugins = {
            p.name: p.serialize()
            for p in (build_monitoring_plugin(), build_datagram_plugin(),
                      build_multipath_plugin(), build_fec_plugin())
        }
        pv.run_epoch(plugins, epoch=1)
        assert pv.failures == {}
        assert all(pv.validated(name) for name in plugins)

    def test_name_mismatch_fails_validation(self):
        pv = PluginValidator("PV1", seed=1)
        plugin = make_plugin("org.real.name")
        pv.run_epoch({"org.other.name": plugin.serialize()}, epoch=1)
        assert "org.other.name" in pv.failures


class TestRepository:
    def make_repo(self, n_validators=2):
        repo = PluginRepository()
        pvs = {}
        for i in range(1, n_validators + 1):
            pv = PluginValidator(f"PV{i}", seed=i)
            repo.register_validator(pv)
            pvs[pv.validator_id] = pv
        return repo, pvs

    def test_name_ownership(self):
        repo, _ = self.make_repo()
        repo.publish("alice", "org.t.p", b"v1")
        repo.publish("alice", "org.t.p", b"v2")  # update OK
        with pytest.raises(PublicationError):
            repo.publish("mallory", "org.t.p", b"evil")

    def test_epoch_produces_strs(self):
        repo, pvs = self.make_repo()
        plugin = make_plugin()
        repo.publish("alice", plugin.name, plugin.serialize())
        repo.advance_epoch()
        for vid in pvs:
            signed = repo.get_str(vid)
            assert signed.epoch == 1
            assert signed.verify(repo.validator_public_key(vid))
            assert repo.str_log(vid).verify()

    def test_str_log_grows_per_epoch(self):
        repo, pvs = self.make_repo(1)
        repo.advance_epoch()
        repo.advance_epoch()
        assert len(repo.str_log("PV1")) == 2
        assert repo.get_str("PV1", 1).root is not None

    def test_duplicate_validator_rejected(self):
        repo, _ = self.make_repo(1)
        with pytest.raises(PublicationError):
            repo.register_validator(PluginValidator("PV1", seed=9))

    def test_developer_check_passes_honest(self):
        repo, pvs = self.make_repo(1)
        plugin = make_plugin()
        repo.publish("alice", plugin.name, plugin.serialize())
        repo.advance_epoch()
        assert developer_epoch_check(repo, "alice", pvs["PV1"], plugin.name)
        assert repo.alerts == []

    def test_developer_detects_modified_binding(self):
        """§3.2: 'If a PV injects a spurious binding, the developer owning
        the plugin name will be able to detect this'."""
        repo, pvs = self.make_repo(1)
        plugin = make_plugin()
        repo.publish("alice", plugin.name, plugin.serialize())
        repo.advance_epoch()
        pv = pvs["PV1"]
        # PV stealthily swaps the code for this name.
        evil = make_plugin(plugin.name)
        evil.pluglets[0].protoop = "connection_closing"
        pv.tree.insert(plugin.name, evil.serialize())
        pv.current_str = pv._sign_root(pv.tree.root(), pv.epoch)
        assert not developer_epoch_check(repo, "alice", pv, plugin.name)
        assert repo.faulted_validators() == {"PV1"}

    def test_developer_detects_silent_removal(self):
        repo, pvs = self.make_repo(1)
        plugin = make_plugin()
        repo.publish("alice", plugin.name, plugin.serialize())
        repo.advance_epoch()
        pv = pvs["PV1"]
        pv.tree.remove(plugin.name)
        pv.current_str = pv._sign_root(pv.tree.root(), pv.epoch)
        assert not developer_epoch_check(repo, "alice", pv, plugin.name)

    def test_equivocation_detected_by_str_comparison(self):
        """§B.2.3: two different trees cannot hash to the same root, so a
        victim comparing its served STR with the archive catches the PV."""
        repo = PluginRepository()
        pv = EquivocatingValidator("PVe", seed=5)
        repo.register_validator(pv)
        plugin = make_plugin()
        repo.publish("alice", plugin.name, plugin.serialize())
        repo.advance_epoch()
        evil = make_plugin("org.t.malicious")
        pv.inject_spurious("org.t.malicious", evil.serialize())
        victim_path, victim_str = pv.lookup_for_victim("org.t.malicious")
        # The victim's proof verifies against the shadow STR...
        assert verify_path(victim_str.root, "org.t.malicious",
                           evil.serialize(), victim_path)
        # ...but the shadow STR differs from the archived one, and the
        # report nails the equivocation.
        assert victim_str.root != repo.get_str("PVe").root
        assert repo.report_observed_str("victim", victim_str)
        assert repo.faulted_validators() == {"PVe"}

    def test_consistent_str_report_is_not_alert(self):
        repo, pvs = self.make_repo(1)
        repo.advance_epoch()
        assert not repo.report_observed_str("peer", repo.get_str("PV1"))
        assert repo.alerts == []
