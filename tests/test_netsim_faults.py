"""Deterministic fault injection: unit behaviour of FaultInjector and the
chaos acceptance test — plugin exchange under corruption + reordering +
a mid-transfer link flap completes (or degrades) identically across two
same-seed runs, and never hangs or closes the connection.
"""

import pytest

from repro.core import Plugin, PluginCache, Pluglet
from repro.core.exchange import PLUGIN_CHUNK, PluginExchanger, make_proof_provider
from repro.netsim import (
    Datagram,
    FaultInjector,
    Pipe,
    Simulator,
    symmetric_topology,
)
from repro.quic import ClientEndpoint, QuicConfiguration, ServerEndpoint
from repro.quic.connection import reset_instance_counter

from repro.vm import assemble

from .test_core_exchange import build_world


def big_plugin(name="org.x.chaos", pluglets=200):
    """A plugin whose compressed binding spans several PLUGIN chunks:
    per-pluglet pseudo-random immediates defeat zlib."""
    made = []
    for i in range(pluglets):
        source = "\n".join(
            f"lddw r{j % 5}, {((i * 8 + j) * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFF}"
            for j in range(8)
        ) + "\nmov r0, 0\nexit"
        made.append(Pluglet(f"n{i}", "packet_sent_event", "post",
                            assemble(source)))
    plugin = Plugin(name, made)
    assert len(plugin.compressed()) > 3 * PLUGIN_CHUNK
    return plugin


def dgram(payload=b"x" * 100, seq=0):
    return Datagram("a", 1, "b", 2, payload, hops=seq)


def collector_pipe(sim, delay=0.01, bandwidth=8_000_000.0):
    pipe = Pipe(sim, delay, bandwidth)
    out = []
    pipe.connect(lambda p: out.append((sim.now, p)))
    return pipe, out


class TestFaultInjectorUnits:
    def test_corruption_flips_exactly_one_byte(self):
        sim = Simulator()
        pipe, out = collector_pipe(sim)
        FaultInjector(sim, seed=1, corrupt_rate=1.0).inject(pipe)
        original = bytes(range(100))
        pipe.send(dgram(original), 100)
        sim.run()
        assert len(out) == 1
        delivered = out[0][1].payload
        assert delivered != original
        assert len(delivered) == len(original)
        assert sum(a != b for a, b in zip(original, delivered)) == 1

    def test_corruption_does_not_mutate_senders_copy(self):
        sim = Simulator()
        pipe, out = collector_pipe(sim)
        FaultInjector(sim, seed=1, corrupt_rate=1.0).inject(pipe)
        packet = dgram(bytes(50))
        pipe.send(packet, 50)
        sim.run()
        assert packet.payload == bytes(50)  # a corrupted *copy* travels

    def test_duplication_delivers_twice(self):
        sim = Simulator()
        pipe, out = collector_pipe(sim)
        injector = FaultInjector(sim, seed=1, duplicate_rate=1.0)
        injector.inject(pipe)
        pipe.send(dgram(), 100)
        sim.run()
        assert len(out) == 2
        assert injector.stats.duplicated == 1

    def test_reordering_lets_later_packets_overtake(self):
        sim = Simulator()
        pipe, out = collector_pipe(sim)
        injector = FaultInjector(sim, seed=3, reorder_rate=0.3,
                                 reorder_delay=0.2)
        injector.inject(pipe)
        for seq in range(30):
            sim.schedule(seq * 0.001, pipe.send, dgram(seq=seq), 100)
        sim.run()
        assert len(out) == 30  # nothing lost, only displaced
        order = [p.hops for _, p in out]
        assert order != sorted(order)
        assert injector.stats.reordered > 0

    def test_flap_blackholes_scheduled_window(self):
        sim = Simulator()
        pipe, out = collector_pipe(sim, delay=0.001)
        injector = FaultInjector(sim, seed=1)
        injector.inject(pipe)
        injector.schedule_flap(down_at=1.0, duration=1.0)
        for t in (0.5, 1.5, 2.5):  # before, during, after
            sim.schedule(t, pipe.send, dgram(seq=int(t * 10)), 100)
        sim.run()
        assert [p.hops for _, p in out] == [5, 25]
        assert injector.stats.dropped_down == 1
        assert injector.stats.flaps == 1

    def test_injection_before_connect(self):
        """Wrapping must also catch pipes connected after inject()."""
        sim = Simulator()
        pipe = Pipe(sim, 0.001, 8_000_000.0)
        injector = FaultInjector(sim, seed=1, duplicate_rate=1.0)
        injector.inject(pipe)
        out = []
        pipe.connect(lambda p: out.append(p))
        pipe.send(dgram(), 100)
        sim.run()
        assert len(out) == 2

    def test_same_seed_same_fault_pattern(self):
        def run(seed):
            sim = Simulator()
            pipe, out = collector_pipe(sim)
            injector = FaultInjector(sim, seed=seed, corrupt_rate=0.2,
                                     duplicate_rate=0.2, reorder_rate=0.2)
            injector.inject(pipe)
            for seq in range(50):
                sim.schedule(seq * 0.001, pipe.send, dgram(seq=seq), 100)
            sim.run()
            return injector.stats.as_dict(), [(t, p.hops) for t, p in out]

        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_fault_streams_independent(self):
        """Enabling duplication must not change which packets corrupt."""
        def corrupted_seqs(duplicate_rate):
            sim = Simulator()
            pipe, out = collector_pipe(sim)
            injector = FaultInjector(sim, seed=9, corrupt_rate=0.3,
                                     duplicate_rate=duplicate_rate)
            injector.inject(pipe)
            for seq in range(40):
                payload = bytes([seq]) * 20
                sim.schedule(seq * 0.001, pipe.send,
                             dgram(payload=payload, seq=seq), 100)
            sim.run()
            return {p.hops for _, p in out if p.payload != bytes([p.hops]) * 20}

        assert corrupted_seqs(0.0) == corrupted_seqs(0.9)

    def test_invalid_rates_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FaultInjector(sim, corrupt_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(sim, reorder_delay=-1)
        with pytest.raises(ValueError):
            FaultInjector(sim).schedule_flap(1.0, 0.0)


def run_chaos_exchange(seed):
    """One full client/server exchange over a hostile path 1."""
    reset_instance_counter()
    plugin, repo, validators, trust = build_world(1, plugin=big_plugin())
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=20, seed=seed)
    injector = FaultInjector(sim, seed=seed, corrupt_rate=0.15,
                             duplicate_rate=0.05,
                             reorder_rate=0.10, reorder_delay=0.03)
    injector.inject_link(topo.path_links[0])
    # One link flap right as the plugin transfer gets going.
    injector.schedule_flap(down_at=0.05, duration=0.3)
    server_cache = PluginCache()
    server_cache.store(plugin)
    provider = make_proof_provider(repo, validators)
    server = ServerEndpoint(
        sim, topo.server, "server.0", 443,
        configuration_factory=lambda: QuicConfiguration(
            is_client=False, plugins_to_inject=[plugin.name]),
    )
    server.on_connection = lambda conn: PluginExchanger(
        conn, server_cache, proof_provider=provider)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                            "server.0", 443)
    cache = PluginCache()
    exchanger = PluginExchanger(client.conn, cache, trust=trust,
                                formula="PV1")
    client.connect()
    settled = sim.run_until(
        lambda: bool(exchanger.received)
        or plugin.name in exchanger.degraded
        or client.conn.closed,
        timeout=60,
    )
    return {
        "settled": settled,
        "received": list(exchanger.received),
        "degraded": sorted(exchanger.degraded),
        "conn_closed": client.conn.closed,
        "cached": cache.has(plugin.name),
        "exchange_stats": dict(exchanger.stats),
        "fault_stats": injector.stats.as_dict(),
        "settle_time": round(sim.now, 9),
    }


class TestChaosExchange:
    def test_exchange_completes_or_degrades_never_hangs(self):
        outcome = run_chaos_exchange(seed=7)
        # The exchange must settle: either the plugin arrived and was
        # cached, or the exchanger gave up gracefully.  The connection
        # itself must survive the chaos either way.
        assert outcome["settled"]
        assert not outcome["conn_closed"]
        assert outcome["received"] or outcome["degraded"]
        if outcome["received"]:
            assert outcome["cached"]
        # The chaos actually happened.
        assert outcome["fault_stats"]["corrupted"] > 0
        assert outcome["fault_stats"]["flaps"] == 1

    def test_same_seed_runs_identically(self):
        assert run_chaos_exchange(seed=7) == run_chaos_exchange(seed=7)

    def test_different_seed_differs(self):
        # Coarse outcomes may coincide; the fault pattern must not.
        a = run_chaos_exchange(seed=7)
        b = run_chaos_exchange(seed=8)
        assert a["fault_stats"] != b["fault_stats"]

    def test_rotating_seed_from_environment(self):
        """The nightly CI chaos job exports ``REPRO_CHAOS_SEED`` (the UTC
        date), so each night sweeps a different corner of the fault
        space.  The exchange invariants must hold for *any* seed; the
        seed is printed so a red nightly run is reproducible locally."""
        import os

        seed = int(os.environ.get("REPRO_CHAOS_SEED", "20260806"))
        print(f"chaos seed: {seed}")
        outcome = run_chaos_exchange(seed=seed)
        assert outcome["settled"]
        assert not outcome["conn_closed"]
        assert outcome["received"] or outcome["degraded"]
        if outcome["received"]:
            assert outcome["cached"]

    def test_exchange_retries_observable(self):
        """A flap long enough to outlast the first request timeout makes
        the exchanger retry; the retry counter records it."""
        reset_instance_counter()
        plugin, repo, validators, trust = build_world(1)
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=20)
        injector = FaultInjector(sim, seed=3)
        injector.inject_link(topo.path_links[0])
        injector.schedule_flap(down_at=0.03, duration=1.5)
        server_cache = PluginCache()
        server_cache.store(plugin)
        provider = make_proof_provider(repo, validators)
        server = ServerEndpoint(
            sim, topo.server, "server.0", 443,
            configuration_factory=lambda: QuicConfiguration(
                is_client=False, plugins_to_inject=[plugin.name]),
        )
        server.on_connection = lambda conn: PluginExchanger(
            conn, server_cache, proof_provider=provider)
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        exchanger = PluginExchanger(client.conn, PluginCache(), trust=trust,
                                    formula="PV1")
        client.connect()
        assert sim.run_until(
            lambda: bool(exchanger.received) or bool(exchanger.degraded),
            timeout=60)
        assert exchanger.stats["retries"] > 0
