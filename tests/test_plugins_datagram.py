"""Datagram plugin tests (§4.2)."""

import struct

import pytest

from repro.core import PluginInstance
from repro.netsim import Simulator, symmetric_topology
from repro.plugins.datagram import (
    OFF_DROPPED_LOST,
    OFF_RECEIVED,
    OFF_SENT,
    DatagramFrame,
    DatagramSocket,
    build_datagram_plugin,
)
from repro.quic import ClientEndpoint, ServerEndpoint
from repro.quic.wire import Buffer


def setup_pair(loss=0, seed=1, d_ms=10, bw=10):
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=d_ms, bw_mbps=bw, loss_pct=loss, seed=seed)
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    ci = PluginInstance(build_datagram_plugin(), client.conn)
    ci.attach()
    state = {}

    def on_conn(conn):
        state["server_inst"] = PluginInstance(build_datagram_plugin(), conn)
        state["server_inst"].attach()
        state["sconn"] = conn

    server.on_connection = on_conn
    client.connect()
    assert sim.run_until(
        lambda: client.conn.is_established and "sconn" in state, timeout=5)
    return sim, client, server, state, ci


def counter(instance, offset):
    return struct.unpack_from(
        "<Q", instance.runtime.memory.data,
        instance.runtime._opaque[2] - 0x2000_0000 + offset,
    )[0]


def test_frame_roundtrip():
    frame = DatagramFrame(data=b"hello")
    buf = Buffer(frame.to_bytes())
    ftype = buf.pull_varint()
    parsed = DatagramFrame.parse(buf, ftype)
    assert parsed.data == b"hello"


def test_frame_is_unreliable_but_ack_eliciting():
    frame = DatagramFrame(data=b"x")
    assert frame.ack_eliciting
    assert not frame.retransmittable


def test_message_delivery_and_boundaries():
    sim, client, server, state, ci = setup_pair()
    got = []
    DatagramSocket(state["sconn"], on_message=got.append)
    sock = DatagramSocket(client.conn)
    for message in (b"one", b"two", b"three" * 50):
        assert sock.send(message) == len(message)
    client.pump()
    assert sim.run_until(lambda: len(got) == 3, timeout=5)
    # Boundaries preserved (message mode, not a byte stream).
    assert got == [b"one", b"two", b"three" * 50]


def test_oversized_message_refused():
    sim, client, server, state, ci = setup_pair()
    sock = DatagramSocket(client.conn)
    limit = sock.max_size()
    assert sock.send(b"z" * (limit + 1)) == 0
    assert sock.send(b"z" * limit) == limit


def test_empty_message_refused():
    sim, client, server, state, ci = setup_pair()
    sock = DatagramSocket(client.conn)
    assert sock.send(b"") == 0


def test_socket_requires_plugin():
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    with pytest.raises(RuntimeError):
        DatagramSocket(client.conn)


def test_lost_datagrams_not_retransmitted():
    """§4.2: no transmission order nor reliable delivery — losses are
    counted by the notify pluglet and never repaired."""
    sim, client, server, state, ci = setup_pair(loss=20, seed=6)
    got = []
    DatagramSocket(state["sconn"], on_message=got.append)
    sock = DatagramSocket(client.conn)
    n = 60
    for i in range(n):
        sock.send(b"m%03d" % i)
        client.pump()
    sim.run(until=sim.now + 10)
    delivered = len(got)
    assert 0 < delivered < n  # some lost
    sent = counter(ci, OFF_SENT)
    dropped = counter(ci, OFF_DROPPED_LOST)
    assert sent == n
    assert dropped > 0
    # Total accounted: delivered once each, nothing duplicated.
    assert len(set(got)) == delivered
    # And the receiver counted exactly the delivered ones.
    assert counter(state["server_inst"], OFF_RECEIVED) == delivered


def test_stats_counters():
    sim, client, server, state, ci = setup_pair()
    sock = DatagramSocket(client.conn)
    sock.send(b"a")
    sock.send(b"b")
    client.pump()
    sim.run(until=sim.now + 1)
    assert counter(ci, OFF_SENT) == 2
    assert counter(state["server_inst"], OFF_RECEIVED) == 2


def test_datagrams_multiplex_with_stream_data():
    """§3.4 spirit: datagram and stream frames share the connection."""
    sim, client, server, state, ci = setup_pair()
    got_messages = []
    got_stream = bytearray()
    DatagramSocket(state["sconn"], on_message=got_messages.append)
    state["sconn"].on_stream_data = lambda sid, d, fin: got_stream.extend(d)
    sock = DatagramSocket(client.conn)
    sid = client.conn.create_stream()
    client.conn.send_stream_data(sid, b"s" * 30_000, fin=True)
    for i in range(10):
        sock.send(b"dg-%d" % i)
    client.pump()
    assert sim.run_until(
        lambda: len(got_stream) == 30_000 and len(got_messages) == 10,
        timeout=30,
    )
