"""Transport parameter codec tests, including PQUIC's plugin parameters."""

import pytest

from repro.quic.errors import TransportError
from repro.quic.transport_params import TransportParameters


def test_roundtrip_defaults():
    params = TransportParameters()
    parsed = TransportParameters.parse(params.serialize())
    assert parsed.idle_timeout == params.idle_timeout
    assert parsed.initial_max_data == params.initial_max_data
    assert parsed.initial_max_stream_data == params.initial_max_stream_data
    assert parsed.initial_max_streams_bidi == params.initial_max_streams_bidi
    assert parsed.supported_plugins == []
    assert parsed.plugins_to_inject == []


def test_roundtrip_custom_values():
    params = TransportParameters(
        idle_timeout=7.5,
        max_udp_payload_size=1350,
        initial_max_data=999_999,
        initial_max_stream_data=88_888,
        original_dcid=b"\x01\x02\x03",
    )
    parsed = TransportParameters.parse(params.serialize())
    assert parsed.idle_timeout == pytest.approx(7.5)
    assert parsed.max_udp_payload_size == 1350
    assert parsed.initial_max_data == 999_999
    assert parsed.original_dcid == b"\x01\x02\x03"


def test_max_ack_delay_roundtrip():
    # RFC 9000 §18.2: max_ack_delay travels as milliseconds.
    params = TransportParameters(max_ack_delay=0.040)
    parsed = TransportParameters.parse(params.serialize())
    assert parsed.max_ack_delay == pytest.approx(0.040)


def test_max_ack_delay_default():
    parsed = TransportParameters.parse(TransportParameters().serialize())
    assert parsed.max_ack_delay == pytest.approx(0.025)


def test_plugin_parameters_roundtrip():
    # §3.4: supported_plugins / plugins_to_inject are ordered lists.
    params = TransportParameters(
        supported_plugins=["monitoring", "multipath"],
        plugins_to_inject=["fec", "datagram"],
    )
    parsed = TransportParameters.parse(params.serialize())
    assert parsed.supported_plugins == ["monitoring", "multipath"]
    assert parsed.plugins_to_inject == ["fec", "datagram"]


def test_plugin_list_order_preserved():
    params = TransportParameters(plugins_to_inject=["c", "a", "b"])
    parsed = TransportParameters.parse(params.serialize())
    assert parsed.plugins_to_inject == ["c", "a", "b"]


def test_duplicate_parameter_rejected():
    params = TransportParameters()
    data = params.serialize()
    with pytest.raises(TransportError):
        TransportParameters.parse(data + data)


def test_udp_payload_size_floor():
    params = TransportParameters(max_udp_payload_size=1100)
    with pytest.raises(TransportError):
        TransportParameters.parse(params.serialize())


def test_unknown_parameters_ignored():
    from repro.quic.wire import Buffer

    params = TransportParameters()
    buf = Buffer()
    buf.push_varint(0x7777)
    buf.push_varint_prefixed_bytes(b"whatever")
    parsed = TransportParameters.parse(params.serialize() + buf.data())
    assert parsed.initial_max_data == params.initial_max_data
