"""RTT estimation, ACK processing and loss detection tests."""

import pytest

from repro.quic.frames import AckFrame
from repro.quic.recovery import (
    K_PACKET_THRESHOLD,
    MAX_LOST_HISTORY,
    MAX_PTO_PROBES,
    AckResult,
    PacketNumberSpace,
    RttEstimator,
    SentPacket,
)
from repro.quic.wire import RangeSet


def sent(pn, t=0.0, size=1200, eliciting=True):
    return SentPacket(packet_number=pn, sent_time=t, size=size,
                      ack_eliciting=eliciting, in_flight=eliciting)


def ack_of(*pns, delay=0.0):
    rs = RangeSet()
    for pn in pns:
        rs.add(pn)
    return AckFrame(ranges=rs, ack_delay=delay)


class TestRttEstimator:
    def test_first_sample_initializes(self):
        rtt = RttEstimator()
        rtt.update(0.2)
        assert rtt.smoothed == pytest.approx(0.2)
        assert rtt.min_rtt == pytest.approx(0.2)
        assert rtt.variance == pytest.approx(0.1)

    def test_ewma_converges(self):
        rtt = RttEstimator()
        for _ in range(100):
            rtt.update(0.05)
        assert rtt.smoothed == pytest.approx(0.05, rel=0.01)
        assert rtt.variance < 0.002

    def test_ack_delay_subtracted_when_above_min(self):
        rtt = RttEstimator()
        rtt.max_ack_delay = 0.1  # negotiated cap above the reported delay
        rtt.update(0.1)
        rtt.update(0.2, ack_delay=0.05)
        # adjusted sample is 0.15
        assert rtt.smoothed == pytest.approx(0.875 * 0.1 + 0.125 * 0.15)

    def test_ack_delay_clamped_to_max_ack_delay(self):
        # RFC 9002 §5.3: the peer may not claim more delay than its
        # negotiated max_ack_delay (default 25 ms).
        rtt = RttEstimator()
        rtt.update(0.1)
        rtt.update(0.2, ack_delay=0.05)
        # adjusted sample is 0.2 - 0.025 = 0.175, not 0.15
        assert rtt.smoothed == pytest.approx(0.875 * 0.1 + 0.125 * 0.175)

    def test_ack_delay_ignored_when_below_min(self):
        rtt = RttEstimator()
        rtt.max_ack_delay = 0.1
        rtt.update(0.1)
        rtt.update(0.11, ack_delay=0.05)  # 0.06 < min_rtt -> keep raw
        assert rtt.smoothed == pytest.approx(0.875 * 0.1 + 0.125 * 0.11)

    def test_nonpositive_sample_ignored(self):
        rtt = RttEstimator()
        rtt.update(0.1)
        rtt.update(0.0)
        assert rtt.samples == 1

    def test_pto_grows_with_variance(self):
        rtt = RttEstimator()
        rtt.update(0.1)
        stable_pto = rtt.pto()
        rtt.update(0.5)
        assert rtt.pto() > stable_pto


class TestAckProcessing:
    def test_simple_ack_removes_packets(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        for pn in range(3):
            space.on_packet_sent(sent(pn, t=pn * 0.01))
        result = space.on_ack_received(ack_of(0, 1, 2), now=0.1, rtt=rtt)
        assert [p.packet_number for p in result.newly_acked] == [0, 1, 2]
        assert not space.sent
        assert space.largest_acked == 2

    def test_rtt_sampled_from_largest(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        space.on_packet_sent(sent(0, t=1.0))
        result = space.on_ack_received(ack_of(0), now=1.25, rtt=rtt)
        assert result.latest_rtt == pytest.approx(0.25)
        assert rtt.samples == 1

    def test_no_rtt_sample_when_largest_not_newly_acked(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        space.on_packet_sent(sent(0, t=0.0))
        space.on_ack_received(ack_of(0), now=0.1, rtt=rtt)
        space.on_packet_sent(sent(1, t=0.2))
        result = space.on_ack_received(ack_of(0), now=0.3, rtt=rtt)
        assert result.latest_rtt is None

    def test_packet_threshold_loss(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        for pn in range(5):
            space.on_packet_sent(sent(pn, t=0.0))
        # ACK only pn 4: 0 and 1 are >= 3 below the largest acked.
        result = space.on_ack_received(ack_of(4), now=0.01, rtt=rtt)
        lost_pns = [p.packet_number for p in result.lost]
        assert lost_pns == [0, 1]
        assert 2 in space.sent and 3 in space.sent

    def test_time_threshold_loss(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        rtt.update(0.1)
        space.on_packet_sent(sent(0, t=0.0))
        space.on_packet_sent(sent(1, t=1.0))
        result = space.on_ack_received(ack_of(1), now=1.05, rtt=rtt)
        assert [p.packet_number for p in result.lost] == [0]

    def test_loss_time_armed_for_recent_unacked(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        rtt.update(0.1)
        space.on_packet_sent(sent(0, t=1.0))
        space.on_packet_sent(sent(1, t=1.0))
        space.on_ack_received(ack_of(1), now=1.02, rtt=rtt)
        assert space.loss_time is not None
        expected_delay = 9 / 8 * max(rtt.latest, rtt.smoothed)
        assert space.loss_time == pytest.approx(1.0 + expected_delay)

    def test_duplicate_ack_is_noop(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        space.on_packet_sent(sent(0))
        space.on_ack_received(ack_of(0), now=0.1, rtt=rtt)
        result = space.on_ack_received(ack_of(0), now=0.2, rtt=rtt)
        assert result.newly_acked == []


class TestReceiveTracking:
    def test_record_and_ack_frame(self):
        space = PacketNumberSpace()
        assert space.record_received(0, now=1.0, ack_eliciting=True)
        assert space.record_received(1, now=1.1, ack_eliciting=True)
        assert space.ack_needed
        frame = space.ack_frame(now=1.2)
        assert frame.ranges == RangeSet([range(0, 2)])
        # The 0.1 s of real delay is clamped to the advertised
        # max_ack_delay: we may never report more than we negotiated.
        assert frame.ack_delay == pytest.approx(0.025)

    def test_ack_delay_below_max_reported_exactly(self):
        space = PacketNumberSpace()
        space.record_received(0, now=1.0, ack_eliciting=True)
        frame = space.ack_frame(now=1.01)
        assert frame.ack_delay == pytest.approx(0.01)

    def test_ack_delay_clamped_to_custom_max(self):
        space = PacketNumberSpace()
        space.record_received(0, now=1.0, ack_eliciting=True)
        frame = space.ack_frame(now=2.0, max_ack_delay=0.1)
        assert frame.ack_delay == pytest.approx(0.1)

    def test_duplicate_detection(self):
        space = PacketNumberSpace()
        assert space.record_received(5, 0.0, True)
        assert not space.record_received(5, 0.1, True)

    def test_non_eliciting_does_not_set_ack_needed(self):
        space = PacketNumberSpace()
        space.record_received(0, 0.0, ack_eliciting=False)
        assert not space.ack_needed

    def test_ack_frame_empty_space(self):
        assert PacketNumberSpace().ack_frame(0.0) is None

    def test_ack_frame_caps_ranges(self):
        space = PacketNumberSpace()
        for pn in range(0, 200, 2):  # 100 disjoint ranges
            space.record_received(pn, 0.0, True)
        frame = space.ack_frame(0.0)
        assert len(frame.ranges) <= 32
        assert frame.ranges.largest() == 198


class TestAckOfAckPruning:
    def test_received_pruned_after_ack_of_ack(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        for pn in list(range(10)) + list(range(20, 30)):
            space.record_received(pn, now=0.0, ack_eliciting=True)
        # Packet 0 carried an ACK reporting everything up to 29: the old
        # range 0-9 is provably seen; the range containing the bound is
        # kept whole so the reported tail never changes.
        space.on_packet_sent(sent(0))
        space.sent[0].largest_ack_reported = 29
        space.on_ack_received(ack_of(0), now=0.1, rtt=rtt)
        assert list(space.received) == [range(20, 30)]

    def test_straddled_range_kept_whole(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        for pn in range(10):
            space.record_received(pn, now=0.0, ack_eliciting=True)
        space.on_packet_sent(sent(0))
        space.sent[0].largest_ack_reported = 5
        space.on_ack_received(ack_of(0), now=0.1, rtt=rtt)
        # The range containing 5 survives whole so the next ACK frame
        # still reports a tail identical to the unpruned one.
        assert list(space.received) == [range(0, 10)]

    def test_ack_frame_tail_identical_after_pruning(self):
        pruned, unpruned = PacketNumberSpace(), PacketNumberSpace()
        rtt = RttEstimator()
        for space in (pruned, unpruned):
            for pn in list(range(0, 20)) + list(range(30, 40)):
                space.record_received(pn, now=0.0, ack_eliciting=True)
        pruned.on_packet_sent(sent(0))
        pruned.sent[0].largest_ack_reported = 39
        pruned.on_ack_received(ack_of(0), now=0.1, rtt=rtt)
        assert list(pruned.received) == [range(30, 40)]
        # Everything the pruned frame reports, the unpruned frame
        # reports identically: pruning only drops the provably-seen head.
        f_pruned = pruned.ack_frame(now=0.2)
        f_unpruned = unpruned.ack_frame(now=0.2)
        assert list(f_pruned.ranges) == list(f_unpruned.ranges)[-1:]
        assert f_pruned.ranges.largest() == f_unpruned.ranges.largest()

    def test_no_pruning_without_ack_carrying_packets(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        for pn in range(5):
            space.record_received(pn, now=0.0, ack_eliciting=True)
        space.on_packet_sent(sent(0))  # default: no ACK frame inside
        space.on_ack_received(ack_of(0), now=0.1, rtt=rtt)
        assert list(space.received) == [range(0, 5)]

    def test_release_clears_tracking_state(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        space.on_packet_sent(sent(0))
        space.on_packet_sent(sent(1))
        space.record_received(7, now=0.0, ack_eliciting=True)
        space.on_ack_received(ack_of(1), now=0.1, rtt=rtt)
        assert space.loss_time is not None or space.sent
        space.release()
        assert not space.sent
        assert list(space.received) == []
        assert space.loss_time is None
        assert not space.ack_needed


class TestLossTimerProgress:
    def test_loss_time_never_rearms_at_or_before_now(self):
        """Regression: floating-point error could re-arm loss_time at
        exactly `now`, spinning the event loop at a single instant."""
        space = PacketNumberSpace()
        rtt = RttEstimator()
        rtt.update(0.1)
        loss_delay = 9 / 8 * 0.1
        # A packet whose loss deadline lands exactly on `now`: it must be
        # declared lost, never deferred to a loss_time equal to `now`.
        space.on_packet_sent(sent(0, t=1.0))
        space.largest_acked = 1
        lost = space.detect_lost(now=1.0 + loss_delay, rtt=rtt)
        assert [p.packet_number for p in lost] == [0]
        assert space.loss_time is None

    def test_timer_loop_terminates_under_loss(self):
        """End-to-end regression for the same bug: a lossy transfer that
        previously looped forever at one simulated instant."""
        import time

        from repro.experiments import run_quic_transfer

        t0 = time.time()
        result = run_quic_transfer(100_000, d_ms=10, bw_mbps=10,
                                   loss_pct=5, seed=6, timeout=60)
        assert result.completed
        assert time.time() - t0 < 30


class TestPto:
    def test_pto_deadline_none_when_nothing_outstanding(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        assert space.pto_deadline(rtt, 0) is None

    def test_pto_deadline_set_after_send(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        rtt.update(0.1)
        space.on_packet_sent(sent(0, t=2.0))
        deadline = space.pto_deadline(rtt, 0)
        assert deadline == pytest.approx(2.0 + rtt.pto())

    def test_pto_backoff_doubles(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        rtt.update(0.1)
        space.on_packet_sent(sent(0, t=0.0))
        d0 = space.pto_deadline(rtt, 0)
        d1 = space.pto_deadline(rtt, 1)
        assert d1 == pytest.approx(2 * d0)

    def test_probe_candidates_oldest_eliciting_first(self):
        space = PacketNumberSpace()
        for pn in range(4):
            space.on_packet_sent(sent(pn, t=float(pn)))
        probes = space.probe_candidates()
        # Oldest two ack-eliciting packets, nothing removed from flight.
        assert [p.packet_number for p in probes] == [0, 1]
        assert len(space.sent) == 4

    def test_probe_candidates_skip_non_eliciting(self):
        space = PacketNumberSpace()
        space.on_packet_sent(
            SentPacket(packet_number=0, sent_time=0.0, size=100,
                       ack_eliciting=False, in_flight=False))
        space.on_packet_sent(sent(1, t=1.0))
        probes = space.probe_candidates()
        assert [p.packet_number for p in probes] == [1]

    def test_probe_candidates_respects_cap(self):
        space = PacketNumberSpace()
        for pn in range(5):
            space.on_packet_sent(sent(pn))
        assert len(space.probe_candidates(max_probes=1)) == 1
        assert len(space.probe_candidates()) == MAX_PTO_PROBES

    def test_declare_all_lost_legacy_baseline(self):
        space = PacketNumberSpace()
        for pn in range(3):
            space.on_packet_sent(sent(pn))
        lost = space.declare_all_lost()
        assert [p.packet_number for p in lost] == [0, 1, 2]
        assert not space.sent


class TestSpuriousLoss:
    def test_late_ack_of_declared_lost_packet_is_spurious(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        for pn in range(5):
            space.on_packet_sent(sent(pn, t=0.1 * pn))
        # Acking 4 declares the rest lost (packet + time thresholds).
        result = space.on_ack_received(ack_of(4), now=1.0, rtt=rtt)
        lost_pns = [p.packet_number for p in result.lost]
        assert 0 in lost_pns
        assert not result.spurious
        # The "lost" packet's ACK then arrives late: spurious.
        result = space.on_ack_received(ack_of(0), now=1.1, rtt=rtt)
        assert [p.packet_number for p in result.spurious] == [0]
        assert result.newly_acked == []
        assert 0 not in space.lost_packets
        assert result.spurious[0].lost_time == pytest.approx(1.0)

    def test_spurious_reported_once(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        for pn in range(5):
            space.on_packet_sent(sent(pn, t=0.1 * pn))
        space.on_ack_received(ack_of(4), now=1.0, rtt=rtt)
        first = space.on_ack_received(ack_of(0), now=1.1, rtt=rtt)
        again = space.on_ack_received(ack_of(0), now=1.2, rtt=rtt)
        assert len(first.spurious) == 1
        assert not again.spurious

    def test_lost_history_bounded(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        rtt.update(0.01)
        n = MAX_LOST_HISTORY + 64
        for pn in range(n + 1):
            space.on_packet_sent(sent(pn, t=0.0))
        space.on_ack_received(ack_of(n), now=100.0, rtt=rtt)
        assert len(space.lost_packets) <= MAX_LOST_HISTORY


class TestPersistentCongestion:
    def _lose_all(self, space, rtt, largest):
        """Ack only `largest`, declaring everything below it lost."""
        return space.on_ack_received(ack_of(largest), now=100.0, rtt=rtt)

    def test_duration_spanning_run_detected(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        rtt.update(0.1)
        duration = rtt.pto() * 3
        for pn in range(4):
            space.on_packet_sent(sent(pn, t=pn * duration / 2))
        space.on_packet_sent(sent(4, t=99.0))
        result = self._lose_all(space, rtt, 4)
        assert len(result.lost) == 4
        assert space.persistent_congestion(result.lost, duration)

    def test_short_run_not_persistent(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        rtt.update(0.1)
        duration = rtt.pto() * 3
        # All losses inside one duration window: not persistent.
        for pn in range(4):
            space.on_packet_sent(sent(pn, t=pn * duration / 8))
        space.on_packet_sent(sent(4, t=99.0))
        result = self._lose_all(space, rtt, 4)
        assert not space.persistent_congestion(result.lost, duration)

    def test_acked_packet_breaks_run(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        rtt.update(0.1)
        duration = rtt.pto() * 3
        for pn in range(5):
            space.on_packet_sent(sent(pn, t=pn * duration / 2))
        space.on_packet_sent(sent(5, t=99.0))
        # Packet 2 is delivered: it splits the loss run in two halves,
        # neither of which spans the duration on its own.
        ack = AckFrame(ranges=RangeSet([range(2, 3), range(5, 6)]))
        result = space.on_ack_received(ack, now=100.0, rtt=rtt)
        assert [p.packet_number for p in result.lost] == [0, 1, 3, 4]
        assert not space.persistent_congestion(result.lost, duration)

    def test_single_loss_never_persistent(self):
        space = PacketNumberSpace()
        rtt = RttEstimator()
        rtt.update(0.1)
        space.on_packet_sent(sent(0, t=0.0))
        space.on_packet_sent(sent(1, t=99.0))
        result = self._lose_all(space, rtt, 1)
        assert not space.persistent_congestion(result.lost, rtt.pto() * 3)
