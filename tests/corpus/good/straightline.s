; expect: ok
; Straight-line arithmetic over the argument registers: loop-free, no
; memory, fully provable.
mov r0, r1
add r0, r2
mul r0, 3
exit
