; expect: ok
; Diamond control flow with a helper call on one arm; both arms write
; r6 before the join reads it.
jeq r1, 0, zero
mov r6, 1
call 1
ja join
zero:
mov r6, 2
join:
mov r0, r6
exit
