; expect: ok
; Spill/reload through the pluglet stack plus a proven heap round-trip:
; every access gets a region fact, so the report is memory_safe.
lddw r6, 0x20000000
stw [r6+0], 42
ldxw r7, [r6+0]
stxdw [r10-8], r7
ldxdw r0, [r10-8]
exit
