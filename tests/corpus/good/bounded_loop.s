; expect: ok
; A counted loop: not loop-free (no fuel bound), but terminating and
; error-free — the analyzer must accept it, only the proofs weaken.
mov r6, 0
mov r7, 0
loop:
add r7, r6
add r6, 1
jlt r6, 10, loop
mov r0, r7
exit
