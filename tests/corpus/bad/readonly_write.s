; expect: PRE010
; The frame pointer r10 is read-only (legacy rule, kept exact).
mov r10, 5
mov r0, 0
exit
