; expect: PRE108
; The divisor register is provably always zero at the division.
mov r6, 0
mov r0, 10
div r0, r6
exit
