; expect: PRE104
; Computed stack address above the frame pointer: r10 + 16 is past the
; top of the 512-byte pluglet stack and below the heap base.  The
; legacy verifier only checks direct [r10+off] operands; catching this
; needs the abstract interpretation.
mov r6, r10
add r6, 16
stdw [r6+0], 7
mov r0, 0
exit
