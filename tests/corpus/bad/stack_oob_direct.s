; expect: PRE012
; Direct frame-pointer operand outside [-512, 0): the legacy static
; stack check (§2.1) rejects it without any dataflow.
stdw [r10+8], 1
mov r0, 0
exit
