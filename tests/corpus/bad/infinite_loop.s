; expect: PRE103
; The self-loop can never reach a terminator: every execution that
; enters it runs until the fuel budget faults.
loop:
ja loop
exit
