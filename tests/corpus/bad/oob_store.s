; expect: PRE104
; Store of 4 bytes exactly at the end of the default 16 KiB plugin
; memory: the interval analysis proves the address can never fall in
; the stack or heap windows.
lddw r6, 0x20004000
stw [r6+0], 1
mov r0, 0
exit
