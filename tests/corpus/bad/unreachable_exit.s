; expect: PRE102
; An exit instruction exists, but the entry jumps over it and execution
; falls off the end of the program.
mov r0, 0
ja skip
exit
skip:
mov r6, 1
