; expect: PRE106
; r6 is a scratch register never written before this read.
mov r0, r6
exit
