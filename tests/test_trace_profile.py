"""PRE profiler: per-pluglet attribution, JIT/interpreter paths, merge,
and zero-residue detach."""

import pytest

from repro.experiments import run_quic_transfer
from repro.plugins.fec import build_fec_plugin
from repro.plugins.monitoring import build_monitoring_plugin
from repro.trace import PreProfiler, ProfileRecord


def profiled_transfer(**kwargs):
    result = run_quic_transfer(
        60_000, d_ms=5, bw_mbps=20,
        client_plugins=[build_monitoring_plugin,
                        lambda: build_fec_plugin("xor", "full")],
        profile=True, **kwargs)
    assert result.completed
    assert result.profile is not None
    return result.profile


class TestAttribution:
    def test_attributes_fuel_time_helpers_per_pluglet(self):
        profiler = profiled_transfer()
        rows = profiler.summary()
        assert rows, "profiled transfer recorded no pluglet executions"
        plugins = {row["plugin"] for row in rows}
        # Both attached plugins actually executed and were attributed.
        assert any("monitoring" in p for p in plugins)
        assert any("fec" in p for p in plugins)
        for row in rows:
            assert row["invocations"] > 0
            assert row["fuel"] > 0
            assert row["wall_ms"] > 0
            assert row["protoop"]
            assert row["pluglet"]
            assert row["path"] in ("jit", "interp", "mixed")
        # Rows are sorted costliest-fuel first.
        fuels = [row["fuel"] for row in rows]
        assert fuels == sorted(fuels, reverse=True)

    def test_totals_are_consistent_with_rows(self):
        profiler = profiled_transfer()
        rows = profiler.summary()
        totals = profiler.totals()
        assert totals["invocations"] == sum(r["invocations"] for r in rows)
        assert totals["fuel"] == sum(r["fuel"] for r in rows)
        assert totals["helper_calls"] == sum(r["helper_calls"]
                                             for r in rows)

    def test_interpreter_path_attributed(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "0")
        profiler = profiled_transfer()
        for row in profiler.summary():
            assert row["path"] == "interp"
            assert row["jit_runs"] == 0

    def test_protoop_run_counts_collected(self):
        profiler = profiled_transfer()
        runs = profiler.protoop_runs()
        assert runs.get("packet_sent_event", 0) > 0
        assert sum(runs.values()) > 0

    def test_format_table_is_readable(self):
        profiler = profiled_transfer()
        text = profiler.format_table()
        assert "plugin" in text and "fuel" in text and "wall-ms" in text
        assert "total:" in text
        top1 = profiler.format_table(max_rows=1)
        assert len(top1.splitlines()) < len(text.splitlines())


class TestMerge:
    def test_merge_accumulates_across_profilers(self):
        a = PreProfiler()
        a.record("p", "l", "op", fuel=10, helper_calls=2, wall_s=0.5,
                 jit=True)
        b = PreProfiler()
        b.record("p", "l", "op", fuel=5, helper_calls=1, wall_s=0.25,
                 jit=False, fault=True)
        b.record("q", "m", "op2", fuel=7, helper_calls=0, wall_s=0.1,
                 jit=True)
        a.merge(b)
        rows = {((r["plugin"], r["pluglet"], r["protoop"])): r
                for r in a.summary()}
        merged = rows[("p", "l", "op")]
        assert merged["invocations"] == 2
        assert merged["fuel"] == 15
        assert merged["helper_calls"] == 3
        assert merged["wall_ms"] == pytest.approx(750.0)
        assert merged["faults"] == 1
        assert merged["path"] == "mixed"
        assert rows[("q", "m", "op2")]["path"] == "jit"

    def test_shared_profiler_spans_connections(self):
        shared = PreProfiler()
        for _ in range(2):
            result = run_quic_transfer(
                30_000, d_ms=5, bw_mbps=20,
                client_plugins=[build_monitoring_plugin],
                profile=shared)
            assert result.completed
            assert result.profile is shared
        totals = shared.totals()
        assert totals["invocations"] > 0

    def test_profile_record_path_labels(self):
        rec = ProfileRecord("p", "l", "op")
        rec.jit_runs = 1
        assert rec.path == "jit"
        rec.interp_runs = 1
        assert rec.path == "mixed"


class TestDetach:
    def test_detach_leaves_no_observable_residue(self):
        from repro.quic import QuicConfiguration
        from repro.quic.connection import QuicConnection

        conn = QuicConnection(QuicConfiguration(is_client=True))
        table = conn.protoops
        profiler = PreProfiler().attach(conn)
        assert conn.profiler is profiler
        table.run(conn, "packet_sent_event", None)
        assert table.run_counts.get("packet_sent_event") == 1
        profiler.detach(conn)
        assert conn.profiler is None
        # Counting stops: further dispatches leave the counts untouched.
        table.run(conn, "packet_sent_event", None)
        assert table.run_counts.get("packet_sent_event") == 1
        # No plan in the cache carries a counting observer anymore.
        table._plans.clear()
        plan = table._build_plan("packet_sent_event", None)
        assert plan[2] == ()
