"""Unit tests for link bandwidth/delay/loss/buffer modelling."""

import pytest

from repro.netsim import IPV4_UDP_OVERHEAD, Link, Simulator
from repro.netsim.link import Pipe, SeededLossGen


def make_pipe(sim, **kw):
    received = []
    pipe = Pipe(sim, **kw)
    pipe.connect(lambda pkt: received.append((sim.now, pkt)))
    return pipe, received


def test_propagation_plus_serialization_delay():
    sim = Simulator()
    # 1 Mbps, 100 ms delay; 1000B payload + 28B overhead = 8224 bits.
    pipe, received = make_pipe(sim, delay=0.1, bandwidth=1_000_000.0)
    pipe.send("pkt", 1000)
    sim.run()
    assert len(received) == 1
    t, _ = received[0]
    assert t == pytest.approx(0.1 + (1000 + IPV4_UDP_OVERHEAD) * 8 / 1e6)


def test_back_to_back_packets_serialize_sequentially():
    sim = Simulator()
    pipe, received = make_pipe(sim, delay=0.0, bandwidth=1_000_000.0)
    pipe.send("a", 1000)
    pipe.send("b", 1000)
    sim.run()
    per_pkt = (1000 + IPV4_UDP_OVERHEAD) * 8 / 1e6
    assert received[0][0] == pytest.approx(per_pkt)
    assert received[1][0] == pytest.approx(2 * per_pkt)


def test_throughput_matches_configured_bandwidth():
    sim = Simulator()
    bw = 10_000_000.0
    pipe, received = make_pipe(sim, delay=0.0, bandwidth=bw,
                               buffer_bytes=10_000_000)
    n, size = 100, 1200
    for i in range(n):
        pipe.send(i, size)
    sim.run()
    assert len(received) == n
    total_bits = n * (size + IPV4_UDP_OVERHEAD) * 8
    assert sim.now == pytest.approx(total_bits / bw)


def test_buffer_overflow_drops_tail():
    sim = Simulator()
    pipe, received = make_pipe(sim, delay=0.0, bandwidth=1_000_000.0,
                               buffer_bytes=3000)
    results = [pipe.send(i, 1000) for i in range(5)]
    sim.run()
    # First packet begins transmitting immediately (leaves the queue);
    # then the queue holds at most 2 more x 1028B.
    assert results[0] and results[1] and results[2]
    assert not all(results)
    assert pipe.stats.dropped_buffer >= 1
    assert len(received) == sum(results)


def test_seeded_loss_is_reproducible():
    a = SeededLossGen(0.3, seed=42)
    b = SeededLossGen(0.3, seed=42)
    pat_a = [a.should_drop() for _ in range(200)]
    pat_b = [b.should_drop() for _ in range(200)]
    assert pat_a == pat_b
    assert a.drops > 0 and a.passed > 0


def test_seeded_loss_rate_roughly_honoured():
    gen = SeededLossGen(0.1, seed=7)
    n = 20_000
    drops = sum(gen.should_drop() for _ in range(n))
    assert 0.08 < drops / n < 0.12


def test_loss_rate_bounds_validated():
    with pytest.raises(ValueError):
        SeededLossGen(1.5)
    with pytest.raises(ValueError):
        SeededLossGen(-0.1)


def test_lossy_pipe_drops_packets():
    sim = Simulator()
    pipe, received = make_pipe(sim, delay=0.0, bandwidth=1e9,
                               loss=SeededLossGen(0.5, seed=3),
                               buffer_bytes=10_000_000)
    for i in range(100):
        pipe.send(i, 100)
    sim.run()
    assert 20 < len(received) < 80
    assert pipe.stats.dropped_loss == 100 - len(received)


def test_pipe_requires_connection():
    sim = Simulator()
    pipe = Pipe(sim, delay=0.0, bandwidth=1e6)
    with pytest.raises(RuntimeError):
        pipe.send("x", 10)


def test_invalid_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Pipe(sim, delay=-1.0, bandwidth=1e6)
    with pytest.raises(ValueError):
        Pipe(sim, delay=0.0, bandwidth=0.0)


def test_link_directions_independent():
    sim = Simulator()
    link = Link(sim, delay=0.01, bandwidth=1e6)
    fwd, bwd = [], []
    link.forward.connect(lambda p: fwd.append(p))
    link.backward.connect(lambda p: bwd.append(p))
    link.forward.send("f", 100)
    link.backward.send("b", 100)
    sim.run()
    assert fwd == ["f"]
    assert bwd == ["b"]
