"""Table-1 helper API tests, exercised through real bytecode."""

import pytest

from repro.core import Plugin, PluginInstance, Pluglet
from repro.core.api import (
    FLD_CWND,
    FLD_IS_CLIENT,
    FLD_NB_PATHS,
    FLD_SRTT_US,
    ApiViolation,
)
from repro.quic import QuicConfiguration
from repro.quic.connection import QuicConnection
from repro.vm import assemble
from repro.vm.interpreter import HEAP_BASE


def make_conn(is_client=True):
    return QuicConnection(QuicConfiguration(is_client=is_client))


def attach_one(conn, name, protoop, asm, anchor="replace", param=None,
               plugin_name="org.api.test"):
    pluglet = Pluglet(name, protoop, anchor, assemble(asm), param=param)
    inst = PluginInstance(Plugin(plugin_name, [pluglet]), conn)
    inst.attach()
    return inst


class TestGetSet:
    def test_get_connection_fields(self):
        conn = make_conn()
        attach_one(conn, "g", "read_fields", f"""
            mov r1, {FLD_IS_CLIENT}
            mov r2, 0
            call 1
            mov r6, r0
            mov r1, {FLD_NB_PATHS}
            mov r2, 0
            call 1
            add r0, r6
            exit
        """)
        # is_client(1) + nb_paths(1) == 2
        assert conn.protoops.run(conn, "read_fields", None) == 2

    def test_get_path_indexed_field(self):
        conn = make_conn()
        conn.paths[0].cc.cwnd = 12345
        attach_one(conn, "g", "read_cwnd", f"""
            mov r1, {FLD_CWND}
            mov r2, 0
            call 1
            exit
        """)
        assert conn.protoops.run(conn, "read_cwnd", None) == 12345

    def test_get_bad_path_index_faults(self):
        conn = make_conn()
        attach_one(conn, "g", "read_cwnd9", f"""
            mov r1, {FLD_CWND}
            mov r2, 9
            call 1
            exit
        """)
        with pytest.raises(Exception):
            conn.protoops.run(conn, "read_cwnd9", None)
        assert conn.closed

    def test_get_unknown_field_faults(self):
        conn = make_conn()
        attach_one(conn, "g", "read_bad", """
            mov r1, 0xEEEE
            mov r2, 0
            call 1
            exit
        """)
        with pytest.raises(ApiViolation):
            conn.protoops.run(conn, "read_bad", None)

    def test_set_read_only_field_faults(self):
        conn = make_conn()
        attach_one(conn, "s", "write_srtt", f"""
            mov r1, {FLD_SRTT_US}
            mov r2, 0
            mov r3, 1
            call 2
            exit
        """)
        with pytest.raises(ApiViolation):
            conn.protoops.run(conn, "write_srtt", None)

    def test_times_marshaled_as_microseconds(self):
        conn = make_conn()
        conn.paths[0].rtt.smoothed = 0.0375
        attach_one(conn, "g", "read_srtt", f"""
            mov r1, {FLD_SRTT_US}
            mov r2, 0
            call 1
            exit
        """)
        assert conn.protoops.run(conn, "read_srtt", None) == 37_500


class TestMemoryHelpers:
    def test_malloc_free_roundtrip(self):
        conn = make_conn()
        inst = attach_one(conn, "m", "alloc_it", """
            mov r1, 100
            call 3          ; pl_malloc
            mov r6, r0
            stdw [r6+0], 42
            ldxdw r7, [r6+0]
            mov r1, r6
            call 4          ; pl_free
            mov r0, r7
            exit
        """)
        assert conn.protoops.run(conn, "alloc_it", None) == 42
        assert inst.runtime.allocator.allocated_blocks == 0

    def test_opaque_data_stable_across_calls(self):
        conn = make_conn()
        attach_one(conn, "o", "bump", """
            mov r1, 9
            mov r2, 16
            call 5          ; get_opaque_data
            ldxdw r1, [r0+0]
            add r1, 1
            stxdw [r0+0], r1
            mov r0, r1
            exit
        """)
        assert conn.protoops.run(conn, "bump", None) == 1
        assert conn.protoops.run(conn, "bump", None) == 2
        assert conn.protoops.run(conn, "bump", None) == 3

    def test_memcpy_within_plugin_memory(self):
        conn = make_conn()
        inst = attach_one(conn, "c", "copy_it", """
            mov r1, 64
            call 3          ; src = pl_malloc(64)
            mov r6, r0
            stdw [r6+0], 0x11223344
            mov r1, 64
            call 3          ; dst
            mov r7, r0
            mov r1, r7
            mov r2, r6
            mov r3, 8
            call 6          ; pl_memcpy(dst, src, 8)
            ldxdw r0, [r7+0]
            exit
        """)
        assert conn.protoops.run(conn, "copy_it", None) == 0x11223344

    def test_memset(self):
        conn = make_conn()
        attach_one(conn, "s", "set_it", """
            mov r1, 64
            call 3
            mov r6, r0
            mov r1, r6
            mov r2, 0xAB
            mov r3, 4
            call 7          ; pl_memset
            ldxw r0, [r6+0]
            exit
        """)
        assert conn.protoops.run(conn, "set_it", None) == 0xABABABAB

    def test_memcpy_from_stack(self):
        conn = make_conn()
        attach_one(conn, "c", "stack_copy", """
            stdw [r10-8], 777
            mov r1, 64
            call 3
            mov r6, r0
            mov r1, r6
            mov r2, r10
            sub r2, 8
            mov r3, 8
            call 6
            ldxdw r0, [r6+0]
            exit
        """)
        assert conn.protoops.run(conn, "stack_copy", None) == 777


class TestRunProtoop:
    def test_pluglet_calls_other_protoop(self):
        """Table 1: plugin_run_protoop — pluglets invoke protocol
        operations, with loop detection intact."""
        conn = make_conn()
        pluglet = Pluglet("caller", "outer_op", "replace", assemble("""
            mov r1, 1    ; protoop id 1
            lddw r2, 0xffffffffffffffff   ; param = none
            mov r3, 0    ; nargs = 0
            call 8
            add r0, 1
            exit
        """))
        inst = PluginInstance(Plugin("org.api.rp", [pluglet]), conn)
        inst.runtime.protoop_id("get_cwin")  # id 1
        inst.attach()
        expected = conn.paths[0].cc.cwnd + 1
        assert conn.protoops.run(conn, "outer_op", None) == expected

    def test_protoop_loop_via_helper_detected(self):
        conn = make_conn()
        pluglet = Pluglet("selfcall", "loop_op", "replace", assemble("""
            mov r1, 1
            lddw r2, 0xffffffffffffffff
            mov r3, 0
            call 8
            exit
        """))
        inst = PluginInstance(Plugin("org.api.loop", [pluglet]), conn)
        inst.runtime.protoop_id("loop_op")  # calls itself
        inst.attach()
        with pytest.raises(Exception):
            conn.protoops.run(conn, "loop_op", None)
        assert conn.closed


class TestInputsAndMessages:
    def test_get_input_marshaling(self):
        conn = make_conn()
        attach_one(conn, "i", "echo2", """
            mov r1, 1
            call 10      ; get_input(1)
            exit
        """)
        assert conn.protoops.run(conn, "echo2", None, 5, 99) == 99
        # Floats arrive as microseconds.
        assert conn.protoops.run(conn, "echo2", None, 0, 0.25) == 250_000
        # Bools as 0/1.
        assert conn.protoops.run(conn, "echo2", None, 0, True) == 1

    def test_input_len_and_read_bytes(self):
        conn = make_conn()
        attach_one(conn, "b", "sum_bytes", """
            mov r1, 0
            call 11          ; input_len(0)
            mov r6, r0       ; length
            mov r1, 0
            mov r2, r10
            sub r2, 16
            mov r3, 0
            mov r4, 8
            call 12          ; read_input_bytes(0, stack, 0, 8)
            ldxb r0, [r10-16]
            add r0, r6
            exit
        """)
        result = conn.protoops.run(conn, "sum_bytes", None, b"\x07abcdefgh")
        assert result == 9 + 7  # len + first byte

    def test_push_message_reaches_app(self):
        conn = make_conn()
        got = []
        conn.on_plugin_message = lambda name, data: got.append((name, data))
        attach_one(conn, "p", "shout", """
            stb [r10-4], 72
            stb [r10-3], 73
            mov r1, r10
            sub r1, 4
            mov r2, 2
            call 14          ; push_message
            exit
        """, plugin_name="org.api.msg")
        conn.protoops.run(conn, "shout", None)
        assert got == [("org.api.msg", b"HI")]

    def test_get_time_us(self):
        conn = make_conn()
        conn.now = 1.5
        attach_one(conn, "t", "when", "call 15\nexit")
        assert conn.protoops.run(conn, "when", None) == 1_500_000
