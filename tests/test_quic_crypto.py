"""Tests for the simulated packet protection and key schedule."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic.crypto import (
    TAG_LENGTH,
    AeadContext,
    initial_crypto_pair,
    one_rtt_crypto_pair,
    session_secret,
)
from repro.quic.errors import CryptoError

KEY = b"k" * 32


def test_seal_open_roundtrip():
    aead = AeadContext(KEY)
    header, payload = b"hdr", b"payload bytes"
    wire = aead.seal(7, header, payload)
    assert len(wire) == len(payload) + TAG_LENGTH
    assert aead.open(7, header, wire) == payload


def test_ciphertext_differs_from_plaintext():
    aead = AeadContext(KEY)
    payload = b"secret" * 10
    wire = aead.seal(0, b"h", payload)
    assert payload not in wire


def test_tampered_payload_rejected():
    aead = AeadContext(KEY)
    wire = bytearray(aead.seal(1, b"h", b"data"))
    wire[0] ^= 0xFF
    with pytest.raises(CryptoError):
        aead.open(1, b"h", bytes(wire))


def test_tampered_header_rejected():
    aead = AeadContext(KEY)
    wire = aead.seal(1, b"header", b"data")
    with pytest.raises(CryptoError):
        aead.open(1, b"HEADER", wire)


def test_wrong_packet_number_rejected():
    aead = AeadContext(KEY)
    wire = aead.seal(1, b"h", b"data")
    with pytest.raises(CryptoError):
        aead.open(2, b"h", wire)


def test_wrong_key_rejected():
    wire = AeadContext(KEY).seal(1, b"h", b"data")
    with pytest.raises(CryptoError):
        AeadContext(b"x" * 32).open(1, b"h", wire)


def test_short_ciphertext_rejected():
    aead = AeadContext(KEY)
    with pytest.raises(CryptoError):
        aead.open(0, b"h", b"short")


def test_key_length_validated():
    with pytest.raises(ValueError):
        AeadContext(b"short")


def test_initial_pairs_are_complementary():
    dcid = b"\x01" * 8
    client = initial_crypto_pair(dcid, is_client=True)
    server = initial_crypto_pair(dcid, is_client=False)
    wire = client.send.seal(0, b"h", b"client hello")
    assert server.recv.open(0, b"h", wire) == b"client hello"
    wire2 = server.send.seal(0, b"h", b"server hello")
    assert client.recv.open(0, b"h", wire2) == b"server hello"


def test_initial_keys_depend_on_dcid():
    a = initial_crypto_pair(b"\x01" * 8, True)
    b = initial_crypto_pair(b"\x02" * 8, True)
    assert a.send.key != b.send.key


def test_session_secret_symmetric_given_role_order():
    cs, ss = b"c" * 32, b"s" * 32
    assert session_secret(cs, ss) == session_secret(cs, ss)
    assert session_secret(cs, ss) != session_secret(ss, cs)


def test_one_rtt_pairs_complementary():
    secret = session_secret(b"c" * 32, b"s" * 32)
    client = one_rtt_crypto_pair(secret, True)
    server = one_rtt_crypto_pair(secret, False)
    wire = client.send.seal(42, b"hdr", b"app data")
    assert server.recv.open(42, b"hdr", wire) == b"app data"


def test_one_rtt_keys_differ_per_direction():
    secret = session_secret(b"c" * 32, b"s" * 32)
    pair = one_rtt_crypto_pair(secret, True)
    assert pair.send.key != pair.recv.key


@given(st.binary(max_size=2000), st.integers(0, 2**32 - 1))
def test_roundtrip_property(payload, pn):
    aead = AeadContext(KEY)
    assert aead.open(pn, b"h", aead.seal(pn, b"h", payload)) == payload
