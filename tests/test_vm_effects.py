"""Interprocedural analysis tests: effect summaries, cross-plugin
conflict detection (PRE200+), the protoop trigger call graph, and static
fuel certificates feeding the JIT's fuel-check elision."""

import pytest

from repro.core import Plugin, Pluglet, PluginInstance
from repro.core.api import (
    FIELD_NAMES,
    FLD_CWND,
    FLD_SRTT_US,
    FLD_SPIN_BIT,
    H_RUN_PROTOOP,
    HELPER_EFFECTS,
)
from repro.core.protoop import ProtoopError
from repro.quic import QuicConfiguration
from repro.quic.connection import QuicConnection
from repro.vm.analysis import (
    ProtoopCallGraph,
    Severity,
    analyze,
    check_conflicts,
    check_plugin_set,
    summarize_plugin,
    summarize_pluglet,
)
from repro.vm.asm import assemble
from repro.vm import PluginMemory
from repro.vm.interpreter import FuelExhausted
from repro.vm.jit import JitVirtualMachine


def make_conn():
    return QuicConnection(QuicConfiguration(is_client=True))


def _plugin(name, pluglets, memory_size=4096):
    return Plugin(name, pluglets, memory_size=memory_size)


def _reader(fid, name="reader", protoop="update_rtt", anchor="post"):
    return Pluglet(name, protoop, anchor, assemble(f"""
        mov r1, {fid}
        call 1      ; get
        exit
    """))


def _writer(fid, name="writer", protoop="update_rtt", anchor="post"):
    return Pluglet(name, protoop, anchor, assemble(f"""
        mov r1, {fid}
        mov r2, 1
        call 2      ; set
        exit
    """))


def _summaries(plugin):
    return summarize_plugin(plugin, HELPER_EFFECTS)


# --- effect summaries --------------------------------------------------------

class TestEffectSummaries:
    def test_constant_field_ids_are_resolved(self):
        plugin = _plugin("org.t.rw", [
            _reader(FLD_SRTT_US, name="r"),
            _writer(FLD_CWND, name="w"),
        ])
        effects = _summaries(plugin)
        assert effects.plugin == "org.t.rw"
        by_name = {s.pluglet: s for s in effects.summaries}
        assert by_name["r"].fields_read == (FLD_SRTT_US,)
        assert by_name["r"].fields_written == ()
        assert by_name["w"].fields_written == (FLD_CWND,)
        assert not by_name["w"].unknown_writes
        assert effects.writes() == (FLD_CWND,)

    def test_nonconstant_field_id_degrades_to_wildcard(self):
        # r1 comes from a helper return value: the analyzer cannot name
        # the field, so the summary records an unknown-write wildcard.
        pluglet = Pluglet("wild", "update_rtt", "post", assemble("""
            call 5      ; get_opaque_data -> r0 unknown
            mov r1, r0
            mov r2, 1
            call 2      ; set(?)
            exit
        """))
        summary = _summaries(_plugin("org.t.wild", [pluglet])).summaries[0]
        assert summary.unknown_writes
        assert summary.fields_written == ()
        assert summary.writes_field(FLD_SPIN_BIT)  # wildcard matches all

    def test_run_protoop_and_declared_triggers(self):
        pluglet = Pluglet("trig", "update_rtt", "post", assemble(f"""
            mov r1, 2
            mov r2, 0
            call {H_RUN_PROTOOP}
            exit
        """), triggers=("other_op",))
        summary = _summaries(_plugin("org.t.trig", [pluglet])).summaries[0]
        assert summary.calls_run_protoop
        assert summary.triggers == ("other_op",)
        assert H_RUN_PROTOOP in summary.helpers

    def test_summarize_pluglet_direct(self):
        summary = summarize_pluglet(
            "p", "op", "replace", assemble("exit"), HELPER_EFFECTS)
        assert summary.anchor == "replace"
        assert summary.helpers == ()
        assert not summary.calls_run_protoop

    def test_plugin_effect_summaries_cached(self):
        plugin = _plugin("org.t.cache", [_reader(FLD_SRTT_US)])
        assert plugin.effect_summaries() is plugin.effect_summaries()


# --- conflict catalog --------------------------------------------------------

class TestConflictCatalog:
    def test_pre200_replace_collision_is_error(self):
        a = _summaries(_plugin("org.t.a", [
            Pluglet("ra", "select_sending_path", "replace",
                    assemble("mov r0, 0\nexit"))]))
        b = _summaries(_plugin("org.t.b", [
            Pluglet("rb", "select_sending_path", "replace",
                    assemble("mov r0, 0\nexit"))]))
        diags = check_conflicts([a], b, FIELD_NAMES)
        assert [d.rule for d in diags] == ["PRE200"]
        assert diags[0].severity is Severity.ERROR

    def test_pre200_distinct_params_do_not_collide(self):
        a = _summaries(_plugin("org.t.a", [
            Pluglet("ra", "process_frame", "replace",
                    assemble("mov r0, 0\nexit"), param=0x30)]))
        b = _summaries(_plugin("org.t.b", [
            Pluglet("rb", "process_frame", "replace",
                    assemble("mov r0, 0\nexit"), param=0x31)]))
        assert check_conflicts([a], b, FIELD_NAMES) == []

    def test_pre201_write_write_is_warning(self):
        a = _summaries(_plugin("org.t.a", [_writer(FLD_CWND, name="wa")]))
        b = _summaries(_plugin("org.t.b", [
            _writer(FLD_CWND, name="wb", protoop="packet_sent_event")]))
        diags = check_conflicts([a], b, FIELD_NAMES)
        assert [d.rule for d in diags] == ["PRE201"]
        assert diags[0].severity is Severity.WARNING
        assert "cwnd" in diags[0].message

    def test_pre202_order_sensitive_same_anchor_chain(self):
        a = _summaries(_plugin("org.t.a", [
            _writer(FLD_SPIN_BIT, name="w", protoop="update_rtt",
                    anchor="post")]))
        b = _summaries(_plugin("org.t.b", [
            _reader(FLD_SPIN_BIT, name="r", protoop="update_rtt",
                    anchor="post")]))
        rules = {d.rule for d in check_conflicts([a], b, FIELD_NAMES)}
        assert "PRE202" in rules

    def test_pre203_trigger_cycle_is_error(self):
        call = assemble(f"mov r1, 2\nmov r2, 0\ncall {H_RUN_PROTOOP}\nexit")
        a = _summaries(_plugin("org.t.a", [
            Pluglet("pa", "op_a", "replace", call, triggers=("op_b",))]))
        b = _summaries(_plugin("org.t.b", [
            Pluglet("pb", "op_b", "replace", call, triggers=("op_a",))]))
        diags = check_conflicts([a], b, FIELD_NAMES)
        errors = [d for d in diags if d.severity is Severity.ERROR]
        assert [d.rule for d in errors] == ["PRE203"]
        assert "op_a" in errors[0].message and "op_b" in errors[0].message

    def test_pre204_undeclared_run_protoop_is_wildcard_warning(self):
        call = assemble(f"mov r1, 2\nmov r2, 0\ncall {H_RUN_PROTOOP}\nexit")
        b = _summaries(_plugin("org.t.b", [
            Pluglet("pb", "op_b", "post", call)]))  # no triggers declared
        diags = check_conflicts([], b, FIELD_NAMES)
        assert [d.rule for d in diags] == ["PRE204"]
        assert diags[0].severity is Severity.WARNING

    def test_compatible_plugins_report_nothing(self):
        a = _summaries(_plugin("org.t.a", [_reader(FLD_SRTT_US)]))
        b = _summaries(_plugin("org.t.b", [
            _writer(FLD_SPIN_BIT, protoop="packet_sent_event")]))
        assert check_conflicts([a], b, FIELD_NAMES) == []

    def test_check_plugin_set_reports_each_conflict_once(self):
        mk = lambda name: _summaries(_plugin(name, [
            Pluglet("r", "select_sending_path", "replace",
                    assemble("mov r0, 0\nexit"))]))
        diags = check_plugin_set([mk("org.t.a"), mk("org.t.b"),
                                  mk("org.t.c")], FIELD_NAMES)
        # pairwise: (a,b), (a,c), (b,c) — three collisions, no dupes.
        assert [d.rule for d in diags] == ["PRE200"] * 3


class TestCallGraph:
    def test_edges_follow_declared_triggers(self):
        call = assemble(f"mov r1, 2\nmov r2, 0\ncall {H_RUN_PROTOOP}\nexit")
        a = _summaries(_plugin("org.t.a", [
            Pluglet("pa", "op_a", "replace", call, triggers=("op_b",))]))
        b = _summaries(_plugin("org.t.b", [
            Pluglet("pb", "op_b", "replace", assemble("exit"))]))
        graph = ProtoopCallGraph([a, b])
        assert graph.cycles() == []
        assert any(e.source == "op_a" and e.target == "op_b"
                   for e in graph.edges)

    def test_self_trigger_is_a_cycle(self):
        call = assemble(f"mov r1, 1\nmov r2, 0\ncall {H_RUN_PROTOOP}\nexit")
        a = _summaries(_plugin("org.t.a", [
            Pluglet("pa", "op_a", "replace", call, triggers=("op_a",))]))
        graph = ProtoopCallGraph([a])
        assert graph.cycles()


# --- manifest trigger declarations ------------------------------------------

class TestTriggerManifest:
    def test_triggers_survive_serialization(self):
        plugin = _plugin("org.t.wire", [
            Pluglet("t", "op_a", "post",
                    assemble(f"mov r1, 2\nmov r2, 0\n"
                             f"call {H_RUN_PROTOOP}\nexit"),
                    triggers=("op_b", "op_c")),
            Pluglet("n", "op_b", "post", assemble("exit")),
        ])
        back = Plugin.deserialize(plugin.serialize())
        assert [p.triggers for p in back.pluglets] == [("op_b", "op_c"), ()]
        assert back.serialize() == plugin.serialize()


# --- attach-time enforcement -------------------------------------------------

class TestAttachTimeConflicts:
    def _conflicting_pair(self):
        mk = lambda name, pl: Plugin(name, [pl], memory_size=4096)
        first = mk("org.t.first", Pluglet(
            "ra", "select_sending_path", "replace",
            assemble("mov r0, 0\nexit")))
        second = mk("org.t.second", Pluglet(
            "rb", "select_sending_path", "replace",
            assemble("mov r0, 0\nexit")))
        return first, second

    def test_conflicting_plugin_rejected_before_registration(self):
        conn = make_conn()
        first, second = self._conflicting_pair()
        PluginInstance(first, conn).attach()
        with pytest.raises(ProtoopError, match="PRE200"):
            PluginInstance(second, conn).attach()
        assert "org.t.second" not in conn.plugins
        assert "org.t.first" in conn.plugins

    def test_rejection_is_mode_independent(self, monkeypatch):
        # With the analyzer off the protoop table's "already replaced"
        # check still rejects the same plugin: *whether* a plugin
        # attaches never depends on REPRO_ANALYSIS.
        monkeypatch.setenv("REPRO_ANALYSIS", "0")
        conn = make_conn()
        first, second = self._conflicting_pair()
        PluginInstance(first, conn).attach()
        with pytest.raises(ProtoopError):
            PluginInstance(second, conn).attach()
        assert "org.t.second" not in conn.plugins

    def test_warning_conflicts_attach_and_emit_report(self):
        conn = make_conn()
        seen = []
        conn.protoops.declare("plugin_conflict_report")
        conn.protoops.get("plugin_conflict_report").post.setdefault(
            None, []).append(
            lambda conn_, args, result: seen.append(args))
        PluginInstance(_plugin("org.t.w1", [
            _writer(FLD_CWND, name="w1")]), conn).attach()
        PluginInstance(_plugin("org.t.w2", [
            _writer(FLD_CWND, name="w2",
                    protoop="packet_sent_event")]), conn).attach()
        assert "org.t.w2" in conn.plugins  # warning, not rejection
        assert seen and seen[-1][0] == "org.t.w2"
        assert "PRE201" in seen[-1][2]


# --- static fuel certificates ------------------------------------------------

LOOP_SRC = """
    mov r6, 0
    mov r0, 0
loop:
    add r0, 2
    add r6, 1
    jlt r6, 10, loop
    exit
"""


class TestFuelCertificates:
    def test_certificate_bounds_a_counted_loop(self):
        report = analyze(assemble(LOOP_SRC))
        cert = report.fuel_certificate
        assert cert is not None
        assert not report.loop_free
        assert report.fuel_bound == cert.fuel_bound
        assert cert.loops and cert.loops[0].trips >= 9
        # The bound is a worst case: actual execution fits under it.
        vm = JitVirtualMachine(assemble(LOOP_SRC), PluginMemory(size=64))
        assert vm.run() == 20
        assert vm.instructions_executed <= report.fuel_bound

    def test_jit_elides_fuel_checks_for_certified_loop(self):
        program = assemble(LOOP_SRC)
        report = analyze(program, heap_size=64)
        vm = JitVirtualMachine(program, PluginMemory(size=64),
                               instruction_budget=10_000, analysis=report)
        assert vm.jit_specialized
        fast = vm._fast_function.source
        assert "raise _FuelExhausted" not in fast
        assert "_fuel -=" in fast  # accounting stays exact
        ref = JitVirtualMachine(program, PluginMemory(size=64),
                                instruction_budget=10_000)
        assert vm.run() == ref.run() == 20
        assert vm.instructions_executed == ref.instructions_executed

    def test_tight_budget_still_exhausts_identically(self):
        program = assemble(LOOP_SRC)
        report = analyze(program, heap_size=64)
        vm = JitVirtualMachine(program, PluginMemory(size=64),
                               instruction_budget=10, analysis=report)
        assert vm.jit_specialized  # compiled, but gated per run
        with pytest.raises(FuelExhausted, match="10 instructions"):
            vm.run()
        assert vm.instructions_executed == 10

    def test_no_certificate_when_counter_is_data_dependent(self):
        report = analyze(assemble("""
            call 1
            mov r6, r0
        loop:
            sub r6, 1
            jne r6, 0, loop
            exit
        """))
        assert report.fuel_certificate is None
        assert report.fuel_bound is None

    def test_pre110_proves_declared_fuel_will_trip(self):
        from repro.vm.analysis import lint_plugin

        plugin = _plugin("org.t.fuel", [
            Pluglet("loop", "update_rtt", "post", assemble(LOOP_SRC),
                    fuel=5)])
        diags = lint_plugin(plugin)
        hits = [d for d in diags if d.rule == "PRE110"]
        assert hits, [str(d) for d in diags]
        assert hits[0].severity is Severity.WARNING
