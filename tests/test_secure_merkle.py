"""Merkle Prefix Tree tests: proofs of consistency and absence (§3.3/B)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.secure.merkle import (
    MerklePrefixTree,
    binding_bytes,
    name_prefix,
    verify_absence,
    verify_path,
)


def test_insert_and_prove():
    tree = MerklePrefixTree(depth=8)
    tree.insert("org.a", b"code-a")
    tree.insert("org.b", b"code-b")
    root = tree.root()
    path = tree.prove("org.a")
    assert verify_path(root, "org.a", b"code-a", path)


def test_proof_fails_for_wrong_code():
    tree = MerklePrefixTree(depth=8)
    tree.insert("org.a", b"code-a")
    path = tree.prove("org.a")
    assert not verify_path(tree.root(), "org.a", b"EVIL", path)


def test_proof_fails_for_wrong_name():
    tree = MerklePrefixTree(depth=8)
    tree.insert("org.a", b"code-a")
    path = tree.prove("org.a")
    assert not verify_path(tree.root(), "org.b", b"code-a", path)


def test_proof_fails_against_other_root():
    tree = MerklePrefixTree(depth=8)
    tree.insert("org.a", b"code-a")
    path = tree.prove("org.a")
    other = MerklePrefixTree(depth=8)
    other.insert("org.a", b"code-a")
    other.insert("org.z", b"z")
    assert not verify_path(other.root(), "org.a", b"code-a", path)


def test_root_changes_with_content():
    t1 = MerklePrefixTree(depth=8)
    t2 = MerklePrefixTree(depth=8)
    t1.insert("org.a", b"x")
    t2.insert("org.a", b"y")
    assert t1.root() != t2.root()


def test_root_deterministic_and_order_independent():
    t1 = MerklePrefixTree(depth=10)
    t2 = MerklePrefixTree(depth=10)
    names = [f"plugin-{i}" for i in range(20)]
    for n in names:
        t1.insert(n, n.encode())
    for n in reversed(names):
        t2.insert(n, n.encode())
    assert t1.root() == t2.root()


def test_replace_binding_updates_root():
    tree = MerklePrefixTree(depth=8)
    tree.insert("org.a", b"v1")
    r1 = tree.root()
    tree.insert("org.a", b"v2")
    assert tree.root() != r1
    assert len(tree) == 1
    assert verify_path(tree.root(), "org.a", b"v2", tree.prove("org.a"))


def test_remove():
    tree = MerklePrefixTree(depth=8)
    tree.insert("org.a", b"a")
    tree.insert("org.b", b"b")
    tree.remove("org.a")
    assert "org.a" not in tree
    assert "org.b" in tree


def test_prefix_collision_linked_list():
    """Colliding names share a leaf; both proofs verify (§3.3)."""
    tree = MerklePrefixTree(depth=1)  # two leaves: guaranteed collisions
    names = [f"p{i}" for i in range(6)]
    for n in names:
        tree.insert(n, n.encode())
    root = tree.root()
    for n in names:
        path = tree.prove(n)
        assert verify_path(root, n, n.encode(), path)
        # The co-located bindings appear as hashes in the leaf slots.
        same_leaf = [m for m in names
                     if name_prefix(m, 1) == name_prefix(n, 1)]
        assert len(path.leaf_slots) == len(same_leaf)


def test_developer_lookup_reveals_cleartext():
    tree = MerklePrefixTree(depth=1)
    tree.insert("p1", b"one")
    tree.insert("p2", b"two")
    path, bindings = tree.developer_lookup("p1")
    # Developer sees clear text of every binding at the leaf (§B.2.1).
    for binding in bindings:
        assert b"\x00" in binding
    mine = binding_bytes("p1", b"one")
    same_leaf = name_prefix("p1", 1) == name_prefix("p2", 1)
    assert (mine in bindings) == True
    if same_leaf:
        assert binding_bytes("p2", b"two") in bindings


def test_absence_proof_empty_leaf():
    tree = MerklePrefixTree(depth=8)
    tree.insert("org.a", b"a")
    proof = tree.prove_absence("org.never")
    assert verify_absence(tree.root(), "org.never", proof)


def test_absence_proof_fails_for_present_binding():
    tree = MerklePrefixTree(depth=8)
    tree.insert("org.a", b"a")
    with pytest.raises(KeyError):
        tree.prove_absence("org.a")


def test_absence_proof_fails_against_tree_containing_it():
    tree = MerklePrefixTree(depth=8)
    proof = tree.prove_absence("org.x")
    tree.insert("org.x", b"x")
    assert not verify_absence(tree.root(), "org.x", proof)


def test_prove_missing_raises():
    tree = MerklePrefixTree(depth=8)
    with pytest.raises(KeyError):
        tree.prove("org.none")


def test_path_size_logarithmic():
    """Appendix B.3: the proof is Θ(λ(log n + α)) bytes."""
    tree = MerklePrefixTree(depth=16)
    for i in range(100):
        tree.insert(f"plugin-{i}", bytes(100))
    path = tree.prove("plugin-0")
    assert len(path.siblings) == 16
    assert path.size_bytes() < 1000  # ~16 hashes, not ~100 bindings


def test_depth_bounds():
    with pytest.raises(ValueError):
        MerklePrefixTree(depth=0)
    with pytest.raises(ValueError):
        MerklePrefixTree(depth=65)


@given(st.sets(st.text(alphabet="abcdefgh.", min_size=1, max_size=12),
               min_size=1, max_size=25), st.integers(2, 10))
@settings(max_examples=50, deadline=None)
def test_all_inserted_bindings_provable(names, depth):
    tree = MerklePrefixTree(depth=depth)
    for n in names:
        tree.insert(n, n.encode() + b"!")
    root = tree.root()
    for n in names:
        assert verify_path(root, n, n.encode() + b"!", tree.prove(n))
        assert not verify_path(root, n, n.encode() + b"?", tree.prove(n))
