"""Block allocator tests (Θ(1) fixed-size pool, §2.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memory import BLOCK_SIZE, AllocationError, BlockAllocator
from repro.vm.interpreter import HEAP_BASE, PluginMemory


def make(size=1024):
    return BlockAllocator(PluginMemory(size))


def test_single_block_allocation():
    alloc = make()
    addr = alloc.malloc(10)
    assert addr >= HEAP_BASE
    assert (addr - HEAP_BASE) % BLOCK_SIZE == 0
    assert alloc.allocated_blocks == 1


def test_addresses_distinct():
    alloc = make()
    addrs = {alloc.malloc(8) for _ in range(16)}
    assert len(addrs) == 16


def test_free_and_reuse():
    alloc = make(256)  # 4 blocks
    addrs = [alloc.malloc(8) for _ in range(4)]
    with pytest.raises(AllocationError):
        alloc.malloc(8)
    alloc.free(addrs[1])
    again = alloc.malloc(8)
    assert again == addrs[1]


def test_multi_block_run_contiguous():
    alloc = make(1024)
    addr = alloc.malloc(200)  # 4 blocks
    assert alloc.allocated_blocks == 4
    assert alloc.allocation_size(addr) == 4 * BLOCK_SIZE
    alloc.free(addr)
    assert alloc.allocated_blocks == 0


def test_fragmented_run_fails_until_freed():
    alloc = make(4 * BLOCK_SIZE)
    a = alloc.malloc(8)
    b = alloc.malloc(8)
    c = alloc.malloc(8)
    d = alloc.malloc(8)
    alloc.free(a)
    alloc.free(c)
    # Two free blocks but not contiguous.
    with pytest.raises(AllocationError):
        alloc.malloc(2 * BLOCK_SIZE)
    alloc.free(b)
    addr = alloc.malloc(2 * BLOCK_SIZE)
    assert addr == a


def test_free_zeroes_memory():
    mem = PluginMemory(256)
    alloc = BlockAllocator(mem)
    addr = alloc.malloc(16)
    off = addr - HEAP_BASE
    mem.data[off:off + 4] = b"\xde\xad\xbe\xef"
    alloc.free(addr)
    assert mem.data[off:off + 4] == bytes(4)


def test_invalid_free_rejected():
    alloc = make()
    with pytest.raises(AllocationError):
        alloc.free(HEAP_BASE + 8)  # not block-aligned
    with pytest.raises(AllocationError):
        alloc.free(HEAP_BASE)  # never allocated


def test_invalid_size_rejected():
    alloc = make()
    with pytest.raises(AllocationError):
        alloc.malloc(0)
    with pytest.raises(AllocationError):
        alloc.malloc(-5)


def test_reset_restores_pool():
    alloc = make(256)
    for _ in range(4):
        alloc.malloc(8)
    alloc.reset()
    assert alloc.free_blocks == 4
    assert alloc.allocated_blocks == 0
    assert alloc.malloc(8) >= HEAP_BASE


def test_size_must_be_multiple_of_block():
    with pytest.raises(ValueError):
        BlockAllocator(PluginMemory(100))


@given(st.lists(st.integers(1, 200), min_size=1, max_size=40), st.randoms())
@settings(max_examples=100)
def test_alloc_free_never_overlaps(sizes, rng):
    alloc = make(64 * BLOCK_SIZE)
    live = {}
    for size in sizes:
        try:
            addr = alloc.malloc(size)
        except AllocationError:
            continue
        span = alloc.allocation_size(addr)
        for other, other_span in live.items():
            assert addr + span <= other or other + other_span <= addr
        live[addr] = span
        if live and rng.random() < 0.3:
            victim = rng.choice(sorted(live))
            alloc.free(victim)
            del live[victim]
    # Everything still live is accounted for.
    assert alloc.allocated_blocks == sum(live.values()) // BLOCK_SIZE
