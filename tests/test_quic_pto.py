"""PTO probe behaviour at the connection level (RFC 9002 §6.2.4).

The acceptance scenario of the RFC 9002 recovery rework: when ACKs are
merely *delayed* (not dropped), a PTO expiry must send at most two probe
packets, must not reduce the congestion window, and must not invoke
``congestion_on_loss`` at all — a late ACK is not evidence of loss.
"""

import pytest

from repro.core.protoop import Anchor
from repro.netsim import Simulator, symmetric_topology
from repro.quic import QuicConfiguration

from tests.test_quic_connection import build_pair, run_transfer


def _delayed_ack_run(delay_s=1.0):
    """Start a transfer, then stall the server->client direction so ACKs
    arrive late.  Returns (sim, client, state observed at PTO time)."""
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
    client, server = build_pair(sim, topo)

    received = bytearray()

    def on_conn(conn):
        conn.on_stream_data = lambda sid, data, fin: received.extend(data)

    server.on_connection = on_conn
    client.connect()
    assert sim.run_until(lambda: client.conn.is_established, timeout=5.0)

    stream_id = client.conn.create_stream()
    client.conn.send_stream_data(stream_id, b"z" * 60_000, fin=True)
    client.pump()
    # Let the transfer reach steady state (some ACKs processed).
    assert sim.run_until(
        lambda: client.conn.stats["packets_acked"] > 4, timeout=5.0)

    # Delay — do not drop — everything flowing back to the client.
    for link in topo.path_links:
        link.backward.delay = delay_s

    loss_invocations = []
    client.conn.protoops.attach(
        "congestion_on_loss", Anchor.POST,
        lambda conn, args, result: loss_invocations.append(args))

    cwnd_before = client.conn.paths[0].cc.cwnd
    probes_before = client.conn.stats["probes_sent"]
    assert sim.run_until(
        lambda: client.conn.stats["pto_fired"] >= 1, timeout=5.0)
    return sim, client, topo, {
        "cwnd_before": cwnd_before,
        "probes_before": probes_before,
        "loss_invocations": loss_invocations,
        "received": received,
    }


def test_pto_with_delayed_acks_probes_without_losses():
    sim, client, topo, state = _delayed_ack_run()
    conn = client.conn
    # The first expiry queued at most MAX_PTO_PROBES probe packets.
    assert 1 <= conn.stats["probes_sent"] - state["probes_before"] <= 2
    # No loss was declared and no congestion response happened.
    assert state["loss_invocations"] == []
    assert conn.stats["packets_lost"] == 0
    assert conn.paths[0].cc.cwnd >= state["cwnd_before"]
    assert conn.stats["pto_fired"] >= 1


def test_probe_count_bounded_per_expiry():
    sim, client, topo, state = _delayed_ack_run()
    conn = client.conn
    # Even with repeated (backed-off) expiries, each fires <= 2 probes.
    sim.run(until=sim.now + 0.6)
    assert conn.stats["pto_fired"] >= 1
    assert conn.stats["probes_sent"] <= 2 * conn.stats["pto_fired"]
    assert state["loss_invocations"] == []


def test_pto_backoff_resets_when_acks_resume():
    sim, client, topo, state = _delayed_ack_run(delay_s=0.8)
    conn = client.conn
    assert conn._pto_count >= 1
    # Restore the path; the delayed ACKs (already in flight) arrive.
    for link in topo.path_links:
        link.backward.delay = 0.01
    acked = conn.stats["packets_acked"]
    assert sim.run_until(
        lambda: conn.stats["packets_acked"] > acked, timeout=5.0)
    # Forward progress resets the backoff (RFC 9002 §6.2.1) and the
    # late ACKs never count packets lost.
    assert conn._pto_count == 0
    assert conn.stats["packets_lost"] == 0


def test_transfer_completes_after_delay_episode():
    sim, client, topo, state = _delayed_ack_run(delay_s=0.5)
    for link in topo.path_links:
        link.backward.delay = 0.01
    assert sim.run_until(
        lambda: len(state["received"]) == 60_000, timeout=30.0)


def test_conservation_and_probes_under_ambient_loss():
    """The send-side ledger stays exact with probes in play: every probe
    repeats frames of a packet that remains tracked, so
    sent == acked + lost + in_flight at all times."""
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=15, bw_mbps=10, loss_pct=2.0, seed=9)
    client, server = build_pair(sim, topo)
    data = run_transfer(sim, client, server, 120_000, timeout=120.0)
    assert data == b"z" * 120_000
    for conn in (client.conn, server.connections[0]):
        in_flight = len(conn.initial_space.sent) + sum(
            len(p.space.sent) for p in conn.paths)
        assert conn.stats["packets_sent"] == (
            conn.stats["packets_acked"] + conn.stats["packets_lost"]
            + in_flight)
    # 2% loss over ~120 kB makes real losses (and their congestion
    # response) all but certain.
    assert client.conn.stats["packets_lost"] > 0


def test_declare_all_on_pto_legacy_flag():
    """The bench baseline flag restores the old declare-everything-lost
    PTO response (and with it the cwnd collapse on late ACKs)."""
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
    cfg = QuicConfiguration(is_client=True, declare_all_on_pto=True)
    client, server = build_pair(sim, topo, client_config=cfg)

    server.on_connection = lambda conn: None
    client.connect()
    assert sim.run_until(lambda: client.conn.is_established, timeout=5.0)
    stream_id = client.conn.create_stream()
    client.conn.send_stream_data(stream_id, b"z" * 40_000, fin=True)
    client.pump()
    assert sim.run_until(
        lambda: client.conn.stats["packets_acked"] > 2, timeout=5.0)
    for link in topo.path_links:
        link.backward.delay = 1.0
    assert sim.run_until(
        lambda: client.conn.stats["pto_fired"] >= 1, timeout=5.0)
    # The legacy path declares whole flights lost instead of probing.
    assert client.conn.stats["packets_lost"] > 0
    assert client.conn.stats["probes_sent"] == 0
