"""Metrics registry: counter/gauge/histogram semantics, merge algebra
(hypothesis-checked), and the per-connection collector."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trace import (
    Counter,
    DEFAULT_MS_BUCKETS,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(MetricError):
            Counter().inc(-1)

    def test_merge_adds(self):
        a, b = Counter(), Counter()
        a.inc(2), b.inc(3)
        a.merge(b)
        assert a.value == 5


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge()
        g.set(2.0)
        g.set(1.0)
        assert g.value == 1.0

    def test_merge_is_order_independent(self):
        # Max-biased merge: merging A into B and B into A agree.
        a, b = Gauge(), Gauge()
        a.set(3.0), b.set(7.0)
        a2, b2 = Gauge(), Gauge()
        a2.set(3.0), b2.set(7.0)
        a.merge(b)
        b2.merge(a2)
        assert a.value == b2.value == 7.0


class TestHistogram:
    def test_bounds_must_increase(self):
        with pytest.raises(MetricError):
            Histogram(bounds=(1.0, 1.0, 2.0))

    def test_observe_buckets_inclusive_upper(self):
        h = Histogram(bounds=(1.0, 10.0))
        h.observe(1.0)   # lands in le=1.0 (inclusive upper bound)
        h.observe(5.0)   # le=10.0
        h.observe(100.0)  # overflow
        snap = h.snapshot()
        assert [b["count"] for b in snap["buckets"]] == [1, 1, 1]
        assert snap["buckets"][-1]["le"] is None
        assert snap["count"] == 3

    def test_mean_and_quantile(self):
        h = Histogram(bounds=tuple(float(b) for b in range(1, 101)))
        for v in range(1, 101):
            h.observe(float(v))
        assert h.mean() == pytest.approx(50.5)
        assert h.quantile(0.5) == pytest.approx(50.0, abs=1.0)

    def test_merge_requires_same_bounds(self):
        with pytest.raises(MetricError):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), max_size=60),
           st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), max_size=60))
    def test_merge_equals_combined_observation(self, xs, ys):
        """Histogram merge is exact: merging two histograms equals one
        histogram that observed the union of their samples."""
        bounds = DEFAULT_MS_BUCKETS
        a, b, combined = (Histogram(bounds=bounds) for _ in range(3))
        for x in xs:
            a.observe(x)
            combined.observe(x)
        for y in ys:
            b.observe(y)
            combined.observe(y)
        a.merge(b)
        # Bucket counts merge exactly; the running sum only up to float
        # addition reordering (it is not part of the bucket algebra).
        assert a.counts == combined.counts
        assert a.total == pytest.approx(combined.total, rel=1e-12)
        assert a.count == combined.count

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=60))
    def test_count_conserved(self, xs):
        h = Histogram(bounds=DEFAULT_MS_BUCKETS)
        for x in xs:
            h.observe(x)
        assert sum(h.counts) == len(xs) == h.count


class TestRegistry:
    def test_series_are_memoized(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")

    def test_type_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(MetricError):
            r.gauge("x")

    def test_histogram_bounds_conflict_rejected(self):
        r = MetricsRegistry()
        r.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(MetricError):
            r.histogram("h", bounds=(3.0,))

    def test_merge_with_prefix(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("packets").inc(3)
        b.gauge("cwnd").set(10.0)
        a.merge(b, prefix="client.")
        snap = a.snapshot()
        assert snap["client.packets"]["value"] == 3
        assert snap["client.cwnd"]["value"] == 10.0

    def test_snapshot_shape(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.histogram("h").observe(1.0)
        snap = r.snapshot()
        assert snap["c"]["kind"] == "counter"
        assert snap["h"]["kind"] == "histogram"
        assert snap["h"]["count"] == 1


class TestConnectionMetrics:
    def run_transfer(self):
        from repro.experiments import run_quic_transfer

        registry = MetricsRegistry()
        result = run_quic_transfer(80_000, d_ms=5, bw_mbps=20,
                                   metrics=registry)
        assert result.completed
        return registry.snapshot()

    def test_transfer_populates_both_sides_and_simulator(self):
        snap = self.run_transfer()
        assert snap["client.packets_sent"]["value"] > 0
        assert snap["client.packets_received"]["value"] > 0
        assert snap["server.packets_sent"]["value"] > 0
        assert snap["sim.events_fired"]["value"] > 0
        assert snap["transfers.completed"]["value"] == 1
        assert snap["transfer.dct_ms"]["count"] == 1
        # Histograms carry real distributions, not just counts.
        assert snap["client.packet_size_bytes"]["count"] == \
            snap["client.packets_sent"]["value"]

    def test_detach_stops_collection(self):
        from repro.quic import QuicConfiguration
        from repro.quic.connection import QuicConnection
        from repro.trace import ConnectionMetrics

        conn = QuicConnection(QuicConfiguration(is_client=True))
        cm = ConnectionMetrics(conn, MetricsRegistry())
        cm.detach()
        table = conn.protoops
        op = table.get("packet_sent_event")
        assert not any(op.post.values())
