"""Interpreter tests: semantics, memory monitor, helpers, budget."""

import pytest

from repro.vm import (
    HEAP_BASE,
    STACK_BASE,
    STACK_SIZE,
    ExecutionError,
    FuelExhausted,
    MemoryViolation,
    PluginMemory,
    VirtualMachine,
    assemble,
)

WORD = (1 << 64) - 1


def run(source, *args, heap=None, helpers=None, budget=1_000_000):
    vm = VirtualMachine(assemble(source), heap or PluginMemory(),
                        helpers=helpers, instruction_budget=budget)
    return vm.run(*args)


class TestAlu:
    def test_arithmetic(self):
        assert run("mov r0, r1\nadd r0, r2\nexit", 2, 3) == 5
        assert run("mov r0, r1\nsub r0, r2\nexit", 10, 4) == 6
        assert run("mov r0, r1\nmul r0, r2\nexit", 6, 7) == 42
        assert run("mov r0, r1\ndiv r0, r2\nexit", 42, 5) == 8
        assert run("mov r0, r1\nmod r0, r2\nexit", 42, 5) == 2

    def test_wraparound_64bit(self):
        assert run("mov r0, r1\nadd r0, 1\nexit", WORD) == 0
        assert run("mov r0, 0\nsub r0, 1\nexit") == WORD

    def test_bitwise(self):
        assert run("mov r0, r1\nand r0, r2\nexit", 0b1100, 0b1010) == 0b1000
        assert run("mov r0, r1\nor r0, r2\nexit", 0b1100, 0b1010) == 0b1110
        assert run("mov r0, r1\nxor r0, r2\nexit", 0b1100, 0b1010) == 0b0110

    def test_shifts(self):
        assert run("mov r0, r1\nlsh r0, 4\nexit", 1) == 16
        assert run("mov r0, r1\nrsh r0, 4\nexit", 256) == 16
        # Arithmetic shift keeps the sign.
        assert run("mov r0, r1\narsh r0, 1\nexit", WORD) == WORD

    def test_neg(self):
        assert run("mov r0, r1\nneg r0\nexit", 5) == (WORD - 4)

    def test_division_by_zero_register_faults(self):
        with pytest.raises(ExecutionError, match="division by zero"):
            run("mov r0, 1\ndiv r0, r2\nexit", 0, 0)

    def test_lddw(self):
        assert run("lddw r0, 0xdeadbeefcafe\nexit") == 0xDEADBEEFCAFE


class TestJumps:
    def test_unsigned_comparison(self):
        # JGT is unsigned: WORD (== -1 signed) > 1.
        src = "mov r0, 0\njgt r1, r2, +1\nexit\nmov r0, 1\nexit"
        assert run(src, WORD, 1) == 1
        assert run(src, 1, 2) == 0

    def test_signed_comparison(self):
        src = "mov r0, 0\njsgt r1, r2, +1\nexit\nmov r0, 1\nexit"
        assert run(src, WORD, 1) == 0  # -1 < 1 signed
        assert run(src, 5, 1) == 1

    def test_jset(self):
        src = "mov r0, 0\njset r1, 0x4, +1\nexit\nmov r0, 1\nexit"
        assert run(src, 0b0100) == 1
        assert run(src, 0b0011) == 0

    def test_loop(self):
        src = """
            mov r0, 0
        top:
            jeq r1, 0, end
            add r0, r1
            sub r1, 1
            ja top
        end:
            exit
        """
        assert run(src, 5) == 15


class TestMemory:
    def test_stack_read_write(self):
        src = """
            stxdw [r10-8], r1
            ldxdw r0, [r10-8]
            exit
        """
        assert run(src, 0x1122334455667788) == 0x1122334455667788

    def test_byte_granularity(self):
        src = """
            stw [r10-8], 0x11223344
            ldxb r0, [r10-8]
            exit
        """
        assert run(src) == 0x44  # little-endian low byte

    def test_heap_read_write(self):
        heap = PluginMemory(1024)
        src = f"""
            lddw r2, {HEAP_BASE}
            stxdw [r2+16], r1
            ldxdw r0, [r2+16]
            exit
        """
        assert run(src, 777, heap=heap) == 777
        assert int.from_bytes(heap.data[16:24], "little") == 777

    def test_heap_shared_between_vms(self):
        """Figure 2: the heap is common to all pluglets of a plugin."""
        heap = PluginMemory(256)
        run(f"lddw r2, {HEAP_BASE}\nstxdw [r2+0], r1\nexit", 42, heap=heap)
        assert run(f"lddw r2, {HEAP_BASE}\nldxdw r0, [r2+0]\nexit", heap=heap) == 42

    def test_stack_fresh_per_invocation(self):
        src = "ldxdw r0, [r10-8]\nexit"
        vm = VirtualMachine(
            assemble("stxdw [r10-8], r1\nexit"), PluginMemory()
        )
        vm.run(99)
        assert run(src) == 0

    def test_out_of_bounds_below_heap(self):
        with pytest.raises(MemoryViolation):
            run(f"lddw r2, {HEAP_BASE - 8}\nldxdw r0, [r2+0]\nexit")

    def test_out_of_bounds_above_heap(self):
        heap = PluginMemory(64)
        with pytest.raises(MemoryViolation):
            run(f"lddw r2, {HEAP_BASE}\nldxdw r0, [r2+60]\nexit", heap=heap)

    def test_null_pointer_dereference(self):
        with pytest.raises(MemoryViolation):
            run("mov r2, 0\nldxdw r0, [r2+0]\nexit")

    def test_arbitrary_address_write_blocked(self):
        with pytest.raises(MemoryViolation):
            run("lddw r2, 0x7fff00000000\nstdw [r2+0], 1\nexit")

    def test_stack_heap_boundary_exact(self):
        # The very last stack byte is accessible; one past is not.
        run(f"lddw r2, {STACK_BASE + STACK_SIZE - 1}\nldxb r0, [r2+0]\nexit")
        with pytest.raises(MemoryViolation):
            run(f"lddw r2, {STACK_BASE + STACK_SIZE}\nldxb r0, [r2+0]\nexit")

    def test_straddling_access_rejected(self):
        with pytest.raises(MemoryViolation):
            run(f"lddw r2, {STACK_BASE + STACK_SIZE - 4}\nldxdw r0, [r2+0]\nexit")


class TestHelpers:
    def test_helper_receives_args_and_returns(self):
        calls = []

        def helper(vm, a, b, c, d, e):
            calls.append((a, b))
            return a + b

        src = "mov r1, 20\nmov r2, 22\ncall 1\nexit"
        assert run(src, helpers={1: helper}) == 42
        assert calls == [(20, 22)]

    def test_unknown_helper_faults(self):
        with pytest.raises(ExecutionError, match="unknown helper"):
            run("call 99\nexit")

    def test_helper_none_result_is_zero(self):
        assert run("call 1\nexit", helpers={1: lambda vm, *a: None}) == 0

    def test_helper_can_touch_plugin_memory(self):
        heap = PluginMemory(64)

        def poke(vm, a, *rest):
            vm.memory.data[0:8] = int(a).to_bytes(8, "little")
            return 0

        src = f"mov r1, 55\ncall 1\nlddw r2, {HEAP_BASE}\nldxdw r0, [r2+0]\nexit"
        assert run(src, heap=heap, helpers={1: poke}) == 55


class TestBudget:
    def test_infinite_loop_stopped(self):
        with pytest.raises(ExecutionError, match="budget"):
            run("top:\nja top\nexit", budget=10_000)

    def test_fuel_exhaustion_is_typed(self):
        """The runaway guard raises the dedicated FuelExhausted error (a
        subclass of ExecutionError) so containment can classify it."""
        with pytest.raises(FuelExhausted):
            run("top:\nja top\nexit", budget=100)

    def test_instruction_count_recorded(self):
        vm = VirtualMachine(assemble("mov r0, 1\nexit"), PluginMemory())
        vm.run()
        assert vm.instructions_executed == 2

    def test_instructions_accounted_even_on_fuel_exhaustion(self):
        vm = VirtualMachine(assemble("top:\nja top\nexit"), PluginMemory(),
                            instruction_budget=100)
        with pytest.raises(FuelExhausted):
            vm.run()
        assert vm.instructions_executed == 100

    def test_helper_call_budget_independent_of_instructions(self):
        """A pluglet hammering helpers is stopped by the helper-call
        budget long before the instruction budget."""
        calls = []
        src = """
            mov r6, 1000
        top:
            call 1
            sub r6, 1
            jne r6, 0, top
            mov r0, 0
            exit
        """
        vm = VirtualMachine(
            assemble(src), PluginMemory(),
            helpers={1: lambda vm, *a: calls.append(1)},
            instruction_budget=1_000_000, helper_call_budget=10,
        )
        with pytest.raises(FuelExhausted, match="helper-call budget"):
            vm.run()
        # The 11th call trips the budget before the helper itself runs.
        assert len(calls) == 10
        assert vm.helper_calls_made == 10

    def test_helper_budget_resets_between_invocations(self):
        src = "call 1\ncall 1\nexit"
        vm = VirtualMachine(
            assemble(src), PluginMemory(),
            helpers={1: lambda vm, *a: 0},
            helper_call_budget=2,
        )
        vm.run()
        vm.run()  # would fault if helper calls accumulated across runs
        assert vm.helper_calls_made == 4

    def test_too_many_args_rejected(self):
        vm = VirtualMachine(assemble("exit"), PluginMemory())
        with pytest.raises(ValueError):
            vm.run(1, 2, 3, 4, 5, 6)


class TestPluginMemoryReset:
    def test_reset_zeroes(self):
        mem = PluginMemory(32)
        mem.data[5] = 77
        mem.reset()
        assert mem.data == bytearray(32)
