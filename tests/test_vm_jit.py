"""Differential tests for the PRE JIT (bytecode -> Python closure).

The JIT must be indistinguishable from the reference interpreter in
everything except speed: same results, same ``instructions_executed`` and
``helper_calls_made``, same heap contents, same fault classes *and*
messages.  The core of this file is a seeded random-program generator
whose output always passes the static verifier; every program is run
through both engines under several fuel budgets and the full observable
state is compared bit-for-bit.
"""

import random
from pathlib import Path

import pytest

from repro.vm import VirtualMachine, assemble, verify
from repro.vm.analysis import analyze
from repro.vm.interpreter import (
    HEAP_BASE,
    STACK_BASE,
    FuelExhausted,
    PluginMemory,
    VmError,
)
from repro.vm.isa import (
    LOAD_OPS,
    MEM_SIZES,
    STACK_SIZE,
    STORE_REG_OPS,
    Instruction,
    Op,
)
from repro.vm.jit import (
    MAX_JIT_PROGRAM,
    JitError,
    JitVirtualMachine,
    compile_jit,
    create_vm,
)

HEAP_SIZE = 4096

# --- random program generator (always verifier-clean) -----------------------

ALU_IMM_LIST = [Op.ADD_IMM, Op.SUB_IMM, Op.MUL_IMM, Op.DIV_IMM, Op.MOD_IMM,
                Op.AND_IMM, Op.OR_IMM, Op.XOR_IMM, Op.LSH_IMM, Op.RSH_IMM,
                Op.ARSH_IMM, Op.MOV_IMM]
ALU_REG_LIST = [Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR,
                Op.XOR, Op.LSH, Op.RSH, Op.ARSH, Op.MOV]
JUMP_LIST = [Op.JA, Op.JEQ, Op.JNE, Op.JGT, Op.JGE, Op.JLT, Op.JLE,
             Op.JSGT, Op.JSLT, Op.JSET, Op.JEQ_IMM, Op.JNE_IMM, Op.JGT_IMM,
             Op.JGE_IMM, Op.JLT_IMM, Op.JLE_IMM, Op.JSGT_IMM, Op.JSLT_IMM,
             Op.JSET_IMM]
JMP_IMM_SET = {Op.JEQ_IMM, Op.JNE_IMM, Op.JGT_IMM, Op.JGE_IMM, Op.JLT_IMM,
               Op.JLE_IMM, Op.JSGT_IMM, Op.JSLT_IMM, Op.JSET_IMM}
MEM_LIST = [Op.LDXB, Op.LDXH, Op.LDXW, Op.LDXDW, Op.STXB, Op.STXH, Op.STXW,
            Op.STXDW, Op.STB, Op.STH, Op.STW, Op.STDW]

IMM_POOL = [0, 1, 2, 3, 5, 7, 63, 64, 255, 256, 65521, -1, -2, -7, -64,
            (1 << 31) - 1, -(1 << 31), (1 << 63) - 1]


def _random_imm(rng):
    if rng.random() < 0.5:
        return rng.choice(IMM_POOL)
    return rng.getrandbits(64) - (1 << 63)


def _random_ins(rng, pc, total):
    """One verifier-clean instruction at absolute position ``pc``."""
    r = rng.random()
    dst = rng.randrange(10)  # never write r10
    src = rng.randrange(11)  # reading r10 is fine
    if r < 0.26:
        op = rng.choice(ALU_IMM_LIST)
        if op in (Op.LSH_IMM, Op.RSH_IMM, Op.ARSH_IMM):
            imm = rng.randrange(64)
        elif op in (Op.DIV_IMM, Op.MOD_IMM):
            imm = rng.choice([1, 2, 3, 7, 255, 65521])
        else:
            imm = _random_imm(rng)
        return Instruction(op, dst=dst, imm=imm)
    if r < 0.40:
        # Includes DIV/MOD by register: a zero divisor is a legitimate
        # differential outcome (ExecutionError in both engines).
        return Instruction(rng.choice(ALU_REG_LIST), dst=dst, src=src)
    if r < 0.45:
        return Instruction(Op.NEG, dst=dst)
    if r < 0.51:
        return Instruction(Op.LDDW, dst=dst, imm=_random_imm(rng))
    if r < 0.65:
        op = rng.choice(JUMP_LIST)
        # Mostly forward so programs usually terminate; backward jumps
        # exercise loops + fuel exhaustion.
        if rng.random() < 0.8 and pc + 1 < total:
            target = rng.randrange(pc + 1, total)
        else:
            target = rng.randrange(total)
        off = target - pc - 1
        if op is Op.JA:
            return Instruction(op, offset=off)
        if op in JMP_IMM_SET:
            return Instruction(op, dst=dst, offset=off, imm=_random_imm(rng))
        return Instruction(op, dst=dst, src=src, offset=off)
    if r < 0.75:
        # Frame-pointer-relative access: statically checked, so keep the
        # offset inside the stack (the verifier rejects anything else).
        op = rng.choice(MEM_LIST)
        size = MEM_SIZES[op]
        offset = -rng.randrange(size, STACK_SIZE + 1)
        if op in LOAD_OPS:
            return Instruction(op, dst=dst, src=10, offset=offset)
        if op in STORE_REG_OPS:
            return Instruction(op, dst=10, src=src, offset=offset)
        return Instruction(op, dst=10, offset=offset, imm=_random_imm(rng))
    if r < 0.93:
        # Dynamically-monitored access through r6 (stack ptr), r7 (heap
        # ptr) or a random register — violations are an expected outcome.
        op = rng.choice(MEM_LIST)
        base = rng.choice([6, 6, 7, 7, 7, rng.randrange(10)])
        offset = rng.choice([0, 0, 8, 16, 24, -8, 96, 504, 4096])
        if op in LOAD_OPS:
            return Instruction(op, dst=dst, src=base, offset=offset)
        if op in STORE_REG_OPS:
            return Instruction(op, dst=base, src=src, offset=offset)
        return Instruction(op, dst=base, offset=offset, imm=_random_imm(rng))
    return Instruction(Op.CALL, imm=rng.choice([1, 1, 1, 7, 7, 99]))


def random_program(rng, n_body=30):
    prog = [
        Instruction(Op.LDDW, dst=6,
                    imm=STACK_BASE + rng.randrange(0, STACK_SIZE, 8)),
        Instruction(Op.LDDW, dst=7,
                    imm=HEAP_BASE + rng.randrange(0, HEAP_SIZE, 8)),
    ]
    total = len(prog) + n_body + 1
    for i in range(n_body):
        prog.append(_random_ins(rng, len(prog), total))
    prog.append(Instruction(Op.EXIT))
    return prog


# --- differential harness ----------------------------------------------------

def _make_helpers(log):
    def h_sum(vm, a1, a2, a3, a4, a5):
        log.append(("sum", a1, a2, a3, a4, a5))
        return a1 + a2

    def h_void(vm, a1, a2, a3, a4, a5):
        log.append(("void", a1))
        return None

    return {1: h_sum, 7: h_void}


def _observe(vm_cls, program, budget, runs, analysis=None):
    """Run ``program`` and capture everything observable from outside."""
    mem = PluginMemory(size=HEAP_SIZE)
    log = []
    kwargs = {"analysis": analysis} if analysis is not None else {}
    vm = vm_cls(program, mem, helpers=_make_helpers(log),
                instruction_budget=budget, helper_call_budget=8, **kwargs)
    if vm_cls is JitVirtualMachine:
        assert vm.jit_enabled, "generated program unexpectedly fell back"
    trace = []
    for args in runs:
        try:
            trace.append(("ok", vm.run(*args)))
        except VmError as exc:
            trace.append(("err", type(exc).__name__, str(exc)))
        trace.append((vm.instructions_executed, vm.helper_calls_made))
        assert vm.current_stack is None
    return trace, bytes(mem.data), log


def assert_equivalent(program, budgets=(5, 17, 64, 300),
                      runs=((), (3, (1 << 63) + 5, 7))):
    verify(program)
    for budget in budgets:
        ref = _observe(VirtualMachine, program, budget, runs)
        jit = _observe(JitVirtualMachine, program, budget, runs)
        assert jit == ref, (
            f"divergence at budget={budget}:\n ref={ref}\n jit={jit}\n"
            f"program={program}"
        )


# --- tests -------------------------------------------------------------------

class TestRandomDifferential:
    @pytest.mark.parametrize("seed", range(40))
    def test_seeded_random_programs(self, seed):
        rng = random.Random(0xC0FFEE ^ seed)
        for _ in range(3):
            assert_equivalent(random_program(rng))

    def test_longer_programs(self):
        rng = random.Random(0xBEEF)
        for _ in range(5):
            assert_equivalent(random_program(rng, n_body=120),
                              budgets=(40, 1000))


class TestFixedPrograms:
    def test_kernel_result_and_fuel_identical(self):
        src = """
            mov r2, 0
            mov r3, 0
        loop:
            jge r3, r1, done
            mov r4, r3
            mul r4, 3
            add r2, r4
            mod r2, 65521
            add r3, 1
            ja loop
        done:
            mov r0, r2
            exit
        """
        assert_equivalent(assemble(src), budgets=(10, 999, 10_000_000),
                          runs=((500,), (2000,)))

    def test_memory_violation_same_class_and_message(self):
        prog = assemble("lddw r2, 0x7f00000000\nldxdw r0, [r2+0]\nexit")
        assert_equivalent(prog)

    def test_fp_constant_folded_violation(self):
        # r10-based but *dynamic* base via mov keeps it unverified; use a
        # heap pointer walked past the end instead.
        prog = assemble(
            f"lddw r2, {HEAP_BASE}\nadd r2, {HEAP_SIZE - 4}\n"
            "ldxdw r0, [r2+0]\nexit"
        )
        assert_equivalent(prog)

    def test_infinite_loop_fuel_exact(self):
        assert_equivalent(assemble("top:\nja top\nexit"), budgets=(1, 2, 77))

    def test_division_by_zero_register(self):
        assert_equivalent(assemble("mov r2, 0\nmov r1, 5\ndiv r1, r2\nexit"))

    def test_helper_budget_and_unknown_helper(self):
        calls = "\n".join(["call 1"] * 12) + "\nexit"
        assert_equivalent(assemble(calls))
        assert_equivalent(assemble("call 99\nexit"))

    def test_fall_off_end_is_pc_error(self):
        # r0 == 0, so the jump skips EXIT, lands on the trailing MOV and
        # runs off the end of the program.
        prog = [Instruction(Op.JEQ_IMM, dst=0, offset=1, imm=0),
                Instruction(Op.EXIT),
                Instruction(Op.MOV_IMM, dst=0, imm=7)]
        assert_equivalent(prog)
        # Untaken variant of the same shape falls through to EXIT.
        prog2 = [Instruction(Op.JEQ_IMM, dst=0, offset=1, imm=5),
                 Instruction(Op.EXIT),
                 Instruction(Op.MOV_IMM, dst=0, imm=7)]
        assert_equivalent(prog2)

    def test_argument_masking(self):
        prog = assemble("mov r0, r1\nexit")
        assert_equivalent(prog, runs=((-1,), ((1 << 65) + 9,)))

    def test_signed_compares_and_arsh(self):
        src = """
            lddw r2, -8
            arsh r2, 1
            jsgt r2, r1, neg
            mov r0, 1
            exit
        neg:
            mov r0, 2
            exit
        """
        assert_equivalent(assemble(src), runs=((0,), (-3,), ((1 << 63),)))

    def test_helper_sees_current_stack(self):
        """The JIT must expose the live stack to helpers, like the
        interpreter does (helpers resolve stack pointers through it)."""
        seen = []

        def peek(vm, a1, a2, a3, a4, a5):
            seen.append(vm.load(a1, 8, vm.current_stack))
            return 0

        prog = assemble(
            "stdw [r10-8], 123456\nmov r1, r10\nadd r1, -8\ncall 3\nexit"
        )
        for cls in (VirtualMachine, JitVirtualMachine):
            vm = cls(prog, PluginMemory(size=64), helpers={3: peek})
            vm.run()
        assert seen == [123456, 123456]

    def test_heap_state_persists_between_runs(self):
        prog = assemble(
            f"lddw r2, {HEAP_BASE}\nldxdw r3, [r2+0]\nadd r3, 1\n"
            "stxdw [r2+0], r3\nmov r0, r3\nexit"
        )
        assert_equivalent(prog, runs=((), (), ()))


class TestJitMachinery:
    def test_compile_rejects_empty_program(self):
        with pytest.raises(JitError):
            compile_jit([])

    def test_oversized_program_falls_back(self):
        prog = [Instruction(Op.MOV_IMM, dst=0, imm=0)] * (MAX_JIT_PROGRAM + 1)
        prog.append(Instruction(Op.EXIT))
        vm = JitVirtualMachine(prog, PluginMemory(size=64))
        assert not vm.jit_enabled
        assert vm.run() == 0  # interpreter fallback still executes

    def test_create_vm_defaults_to_jit(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT", raising=False)
        prog = assemble("mov r0, 42\nexit")
        vm = create_vm(prog, PluginMemory(size=64))
        assert isinstance(vm, JitVirtualMachine) and vm.jit_enabled
        assert vm.run() == 42

    def test_repro_jit_0_forces_interpreter(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "0")
        prog = assemble("mov r0, 42\nexit")
        vm = create_vm(prog, PluginMemory(size=64))
        assert type(vm) is VirtualMachine
        assert vm.run() == 42

    def test_plugin_instance_uses_jit(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT", raising=False)
        from repro.core import Plugin, PluginInstance, Pluglet
        from repro.quic import QuicConfiguration
        from repro.quic.connection import QuicConnection

        conn = QuicConnection(QuicConfiguration(is_client=True))
        plugin = Plugin("org.test.jit", [
            Pluglet("noop", "packet_sent_event", "post",
                    assemble("mov r0, 0\nexit")),
        ])
        inst = PluginInstance(plugin, conn)
        vm = inst.vms["noop"]
        assert isinstance(vm, JitVirtualMachine) and vm.jit_enabled

    def test_generated_source_attached(self):
        fn = compile_jit(assemble("mov r0, 1\nexit"))
        assert "def _pluglet" in fn.source


# --- proof-guided specialization ---------------------------------------------

CORPUS_GOOD = Path(__file__).parent / "corpus" / "good"


def assert_proof_equivalent(program, budgets=(5, 17, 64, 300),
                            runs=((), (3, (1 << 63) + 5, 7))):
    """Like :func:`assert_equivalent`, but the JIT VM additionally gets
    the analyzer's report: the monitor-free specialized closure must be
    indistinguishable from the interpreter — proofs change speed, never
    behavior."""
    verify(program)
    report = analyze(program, heap_size=HEAP_SIZE)
    for budget in budgets:
        ref = _observe(VirtualMachine, program, budget, runs)
        jit = _observe(JitVirtualMachine, program, budget, runs,
                       analysis=report)
        assert jit == ref, (
            f"proof-guided divergence at budget={budget}:\n ref={ref}\n"
            f" jit={jit}\n report={report.summary()}\n program={program}"
        )


class TestProofGuided:
    @pytest.mark.parametrize(
        "name", sorted(p.stem for p in CORPUS_GOOD.glob("*.s")))
    def test_good_corpus_identical(self, name):
        program = assemble((CORPUS_GOOD / f"{name}.s").read_text())
        assert_proof_equivalent(program, runs=((), (3, 9), (250, 1)))

    @pytest.mark.parametrize("seed", range(25))
    def test_seeded_random_programs_with_proofs(self, seed):
        rng = random.Random(0xA11A ^ seed)
        for _ in range(3):
            assert_proof_equivalent(random_program(rng))

    def test_unproven_addresses_keep_the_monitor(self):
        # r1 is unknown to the analyzer, so no region fact exists; the
        # specialized closure must still catch the violation.
        program = assemble("ldxdw r0, [r1+0]\nexit")
        assert_proof_equivalent(
            program,
            runs=((STACK_BASE,), (HEAP_BASE,), (0,),
                  (HEAP_BASE + HEAP_SIZE - 4,)))

    def test_helper_budget_exhaustion_identical(self):
        program = assemble("\n".join(["call 1"] * 12) + "\nexit")
        assert_proof_equivalent(program)

    def test_specializes_on_proofs(self):
        program = assemble(
            f"lddw r6, {HEAP_BASE}\nstdw [r6+0], 7\nldxdw r0, [r6+0]\nexit")
        report = analyze(program, heap_size=HEAP_SIZE)
        assert report.memory_safe and report.fuel_bound == 4
        vm = JitVirtualMachine(program, PluginMemory(size=HEAP_SIZE),
                               analysis=report)
        assert vm.jit_specialized
        assert vm.run() == 7
        assert vm.instructions_executed == 4

    def test_specialized_source_is_monitor_free(self):
        program = assemble(
            f"lddw r6, {HEAP_BASE}\nstdw [r6+0], 7\nldxdw r0, [r6+0]\nexit")
        report = analyze(program, heap_size=HEAP_SIZE)
        vm = JitVirtualMachine(program, PluginMemory(size=HEAP_SIZE),
                               analysis=report)
        fast = vm._fast_function.source
        checked = vm.jit_function.source
        assert "raise _FuelExhausted" in checked
        assert "raise _FuelExhausted" not in fast
        assert "_MemoryViolation" in checked
        assert "_MemoryViolation" not in fast  # both accesses proven
        assert "_fuel -=" in fast  # accounting stays exact

    def test_budget_below_bound_takes_checked_path(self):
        program = assemble("mov r0, 1\nadd r0, 2\nexit")
        report = analyze(program, heap_size=HEAP_SIZE)
        assert report.fuel_bound == 3
        vm = JitVirtualMachine(program, PluginMemory(size=HEAP_SIZE),
                               instruction_budget=2, analysis=report)
        assert vm.jit_specialized  # compiled, but gated per run
        with pytest.raises(FuelExhausted, match="2 instructions"):
            vm.run()
        assert vm.instructions_executed == 2  # same charge as interpreter

    def test_rejected_program_is_not_specialized(self):
        # Definite division by zero: the report carries an error, so the
        # proofs must not be used; behavior is the plain checked JIT's.
        program = assemble("mov r6, 0\nmov r0, 10\ndiv r0, r6\nexit")
        report = analyze(program, heap_size=HEAP_SIZE)
        assert not report.ok
        vm = JitVirtualMachine(program, PluginMemory(size=HEAP_SIZE),
                               analysis=report)
        assert not vm.jit_specialized
        assert_proof_equivalent(program)

    def test_heap_smaller_than_proof_disables_specialization(self):
        program = assemble(f"lddw r6, {HEAP_BASE}\nstdw [r6+0], 7\nexit")
        report = analyze(program, heap_size=HEAP_SIZE)
        assert report.memory_safe
        vm = JitVirtualMachine(program, PluginMemory(size=64),
                               analysis=report)
        assert not vm.jit_specialized  # proof assumed a bigger heap
        vm.run()  # checked path still executes correctly

    def test_create_vm_analysis_env_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT", raising=False)
        program = assemble("mov r0, 42\nexit")
        report = analyze(program, heap_size=HEAP_SIZE)

        monkeypatch.setenv("REPRO_ANALYSIS", "0")
        vm = create_vm(program, PluginMemory(size=HEAP_SIZE),
                       analysis=report)
        assert isinstance(vm, JitVirtualMachine)
        assert not vm.jit_specialized
        assert vm.run() == 42

        monkeypatch.delenv("REPRO_ANALYSIS")
        vm = create_vm(program, PluginMemory(size=HEAP_SIZE),
                       analysis=report)
        assert vm.jit_specialized
        assert vm.run() == 42
