"""Integration tests for hosts, routers and the Figure-7 topology."""

import pytest

from repro.netsim import (
    Datagram,
    Host,
    Link,
    Router,
    Simulator,
    symmetric_topology,
)
from repro.netsim.topology import Figure7Topology, PathParams


def test_host_bind_and_receive():
    sim = Simulator()
    a, b = Host(sim, "a"), Host(sim, "b")
    link = Link(sim, 0.001, 1e9)
    a.attach(link, "a.0")
    b.attach(link, "b.0", far_side=True)
    got = []
    b.bind(9, got.append)
    a.sendto(b"ping", "a.0", 1, "b.0", 9)
    sim.run()
    assert len(got) == 1
    assert got[0].payload == b"ping"
    assert got[0].src_addr == "a.0"
    assert b.rx_datagrams == 1


def test_unbound_port_counts_unrouted():
    sim = Simulator()
    a, b = Host(sim, "a"), Host(sim, "b")
    link = Link(sim, 0.001, 1e9)
    a.attach(link, "a.0")
    b.attach(link, "b.0", far_side=True)
    a.sendto(b"x", "a.0", 1, "b.0", 1234)
    sim.run()
    assert b.unrouted == 1
    assert b.rx_datagrams == 0


def test_double_bind_rejected():
    sim = Simulator()
    h = Host(sim, "h")
    h.bind(1, lambda d: None)
    with pytest.raises(ValueError):
        h.bind(1, lambda d: None)
    h.unbind(1)
    h.bind(1, lambda d: None)


def test_send_from_unknown_interface_rejected():
    sim = Simulator()
    h = Host(sim, "h")
    with pytest.raises(ValueError):
        h.sendto(b"x", "nope.0", 1, "b.0", 2)


def test_router_wildcard_routes():
    sim = Simulator()
    r = Router(sim, "r")
    r._routes = {"client.*": 0, "server.0": 1, "*": 2}
    assert r._lookup("client.0") == 0
    assert r._lookup("client.77") == 0
    assert r._lookup("server.0") == 1
    assert r._lookup("other.3") == 2


def test_figure7_client_to_server_both_paths():
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
    got = []
    topo.server.bind(443, got.append)
    topo.client.sendto(b"via-r1", "client.0", 1, "server.0", 443)
    topo.client.sendto(b"via-r2", "client.1", 1, "server.0", 443)
    sim.run()
    assert sorted(d.payload for d in got) == [b"via-r1", b"via-r2"]
    assert topo.r1.forwarded == 1
    assert topo.r2.forwarded == 1
    assert topo.r3.forwarded == 2


def test_figure7_return_path_follows_client_address():
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
    got_client = []
    topo.client.bind(1, got_client.append)

    def echo(d):
        topo.server.sendto(d.payload, "server.0", 443, d.src_addr, d.src_port)

    topo.server.bind(443, echo)
    topo.client.sendto(b"p1", "client.0", 1, "server.0", 443)
    topo.client.sendto(b"p2", "client.1", 1, "server.0", 443)
    sim.run()
    assert sorted(d.payload for d in got_client) == [b"p1", b"p2"]
    # Replies to client.0 went via R1 (its forwarded count grows).
    assert topo.r1.forwarded == 2
    assert topo.r2.forwarded == 2


def test_asymmetric_paths_have_different_rtt():
    sim = Simulator()
    topo = Figure7Topology(
        sim,
        PathParams.from_paper_units(5, 100),
        PathParams.from_paper_units(50, 100),
    )
    arrivals = {}
    topo.server.bind(7, lambda d: arrivals.__setitem__(d.src_addr, sim.now))
    topo.client.sendto(b"a", "client.0", 1, "server.0", 7)
    topo.client.sendto(b"b", "client.1", 1, "server.0", 7)
    sim.run()
    assert arrivals["client.0"] < arrivals["client.1"]
    assert arrivals["client.1"] - arrivals["client.0"] == pytest.approx(0.045, abs=0.005)


def test_lossy_path_reproducible_between_runs():
    def run(seed):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=10, loss_pct=20, seed=seed)
        got = []
        topo.server.bind(9, got.append)
        for i in range(100):
            topo.client.sendto(bytes([i]), "client.0", 1, "server.0", 9)
        sim.run()
        return [d.payload for d in got]

    first = run(seed=4)
    second = run(seed=4)
    other = run(seed=5)
    assert first == second
    assert 30 < len(first) < 100
    assert first != other


def test_paper_units_conversion():
    p = PathParams.from_paper_units(25, 50, 2.0)
    assert p.delay == pytest.approx(0.025)
    assert p.bandwidth == pytest.approx(50e6)
    assert p.loss == pytest.approx(0.02)


def test_hop_limit_discards_looping_packets():
    sim = Simulator()
    r1, r2 = Router(sim, "r1"), Router(sim, "r2")
    link = Link(sim, 0.0001, 1e9)
    r1.attach(link, "r1.0")
    r2.attach(link, "r2.0", far_side=True)
    r1.add_route("*", 0)
    r2.add_route("*", 0)
    d = Datagram("x.0", 1, "nowhere.0", 2, b"loop")
    r1.receive(d, r1.interfaces[0])
    sim.run()
    assert d.hops > 0
    assert r1.unrouted + r2.unrouted == 1
