"""Tests for the PRE static analyzer (:mod:`repro.vm.analysis`).

Table-driven over the bytecode corpus (``tests/corpus/{bad,good}``, the
expected rule id in each file's ``; expect:`` header), plus unit tests
for the CFG, the interval domain, the abstract-interpretation facts, the
``verify()`` compatibility wrapper and the manifest linter.
"""

import re
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.vm.analysis import (
    LEGACY_RULES,
    RULES,
    ControlFlowGraph,
    Severity,
    analyze,
    analyze_plugin,
    lint_plugin,
)
from repro.vm.analysis import domain
from repro.vm.asm import assemble
from repro.vm.interpreter import HEAP_BASE, STACK_BASE
from repro.vm.isa import STACK_SIZE, WORD_MASK, Instruction, Op
from repro.vm.verifier import VerificationError, verify

CORPUS = Path(__file__).parent / "corpus"


# --- corpus (table-driven) ---------------------------------------------------

def _corpus_cases(kind):
    cases = []
    for path in sorted((CORPUS / kind).glob("*.s")):
        match = re.search(r";\s*expect:\s*(\S+)", path.read_text())
        assert match, f"{path} is missing its '; expect:' header"
        cases.append(pytest.param(path, match.group(1), id=path.stem))
    assert cases, f"empty corpus directory {kind}"
    return cases


class TestCorpus:
    @pytest.mark.parametrize("path,expected", _corpus_cases("bad"))
    def test_bad_program_rejected_with_rule_and_pc(self, path, expected):
        assert expected in RULES, f"corpus expects unknown rule {expected}"
        report = analyze(assemble(path.read_text()))
        assert not report.ok
        hits = [d for d in report.errors() if d.rule == expected]
        assert hits, (f"{path.name}: expected {expected}, got "
                      f"{[d.rule for d in report.errors()]}")
        assert hits[0].pc is not None, "diagnostic must locate the pc"

    @pytest.mark.parametrize("path,expected", _corpus_cases("good"))
    def test_good_program_accepted(self, path, expected):
        assert expected == "ok"
        report = analyze(assemble(path.read_text()))
        assert report.ok, [str(d) for d in report.errors()]


# --- control-flow graph ------------------------------------------------------

class TestControlFlowGraph:
    def test_straight_line_is_one_terminating_block(self):
        cfg = ControlFlowGraph(assemble("mov r0, 1\nadd r0, 2\nexit"))
        assert set(cfg.blocks) == {0}
        assert cfg.blocks[0].successors == ()
        assert cfg.loop_free
        assert not cfg.fall_off
        assert cfg.reachable_pcs() == [0, 1, 2]

    def test_diamond_blocks_and_edges(self):
        src = """
            jeq r1, 0, zero
            mov r0, 1
            ja done
        zero:
            mov r0, 2
        done:
            exit
        """
        cfg = ControlFlowGraph(assemble(src))
        assert set(cfg.blocks) == {0, 1, 3, 4}
        assert set(cfg.blocks[0].successors) == {1, 3}
        assert cfg.blocks[1].successors == (4,)
        assert cfg.blocks[3].successors == (4,)
        assert cfg.loop_free
        assert cfg.reachable_blocks == frozenset(cfg.blocks)

    def test_back_edge_and_natural_loop(self):
        src = """
            mov r6, 4
        loop:
            sub r6, 1
            jne r6, 0, loop
            exit
        """
        cfg = ControlFlowGraph(assemble(src))
        assert not cfg.loop_free
        (tail, head), = cfg.back_edges
        body = cfg.natural_loop(tail, head)
        assert head in body and tail in body
        assert cfg.loops() == {head: body}

    def test_unreachable_block_excluded(self):
        # The jump skips the dead mov; it forms its own unreachable block.
        prog = [Instruction(Op.JA, offset=1),
                Instruction(Op.MOV_IMM, dst=0, imm=7),
                Instruction(Op.EXIT)]
        cfg = ControlFlowGraph(prog)
        assert 1 in cfg.blocks
        assert 1 not in cfg.reachable_blocks
        assert cfg.loop_free

    def test_fall_off_end_recorded(self):
        cfg = ControlFlowGraph([Instruction(Op.MOV_IMM, dst=0, imm=1)])
        assert 0 in cfg.fall_off
        assert cfg.blocks[0].successors == ()

    def test_infinite_loop_cannot_terminate(self):
        cfg = ControlFlowGraph(assemble("top:\nja top\nexit"))
        assert not cfg.loop_free
        assert 0 not in cfg.can_terminate_from()

    def test_empty_program(self):
        cfg = ControlFlowGraph([])
        assert cfg.blocks == {}
        assert cfg.loop_free
        assert cfg.reachable_blocks == frozenset()


# --- interval domain ---------------------------------------------------------

class TestIntervalDomain:
    def test_const_join_contains(self):
        assert domain.const(5) == (5, 5)
        assert domain.is_const((5, 5)) == 5
        assert domain.is_const((2, 9)) is None
        assert domain.join((2, 4), (7, 9)) == (2, 9)
        assert domain.contains((2, 9), 5)
        assert not domain.contains((2, 9), 10)

    def test_const_wraps_negative(self):
        assert domain.const(-1) == (WORD_MASK, WORD_MASK)

    def test_widen_unstable_bounds_jump_to_extremes(self):
        assert domain.widen((0, 10), (0, 11)) == (0, WORD_MASK)
        assert domain.widen((5, 10), (4, 10)) == (0, 10)
        # Stable bounds stay put.
        assert domain.widen((5, 10), (6, 9)) == (5, 10)

    def test_add_const_exact_unless_straddling_wrap(self):
        assert domain.add_const((10, 20), 5) == (15, 25)
        # Whole interval wraps: still exact (modular shift).
        assert domain.add_const((WORD_MASK - 1, WORD_MASK), 2) == (0, 1)
        # Straddles the wrap point: degrades to TOP.
        assert domain.add_const((WORD_MASK - 1, WORD_MASK), 1) == domain.TOP
        # Negative offsets are the FP-relative case (r10 - 8).
        base = domain.const(STACK_BASE + STACK_SIZE)
        lo, hi = domain.add_const(base, -8)
        assert lo == hi == STACK_BASE + STACK_SIZE - 8

    def test_add_and_sub_degrade_on_possible_wrap(self):
        assert domain.add((0, 5), (10, 20)) == (10, 25)
        assert domain.add((0, WORD_MASK), (1, 1)) == domain.TOP
        assert domain.sub((10, 20), (1, 3)) == (7, 19)
        assert domain.sub((0, 5), (3, 3)) == domain.TOP  # may pass zero

    def test_shift_transfer(self):
        assert domain.lsh((1, 4), domain.const(3)) == (8, 32)
        assert domain.lsh((0, WORD_MASK), domain.const(1)) == domain.TOP
        assert domain.rsh((8, 32), domain.const(3)) == (1, 4)
        assert domain.rsh((8, 32), (0, 5)) == (0, 32)

    def test_div_mod_cover_nonfaulting_executions_only(self):
        assert domain.div((10, 20), (2, 5)) == (2, 10)
        assert domain.div((10, 20), (0, 5)) == (2, 20)  # divisor >= 1
        assert domain.mod((0, 3), (10, 10)) == (0, 3)
        assert domain.mod((0, 99), (10, 10)) == (0, 9)


# --- proofs / facts ----------------------------------------------------------

class TestFacts:
    def test_straight_line_fuel_bound_is_instruction_count(self):
        prog = assemble("mov r0, r1\nadd r0, r2\nmul r0, 3\nexit")
        report = analyze(prog)
        assert report.loop_free
        assert report.fuel_bound == len(prog)
        assert report.helper_bound == 0

    def test_branch_fuel_bound_is_longest_path(self):
        src = """
            jeq r1, 0, short
            mov r0, 1
            add r0, 2
            add r0, 3
            exit
        short:
            exit
        """
        report = analyze(assemble(src))
        # jeq + 3 ALU + exit on the long arm.
        assert report.fuel_bound == 5

    def test_helper_bound_counts_calls_on_longest_path(self):
        src = """
            call 1
            jeq r0, 0, done
            call 1
            call 7
        done:
            exit
        """
        report = analyze(assemble(src))
        assert report.helper_bound == 3
        assert set(report.helper_ids) == {1, 7}

    def test_counted_loop_is_certified(self):
        # A loop over a constant-initialized register counter is no
        # longer unbounded: the fuel-certificate pass proves a trip
        # count and restores a worst-case fuel bound.
        src = """
            mov r6, 4
        loop:
            sub r6, 1
            jne r6, 0, loop
            exit
        """
        report = analyze(assemble(src))
        assert report.ok
        assert not report.loop_free
        assert report.fuel_certificate is not None
        assert report.fuel_bound is not None
        # mov + 4 laps of (sub, jne) + exit >= actual 10 instructions.
        assert report.fuel_bound >= 10
        assert report.helper_bound == 0

    def test_data_dependent_loop_voids_the_bounds(self):
        # When the counter comes from a helper call its pre-header
        # interval is TOP: no trip bound, no certificate, no fuel bound.
        src = """
            call 1
            mov r6, r0
        loop:
            sub r6, 1
            jne r6, 0, loop
            exit
        """
        report = analyze(assemble(src))
        assert report.ok  # bounded by runtime fuel, still accepted
        assert not report.loop_free
        assert report.fuel_certificate is None
        assert report.fuel_bound is None
        assert report.helper_bound is None

    def test_mem_facts_and_memory_safe(self):
        src = f"""
            lddw r6, {HEAP_BASE}
            stw [r6+0], 7
            ldxw r7, [r6+0]
            stdw [r10-8], 42
            ldxdw r8, [r10-8]
            exit
        """
        report = analyze(assemble(src))
        assert report.memory_safe
        assert report.mem_facts == {1: "heap", 2: "heap",
                                    3: "stack", 4: "stack"}

    def test_heap_proof_respects_declared_size(self):
        src = f"lddw r6, {HEAP_BASE + 60}\nstw [r6+0], 1\nexit"
        assert analyze(assemble(src), heap_size=64).memory_safe
        small = analyze(assemble(src), heap_size=32)
        assert not small.memory_safe
        assert small.by_rule("PRE104")

    def test_spill_reload_tracked_through_stack_slot(self):
        src = """
            stdw [r10-8], 7
            ldxdw r6, [r10-8]
            mov r0, r6
            exit
        """
        report = analyze(assemble(src))
        assert report.ok
        assert not report.by_rule("PRE106")
        assert not report.by_rule("PRE107")

    def test_uninitialized_stack_read_warns(self):
        report = analyze(assemble("ldxdw r6, [r10-8]\nmov r0, r6\nexit"))
        assert report.ok  # warning, not rejection
        assert report.by_rule("PRE107")


# --- verify() compatibility wrapper -----------------------------------------

class TestVerifyCompat:
    def test_good_program_passes(self):
        verify(assemble("mov r0, 0\nexit"))

    def test_legacy_rule_raises_with_pc(self):
        prog = [Instruction(Op.MOV_IMM, dst=10, imm=1), Instruction(Op.EXIT)]
        with pytest.raises(VerificationError, match="at instruction 0"):
            verify(prog)

    def test_missing_exit_rejected(self):
        with pytest.raises(VerificationError, match="exit"):
            verify([Instruction(Op.MOV_IMM, dst=0, imm=1)])

    def test_empty_program_rejected(self):
        with pytest.raises(VerificationError):
            verify([])

    def test_deep_findings_stay_advisory(self):
        # Acceptance keeps the paper's relaxed policy: an infinite loop
        # passes verify() (fuel stops it at run time) but the deep
        # analyzer flags it.
        prog = assemble("top:\nja top\nexit")
        verify(prog)
        report = analyze(prog)
        assert report.by_rule("PRE103")
        assert all(d.rule not in LEGACY_RULES for d in report.errors())

    def test_oversized_iterable_rejected_lazily(self):
        consumed = [0]

        def endless():
            while True:
                consumed[0] += 1
                yield Instruction(Op.MOV_IMM, dst=0, imm=1)

        with pytest.raises(VerificationError, match="too large"):
            verify(endless(), max_instructions=64)
        # The fix over the old verifier: the unbounded input is cut off
        # just past the limit instead of being fully materialized.
        assert consumed[0] == 65

    def test_severity_str_and_diag_format(self):
        report = analyze([Instruction(Op.MOV_IMM, dst=10, imm=1),
                          Instruction(Op.EXIT)])
        diag = report.errors()[0]
        assert str(Severity.ERROR) == "error"
        assert f"[{diag.rule}]" in diag.format()
        assert "at instruction 0" in diag.format()


# --- manifest lint -----------------------------------------------------------

def _pluglet(name="p", protoop="process_frame", anchor="pre",
             src="mov r0, 0\nexit", fuel=0, helper_budget=0):
    return SimpleNamespace(name=name, protoop=protoop, anchor=anchor,
                           instructions=assemble(src), fuel=fuel,
                           helper_budget=helper_budget)


def _plugin(*pluglets, memory_size=4096):
    return SimpleNamespace(name="org.test.lint", pluglets=list(pluglets),
                           memory_size=memory_size)


class TestManifestLint:
    def test_clean_plugin_has_no_diagnostics(self):
        plugin = _plugin(_pluglet())
        assert lint_plugin(plugin, {"process_frame"}, {1}) == []

    def test_fuel_budget_below_analyzer_bound(self):
        plugin = _plugin(_pluglet(src="mov r0, 0\nadd r0, 1\nexit", fuel=2))
        diags = lint_plugin(plugin)
        assert [d.rule for d in diags] == ["PRE110"]
        assert diags[0].severity is Severity.WARNING
        assert "fuel" in diags[0].message

    def test_helper_budget_below_analyzer_bound(self):
        plugin = _plugin(_pluglet(src="call 1\ncall 1\nexit",
                                  helper_budget=1))
        diags = lint_plugin(plugin, helper_ids={1})
        assert [d.rule for d in diags] == ["PRE110"]
        assert "helper-call" in diags[0].message

    def test_unknown_protoop_warns_with_suggestion(self):
        plugin = _plugin(_pluglet(protoop="proces_frame"))
        diags = lint_plugin(plugin, protoop_names={"process_frame"})
        assert [d.rule for d in diags] == ["PRE111"]
        assert diags[0].severity is Severity.WARNING
        assert "process_frame" in diags[0].message  # typo suggestion

    def test_external_anchor_defines_new_operation(self):
        # External pluglets add app-facing operations (§2.2); their name
        # is intentionally absent from the host registry.
        plugin = _plugin(_pluglet(protoop="brand_new_op", anchor="external"))
        assert lint_plugin(plugin, protoop_names={"process_frame"}) == []

    def test_unknown_anchor_is_error(self):
        plugin = _plugin(_pluglet(anchor="replce"))
        diags = lint_plugin(plugin, protoop_names={"process_frame"})
        assert [d.rule for d in diags] == ["PRE112"]
        assert diags[0].severity is Severity.ERROR
        assert "replace" in diags[0].message  # typo suggestion

    def test_unknown_helper_id_warns(self):
        plugin = _plugin(_pluglet(src="call 99\nexit"))
        diags = lint_plugin(plugin, helper_ids={1, 2})
        assert [d.rule for d in diags] == ["PRE113"]
        assert "99" in diags[0].message

    def test_diagnostics_tagged_with_pluglet_name(self):
        plugin = _plugin(_pluglet(name="first", anchor="weird"),
                         _pluglet(name="second"))
        diags = lint_plugin(plugin)
        assert [d.pluglet for d in diags] == ["first"]
        assert diags[0].format().startswith("first:")

    def test_analyze_plugin_uses_declared_memory_size(self):
        src = f"lddw r6, {HEAP_BASE + 100}\nstw [r6+0], 1\nexit"
        ok = analyze_plugin(_plugin(_pluglet(src=src), memory_size=256))
        assert ok["p"].memory_safe
        bad = analyze_plugin(_plugin(_pluglet(src=src), memory_size=64))
        assert bad["p"].by_rule("PRE104")
