"""Integration tests: two QUIC endpoints over the simulated network."""

import pytest

from repro.netsim import Simulator, symmetric_topology
from repro.quic import (
    ClientEndpoint,
    QuicConfiguration,
    ServerEndpoint,
    TransportParameters,
)


def build_pair(sim, topo, client_config=None, server_config=None):
    server = ServerEndpoint(
        sim, topo.server, "server.0", 443,
        configuration_factory=(lambda: server_config) if server_config else None,
    )
    client = ClientEndpoint(
        sim, topo.client, "client.0", 5000, "server.0", 443,
        configuration=client_config,
    )
    return client, server


def run_transfer(sim, client, server, size, timeout=120.0):
    received = bytearray()
    done = [False]

    def on_conn(conn):
        def on_data(stream_id, data, fin):
            received.extend(data)
            if fin:
                done[0] = True
        conn.on_stream_data = on_data

    server.on_connection = on_conn
    client.connect()
    assert sim.run_until(lambda: client.conn.is_established, timeout=10.0)
    stream_id = client.conn.create_stream()
    client.conn.send_stream_data(stream_id, b"z" * size, fin=True)
    client.pump()
    assert sim.run_until(lambda: done[0], timeout=timeout)
    return bytes(received)


class TestHandshake:
    def test_handshake_completes_in_one_rtt(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
        client, server = build_pair(sim, topo)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5.0)
        # One-way delay 10ms each way + serialization: the client finishes
        # right around one RTT.
        assert sim.now < 0.040
        assert server.connections[0].is_established

    def test_transport_parameters_exchanged(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
        cfg = QuicConfiguration(
            is_client=True,
            transport_parameters=TransportParameters(initial_max_data=123_456),
        )
        client, server = build_pair(sim, topo, client_config=cfg)
        client.connect()
        assert sim.run_until(lambda: bool(server.connections), timeout=5.0)
        sim.run_until(lambda: client.conn.is_established, timeout=5.0)
        sconn = server.connections[0]
        assert sconn.peer_transport_parameters.initial_max_data == 123_456
        assert sconn.max_data_remote == 123_456

    def test_plugin_negotiation_parameters(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
        cfg = QuicConfiguration(
            is_client=True,
            supported_plugins=["monitoring"],
        )
        scfg = QuicConfiguration(
            is_client=False,
            plugins_to_inject=["fec"],
        )
        client, server = build_pair(sim, topo, client_config=cfg, server_config=scfg)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5.0)
        sconn = server.connections[0]
        assert sconn.peer_transport_parameters.supported_plugins == ["monitoring"]
        assert client.conn.peer_transport_parameters.plugins_to_inject == ["fec"]

    def test_connection_ids_learned(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=10)
        client, server = build_pair(sim, topo)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5.0)
        sconn = server.connections[0]
        assert client.conn.peer_cid == sconn.local_cid
        assert sconn.peer_cid == client.conn.local_cid


class TestDataTransfer:
    def test_small_transfer(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
        client, server = build_pair(sim, topo)
        data = run_transfer(sim, client, server, 1500)
        assert data == b"z" * 1500

    def test_multi_window_transfer(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
        client, server = build_pair(sim, topo)
        data = run_transfer(sim, client, server, 300_000)
        assert len(data) == 300_000

    def test_transfer_with_random_loss(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10, loss_pct=5, seed=3)
        client, server = build_pair(sim, topo)
        data = run_transfer(sim, client, server, 200_000)
        assert len(data) == 200_000
        assert client.conn.stats["packets_lost"] > 0

    def test_transfer_with_heavy_loss(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=20, bw_mbps=5, loss_pct=15, seed=9)
        client, server = build_pair(sim, topo)
        data = run_transfer(sim, client, server, 50_000, timeout=300)
        assert len(data) == 50_000

    def test_bidirectional_streams(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
        client, server = build_pair(sim, topo)
        from_client = bytearray()
        from_server = bytearray()
        sconn_holder = []

        def on_conn(conn):
            sconn_holder.append(conn)
            conn.on_stream_data = lambda sid, d, fin: from_client.extend(d)

        server.on_connection = on_conn
        client.conn.on_stream_data = lambda sid, d, fin: from_server.extend(d)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established and sconn_holder, timeout=5)
        sid_c = client.conn.create_stream()
        client.conn.send_stream_data(sid_c, b"c" * 5000, fin=True)
        client.pump()
        sconn = sconn_holder[0]
        sid_s = sconn.create_stream()
        sconn.send_stream_data(sid_s, b"s" * 5000, fin=True)
        # Server pushes through its driver: pump via endpoint dict.
        for drv in server._by_cid.values():
            drv.pump()
        assert sim.run_until(
            lambda: len(from_client) == 5000 and len(from_server) == 5000,
            timeout=30,
        )
        assert sid_c % 4 == 0  # client-initiated bidi
        assert sid_s % 4 == 1  # server-initiated

    def test_multiple_concurrent_connections(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
        server = ServerEndpoint(sim, topo.server, "server.0", 443)
        done = {}

        def on_conn(conn):
            conn.on_stream_data = lambda sid, d, fin: done.__setitem__(
                conn.local_cid, done.get(conn.local_cid, 0) + len(d)
            )

        server.on_connection = on_conn
        clients = [
            ClientEndpoint(sim, topo.client, "client.0", 5000 + i, "server.0", 443)
            for i in range(3)
        ]
        for c in clients:
            c.connect()
        assert sim.run_until(
            lambda: all(c.conn.is_established for c in clients), timeout=5
        )
        for c in clients:
            sid = c.conn.create_stream()
            c.conn.send_stream_data(sid, b"m" * 10_000, fin=True)
            c.pump()
        assert sim.run_until(
            lambda: len(done) == 3 and all(v == 10_000 for v in done.values()),
            timeout=60,
        )


class TestFlowControl:
    def test_connection_flow_control_respected_and_extended(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=50)
        scfg = QuicConfiguration(
            is_client=False,
            transport_parameters=TransportParameters(
                initial_max_data=20_000, initial_max_stream_data=1 << 20
            ),
        )
        client, server = build_pair(sim, topo, server_config=scfg)
        # Transfer much more than the initial connection window: requires
        # MAX_DATA updates to flow.
        data = run_transfer(sim, client, server, 100_000)
        assert len(data) == 100_000

    def test_stream_flow_control_extended(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=5, bw_mbps=50)
        scfg = QuicConfiguration(
            is_client=False,
            transport_parameters=TransportParameters(
                initial_max_data=1 << 20, initial_max_stream_data=10_000
            ),
        )
        client, server = build_pair(sim, topo, server_config=scfg)
        data = run_transfer(sim, client, server, 80_000)
        assert len(data) == 80_000


class TestSpinBit:
    def test_spin_bit_oscillates(self):
        """§4.1/[96]: the client inverts, the server echoes — the bit spins
        once per RTT while traffic flows."""
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
        client, server = build_pair(sim, topo)
        flips = []
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5)
        from repro.core.protoop import Anchor

        client.conn.protoops.attach(
            "spin_bit_flipped", Anchor.POST,
            lambda conn, args, res: flips.append(args[0]),
        )
        run = run_transfer.__wrapped__ if hasattr(run_transfer, "__wrapped__") else None
        # Send enough data to span several RTTs.
        done = [False]
        server.on_connection = None
        sconn = server.connections[0]
        sconn.on_stream_data = lambda sid, d, fin: done.__setitem__(0, fin)
        sid = client.conn.create_stream()
        client.conn.send_stream_data(sid, b"q" * 200_000, fin=True)
        client.pump()
        assert sim.run_until(lambda: done[0], timeout=60)
        assert len(flips) >= 2


class TestClose:
    def test_explicit_close_reaches_peer(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
        client, server = build_pair(sim, topo)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5)
        sconn = server.connections[0]
        closes = []
        sconn.on_close = lambda code, reason: closes.append((code, reason))
        client.close(error_code=0, reason="done")
        assert sim.run_until(lambda: bool(closes), timeout=5)
        assert closes[0] == (0, "done")
        assert client.conn.closed

    def test_idle_timeout(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
        cfg = QuicConfiguration(
            is_client=True,
            transport_parameters=TransportParameters(idle_timeout=1.0),
        )
        client, server = build_pair(sim, topo, client_config=cfg)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5)
        assert sim.run_until(lambda: client.conn.closed, timeout=30)
        assert client.conn.close_error[1] == "idle timeout"

    def test_no_data_after_close(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
        client, server = build_pair(sim, topo)
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=5)
        client.close()
        sim.run(until=sim.now + 1.0)
        assert client.conn.datagrams_to_send(sim.now) == []


class TestStats:
    def test_counters_populated(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
        client, server = build_pair(sim, topo)
        run_transfer(sim, client, server, 50_000)
        stats = client.conn.stats
        assert stats["packets_sent"] > 40
        assert stats["packets_received"] > 0
        assert stats["bytes_sent"] > 50_000
        assert stats["acks_received"] > 0

    def test_protoop_run_counter(self):
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
        client, server = build_pair(sim, topo)
        run_transfer(sim, client, server, 10_000)
        assert client.conn.protoops.runs > 100


def test_paper_protoop_census():
    """The paper: 'Our PQUIC implementation currently includes 72 protocol
    operations. Four of them take a parameter.'"""
    conn = ClientEndpointStandalone()
    assert conn.protoops.operation_count() == 72
    assert conn.protoops.parameterized_count() == 4


def ClientEndpointStandalone():
    from repro.quic.connection import QuicConnection

    return QuicConnection(QuicConfiguration(is_client=True))
