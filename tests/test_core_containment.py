"""Fault containment & recovery: classification, quarantine backoff,
blocklisting, and the end-to-end guarantee that a runaway pluglet is
stopped by its fuel budget and quarantined WITHOUT killing the connection.
"""

import pytest

from repro.core import (
    ContainmentPolicy,
    FailureClass,
    Plugin,
    PluginCache,
    PluginInstance,
    Pluglet,
    PluginQuarantined,
    QuarantineRegistry,
    classify_failure,
)
from repro.core.api import ApiViolation
from repro.netsim import Simulator, symmetric_topology
from repro.quic import ClientEndpoint, QuicConfiguration, ServerEndpoint
from repro.quic.connection import QuicConnection
from repro.trace import ConnectionTracer
from repro.vm import ExecutionError, FuelExhausted, MemoryViolation, assemble

LOOP = "top:\nja top\nexit"  # statically verifiable, never terminates


def make_conn():
    return QuicConnection(QuicConfiguration(is_client=True))


def looping_plugin(name="org.x.spin", fuel=500):
    return Plugin(name, [
        Pluglet("spin", "packet_sent_event", "post", assemble(LOOP),
                fuel=fuel),
    ])


class TestClassification:
    def test_memory_violation_is_fatal(self):
        assert classify_failure(MemoryViolation("wild")) is FailureClass.FATAL

    def test_bounded_resource_faults_are_transient(self):
        for exc in (FuelExhausted("fuel"), ExecutionError("div by zero"),
                    ApiViolation("bad field")):
            assert classify_failure(exc) is FailureClass.TRANSIENT


class TestQuarantineRegistry:
    def test_backoff_grows_exponentially(self):
        reg = QuarantineRegistry(backoff_base=1.0, backoff_factor=2.0)
        assert reg.record_crash("p", now=0.0).quarantined_until == 1.0
        assert reg.record_crash("p", now=5.0).quarantined_until == 7.0
        assert reg.record_crash("p", now=10.0).quarantined_until == 14.0

    def test_backoff_capped(self):
        reg = QuarantineRegistry(backoff_base=1.0, backoff_factor=10.0,
                                 backoff_max=50.0, blocklist_threshold=100)
        for _ in range(6):
            rec = reg.record_crash("p", now=0.0)
        assert rec.quarantined_until == 50.0

    def test_available_again_after_backoff(self):
        reg = QuarantineRegistry(backoff_base=2.0)
        reg.record_crash("p", now=1.0)
        assert not reg.available("p", now=2.0)
        assert reg.available("p", now=3.5)

    def test_blocklist_after_threshold(self):
        reg = QuarantineRegistry(blocklist_threshold=3)
        for i in range(3):
            reg.record_crash("p", now=float(i))
        assert reg.record("p").blocklisted
        # Blocklisting is permanent: no amount of waiting helps.
        assert not reg.available("p", now=1e9)
        with pytest.raises(PluginQuarantined, match="blocklisted"):
            reg.check("p", now=1e9)

    def test_check_raises_during_backoff_with_reason(self):
        reg = QuarantineRegistry(backoff_base=5.0)
        reg.record_crash("p", now=0.0, reason="fuel")
        with pytest.raises(PluginQuarantined, match="quarantined until"):
            reg.check("p", now=1.0)
        reg.check("p", now=6.0)  # backoff expired: no raise

    def test_forgive_clears_history(self):
        reg = QuarantineRegistry(blocklist_threshold=1)
        reg.record_crash("p", now=0.0)
        assert not reg.available("p", now=0.0)
        reg.forgive("p")
        assert reg.available("p", now=0.0)

    def test_unknown_plugin_always_available(self):
        reg = QuarantineRegistry()
        assert reg.available("ghost", now=0.0)
        reg.check("ghost", now=0.0)

    def test_stats(self):
        reg = QuarantineRegistry(blocklist_threshold=2)
        reg.record_crash("a", now=0.0)
        reg.record_crash("a", now=1.0)
        reg.record_crash("b", now=0.0)
        assert reg.stats() == {
            "plugins_crashed": 2,
            "total_crashes": 3,
            "blocklisted": ["a"],
        }

    def test_invalid_backoff_rejected(self):
        with pytest.raises(ValueError):
            QuarantineRegistry(backoff_base=0.0)
        with pytest.raises(ValueError):
            QuarantineRegistry(backoff_factor=0.5)


class TestCacheQuarantineEnforcement:
    def test_instantiate_refused_during_backoff(self):
        reg = QuarantineRegistry(backoff_base=10.0)
        cache = PluginCache(quarantine=reg)
        cache.store(looping_plugin())
        conn = make_conn()
        reg.record_crash("org.x.spin", now=conn.now)
        with pytest.raises(PluginQuarantined):
            cache.instantiate("org.x.spin", conn)

    def test_instantiate_allowed_after_backoff(self):
        reg = QuarantineRegistry(backoff_base=0.5)
        cache = PluginCache(quarantine=reg)
        cache.store(looping_plugin())
        conn = make_conn()
        reg.record_crash("org.x.spin", now=0.0)
        conn.now = 1.0
        inst = cache.instantiate("org.x.spin", conn)
        assert inst.plugin.name == "org.x.spin"

    def test_cache_without_registry_never_refuses(self):
        cache = PluginCache()
        cache.store(looping_plugin())
        assert cache.instantiate("org.x.spin", make_conn()) is not None


class TestContainmentPolicy:
    def test_transient_fault_detaches_without_closing(self):
        conn = make_conn()
        policy = ContainmentPolicy().attach(conn)
        inst = PluginInstance(looping_plugin(fuel=200), conn)
        inst.attach()
        conn.protoops.run(conn, "packet_sent_event", None)
        assert not conn.closed
        assert not inst.attached
        assert "org.x.spin" not in conn.plugins
        rec = policy.registry.record("org.x.spin")
        assert rec.crashes == 1
        assert "budget" in rec.reasons[0]
        assert policy.faults[0][2] is FailureClass.TRANSIENT

    def test_memory_violation_stays_fatal(self):
        """§2.1 semantics survive containment: a memory violation still
        terminates the connection."""
        conn = make_conn()
        policy = ContainmentPolicy().attach(conn)
        wild = Pluglet("wild", "packet_sent_event", "post",
                       assemble("lddw r2, 0x7f00000000\nldxdw r0, [r2+0]\nexit"))
        inst = PluginInstance(Plugin("org.x.bad", [wild]), conn)
        inst.attach()
        with pytest.raises(Exception):
            conn.protoops.run(conn, "packet_sent_event", None)
        assert conn.closed
        assert policy.registry.record("org.x.bad") is None  # not quarantined
        assert policy.faults[0][2] is FailureClass.FATAL

    def test_without_policy_legacy_termination(self):
        conn = make_conn()
        inst = PluginInstance(looping_plugin(fuel=200), conn)
        inst.attach()
        with pytest.raises(Exception):
            conn.protoops.run(conn, "packet_sent_event", None)
        assert conn.closed

    def test_repeat_crasher_blocklisted_across_connections(self):
        registry = QuarantineRegistry(backoff_base=0.0001,
                                      blocklist_threshold=3)
        cache = PluginCache(quarantine=registry)
        cache.store(looping_plugin(fuel=100))
        for i in range(3):
            conn = make_conn()
            conn.now = float(i)  # each connection starts past the backoff
            ContainmentPolicy(registry).attach(conn)
            inst = cache.instantiate("org.x.spin", conn)
            inst.attach()
            conn.protoops.run(conn, "packet_sent_event", None)
            assert not conn.closed
        assert registry.record("org.x.spin").blocklisted
        with pytest.raises(PluginQuarantined, match="blocklisted"):
            cache.instantiate("org.x.spin", make_conn())


class TestEndToEndContainment:
    def test_runaway_pluglet_contained_connection_survives(self):
        """Acceptance: an unbounded-loop pluglet (which the static
        verifier admits) is stopped by the fuel budget and quarantined —
        and the data transfer on the same connection still completes."""
        sim = Simulator()
        topo = symmetric_topology(sim, d_ms=10, bw_mbps=10)
        server = ServerEndpoint(sim, topo.server, "server.0", 443)
        received = bytearray()
        done = [False]

        def on_conn(conn):
            conn.on_stream_data = lambda sid, d, fin: (
                received.extend(d), done.__setitem__(0, fin))

        server.on_connection = on_conn
        client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                                "server.0", 443)
        policy = ContainmentPolicy().attach(client.conn)
        tracer = ConnectionTracer(client.conn)
        inst = PluginInstance(looping_plugin(fuel=500), client.conn)
        inst.attach()
        client.connect()
        assert sim.run_until(lambda: client.conn.is_established, timeout=10)
        sid = client.conn.create_stream()
        client.conn.send_stream_data(sid, b"z" * 50_000, fin=True)
        client.pump()
        assert sim.run_until(lambda: done[0], timeout=120)
        assert bytes(received) == b"z" * 50_000
        assert not client.conn.closed
        assert "org.x.spin" not in client.conn.plugins
        assert policy.registry.record("org.x.spin").crashes == 1
        # Recovery is observable in the qlog trace.
        names = [e.name for e in tracer.events]
        assert "plugin_fault" in names
        assert "plugin_quarantined" in names
        fault = next(e for e in tracer.events if e.name == "plugin_fault")
        assert fault.data["plugin"] == "org.x.spin"
        assert fault.data["failure_class"] == "transient"

    def test_monitoring_plugin_counts_faults(self):
        """The containment build of the monitoring plugin records faults
        of *other* plugins in its PI block."""
        from repro.plugins.monitoring import (
            OFF_PLUGIN_FAULTS,
            build_monitoring_plugin,
        )

        conn = make_conn()
        ContainmentPolicy().attach(conn)
        monitoring = build_monitoring_plugin(containment=True)
        assert len(monitoring.pluglets) == 16
        mon_inst = PluginInstance(monitoring, conn)
        mon_inst.attach()
        bad = PluginInstance(looping_plugin(fuel=100), conn)
        bad.attach()
        conn.protoops.run(conn, "packet_sent_event", None)
        pi = mon_inst.runtime.opaque_data(1, 256)
        heap_off = pi - 0x2000_0000
        data = mon_inst.runtime.memory.data
        faults = int.from_bytes(
            data[heap_off + OFF_PLUGIN_FAULTS:heap_off + OFF_PLUGIN_FAULTS + 8],
            "little")
        assert faults == 1

    def test_default_monitoring_plugin_stays_table2(self):
        from repro.plugins.monitoring import build_monitoring_plugin

        assert len(build_monitoring_plugin().pluglets) == 14


class TestBudgetsInManifest:
    def test_budgets_serialize_roundtrip(self):
        plugin = Plugin("org.x.b", [
            Pluglet("p", "packet_sent_event", "post", assemble("exit"),
                    fuel=1234, helper_budget=56),
        ])
        back = Plugin.deserialize(plugin.serialize())
        assert back.pluglets[0].fuel == 1234
        assert back.pluglets[0].helper_budget == 56

    def test_budgets_applied_to_vms(self):
        conn = make_conn()
        plugin = Plugin("org.x.b", [
            Pluglet("p", "packet_sent_event", "post", assemble("exit"),
                    fuel=777, helper_budget=11),
        ])
        inst = PluginInstance(plugin, conn)
        vm = inst.vms["p"]
        assert vm.instruction_budget == 777
        assert vm.helper_call_budget == 11

    def test_zero_means_host_default(self):
        from repro.vm import DEFAULT_FUEL, DEFAULT_HELPER_BUDGET

        conn = make_conn()
        inst = PluginInstance(Plugin("org.x.d", [
            Pluglet("p", "packet_sent_event", "post", assemble("exit")),
        ]), conn)
        vm = inst.vms["p"]
        assert vm.instruction_budget == DEFAULT_FUEL
        assert vm.helper_call_budget == DEFAULT_HELPER_BUDGET

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Pluglet("p", "op", "post", assemble("exit"), fuel=-1)
