"""FEC plugin tests: GF(256) codes and the framework (§4.4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PluginInstance
from repro.netsim import Simulator, symmetric_topology
from repro.plugins.fec import (
    CODES,
    FecIdFrame,
    FecRepairFrame,
    build_fec_plugin,
    gf_div,
    gf_inv,
    gf_mul,
)
from repro.quic import ClientEndpoint, ServerEndpoint
from repro.quic.wire import Buffer


class TestGf256:
    def test_multiplicative_identity(self):
        for a in (1, 7, 100, 255):
            assert gf_mul(a, 1) == a

    def test_zero_annihilates(self):
        assert gf_mul(0, 55) == 0
        assert gf_mul(55, 0) == 0

    def test_every_nonzero_invertible(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_division(self):
        assert gf_div(gf_mul(7, 9), 9) == 7

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_distributive(self, a, b, c):
        left = gf_mul(a, b ^ c)
        right = gf_mul(a, b) ^ gf_mul(a, c)
        assert left == right

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)


class TestXorCode:
    def test_single_loss_recovery(self):
        code = CODES["xor"]
        window = [b"alpha", b"bravo-longer", b"c"]
        rs = code.encode(window, 0, seed=1)
        for lost in range(3):
            damaged = list(window)
            damaged[lost] = None
            assert code.recover(damaged, [(0, rs)], seed=1) == window

    def test_double_loss_unrecoverable(self):
        code = CODES["xor"]
        window = [b"a", b"b", b"c"]
        rs = code.encode(window, 0, seed=1)
        assert code.recover([None, None, b"c"], [(0, rs)], seed=1) is None

    def test_no_loss_passthrough(self):
        code = CODES["xor"]
        window = [b"a", b"b"]
        assert code.recover(window, [], seed=1) == window


class TestRlcCode:
    def test_multi_loss_recovery(self):
        code = CODES["rlc"]
        rng = random.Random(3)
        window = [bytes(rng.randrange(256) for _ in range(rng.randrange(1, 100)))
                  for _ in range(12)]
        repairs = [(i, code.encode(window, i, seed=9)) for i in range(5)]
        damaged = list(window)
        for i in (0, 3, 7, 11):
            damaged[i] = None
        assert code.recover(damaged, repairs[:4], seed=9) == window

    def test_insufficient_repairs(self):
        code = CODES["rlc"]
        window = [b"aa", b"bb", b"cc"]
        repairs = [(0, code.encode(window, 0, seed=2))]
        assert code.recover([None, None, b"cc"], repairs, seed=2) is None

    def test_seed_mismatch_fails_or_corrupts_detectably(self):
        code = CODES["rlc"]
        window = [b"aaaa", b"bbbb", b"cccc"]
        repairs = [(i, code.encode(window, i, seed=5)) for i in range(2)]
        out = code.recover([None, None, b"cccc"], repairs, seed=6)
        assert out != window  # wrong coefficients cannot reproduce

    @given(st.integers(1, 8), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_recover_any_loss_pattern(self, n_lost, seed):
        code = CODES["rlc"]
        rng = random.Random(seed)
        window = [bytes(rng.randrange(256) for _ in range(rng.randrange(1, 60)))
                  for _ in range(10)]
        n_lost = min(n_lost, 8)
        repairs = [(i, code.encode(window, i, seed=seed)) for i in range(n_lost)]
        damaged = list(window)
        for i in rng.sample(range(10), n_lost):
            damaged[i] = None
        recovered = code.recover(damaged, repairs, seed=seed)
        # RLC with random coefficients is MDS-like w.h.p.; rank failures
        # return None rather than corrupt data.
        assert recovered is None or recovered == window


class TestFrames:
    def test_fec_id_roundtrip(self):
        frame = FecIdFrame(window_id=3, protected_pns=[10, 11, 13, 20])
        buf = Buffer(frame.to_bytes())
        parsed = FecIdFrame.parse(buf, buf.pull_varint())
        assert parsed.window_id == 3
        assert parsed.protected_pns == [10, 11, 13, 20]

    def test_repair_roundtrip(self):
        frame = FecRepairFrame(window_id=1, ecc=1, rs_index=2, seed=42,
                               total_len=1200, offset=600, payload=b"R" * 600)
        buf = Buffer(frame.to_bytes())
        parsed = FecRepairFrame.parse(buf, buf.pull_varint())
        assert (parsed.window_id, parsed.ecc, parsed.rs_index) == (1, 1, 2)
        assert (parsed.seed, parsed.total_len, parsed.offset) == (42, 1200, 600)
        assert parsed.payload == b"R" * 600

    def test_fec_frames_not_retransmittable(self):
        assert not FecIdFrame().retransmittable
        assert not FecRepairFrame().retransmittable


def run_fec_transfer(size, ecc="rlc", mode="full", loss=4, d=150, bw=2,
                     seed=11, use_fec=True):
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=d, bw_mbps=bw, loss_pct=loss, seed=seed)
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    instances = []
    if use_fec:
        ci = PluginInstance(build_fec_plugin(ecc, mode), client.conn)
        ci.attach()
        instances.append(ci)
    state = {}

    def on_conn(conn):
        if use_fec:
            si = PluginInstance(build_fec_plugin(ecc, mode), conn)
            si.attach()
            instances.append(si)
        state["sconn"] = conn

    server.on_connection = on_conn
    client.connect()
    done = [False]
    assert sim.run_until(
        lambda: client.conn.is_established and "sconn" in state, timeout=10)
    state["sconn"].on_stream_data = lambda sid, d2, fin: done.__setitem__(0, fin)
    t0 = sim.now
    sid = client.conn.create_stream()
    client.conn.send_stream_data(sid, b"f" * size, fin=True)
    client.pump()
    assert sim.run_until(lambda: done[0], timeout=600)
    return sim.now - t0, instances


class TestFramework:
    def test_transfer_completes_with_fec(self):
        for ecc in ("xor", "rlc"):
            for mode in ("full", "eos"):
                dct, _ = run_fec_transfer(60_000, ecc=ecc, mode=mode)
                assert dct > 0

    def test_receiver_recovers_lost_packets(self):
        recovered_any = 0
        for seed in (11, 12, 13, 14):
            _, instances = run_fec_transfer(100_000, seed=seed)
            receiver = instances[-1]
            recovered_any += receiver.runtime.fec_state.recovered_total
        assert recovered_any > 0

    def test_recovered_packets_not_retransmitted(self):
        """A recovered packet is ACKed, so the sender's spurious
        retransmission is avoided — visible as the receiver processing
        fewer duplicate packets."""
        _, instances = run_fec_transfer(100_000, seed=12)
        receiver = instances[-1]
        if receiver.runtime.fec_state.recovered_total:
            sconn = receiver.conn
            # Recovered pns were marked received.
            assert sconn.stats["packets_received"] > 0

    def test_no_fec_frames_without_losses_harmless(self):
        dct, instances = run_fec_transfer(30_000, loss=0)
        assert instances[-1].runtime.fec_state.recovered_total == 0

    def test_external_recovered_count_op(self):
        _, instances = run_fec_transfer(100_000, seed=13)
        receiver = instances[-1]
        count = receiver.conn.run_external_protoop("fec_recovered_count")
        assert count == receiver.runtime.fec_state.recovered_total

    def test_eos_sends_fewer_repair_symbols_than_full(self):
        _, full = run_fec_transfer(150_000, mode="full", loss=0)
        _, eos = run_fec_transfer(150_000, mode="eos", loss=0)
        full_windows = full[0].runtime.fec_state.window_counter
        eos_windows = eos[0].runtime.fec_state.window_counter
        assert eos_windows < full_windows

    def test_xor_repair_budget_is_one(self):
        plugin = build_fec_plugin("xor", "full")
        # attach to a dummy conn to materialize state
        from repro.quic import QuicConfiguration
        from repro.quic.connection import QuicConnection

        conn = QuicConnection(QuicConfiguration())
        inst = PluginInstance(plugin, conn)
        assert inst.runtime.fec_state.repair == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            build_fec_plugin("reed-solomon", "full")
        with pytest.raises(ValueError):
            build_fec_plugin("rlc", "middle")
