"""Protocol operation table tests: anchors, parameters, loop detection."""

import pytest

from repro.core.protoop import Anchor, ProtoopError, ProtoopTable
from repro.quic.errors import TransportErrorCode


class FakeConn:
    pass


CONN = FakeConn()


def make_table():
    return ProtoopTable()


def test_register_and_run_default():
    t = make_table()
    t.register("double", lambda conn, x: x * 2)
    assert t.run(CONN, "double", None, 21) == 42


def test_unknown_protoop_raises():
    t = make_table()
    with pytest.raises(ProtoopError):
        t.run(CONN, "nope", None)


def test_parameterized_dispatch():
    t = make_table()
    t.register("process_frame", lambda conn, f: "ack", param="ACK", parameterized=True)
    t.register("process_frame", lambda conn, f: "stream", param="STREAM", parameterized=True)
    assert t.run(CONN, "process_frame", "ACK", object()) == "ack"
    assert t.run(CONN, "process_frame", "STREAM", object()) == "stream"


def test_duplicate_default_rejected():
    t = make_table()
    t.register("op", lambda conn: 1)
    with pytest.raises(ValueError):
        t.register("op", lambda conn: 2)


def test_param_on_unparameterized_rejected():
    t = make_table()
    with pytest.raises(ValueError):
        t.register("op", lambda conn: 1, param="X")


def test_replace_overrides_default():
    t = make_table()
    t.register("op", lambda conn: "builtin")
    t.attach("op", Anchor.REPLACE, lambda conn: "pluglet")
    assert t.run(CONN, "op", None) == "pluglet"


def test_second_replace_rejected():
    """§2.2: at most one pluglet can replace a given protocol operation."""
    t = make_table()
    t.register("op", lambda conn: "builtin")
    t.attach("op", Anchor.REPLACE, lambda conn: "first")
    with pytest.raises(ProtoopError) as exc:
        t.attach("op", Anchor.REPLACE, lambda conn: "second")
    assert exc.value.code == TransportErrorCode.PLUGIN_VALIDATION_FAILED


def test_replace_per_parameter_independent():
    t = make_table()
    t.register("pf", lambda conn, f: "a", param="A", parameterized=True)
    t.register("pf", lambda conn, f: "b", param="B", parameterized=True)
    t.attach("pf", Anchor.REPLACE, lambda conn, f: "A'", param="A")
    assert t.run(CONN, "pf", "A", None) == "A'"
    assert t.run(CONN, "pf", "B", None) == "b"


def test_pre_post_observers_fire_in_order():
    t = make_table()
    events = []
    t.register("op", lambda conn, x: events.append("body") or x + 1)
    t.attach("op", Anchor.PRE, lambda conn, args: events.append(("pre", args)))
    t.attach("op", Anchor.POST, lambda conn, args, res: events.append(("post", res)))
    result = t.run(CONN, "op", None, 1)
    assert result == 2
    assert events == [("pre", (1,)), "body", ("post", 2)]


def test_multiple_passive_pluglets_allowed():
    """§2.2: any number of pre and post pluglets can be inserted."""
    t = make_table()
    t.register("op", lambda conn: None)
    hits = []
    for i in range(5):
        t.attach("op", Anchor.PRE, lambda conn, args, i=i: hits.append(i))
    t.run(CONN, "op", None)
    assert hits == [0, 1, 2, 3, 4]


def test_detach_removes_observer():
    t = make_table()
    t.register("op", lambda conn: None)
    hits = []
    obs = lambda conn, args: hits.append(1)
    t.attach("op", Anchor.PRE, obs)
    t.detach("op", Anchor.PRE, obs)
    t.run(CONN, "op", None)
    assert hits == []


def test_detach_replace_restores_default():
    t = make_table()
    t.register("op", lambda conn: "builtin")
    repl = lambda conn: "pluglet"
    t.attach("op", Anchor.REPLACE, repl)
    t.detach("op", Anchor.REPLACE, repl)
    assert t.run(CONN, "op", None) == "builtin"


def test_new_protoop_via_attach():
    """§2.3: plugins can provide protocol operations absent from the
    original implementation."""
    t = make_table()
    t.attach("brand_new_op", Anchor.REPLACE, lambda conn, x: x * 3)
    assert t.run(CONN, "brand_new_op", None, 3) == 9


def test_new_parameter_value_via_attach():
    t = make_table()
    t.register("pf", lambda conn: "known", param="K", parameterized=True)
    t.attach("pf", Anchor.REPLACE, lambda conn: "new!", param="N")
    assert t.run(CONN, "pf", "N") == "new!"


def test_empty_anchor_declaration_runs_observers_only():
    t = make_table()
    t.declare("packet_lost_event")
    hits = []
    t.attach("packet_lost_event", Anchor.POST, lambda conn, args, res: hits.append(args))
    assert t.run(CONN, "packet_lost_event", None, "pkt") is None
    assert hits == [("pkt",)]


def test_loop_detection_direct_recursion():
    t = make_table()
    t.register("a", lambda conn: t.run(conn, "a", None))
    with pytest.raises(ProtoopError) as exc:
        t.run(CONN, "a", None)
    assert exc.value.code == TransportErrorCode.PLUGIN_LOOP_DETECTED


def test_loop_detection_mutual_recursion():
    """Figure 3d: combining two legitimate plugins can create a B->C->B
    loop, which must be detected at run time."""
    t = make_table()
    t.register("A", lambda conn: t.run(conn, "B", None))
    t.register("B", lambda conn: "B done")
    t.register("C", lambda conn: t.run(conn, "B", None))
    # plugin p1 makes B call C; plugin p2 makes C call B (via replace).
    t.attach("B", Anchor.REPLACE, lambda conn: t.run(conn, "C", None))
    with pytest.raises(ProtoopError) as exc:
        t.run(CONN, "A", None)
    assert exc.value.code == TransportErrorCode.PLUGIN_LOOP_DETECTED


def test_acyclic_nested_calls_allowed():
    t = make_table()
    t.register("outer", lambda conn: t.run(conn, "inner", None) + 1)
    t.register("inner", lambda conn: 41)
    assert t.run(CONN, "outer", None) == 42


def test_sequential_calls_to_same_op_allowed():
    t = make_table()
    calls = []
    t.register("op", lambda conn: calls.append(1))
    t.run(CONN, "op", None)
    t.run(CONN, "op", None)
    assert len(calls) == 2


def test_call_stack_unwinds_after_error():
    t = make_table()

    def boom(conn):
        raise RuntimeError("inner failure")

    t.register("op", boom)
    with pytest.raises(RuntimeError):
        t.run(CONN, "op", None)
    # The op is callable again: the stack unwound.
    t.detach("op", Anchor.REPLACE, boom)
    with pytest.raises(RuntimeError):
        t.run(CONN, "op", None)


def test_external_op_blocked_from_protocol():
    """§2.4: external protoops are only executable by the application."""
    t = make_table()
    t.register("send_message", lambda conn, m: f"queued {m}", external=True)
    assert t.run_external(CONN, "send_message", None, "x") == "queued x"
    with pytest.raises(ProtoopError):
        t.run(CONN, "send_message", None, "x")


def test_external_op_not_callable_from_internal_op():
    t = make_table()
    t.register("ext", lambda conn: "x", external=True)
    t.register("internal", lambda conn: t.run(conn, "ext", None))
    with pytest.raises(ProtoopError):
        t.run(CONN, "internal", None)


def test_counts():
    t = make_table()
    t.register("a", lambda conn: None)
    t.register("pf", lambda conn: None, param="X", parameterized=True)
    t.declare("evt")
    assert t.operation_count() == 3
    assert t.parameterized_count() == 1
    assert t.names == ["a", "evt", "pf"]


def test_run_counter_increments():
    t = make_table()
    t.register("op", lambda conn: None)
    t.run(CONN, "op", None)
    t.run(CONN, "op", None)
    assert t.runs == 2
