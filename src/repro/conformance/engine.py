"""The conformance engine: sweep one scenario across execution modes,
apply the oracle catalog, and package failures as repro files.

The flow for one scenario::

    reports  = [run_scenario(s, mode) for mode in modes]
    failures = per-run oracles + cross-run oracles
               (+ observer-transparency baseline when applicable)

A failing verdict carries everything needed to reproduce: the scenario
(pure data), the mode list, and the failures observed.  The CLI feeds
failing scenarios to the shrinker and saves the minimized form via
:func:`save_repro`; :func:`load_repro` replays it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .oracles import OracleFailure, check_cross, check_run, check_transparency
from .plugins import OBSERVER_PLUGINS
from .runner import RunReport, run_scenario
from .scenario import ALL_MODES, Mode, Scenario

REPRO_SCHEMA = "pquic-conformance-repro-v1"


@dataclass
class ScenarioVerdict:
    scenario: Scenario
    modes: Tuple[Mode, ...]
    reports: dict = field(default_factory=dict)  # mode name -> RunReport
    failures: List[OracleFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    @property
    def runs(self) -> int:
        return len(self.reports)


def run_conformance(scenario: Scenario,
                    modes: Sequence[Mode] = ALL_MODES,
                    transparency: bool = True) -> ScenarioVerdict:
    """Run ``scenario`` under every mode and evaluate every oracle."""
    modes = tuple(modes)
    verdict = ScenarioVerdict(scenario=scenario, modes=modes)
    reports: List[RunReport] = []
    for mode in modes:
        report = run_scenario(scenario, mode)
        verdict.reports[mode.name] = report
        reports.append(report)
        verdict.failures.extend(check_run(report, scenario))
    verdict.failures.extend(check_cross(reports, scenario))
    if (transparency and scenario.plugins
            and all(p in OBSERVER_PLUGINS for p in scenario.plugins)):
        bare = run_scenario(scenario.with_(plugins=()), modes[0])
        verdict.reports[f"{modes[0].name}/bare"] = bare
        verdict.failures.extend(
            check_transparency(reports[0], bare, scenario))
    return verdict


def run_suite(scenarios: Sequence[Scenario],
              modes: Sequence[Mode] = ALL_MODES) -> List[ScenarioVerdict]:
    return [run_conformance(scenario, modes) for scenario in scenarios]


# --- repro files -----------------------------------------------------------

def repro_dict(scenario: Scenario, modes: Sequence[Mode],
               failures: Sequence[OracleFailure] = (),
               note: Optional[str] = None) -> dict:
    return {
        "schema": REPRO_SCHEMA,
        "scenario": scenario.to_dict(),
        "modes": [mode.name for mode in modes],
        "failures": [failure.format() for failure in failures],
        "note": note or "",
    }


def save_repro(path, scenario: Scenario, modes: Sequence[Mode],
               failures: Sequence[OracleFailure] = (),
               note: Optional[str] = None) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(
        repro_dict(scenario, modes, failures, note), indent=2) + "\n")
    return path


def load_repro(path) -> Tuple[Scenario, Tuple[Mode, ...]]:
    data = json.loads(Path(path).read_text())
    if data.get("schema") != REPRO_SCHEMA:
        raise ValueError(
            f"{path}: not a conformance repro (schema={data.get('schema')!r})")
    scenario = Scenario.from_dict(data["scenario"])
    modes = tuple(Mode.parse(name) for name in data.get("modes", []))
    return scenario, modes or ALL_MODES
