"""Named conformance suites.

A suite is just a list of :class:`Scenario` values; the declarative
scenario format lets a few dozen lines here compose the existing netsim
topologies, :class:`FaultInjector` primitives and bundled plugins into
full mode-matrix sweeps.  ``smoke`` is the blocking CI gate; ``faults``
leans harder on the fault space; ``tiny`` exists for fast unit tests.
Random exploration is a seeded sweep (``repro conform --cases N --seed
S``), not a suite — see :func:`repro.conformance.random_scenarios`.
"""

from __future__ import annotations

from typing import Dict, List

from .scenario import FaultEvent, Scenario, Topology, Workload


def smoke_suite() -> List[Scenario]:
    return [
        Scenario(
            name="clean-baseline",
            workload=Workload(size=24_000),
            topology=Topology(d_ms=10.0, bw_mbps=20.0),
            seed=3,
        ),
        Scenario(
            name="lossy-monitoring",
            workload=Workload(size=30_000),
            topology=Topology(d_ms=10.0, bw_mbps=20.0, loss_pct=1.0),
            plugins=("monitoring",),
            seed=5,
        ),
        Scenario(
            name="chaos-trio",
            workload=Workload(size=24_000),
            topology=Topology(d_ms=5.0, bw_mbps=20.0),
            plugins=("monitoring",),
            faults=(
                FaultEvent(kind="corrupt", rate=0.005),
                FaultEvent(kind="duplicate", rate=0.01),
                FaultEvent(kind="reorder", rate=0.02),
            ),
            seed=7,
        ),
        Scenario(
            name="flap-ccontrol",
            workload=Workload(size=24_000),
            topology=Topology(d_ms=10.0, bw_mbps=10.0),
            plugins=("ccontrol",),
            faults=(FaultEvent(kind="flap", at=0.3, duration=0.15),),
            seed=11,
        ),
        Scenario(
            name="fec-lossy",
            workload=Workload(size=20_000),
            topology=Topology(d_ms=10.0, bw_mbps=10.0, loss_pct=3.0),
            plugins=("fec-xor",),
            seed=13,
        ),
        Scenario(
            # A deliberately conflicting plugin pair: both replace the
            # same protoop, so the second must be rejected at attach time
            # — by the conflict analyzer (PRE200) in analysis modes, by
            # the protoop table otherwise.  The parity oracles check the
            # rejected set (and everything else) is identical in all 8
            # kill-switch modes: the checker changes diagnostics, never
            # semantics.
            name="conflict-pair-rejected",
            workload=Workload(size=16_000),
            topology=Topology(d_ms=10.0, bw_mbps=20.0),
            plugins=("monitoring", "x-conflict-a", "x-conflict-b"),
            seed=37,
        ),
        Scenario(
            name="nat-rebind",
            workload=Workload(size=24_000),
            topology=Topology(kind="nat", d_ms=10.0, bw_mbps=10.0),
            plugins=("monitoring",),
            faults=(FaultEvent(kind="nat_rebind", at=0.25),),
            seed=17,
        ),
        Scenario(
            # 2% ambient loss on a long-ish path: exercises the RFC 9002
            # recovery machinery end to end (PTO probes, spurious-loss
            # undo, persistent-congestion checks) and pins the new
            # recovery stats/metrics into the cross-mode parity oracles.
            name="pto-probe-lossy",
            workload=Workload(size=28_000),
            topology=Topology(d_ms=25.0, bw_mbps=10.0, loss_pct=2.0),
            plugins=("monitoring",),
            seed=41,
        ),
    ]


def faults_suite() -> List[Scenario]:
    """Heavier fault pressure than smoke; the nightly sweep's fixed half."""
    return [
        Scenario(
            name="corrupt-heavy",
            workload=Workload(size=40_000),
            topology=Topology(d_ms=10.0, bw_mbps=20.0, loss_pct=1.0),
            plugins=("monitoring",),
            faults=(FaultEvent(kind="corrupt", rate=0.03),),
            seed=19,
        ),
        Scenario(
            name="dup-reorder-storm",
            workload=Workload(size=40_000),
            topology=Topology(d_ms=5.0, bw_mbps=20.0),
            plugins=("fec-xor",),
            faults=(
                FaultEvent(kind="duplicate", rate=0.05),
                FaultEvent(kind="reorder", rate=0.05, delay=0.03),
            ),
            seed=23,
        ),
        Scenario(
            name="double-flap",
            workload=Workload(size=32_000),
            topology=Topology(d_ms=10.0, bw_mbps=10.0),
            faults=(
                FaultEvent(kind="flap", at=0.2, duration=0.1),
                FaultEvent(kind="flap", at=0.8, duration=0.1),
            ),
            seed=29,
        ),
        Scenario(
            name="nat-rebind-lossy",
            workload=Workload(size=32_000),
            topology=Topology(kind="nat", d_ms=10.0, bw_mbps=10.0,
                              loss_pct=1.0),
            plugins=("monitoring",),
            faults=(
                FaultEvent(kind="nat_rebind", at=0.2),
                FaultEvent(kind="reorder", rate=0.02),
            ),
            seed=31,
        ),
    ]


def tiny_suite() -> List[Scenario]:
    """One minimal scenario; unit tests and CLI smoke use it."""
    return [
        Scenario(
            name="tiny",
            workload=Workload(size=8_000),
            topology=Topology(d_ms=5.0, bw_mbps=50.0),
            plugins=("monitoring",),
            seed=2,
        ),
    ]


SUITES: Dict[str, object] = {
    "smoke": smoke_suite,
    "faults": faults_suite,
    "tiny": tiny_suite,
}


def load_suite(name: str) -> List[Scenario]:
    try:
        factory = SUITES[name]
    except KeyError:
        raise ValueError(f"unknown suite {name!r} "
                         f"(known: {', '.join(sorted(SUITES))})") from None
    return factory()
