"""Plugin sets for conformance scenarios.

Scenarios name plugins; this registry resolves names to zero-argument
builders so every run (and every mode) gets fresh instances.  It spans
the bundled production plugins plus *test-only* plugins (``x-`` prefix)
that exist to prove the oracles can catch what they claim to catch —
most importantly :func:`build_jit_divergent_plugin`, a pluglet whose
bytecode is deliberately built differently when the JIT is enabled, the
exact class of implementation divergence the cross-mode parity oracles
must flag.
"""

from __future__ import annotations

from typing import Callable, Dict

#: Plugins that only observe (pre/post anchors, no wire or behavior
#: changes).  For scenarios using only observers the engine additionally
#: checks *transparency*: a run with the plugins stripped must be
#: bit-identical to the plugged run.
OBSERVER_PLUGINS = frozenset({"monitoring"})

#: Deterministic plugins safe for random sweeps (no extra topology or
#: application requirements).
SWEEP_PLUGINS = ("monitoring", "fec-xor", "ccontrol", "ecn")

DIVERGENT_PLUGIN_NAME = "org.conformance.jit-divergent"

#: Opaque-memory area the divergent pluglet counts in.
_DIVERGE_AREA_ID = 7
_DIVERGE_AREA_SIZE = 16


def build_jit_divergent_plugin():
    """A test-only plugin that misbehaves *only under the JIT*.

    The builder consults the ``REPRO_JIT`` kill switch and compiles a
    per-packet counter pluglet whose loop runs three times under the JIT
    but once under the interpreter.  Delivered bytes stay identical —
    the divergence is invisible to an end-to-end check — but per-pluglet
    fuel (and the counter it leaves in plugin memory) differ between
    modes, which the cross-mode parity oracle must catch."""
    from repro.core.plugin import Plugin, Pluglet
    from repro.vm.jit import jit_enabled_by_env

    rounds = 3 if jit_enabled_by_env() else 1
    count = Pluglet.from_source(
        "diverge_count", "packet_received_event", "post",
        f"""
def diverge_count(epoch, path_id, pn):
    st = get_opaque_data({_DIVERGE_AREA_ID}, {_DIVERGE_AREA_SIZE})
    i = 0
    while i < {rounds}:
        mem64[st] = mem64[st] + 1
        i = i + 1
""",
    )
    return Plugin(DIVERGENT_PLUGIN_NAME, [count])


def _build_conflict_plugin(suffix: str):
    """One half of a deliberately conflicting pair: both halves replace
    the same protoop, so whichever attaches second must be rejected —
    by the conflict analyzer (``PRE200``) when ``REPRO_ANALYSIS=1``, by
    the protoop table's already-replaced check when it is off.  The
    conformance suite asserts the rejection is mode-independent."""
    from repro.core.plugin import Plugin, Pluglet

    pluglet = Pluglet.from_source(
        f"claim_{suffix}", "conformance_conflict_op", "replace",
        f"""
def claim_{suffix}():
    return {ord(suffix)}
""",
    )
    return Plugin(f"org.conformance.conflict-{suffix}", [pluglet])


def _builtin(module: str, name: str, *args) -> Callable:
    def build():
        import importlib

        return getattr(importlib.import_module(module), name)(*args)

    return build


#: name -> zero-argument builder.
PLUGIN_BUILDERS: Dict[str, Callable] = {
    "monitoring": _builtin("repro.plugins.monitoring", "build_monitoring_plugin"),
    "fec-xor": _builtin("repro.plugins.fec", "build_fec_plugin", "xor", "full"),
    "fec-rlc": _builtin("repro.plugins.fec", "build_fec_plugin", "rlc", "full"),
    "ccontrol": _builtin("repro.plugins.ccontrol", "build_ccontrol_plugin"),
    "ecn": _builtin("repro.plugins.ecn", "build_ecn_plugin"),
    # Test-only (x- prefix): never part of shipped suites' green paths.
    "x-jit-divergent": build_jit_divergent_plugin,
    "x-conflict-a": lambda: _build_conflict_plugin("a"),
    "x-conflict-b": lambda: _build_conflict_plugin("b"),
}


def build_plugin(name: str):
    try:
        builder = PLUGIN_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown conformance plugin {name!r} "
            f"(known: {', '.join(sorted(PLUGIN_BUILDERS))})") from None
    return builder()
