"""Declarative conformance scenarios and execution modes.

A :class:`Scenario` is pure data — topology, workload, plugin set, fault
schedule, seed — with a stable JSON form, so a failing case can be saved
as a self-contained repro file and replayed bit-for-bit later.  A
:class:`Mode` pins the three kill-switched fast paths (``REPRO_JIT``,
``REPRO_BATCH``, ``REPRO_ANALYSIS``); the engine runs every scenario
across a cross-product of modes and compares the runs.

Modes that share a *timing class* (the batch flag, which changes
packetization and therefore simulated time) must produce bit-identical
runs; modes in different timing classes must still deliver identical
bytes and satisfy every per-run invariant.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import random
from dataclasses import asdict, dataclass, field, replace
from typing import Optional, Sequence

#: Fault kinds expressed as per-datagram rates on the bottleneck link(s).
RATE_FAULTS = ("corrupt", "duplicate", "reorder")
#: Fault kinds scheduled at an absolute simulation time.
TIMED_FAULTS = ("flap", "nat_rebind")
FAULT_KINDS = RATE_FAULTS + TIMED_FAULTS


@dataclass(frozen=True)
class Mode:
    """One point in the kill-switch cross-product."""

    jit: bool = True
    batch: bool = True
    analysis: bool = True

    @property
    def name(self) -> str:
        return f"J{int(self.jit)}-B{int(self.batch)}-A{int(self.analysis)}"

    @property
    def timing_class(self) -> str:
        """Runs in the same timing class must be bit-identical; the
        batched datapath changes packetization (and thus simulated
        clocks), the JIT and the analyzer may not."""
        return f"B{int(self.batch)}"

    def env(self) -> dict:
        return {
            "REPRO_JIT": "1" if self.jit else "0",
            "REPRO_BATCH": "1" if self.batch else "0",
            "REPRO_ANALYSIS": "1" if self.analysis else "0",
        }

    @classmethod
    def parse(cls, name: str) -> "Mode":
        """Inverse of :attr:`name` (``J1-B0-A1``)."""
        parts = name.strip().upper().split("-")
        flags = {}
        for part in parts:
            if len(part) != 2 or part[0] not in "JBA" or part[1] not in "01":
                raise ValueError(f"bad mode component {part!r} in {name!r}")
            flags[{"J": "jit", "B": "batch", "A": "analysis"}[part[0]]] = part[1] == "1"
        return cls(**flags)


#: The full kill-switch cross-product, reference mode (all on) first.
ALL_MODES = tuple(
    Mode(jit=j, batch=b, analysis=a)
    for j, b, a in itertools.product((True, False), repeat=3)
)
#: A cheap two-mode matrix (JIT vs interpreter) for shrinking, where the
#: predicate is re-evaluated dozens of times.
FAST_MODES = (Mode(), Mode(jit=False))


def parse_modes(spec: str) -> tuple:
    """Parse a comma-separated ``--modes`` list like ``J1-B1-A1,J0-B1-A1``."""
    modes = tuple(Mode.parse(part) for part in spec.split(",") if part.strip())
    if not modes:
        raise ValueError(f"no modes in {spec!r}")
    return modes


@dataclass(frozen=True)
class FaultEvent:
    """One entry of a fault schedule.

    ``corrupt``/``duplicate``/``reorder`` contribute ``rate`` (summed per
    kind, capped at 1.0) to the link-level :class:`FaultInjector`;
    ``flap`` black-holes the link for ``[at, at + duration)``;
    ``nat_rebind`` flushes the NAT binding table at ``at`` (``nat``
    topologies only)."""

    kind: str
    rate: float = 0.0
    at: float = 0.0
    duration: float = 0.0
    delay: float = 0.05

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {FAULT_KINDS})")
        if self.kind in RATE_FAULTS and not 0.0 < self.rate <= 1.0:
            raise ValueError(f"{self.kind} fault needs rate in (0, 1]: {self.rate}")
        if self.kind == "flap" and self.duration <= 0:
            raise ValueError("flap fault needs duration > 0")


@dataclass(frozen=True)
class Topology:
    """The simulated network: ``symmetric`` (the paper's Figure-7 lab,
    both paths sharing {d, bw, l}) or ``nat`` (client behind an
    address-translating hop)."""

    kind: str = "symmetric"
    d_ms: float = 10.0
    bw_mbps: float = 20.0
    loss_pct: float = 0.0

    def __post_init__(self):
        if self.kind not in ("symmetric", "nat"):
            raise ValueError(f"unknown topology kind {self.kind!r}")


@dataclass(frozen=True)
class Workload:
    """One GET-style bulk download of ``size`` seeded-pattern bytes."""

    size: int = 30_000

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError("workload size must be > 0")


@dataclass(frozen=True)
class Scenario:
    name: str
    workload: Workload = field(default_factory=Workload)
    topology: Topology = field(default_factory=Topology)
    plugins: tuple = ()
    faults: tuple = ()
    seed: int = 1
    timeout: float = 120.0

    def __post_init__(self):
        object.__setattr__(self, "plugins", tuple(self.plugins))
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if fault.kind == "nat_rebind" and self.topology.kind != "nat":
                raise ValueError(
                    "nat_rebind faults require a 'nat' topology")

    # --- the expected payload --------------------------------------------

    def expected_payload(self) -> bytes:
        """The seeded pseudo-random response body.  Patterned (not
        constant) bytes so the delivered-byte oracle catches reassembly
        bugs, not just length bugs."""
        return random.Random(self.seed ^ 0x5EED).randbytes(self.workload.size)

    def expected_digest(self) -> str:
        return hashlib.sha256(self.expected_payload()).hexdigest()

    # --- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        return cls(
            name=data["name"],
            workload=Workload(**data.get("workload", {})),
            topology=Topology(**data.get("topology", {})),
            plugins=tuple(data.get("plugins", ())),
            faults=tuple(FaultEvent(**f) for f in data.get("faults", ())),
            seed=data.get("seed", 1),
            timeout=data.get("timeout", 120.0),
        )

    def key(self) -> str:
        """A canonical content key (used to deduplicate shrinker runs)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def with_(self, **changes) -> "Scenario":
        return replace(self, **changes)


def random_scenarios(seed: int, count: int,
                     plugin_pool: Optional[Sequence[str]] = None) -> list:
    """A seeded random sweep: ``count`` scenarios drawn deterministically
    from ``seed``, so a failing sweep is reproduced by its seed alone."""
    from .plugins import SWEEP_PLUGINS

    pool = list(plugin_pool if plugin_pool is not None else SWEEP_PLUGINS)
    rng = random.Random(seed)
    scenarios = []
    for index in range(count):
        kind = "nat" if rng.random() < 0.25 else "symmetric"
        topology = Topology(
            kind=kind,
            d_ms=rng.choice([2.5, 5.0, 10.0, 25.0]),
            bw_mbps=rng.choice([5.0, 10.0, 20.0]),
            loss_pct=rng.choice([0.0, 0.0, 0.5, 1.0, 2.0]),
        )
        plugins = tuple(sorted(rng.sample(pool, rng.randint(0, min(2, len(pool))))))
        faults = []
        for _ in range(rng.randint(0, 3)):
            kinds = list(RATE_FAULTS) + ["flap"]
            if kind == "nat":
                kinds.append("nat_rebind")
            fkind = rng.choice(kinds)
            if fkind in RATE_FAULTS:
                faults.append(FaultEvent(kind=fkind,
                                         rate=round(rng.uniform(0.002, 0.02), 4)))
            elif fkind == "flap":
                faults.append(FaultEvent(kind="flap",
                                         at=round(rng.uniform(0.1, 0.6), 3),
                                         duration=round(rng.uniform(0.05, 0.2), 3)))
            else:
                faults.append(FaultEvent(kind="nat_rebind",
                                         at=round(rng.uniform(0.1, 0.6), 3)))
        scenarios.append(Scenario(
            name=f"sweep-{seed}-{index}",
            workload=Workload(size=rng.randrange(8_000, 48_000, 1_000)),
            topology=topology,
            plugins=plugins,
            faults=tuple(faults),
            seed=rng.randrange(1, 10_000),
        ))
    return scenarios
