"""Delta-debugging shrinker: minimize a failing scenario.

Given a scenario whose conformance verdict fails, produce the smallest
scenario (fewest fault events, smallest workload, fewest plugins, least
topology noise) that *still* fails.  The result is what gets saved as a
repro file: a three-line scenario a human can stare at instead of a
hundred-event fault schedule.

The fault schedule is minimized with Zeller's ddmin; the workload size
by geometric descent; plugins and topology noise by greedy removal.
Every candidate evaluation is a full conformance sweep, so results are
cached by scenario content key and the whole procedure is deterministic:
the same failing scenario always shrinks to the same minimal form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from .engine import run_conformance
from .scenario import FAST_MODES, Mode, Scenario, Topology, Workload

#: Never shrink the workload below this (a transfer still has to happen).
MIN_WORKLOAD = 1_000


@dataclass
class ShrinkResult:
    original: Scenario
    minimal: Scenario
    #: Total predicate evaluations (cache misses), for test determinism.
    evaluations: int = 0
    #: The failures the minimal scenario produces.
    failures: list = field(default_factory=list)


def ddmin(items: List, still_fails: Callable[[List], bool]) -> List:
    """Zeller's minimizing delta debugging over a list of items:
    returns a subset that still fails and from which no chunk of any
    granularity can be removed without the failure disappearing."""
    if still_fails([]):
        return []
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        reduced = False
        for start in range(0, len(items), chunk):
            candidate = items[:start] + items[start + chunk:]
            if candidate != items and still_fails(candidate):
                items = candidate
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), 2 * n)
    return items


def shrink(scenario: Scenario,
           modes: Sequence[Mode] = FAST_MODES) -> ShrinkResult:
    """Minimize ``scenario`` while :func:`run_conformance` keeps failing.

    If the input does not fail under ``modes`` it is returned unchanged
    (``minimal == original``, no failures recorded)."""
    modes = tuple(modes)
    cache: dict = {}
    result = ShrinkResult(original=scenario, minimal=scenario)

    def fails(candidate: Scenario) -> bool:
        key = candidate.key()
        if key not in cache:
            result.evaluations += 1
            cache[key] = run_conformance(candidate, modes).failures
        return bool(cache[key])

    if not fails(scenario):
        return result
    current = scenario

    # 1. Minimize the fault schedule (the usual bulk of a sweep case).
    faults = ddmin(list(current.faults),
                   lambda fs: fails(current.with_(faults=tuple(fs))))
    current = current.with_(faults=tuple(faults))

    # 2. Shrink the workload geometrically, then probe the floor.
    size = current.workload.size
    while size // 2 >= MIN_WORKLOAD:
        candidate = current.with_(workload=Workload(size=size // 2))
        if not fails(candidate):
            break
        current = candidate
        size //= 2
    if size > MIN_WORKLOAD:
        candidate = current.with_(workload=Workload(size=MIN_WORKLOAD))
        if fails(candidate):
            current = candidate

    # 3. Drop plugins one at a time (innocent bystanders leave; the
    #    guilty plugin stays because removing it makes the run pass).
    for name in list(current.plugins):
        remaining = tuple(p for p in current.plugins if p != name)
        candidate = current.with_(plugins=remaining)
        if fails(candidate):
            current = candidate

    # 4. Quiet the topology: drop ambient loss if the failure survives.
    if current.topology.loss_pct > 0:
        candidate = current.with_(topology=Topology(
            kind=current.topology.kind,
            d_ms=current.topology.d_ms,
            bw_mbps=current.topology.bw_mbps,
            loss_pct=0.0))
        if fails(candidate):
            current = candidate

    result.minimal = current.with_(name=f"{scenario.name}.min")
    result.failures = list(cache[current.key()])
    return result
