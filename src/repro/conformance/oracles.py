"""The invariant oracle catalog.

Two layers:

* **per-run oracles** (:func:`check_run`) hold for every run in
  isolation — completion, delivered-byte digest, the send-side
  conservation ledger, trace-schema validity, metrics/stats agreement,
  shadow-encode cleanliness;
* **cross-run oracles** (:func:`check_cross`) compare the runs of one
  scenario across execution modes — delivered bytes must be identical
  everywhere, and runs in the same timing class (same ``REPRO_BATCH``)
  must be *bit-identical*: stats, per-pluglet invocation/fuel rows, host
  protoop dispatch counts, and the deterministic trace stream.

An oracle failure is data (:class:`OracleFailure`), never an exception:
the engine aggregates them and the shrinker minimizes the scenario that
produced them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .runner import RunReport
from .scenario import Scenario


@dataclass(frozen=True)
class OracleFailure:
    oracle: str
    mode: str
    detail: str

    def format(self) -> str:
        return f"{self.oracle}[{self.mode}]: {self.detail}"


def _fail(failures: list, oracle: str, mode: str, detail: str) -> None:
    failures.append(OracleFailure(oracle=oracle, mode=mode, detail=detail))


# --- per-run oracles -------------------------------------------------------

def check_run(report: RunReport, scenario: Scenario) -> List[OracleFailure]:
    failures: list = []
    mode = report.mode
    if report.error is not None:
        _fail(failures, "no-crash", mode, report.error)
        return failures
    if not report.completed:
        _fail(failures, "completion", mode,
              f"transfer incomplete: {report.received}/"
              f"{scenario.workload.size} bytes within {scenario.timeout}s")
        return failures
    if report.digest != scenario.expected_digest():
        _fail(failures, "delivered-bytes", mode,
              f"delivered payload digest {report.digest[:16]} != expected "
              f"{scenario.expected_digest()[:16]}")
    for side, ledger in report.ledger.items():
        accounted = ledger["acked"] + ledger["lost"] + ledger["in_flight"]
        if ledger["sent"] != accounted:
            _fail(failures, "conservation", mode,
                  f"{side}: packets_sent {ledger['sent']} != acked "
                  f"{ledger['acked']} + lost {ledger['lost']} + in_flight "
                  f"{ledger['in_flight']}")
    for side, stats in report.stats.items():
        for key in ("packets_sent", "packets_lost"):
            metric = report.metric_counters.get(f"{side}.{key}")
            if metric is not None and metric != stats[key]:
                _fail(failures, "metrics-agree", mode,
                      f"{side}.{key} metric {metric} != stats {stats[key]}")
        # The packet_received_event protoop (which feeds the metric) only
        # fires for fresh packets; duplicates are accounted as spurious.
        metric = report.metric_counters.get(f"{side}.packets_received")
        expected = stats["packets_received"] - stats["spurious_received"]
        if metric is not None and metric != expected:
            _fail(failures, "metrics-agree", mode,
                  f"{side}.packets_received metric {metric} != stats "
                  f"packets_received {stats['packets_received']} - spurious "
                  f"{stats['spurious_received']}")
    if report.schema_errors:
        _fail(failures, "trace-schema", mode,
              f"{len(report.schema_errors)} invalid trace event(s); first: "
              f"{report.schema_errors[0]}")
    if report.trace_events == 0:
        _fail(failures, "trace-schema", mode, "trace stream is empty")
    if report.shadow_mismatches:
        _fail(failures, "shadow-encode", mode,
              f"{report.shadow_mismatches} scatter-gather vs legacy "
              f"encoder mismatches")
    return failures


# --- cross-run oracles -----------------------------------------------------

#: Fields that must be bit-identical within a timing class.
_TIMING_CLASS_FIELDS = (
    ("stats", "per-side stats ledgers"),
    ("ledger", "send-side conservation samples"),
    ("pluglet_rows", "per-pluglet invocation/fuel rows"),
    ("protoop_runs", "host protoop dispatch counts"),
    ("metric_counters", "metrics counter snapshot"),
    ("trace_digest", "deterministic trace stream"),
    ("fault_stats", "fault injector decisions"),
    ("duration", "simulated completion time"),
    ("plugins_rejected", "attach-time plugin rejections"),
)


def _diff_dicts(a: dict, b: dict) -> str:
    keys = sorted(set(a) | set(b))
    for key in keys:
        if a.get(key) != b.get(key):
            return f"{key}: {a.get(key)!r} != {b.get(key)!r}"
    return "values differ"


def check_cross(reports: List[RunReport],
                scenario: Scenario) -> List[OracleFailure]:
    failures: list = []
    usable = [r for r in reports if r.error is None and r.completed]
    if len(usable) < 2:
        return failures

    reference = usable[0]
    for report in usable[1:]:
        if report.digest != reference.digest:
            _fail(failures, "cross-mode-bytes", report.mode,
                  f"delivered bytes differ from {reference.mode}: "
                  f"{report.digest[:16]} != {reference.digest[:16]}")

    by_class: dict = {}
    for report in usable:
        by_class.setdefault(report.timing_class, []).append(report)
    for timing_class, group in by_class.items():
        anchor = group[0]
        for report in group[1:]:
            for field_name, label in _TIMING_CLASS_FIELDS:
                mine = getattr(report, field_name)
                theirs = getattr(anchor, field_name)
                if mine == theirs:
                    continue
                if isinstance(mine, dict) and isinstance(theirs, dict):
                    flat_m = _flatten(mine)
                    flat_t = _flatten(theirs)
                    detail = _diff_dicts(flat_m, flat_t)
                else:
                    detail = f"{mine!r} != {theirs!r}"
                _fail(failures, "mode-parity", report.mode,
                      f"{label} diverge from {anchor.mode} within timing "
                      f"class {timing_class}: {detail}")
    return failures


def _flatten(tree: dict, prefix: str = "") -> dict:
    flat: dict = {}
    for key, value in tree.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, prefix=path + "."))
        else:
            flat[path] = value
    return flat


def check_transparency(plugged: RunReport, bare: RunReport,
                       scenario: Scenario) -> List[OracleFailure]:
    """Observer plugins must not change protocol behavior at all: the
    same scenario with the plugin set stripped must be bit-identical
    (Pluginizing QUIC's core safety claim, checked end to end)."""
    failures: list = []
    if bare.error is not None or not bare.completed:
        _fail(failures, "observer-transparency", plugged.mode,
              f"baseline (no plugins) run failed: {bare.error or 'incomplete'}")
        return failures
    if plugged.digest != bare.digest:
        _fail(failures, "observer-transparency", plugged.mode,
              "delivered bytes change when observer plugins attach")
    if plugged.stats != bare.stats:
        _fail(failures, "observer-transparency", plugged.mode,
              "connection stats change when observer plugins attach: " +
              _diff_dicts(_flatten(plugged.stats), _flatten(bare.stats)))
    if plugged.duration != bare.duration:
        _fail(failures, "observer-transparency", plugged.mode,
              f"completion time changes when observer plugins attach: "
              f"{plugged.duration!r} != {bare.duration!r}")
    return failures
