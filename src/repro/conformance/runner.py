"""Run one scenario under one execution mode and measure everything the
oracles need.

The runner is deliberately self-contained (it does not reuse the
experiment harness): conformance needs patterned payloads it can digest,
fault schedules wired into the topology, tracers/profilers/metrics on
*both* vantage points, and a send-side ledger sample taken before the
connection releases its recovery state.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Optional

from .plugins import build_plugin
from .scenario import Mode, RATE_FAULTS, Scenario

#: Trace categories excluded from the cross-run trace digest: profiler
#: export rows carry wall-clock times, which legitimately differ run to
#: run even when the simulation is bit-identical.
_NONDETERMINISTIC_TRACE_CATEGORIES = frozenset({"pre"})


@dataclass
class RunReport:
    """Everything one run exposes to the oracle catalog."""

    mode: str
    timing_class: str
    completed: bool = False
    received: int = 0
    digest: str = ""
    duration: Optional[float] = None
    #: Per-side ledgers: {"client"|"server": {...stats...}}
    stats: dict = field(default_factory=dict)
    #: Per-side send ledger sampled before close:
    #: {"client"|"server": {"sent", "acked", "lost", "in_flight"}}
    ledger: dict = field(default_factory=dict)
    #: "plugin/pluglet/protoop" -> {invocations, fuel, helper_calls, faults}
    pluglet_rows: dict = field(default_factory=dict)
    #: Host-side protoop dispatch counts (both vantage points merged).
    protoop_runs: dict = field(default_factory=dict)
    #: Registry counter snapshot: name -> value.
    metric_counters: dict = field(default_factory=dict)
    #: Schema violations found post-hoc in the recorded trace stream.
    schema_errors: list = field(default_factory=list)
    trace_events: int = 0
    #: Digest of the deterministic part of the trace stream.
    trace_digest: str = ""
    fault_stats: dict = field(default_factory=dict)
    shadow_mismatches: int = 0
    #: Plugin names refused at attach time (conflict analyzer or protoop
    #: table).  Rejection must be mode-independent, so this is part of
    #: the cross-mode parity fields; the *reason* text is not compared
    #: (the analyzer and the table word the same refusal differently).
    plugins_rejected: list = field(default_factory=list)
    #: Unexpected exception text (the run itself crashed).
    error: Optional[str] = None


class _EnvOverride:
    """Set mode kill switches for the duration of one run."""

    def __init__(self, env: dict):
        self.env = env
        self.saved: dict = {}

    def __enter__(self):
        for key, value in self.env.items():
            self.saved[key] = os.environ.get(key)
            os.environ[key] = value
        return self

    def __exit__(self, *exc):
        for key, value in self.saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        return False


def _ledger(conn) -> dict:
    """The send-side conservation sample: every packet ever sent is, at
    this instant, exactly one of acked / declared-lost / still-tracked."""
    in_flight = len(conn.initial_space.sent)
    in_flight += sum(len(path.space.sent) for path in conn.paths)
    return {
        "sent": conn.stats["packets_sent"],
        "acked": conn.stats["packets_acked"],
        "lost": conn.stats["packets_lost"],
        "in_flight": in_flight,
    }


def _build_injector(sim, scenario: Scenario):
    """Sum rate faults per kind and build the (single) injector; timed
    faults are scheduled onto it by :func:`run_scenario`."""
    from repro.netsim.faults import FaultInjector

    rates = {kind: 0.0 for kind in RATE_FAULTS}
    delay = 0.05
    for fault in scenario.faults:
        if fault.kind in RATE_FAULTS:
            rates[fault.kind] = min(1.0, rates[fault.kind] + fault.rate)
            if fault.kind == "reorder":
                delay = fault.delay
    return FaultInjector(
        sim, seed=scenario.seed,
        corrupt_rate=rates["corrupt"],
        duplicate_rate=rates["duplicate"],
        reorder_rate=rates["reorder"],
        reorder_delay=delay,
    )


def run_scenario(scenario: Scenario, mode: Mode) -> RunReport:
    report = RunReport(mode=mode.name, timing_class=mode.timing_class)
    with _EnvOverride(mode.env()):
        try:
            _run(scenario, report)
        except Exception as exc:  # noqa: BLE001 - a crash IS a finding
            report.error = f"{type(exc).__name__}: {exc}"
    return report


def _attach_plugins(conn, scenario: Scenario, report: RunReport) -> None:
    """Attach the scenario's plugins in declared order; a plugin the host
    refuses (inter-plugin conflict, protoop already replaced) degrades the
    run rather than crashing it, and its name is recorded for the parity
    oracles — rejection must not depend on the execution mode."""
    from repro.core import PluginInstance
    from repro.core.protoop import ProtoopError

    for name in scenario.plugins:
        try:
            PluginInstance(build_plugin(name), conn).attach()
        except ProtoopError:
            if name not in report.plugins_rejected:
                report.plugins_rejected.append(name)


def _run(scenario: Scenario, report: RunReport) -> None:
    from repro.netsim import Simulator, symmetric_topology
    from repro.netsim.topology import nat_topology
    from repro.quic import ClientEndpoint, ServerEndpoint
    from repro.trace import (
        ConnectionMetrics,
        ConnectionTracer,
        MetricsRegistry,
        PreProfiler,
    )
    from repro.trace.schema import SchemaError, validate_event

    topo_spec = scenario.topology
    registry = MetricsRegistry()
    sim = Simulator(metrics=registry)
    if topo_spec.kind == "nat":
        topo = nat_topology(sim, d_ms=topo_spec.d_ms, bw_mbps=topo_spec.bw_mbps,
                            loss_pct=topo_spec.loss_pct, seed=scenario.seed)
        client_host, server_host, nat = topo.client, topo.server, topo.nat
        fault_links = [topo.wan]
    else:
        topo = symmetric_topology(sim, d_ms=topo_spec.d_ms,
                                  bw_mbps=topo_spec.bw_mbps,
                                  loss_pct=topo_spec.loss_pct,
                                  seed=scenario.seed)
        client_host, server_host, nat = topo.client, topo.server, None
        fault_links = list(topo.path_links)

    injector = _build_injector(sim, scenario)
    for link in fault_links:
        injector.inject_link(link)
    for fault in scenario.faults:
        if fault.kind == "flap":
            injector.schedule_flap(down_at=fault.at, duration=fault.duration)
        elif fault.kind == "nat_rebind":
            injector.schedule_nat_rebind(nat, at=fault.at)

    payload = scenario.expected_payload()
    profiler = PreProfiler()
    received = bytearray()
    done = [False]
    server_conns: list = []

    def on_connection(conn):
        server_conns.append(conn)
        profiler.attach(conn)
        ConnectionMetrics(conn, registry, prefix="server.")
        _attach_plugins(conn, scenario, report)
        answered = set()

        def on_stream_data(stream_id, data, fin):
            # The client half-closes after its request, but a
            # retransmitted FIN re-fires this hook with no new data —
            # answer each stream exactly once.
            if fin and stream_id not in answered:
                answered.add(stream_id)
                conn.send_stream_data(stream_id, payload, fin=True)
                server._by_cid[conn.local_cid].pump()

        conn.on_stream_data = on_stream_data

    server = ServerEndpoint(sim, server_host, "server.0", 443,
                            on_connection=on_connection)
    client = ClientEndpoint(sim, client_host, "client.0", 5000,
                            "server.0", 443)
    profiler.attach(client.conn)
    ConnectionMetrics(client.conn, registry, prefix="client.")
    tracer = ConnectionTracer(client.conn, max_events=500_000)
    _attach_plugins(client.conn, scenario, report)

    def on_stream_data(stream_id, data, fin):
        received.extend(data)
        if fin:
            done[0] = True

    client.conn.on_stream_data = on_stream_data

    client.connect()
    if not sim.run_until(lambda: client.conn.is_established, timeout=30):
        report.error = "handshake did not complete"
        return
    start = sim.now
    stream_id = client.conn.create_stream()
    client.conn.send_stream_data(stream_id, b"GET", fin=True)
    client.pump()
    sim.run_until(lambda: done[0], timeout=scenario.timeout)

    # --- sample everything before any teardown releases state ------------
    report.completed = done[0] and len(received) == len(payload)
    report.received = len(received)
    report.digest = hashlib.sha256(bytes(received)).hexdigest()
    report.duration = (sim.now - start) if done[0] else None
    report.stats["client"] = dict(client.conn.stats)
    report.ledger["client"] = _ledger(client.conn)
    if server_conns:
        report.stats["server"] = dict(server_conns[0].stats)
        report.ledger["server"] = _ledger(server_conns[0])
    report.shadow_mismatches = len(client.conn.shadow_mismatches)
    report.shadow_mismatches += sum(
        len(conn.shadow_mismatches) for conn in server_conns)

    report.pluglet_rows = {
        f"{rec.plugin}/{rec.pluglet}/{rec.protoop}": {
            "invocations": rec.invocations,
            "fuel": rec.fuel,
            "helper_calls": rec.helper_calls,
            "faults": rec.faults,
        }
        for rec in profiler.records.values()
    }
    # plugin_analyzed / plugin_conflict_report only fire with
    # REPRO_ANALYSIS=1: like the plugin:analysis trace event they
    # describe the mode, not the protocol, so they are exempt from
    # cross-mode parity.
    report.protoop_runs = {
        name: count for name, count in profiler.protoop_runs().items()
        if name not in ("plugin_analyzed", "plugin_conflict_report")
    }
    report.metric_counters = {
        name: registry.get(name).value
        for name in registry.names()
        if type(registry.get(name)).__name__ == "Counter"
    }
    report.fault_stats = injector.stats.as_dict()

    tracer.finish()
    report.trace_events = len(tracer.events)
    deterministic = []
    for event in tracer.events:
        record = event.as_record()
        try:
            validate_event(record)
        except SchemaError as exc:
            report.schema_errors.append(str(exc))
        if (event.category not in _NONDETERMINISTIC_TRACE_CATEGORIES
                and event.name not in ("analysis", "conflict_report")):
            # plugin:analysis and plugin:conflict_report describe the
            # mode itself (they only fire with REPRO_ANALYSIS=1), so they
            # are exempt from cross-mode trace parity along with the
            # wall-clock profiler rows.
            deterministic.append(record)
    report.trace_digest = hashlib.sha256(
        json.dumps(deterministic, sort_keys=True).encode()).hexdigest()
