"""Differential conformance harness.

The three kill-switched fast paths (``REPRO_JIT``, ``REPRO_BATCH``,
``REPRO_ANALYSIS``) promise to change performance, never semantics, and
pluglets promise to extend the protocol, never alter it.  This package
turns both promises into a first-class oracle: declarative scenarios
(topology × workload × plugin set × fault schedule) run across the full
kill-switch cross-product, invariant oracles compare the runs, and a
delta-debugging shrinker reduces any failure to the smallest scenario
that still reproduces it, saved as a self-contained repro file.

Entry points: ``repro conform`` (CLI), :func:`run_conformance`,
:func:`shrink`, the ``SUITES`` registry, and :func:`random_scenarios`
for seeded sweeps.  See ``docs/conformance.md``.
"""

from .engine import (
    REPRO_SCHEMA,
    ScenarioVerdict,
    load_repro,
    repro_dict,
    run_conformance,
    run_suite,
    save_repro,
)
from .oracles import OracleFailure, check_cross, check_run, check_transparency
from .plugins import OBSERVER_PLUGINS, PLUGIN_BUILDERS, SWEEP_PLUGINS, build_plugin
from .runner import RunReport, run_scenario
from .scenario import (
    ALL_MODES,
    FAST_MODES,
    FaultEvent,
    Mode,
    Scenario,
    Topology,
    Workload,
    parse_modes,
    random_scenarios,
)
from .shrink import ShrinkResult, ddmin, shrink
from .suites import SUITES, load_suite

__all__ = [
    "ALL_MODES",
    "FAST_MODES",
    "FaultEvent",
    "Mode",
    "OBSERVER_PLUGINS",
    "OracleFailure",
    "PLUGIN_BUILDERS",
    "REPRO_SCHEMA",
    "RunReport",
    "SUITES",
    "SWEEP_PLUGINS",
    "Scenario",
    "ScenarioVerdict",
    "ShrinkResult",
    "Topology",
    "Workload",
    "build_plugin",
    "check_cross",
    "check_run",
    "check_transparency",
    "ddmin",
    "load_repro",
    "load_suite",
    "parse_modes",
    "random_scenarios",
    "repro_dict",
    "run_conformance",
    "run_scenario",
    "run_suite",
    "save_repro",
    "shrink",
]
