"""QUIC transport error codes and exceptions (draft-14 era, simplified)."""

from __future__ import annotations

import enum


class TransportErrorCode(enum.IntEnum):
    """Error codes carried in CONNECTION_CLOSE frames."""

    NO_ERROR = 0x0
    INTERNAL_ERROR = 0x1
    FLOW_CONTROL_ERROR = 0x3
    STREAM_LIMIT_ERROR = 0x4
    STREAM_STATE_ERROR = 0x5
    FINAL_SIZE_ERROR = 0x6
    FRAME_ENCODING_ERROR = 0x7
    TRANSPORT_PARAMETER_ERROR = 0x8
    PROTOCOL_VIOLATION = 0xA
    CRYPTO_BUFFER_EXCEEDED = 0xD
    KEY_UPDATE_ERROR = 0xE
    CRYPTO_ERROR = 0x100
    # PQUIC-specific error space (plugin machinery failures terminate the
    # connection, Section 2.1 / 2.3).
    PLUGIN_MEMORY_VIOLATION = 0x1000
    PLUGIN_LOOP_DETECTED = 0x1001
    PLUGIN_VALIDATION_FAILED = 0x1002
    PLUGIN_RUNTIME_ERROR = 0x1003


class QuicError(Exception):
    """Base class for all QUIC-level failures."""


class TransportError(QuicError):
    """A protocol failure that must close the connection."""

    def __init__(self, code: TransportErrorCode, reason: str = "", frame_type: int = 0):
        super().__init__(f"{code.name}: {reason}")
        self.code = code
        self.reason = reason
        self.frame_type = frame_type


class ProtocolViolation(TransportError):
    def __init__(self, reason: str = ""):
        super().__init__(TransportErrorCode.PROTOCOL_VIOLATION, reason)


class FlowControlError(TransportError):
    def __init__(self, reason: str = ""):
        super().__init__(TransportErrorCode.FLOW_CONTROL_ERROR, reason)


class StreamStateError(TransportError):
    def __init__(self, reason: str = ""):
        super().__init__(TransportErrorCode.STREAM_STATE_ERROR, reason)


class FinalSizeError(TransportError):
    def __init__(self, reason: str = ""):
        super().__init__(TransportErrorCode.FINAL_SIZE_ERROR, reason)


class FrameEncodingError(TransportError):
    def __init__(self, reason: str = ""):
        super().__init__(TransportErrorCode.FRAME_ENCODING_ERROR, reason)


class CryptoError(TransportError):
    def __init__(self, reason: str = ""):
        super().__init__(TransportErrorCode.CRYPTO_ERROR, reason)
