"""Pluginized QUIC (PQUIC, SIGCOMM 2019) reproduced in Python.

Subpackages:

* :mod:`repro.netsim` — discrete-event network simulator (the testbed).
* :mod:`repro.quic` — the QUIC implementation, decomposed into protocol
  operations.
* :mod:`repro.vm` — the Pluglet Runtime Environment (verifier,
  interpreter with memory monitor, assembler, restricted-Python compiler).
* :mod:`repro.core` — pluginization machinery (protoops, plugins, helper
  API, frame scheduler, cache, in-band exchange).
* :mod:`repro.secure` — the distributed trust system (validators, Merkle
  prefix trees, the plugin repository).
* :mod:`repro.termination` — the termination checker used to validate
  pluglets.
* :mod:`repro.plugins` — monitoring, datagram, multipath, FEC and
  congestion-control plugins as PRE bytecode.
* :mod:`repro.apps` — VPN tunnel and bulk-transfer applications.
* :mod:`repro.experiments` — WSP design sampling and scenario runners.
"""

__version__ = "1.0.0"
