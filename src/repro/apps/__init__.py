"""Applications built on the PQUIC public API (VPN, bulk transfer)."""

from .transfer import BulkClient, BulkServer
from .vpn import VpnTunnel

__all__ = ["BulkClient", "BulkServer", "VpnTunnel"]
