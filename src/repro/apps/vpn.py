"""A VPN over the Datagram plugin (§4.2).

"We implement a simple VPN that captures raw IP packets and passes them to
PQUIC. [...] This VPN application reads IP datagrams from the tunnel
interface and writes them to the message socket exposed by the Datagram
plugin."

:class:`VpnTunnel` is the tunnel interface: inner packets (one flow-id
byte + raw packet bytes) ride DATAGRAM frames.  Like a real tun device it
has an MTU and a bounded queue — packets beyond either are dropped, which
is how the inner TCP gets its congestion signal.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.plugins.datagram import DatagramSocket

DEFAULT_TUNNEL_MTU = 1400
DEFAULT_QUEUE_PACKETS = 64


class VpnTunnel:
    """One end of the VPN: wraps an established PQUIC connection whose
    datagram plugin is attached."""

    def __init__(
        self,
        conn,
        pump: Callable[[], None],
        mtu: int = DEFAULT_TUNNEL_MTU,
        queue_packets: int = DEFAULT_QUEUE_PACKETS,
    ):
        self.conn = conn
        self.pump = pump
        self.queue_packets = queue_packets
        self._handlers: dict[int, Callable[[bytes], None]] = {}
        self.socket = DatagramSocket(conn, on_message=self._on_message)
        # The tunnel MTU can never exceed what one DATAGRAM frame carries
        # (minus the flow-id byte).
        self.mtu = min(mtu, self.socket.max_size() - 1)
        self.packets_in = 0
        self.packets_out = 0
        self.dropped_mtu = 0
        self.dropped_queue = 0

    def bind(self, flow_id: int, handler: Callable[[bytes], None]) -> None:
        """Register the consumer of inner packets for one flow."""
        self._handlers[flow_id] = handler

    def send(self, flow_id: int, packet: bytes) -> bool:
        """Write one inner IP packet to the tunnel; False if dropped."""
        if len(packet) > self.mtu:
            self.dropped_mtu += 1
            return False
        queued = sum(
            1 for r in self.conn.reserved_frames
            if r.plugin == "org.pquic.datagram"
        )
        if queued >= self.queue_packets:
            self.dropped_queue += 1
            return False
        accepted = self.socket.send(bytes([flow_id & 0xFF]) + packet)
        if accepted:
            self.packets_out += 1
            self.pump()
            return True
        return False

    def _on_message(self, data: bytes) -> None:
        if not data:
            return
        self.packets_in += 1
        handler = self._handlers.get(data[0])
        if handler is not None:
            handler(data[1:])

    @property
    def overhead_per_packet(self) -> int:
        """QUIC encapsulation bytes added to each conveyed inner packet
        (headers + AEAD tag + frame header + flow id)."""
        from repro.quic.crypto import TAG_LENGTH

        short_header = 1 + 8 + 4
        frame_header = 1 + 2 + 1  # type + length varint + flow id
        return short_header + TAG_LENGTH + frame_header
