"""A bulk-transfer application: the GET-style workload of §4.3/§4.4.

"We record the time between a GET request issued by the client and the
reception of the last byte of the server response."  The client opens a
stream, writes ``GET <size>\\n`` and measures until FIN; the server
answers each request with that many bytes.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.quic import QuicConnection


class BulkServer:
    """Serves GET requests on any connection it is attached to."""

    def __init__(self) -> None:
        self.requests = 0

    def attach(self, conn: QuicConnection, pump: Callable[[], None]) -> None:
        buffers: dict[int, bytearray] = {}

        def on_stream_data(stream_id: int, data: bytes, fin: bool) -> None:
            buf = buffers.setdefault(stream_id, bytearray())
            buf.extend(data)
            if b"\n" not in buf:
                return
            line, _, _rest = bytes(buf).partition(b"\n")
            if not line.startswith(b"GET "):
                return
            del buffers[stream_id]
            size = int(line[4:])
            self.requests += 1
            conn.send_stream_data(stream_id, b"D" * size, fin=True)
            pump()

        conn.on_stream_data = on_stream_data


class BulkClient:
    """Issues one GET and records its Download Completion Time."""

    def __init__(self, conn: QuicConnection, pump: Callable[[], None]):
        self.conn = conn
        self.pump = pump
        self.received = 0
        self.expected: Optional[int] = None
        self.start_time: Optional[float] = None
        self.completion_time: Optional[float] = None
        conn.on_stream_data = self._on_stream_data

    def request(self, size: int, now: float) -> None:
        self.expected = size
        self.received = 0
        self.start_time = now
        self.completion_time = None
        stream_id = self.conn.create_stream()
        self.conn.send_stream_data(stream_id, b"GET %d\n" % size, fin=False)
        self.pump()

    def _on_stream_data(self, stream_id: int, data: bytes, fin: bool) -> None:
        self.received += len(data)
        if fin and self.expected is not None and self.received >= self.expected:
            self.completion_time = self.conn.now

    @property
    def completed(self) -> bool:
        return self.completion_time is not None

    @property
    def dct(self) -> Optional[float]:
        if self.completion_time is None or self.start_time is None:
            return None
        return self.completion_time - self.start_time
