"""A termination checker for pluglet bytecode (§5).

The paper validates pluglets with the T2 prover: "This procedure builds on
the seminal works on transition invariants [...] to build a proof of
termination, or to disprove it", assuming "the termination of external
functions".  This module implements the same *kind* of analysis at the
scale our pluglets need:

* a pluglet whose CFG has no back edge terminates trivially (helpers are
  assumed terminating, as T2 assumes for external functions);
* for each natural loop, we search for a **ranking function**: a counter
  variable (register or stack slot) that every path around the loop moves
  monotonically toward a loop-invariant bound tested by the loop's exit
  condition;
* anything else is reported *not proven* — exactly how the paper reports
  pluglets T2 could not handle (Table 2's "Proven terminating" column).

The symbolic core is a tiny linear abstract interpretation: values are
``const c``, ``var v + delta`` (v an initial register/slot value) or
``unknown``.

A proven :class:`LoopReport` carries the ranking *data* (counter key,
per-lap delta, stay condition and bound operand), not just prose: the
fuel certifier (:mod:`repro.vm.analysis.fuelbound`) combines it with the
interval analysis to bound the loop's trip count statically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.vm.isa import (
    DST_WRITE_OPS,
    FP_REGISTER,
    JMP_IMM_OPS,
    JMP_REG_OPS,
    Instruction,
    Op,
)

from .cfg import ControlFlowGraph

MAX_PATHS = 256

# Symbolic values.
CONST = "const"
VAR = "var"
UNKNOWN = "unknown"

#: A symbolic value: ``(CONST, value, 0)``, ``(VAR, key, delta)`` with
#: key ``("r", reg)`` or ``("s", fp_offset)``, or :data:`_UNKNOWN`.
Sym = Tuple[str, Any, int]
#: A counter identity: ``("r", reg)`` or ``("s", fp_offset)``.
VarKey = Tuple[str, int]


def _const(c: int) -> Sym:
    return (CONST, c & ((1 << 64) - 1), 0)


def _var(key: VarKey, delta: int = 0) -> Sym:
    return (VAR, key, delta)


_UNKNOWN: Sym = (UNKNOWN, None, 0)


@dataclass
class LoopReport:
    head: int
    proven: bool
    ranking: Optional[str] = None
    reason: str = ""
    #: Machine-readable ranking (proven loops only): the counter's
    #: symbolic value at the test, its per-lap delta, the comparison
    #: under which execution *stays* in the loop, the loop-invariant
    #: bound operand, and the block whose terminator tests it.
    counter: Optional[Sym] = None
    delta: Optional[int] = None
    stay_op: Optional[Op] = None
    bound: Optional[Sym] = None
    cond_block: Optional[int] = None


@dataclass
class TerminationReport:
    """Outcome for one pluglet."""

    proven: bool
    loops: List[LoopReport] = field(default_factory=list)
    reason: str = ""

    def __bool__(self) -> bool:
        return self.proven


class _State:
    """Symbolic machine state along one loop path."""

    def __init__(self) -> None:
        # Initial symbolic values: registers hold var('r', i); slots are
        # materialized lazily as var('s', off).
        self.regs: Dict[int, Sym] = {i: _var(("r", i)) for i in range(11)}
        self.slots: Dict[int, Sym] = {}

    def slot(self, off: int) -> Sym:
        if off not in self.slots:
            self.slots[off] = _var(("s", off))
        return self.slots[off]


def _step(state: _State, ins: Instruction) -> None:
    op = ins.opcode
    regs = state.regs
    if op is Op.MOV_IMM:
        regs[ins.dst] = _const(ins.imm)
    elif op is Op.LDDW:
        regs[ins.dst] = _const(ins.imm)
    elif op is Op.MOV:
        regs[ins.dst] = regs[ins.src]
    elif op is Op.ADD_IMM:
        regs[ins.dst] = _add(regs[ins.dst], ins.imm)
    elif op is Op.SUB_IMM:
        regs[ins.dst] = _add(regs[ins.dst], -ins.imm)
    elif op is Op.ADD:
        regs[ins.dst] = _add_sym(regs[ins.dst], regs[ins.src], 1)
    elif op is Op.SUB:
        regs[ins.dst] = _add_sym(regs[ins.dst], regs[ins.src], -1)
    elif op is Op.LDXDW and ins.src == FP_REGISTER:
        regs[ins.dst] = state.slot(ins.offset)
    elif op is Op.STXDW and ins.dst == FP_REGISTER:
        state.slots[ins.offset] = regs[ins.src]
    elif op is Op.CALL:
        regs[0] = _UNKNOWN
    elif op in (Op.LDXB, Op.LDXH, Op.LDXW, Op.LDXDW):
        regs[ins.dst] = _UNKNOWN
    elif op is Op.EXIT or op in JMP_REG_OPS or op in JMP_IMM_OPS or op is Op.JA:
        pass
    elif op in (Op.STXB, Op.STXH, Op.STXW, Op.STXDW,
                Op.STB, Op.STH, Op.STW, Op.STDW):
        pass  # non-slot memory: irrelevant to counters
    else:
        # Any other ALU op destroys linearity.
        if ins.dst in regs:
            regs[ins.dst] = _UNKNOWN


def _add(value: Sym, c: int) -> Sym:
    kind, key, delta = value
    if kind == CONST:
        return _const(key + c)
    if kind == VAR:
        return (VAR, key, delta + c)
    return _UNKNOWN


def _add_sym(a: Sym, b: Sym, sign: int) -> Sym:
    if b[0] == CONST:
        return _add(a, sign * _signed64(b[1]))
    if a[0] == CONST and b[0] == VAR and sign == 1:
        return (VAR, b[1], b[2] + _signed64(a[1]))
    return _UNKNOWN


def _signed64(v: int) -> int:
    v &= (1 << 64) - 1
    return v - (1 << 64) if v >= 1 << 63 else v


#: For each comparison op: does *staying* in the loop while this condition
#: holds terminate with an increasing (+1) or decreasing (-1) counter on
#: the left-hand side?  (Unsigned semantics.)
_NEGATE = {
    Op.JEQ: Op.JNE, Op.JNE: Op.JEQ,
    Op.JGT: Op.JLE, Op.JGE: Op.JLT,
    Op.JLT: Op.JGE, Op.JLE: Op.JGT,
    Op.JSGT: Op.JSLT, Op.JSLT: Op.JSGT,  # approximate negations
}
_SWAP = {
    Op.JGT: Op.JLT, Op.JLT: Op.JGT, Op.JGE: Op.JLE, Op.JLE: Op.JGE,
    Op.JEQ: Op.JEQ, Op.JNE: Op.JNE, Op.JSGT: Op.JSLT, Op.JSLT: Op.JSGT,
}


def check_termination(instructions: List[Instruction]) -> TerminationReport:
    """Try to prove that a pluglet terminates on every input."""
    cfg = ControlFlowGraph(instructions)
    back = cfg.back_edges
    if not back:
        return TerminationReport(proven=True, reason="loop-free")
    reports = []
    all_proven = True
    for tail, head in back:
        loop_blocks = cfg.natural_loop(tail, head)
        report = _check_loop(cfg, head, loop_blocks, back)
        reports.append(report)
        all_proven &= report.proven
    return TerminationReport(
        proven=all_proven,
        loops=reports,
        reason="all loops have ranking functions" if all_proven
        else "some loop lacks a provable ranking function",
    )


@dataclass(frozen=True)
class _Ranking:
    text: str
    counter: Sym
    delta: int
    stay_op: Op
    bound: Sym


def _check_loop(cfg: ControlFlowGraph, head: int,
                loop_blocks: FrozenSet[int],
                all_back_edges: List[Tuple[int, int]]) -> LoopReport:
    # Variables written inside *nested* loops are unusable for this loop:
    # the simple cycle paths below pass through the inner body once, so
    # its per-lap effect on them is not linear.
    nested_tainted: Set[VarKey] = set()
    for tail2, head2 in all_back_edges:
        if head2 == head:
            continue
        inner = cfg.natural_loop(tail2, head2)
        if inner < loop_blocks:
            for _pc, ins in cfg.loop_instructions(inner):
                if ins.opcode is Op.STXDW and ins.dst == FP_REGISTER:
                    nested_tainted.add(("s", ins.offset))
                if ins.opcode in DST_WRITE_OPS:
                    nested_tainted.add(("r", ins.dst))
                if ins.opcode is Op.CALL:
                    nested_tainted.add(("r", 0))

    paths = cycle_paths(cfg, head, loop_blocks)
    if paths is None:
        return LoopReport(head=head, proven=False,
                          reason="too many paths through loop")
    exit_conditions = _exit_conditions(cfg, loop_blocks)
    if not exit_conditions:
        return LoopReport(head=head, proven=False, reason="no exit branch")

    # A candidate ranking variable must be moved monotonically by every
    # cycle path; compute per-path deltas for all written slots and
    # registers (None = rewritten non-linearly).
    candidate_deltas: Optional[Dict[VarKey, Optional[int]]] = None
    for path in paths:
        state = _State()
        for block_start in path:
            block = cfg.blocks[block_start]
            for pc in range(block.start, block.end):
                _step(state, cfg.instructions[pc])
        deltas: Dict[VarKey, Optional[int]] = {}
        for off, value in state.slots.items():
            skey: VarKey = ("s", off)
            deltas[skey] = value[2] if value[0] == VAR and value[1] == skey \
                else None
        for reg, value in state.regs.items():
            rkey: VarKey = ("r", reg)
            deltas[rkey] = value[2] if value[0] == VAR and value[1] == rkey \
                else None
        if candidate_deltas is None:
            candidate_deltas = deltas
        else:
            merged: Dict[VarKey, Optional[int]] = {}
            for key in set(candidate_deltas) | set(deltas):
                a = candidate_deltas.get(key, 0)
                b = deltas.get(key, 0)
                merged[key] = a if a == b else None
            candidate_deltas = merged
    final_deltas: Dict[VarKey, Optional[int]] = candidate_deltas or {}

    # Prefer the head's own condition: it is tested on every lap, which
    # is what the fuel certifier needs to turn the ranking into a trip
    # bound (conditions deeper in the body still prove termination).
    ordered = sorted(exit_conditions, key=lambda c: c[3] != head)
    for cond_op, left, right, block_start in ordered:
        ranking = _match_ranking(cond_op, left, right, final_deltas,
                                 nested_tainted)
        if ranking is not None:
            return LoopReport(head=head, proven=True, ranking=ranking.text,
                              counter=ranking.counter, delta=ranking.delta,
                              stay_op=ranking.stay_op, bound=ranking.bound,
                              cond_block=block_start)
    return LoopReport(
        head=head, proven=False,
        reason="no exit condition over a monotonic counter with an "
               "invariant bound",
    )


def _match_ranking(cond_op: Op, left: Sym, right: Sym,
                   deltas: Dict[VarKey, Optional[int]],
                   tainted: Set[VarKey]) -> Optional[_Ranking]:
    """Does `stay while left <op> right` terminate given the deltas?"""
    def invariant(value: Sym) -> bool:
        if value[0] == CONST:
            return True
        if value[0] == VAR and value[2] == 0:
            key = value[1]
            if key in tainted:
                return False
            return deltas.get(key, 0) == 0
        return False

    for a, b, op in ((left, right, cond_op), (right, left, _SWAP.get(cond_op))):
        if op is None:
            continue
        if a[0] != VAR:
            continue
        key = a[1]
        if key in tainted:
            continue
        delta = deltas.get(key)
        if delta is None or delta == 0:
            continue
        if not invariant(b):
            continue
        if op in (Op.JLT, Op.JLE, Op.JSLT) and delta > 0:
            return _Ranking(f"{key} increases by {delta} toward bound",
                            a, delta, op, b)
        if op in (Op.JGT, Op.JGE, Op.JSGT) and delta < 0:
            return _Ranking(f"{key} decreases by {delta} toward bound",
                            a, delta, op, b)
        if op is Op.JNE and abs(delta) == 1 and b[0] == CONST:
            return _Ranking(f"{key} steps by {delta} to exact bound",
                            a, delta, op, b)
    return None


def _exit_conditions(
        cfg: ControlFlowGraph,
        loop_blocks: FrozenSet[int]) -> List[Tuple[Op, Sym, Sym, int]]:
    """Symbolic ``(op, left, right, block)`` conditions under which the
    loop *stays*.

    For each exiting conditional branch we re-execute the block to get the
    symbolic operands at the branch."""
    out: List[Tuple[Op, Sym, Sym, int]] = []
    for start in loop_blocks:
        block = cfg.blocks[start]
        exits = [s for s in block.successors if s not in loop_blocks]
        if not exits:
            continue
        last = cfg.instructions[block.end - 1]
        if last.opcode not in JMP_REG_OPS and last.opcode not in JMP_IMM_OPS:
            continue  # unconditional exit: fine, but gives no condition
        state = _State()
        for pc in range(block.start, block.end - 1):
            _step(state, cfg.instructions[pc])
        if last.opcode in JMP_IMM_OPS:
            base = Op(last.opcode - 0x10)
            left = state.regs[last.dst]
            right = _const(last.imm)
        else:
            base = last.opcode
            left = state.regs[last.dst]
            right = state.regs[last.src]
        taken = block.end - 1 + 1 + last.offset
        if taken in exits:
            stay_op = _NEGATE.get(base)
            if stay_op is None:
                continue
            out.append((stay_op, left, right, start))
        else:
            out.append((base, left, right, start))
    return out


def cycle_paths(cfg: ControlFlowGraph, head: int,
                loop_blocks: FrozenSet[int]) -> Optional[List[List[int]]]:
    """All simple paths from head back to head inside the loop, or
    ``None`` when there are more than :data:`MAX_PATHS`."""
    paths: List[List[int]] = []

    def walk(node: int, path: List[int]) -> bool:
        if len(paths) > MAX_PATHS:
            return False
        for succ in cfg.blocks[node].successors:
            if succ == head:
                paths.append(list(path))
            elif succ in loop_blocks and succ not in path:
                path.append(succ)
                if not walk(succ, path):
                    return False
                path.pop()
        return True

    if not walk(head, [head]):
        return None
    return paths


# Backwards-compatible alias (pre-unification name).
_cycle_paths = cycle_paths
