"""Control-flow graphs over PRE bytecode.

The termination checker (§5) needs the loop structure of a pluglet: basic
blocks, edges, natural loops and the registers/stack slots each loop
modifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.vm.isa import (
    JMP_IMM_OPS,
    JMP_REG_OPS,
    JUMP_OPS,
    Instruction,
    Op,
)


@dataclass
class BasicBlock:
    start: int                 # pc of the first instruction
    end: int                   # pc one past the last instruction
    successors: list = field(default_factory=list)

    def __hash__(self) -> int:
        return hash(self.start)


class ControlFlowGraph:
    """Basic blocks and edges of one pluglet."""

    def __init__(self, instructions: list):
        self.instructions = instructions
        self.blocks: dict[int, BasicBlock] = {}
        self._build()

    def _build(self) -> None:
        n = len(self.instructions)
        leaders = {0}
        for pc, ins in enumerate(self.instructions):
            if ins.opcode in JUMP_OPS:
                leaders.add(pc + 1 + ins.offset)
                if pc + 1 < n:
                    leaders.add(pc + 1)
            elif ins.opcode is Op.EXIT and pc + 1 < n:
                leaders.add(pc + 1)
        ordered = sorted(l for l in leaders if 0 <= l < n)
        for i, start in enumerate(ordered):
            end = ordered[i + 1] if i + 1 < len(ordered) else n
            self.blocks[start] = BasicBlock(start=start, end=end)
        for block in self.blocks.values():
            last = self.instructions[block.end - 1]
            if last.opcode is Op.EXIT:
                continue
            if last.opcode in JUMP_OPS:
                target = block.end - 1 + 1 + last.offset
                block.successors.append(target)
                if last.opcode is not Op.JA:
                    block.successors.append(block.end)
            else:
                block.successors.append(block.end)
        # Clamp fall-through beyond the program.
        for block in self.blocks.values():
            block.successors = [s for s in block.successors if s in self.blocks]

    # ------------------------------------------------------------------

    def back_edges(self) -> list:
        """(from_block, to_block) pairs forming loops (DFS back edges)."""
        back = []
        color: dict[int, int] = {}

        def dfs(start: int) -> None:
            stack = [(start, iter(self.blocks[start].successors))]
            color[start] = 1
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    state = color.get(succ, 0)
                    if state == 1:
                        back.append((node, succ))
                    elif state == 0:
                        color[succ] = 1
                        stack.append((succ, iter(self.blocks[succ].successors)))
                        advanced = True
                        break
                if not advanced:
                    color[node] = 2
                    stack.pop()

        dfs(0)
        return back

    def natural_loop(self, tail: int, head: int) -> set:
        """Blocks of the natural loop for the back edge tail->head."""
        preds: dict[int, list] = {b: [] for b in self.blocks}
        for block in self.blocks.values():
            for succ in block.successors:
                preds[succ].append(block.start)
        loop = {head, tail}
        stack = [tail]
        while stack:
            node = stack.pop()
            if node == head:
                continue
            for p in preds[node]:
                if p not in loop:
                    loop.add(p)
                    stack.append(p)
        return loop

    def loop_instructions(self, loop_blocks: set) -> list:
        """(pc, instruction) pairs inside a loop."""
        out = []
        for start in sorted(loop_blocks):
            block = self.blocks[start]
            for pc in range(block.start, block.end):
                out.append((pc, self.instructions[pc]))
        return out
