"""Thin re-export of the unified control-flow graph.

The termination checker historically carried its own 123-line CFG; it
now shares the analysis package's implementation
(:mod:`repro.vm.analysis.cfg`), which adds exact reachability, natural
loops, topological ordering and per-loop instruction enumeration.  This
module keeps the old import path (``repro.termination.cfg``) working.

Interface notes for old callers: ``back_edges`` is a property (was a
method) and ``natural_loop`` returns a frozenset (was a set).
"""

from __future__ import annotations

from repro.vm.analysis.cfg import BasicBlock, ControlFlowGraph, build_cfg

__all__ = ["BasicBlock", "ControlFlowGraph", "build_cfg"]
