"""Termination checking of pluglet bytecode (the paper's T2 validation)."""

from .cfg import BasicBlock, ControlFlowGraph
from .checker import LoopReport, TerminationReport, check_termination

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "LoopReport",
    "TerminationReport",
    "check_termination",
]
