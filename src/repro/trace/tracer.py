"""The qlog-style connection tracer, rebuilt on the versioned schema.

Everything is still observed through ``pre``/``post`` anchors on the same
protocol operations plugins use — the tracer remains a host-side
demonstration of the gray-box interface — but event decoding is now
declarative: :data:`HOOKS` maps each protoop event to its schema event
and a decoder, so adding an event means one catalog entry plus one table
row, not a new method.

New over the old ``repro.quic.qlog`` tracer:

* events past ``max_events`` are *counted*, and :meth:`finish` appends a
  final ``trace:truncated`` event carrying the drop count (previously
  they vanished silently);
* optional streaming to a :class:`~repro.trace.writer.JsonlTraceWriter`
  as events are recorded;
* optional strict schema validation of every recorded event;
* a profiled run exports per-pluglet ``pluglet_profile`` events into the
  trace at :meth:`finish`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.core.protoop import Anchor

from .schema import TRACE_SCHEMA_VERSION, validate_event
from .writer import JsonlTraceWriter


@dataclass
class TraceEvent:
    time: float
    category: str
    name: str
    data: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "time": round(self.time * 1000, 3),  # ms, qlog convention
            "category": self.category,
            "name": self.name,
            "data": self.data,
        }

    def as_record(self) -> dict:
        record = self.as_dict()
        record["type"] = "event"
        return record


# --- declarative hook table --------------------------------------------------
#
# protoop event name -> (category, schema event name, decoder).
# A decoder turns the protoop's (args, result) into the event's data dict
# and must produce exactly the fields the schema declares.

def _d_packet_sent(args, result):
    (sent,) = args
    return {"packet_number": sent.packet_number, "size": sent.size,
            "path": sent.path_id, "ack_eliciting": sent.ack_eliciting}


def _d_packet_received(args, result):
    epoch, path, pn, payload = args
    return {"packet_number": pn, "path": path, "size": len(payload)}


def _d_packet_lost(args, result):
    (pkt,) = args
    return {"packet_number": pkt.packet_number, "path": pkt.path_id}


def _d_rtt(args, result):
    path, latest = args
    return {"path": path, "latest_rtt_ms": round(latest * 1000, 3)}


def _d_cwnd(args, result):
    path, cwnd = args
    return {"path": path, "cwnd": int(cwnd)}


def _d_empty(args, result):
    return {}


def _d_stream_opened(args, result):
    return {"stream_id": args[0]}


def _d_state(args, result):
    return {"state": args[0]}


def _d_plugin(args, result):
    return {"plugin": args[0]}


def _d_spin(args, result):
    return {"value": bool(args[0])}


def _d_plugin_fault(args, result):
    plugin, pluglet, failure_class, reason = args
    return {"plugin": plugin, "pluglet": pluglet,
            "failure_class": failure_class, "reason": reason}


def _d_quarantined(args, result):
    plugin, crashes, until = args
    return {"plugin": plugin, "crashes": crashes,
            "quarantined_until_ms": round(until * 1000, 3)}


def _d_exchange_retry(args, result):
    plugin, attempt = args
    return {"plugin": plugin, "attempt": attempt}


def _d_exchange_degraded(args, result):
    plugin, reason = args
    return {"plugin": plugin, "reason": reason}


def _d_exchange_completed(args, result):
    plugin, length = args
    return {"plugin": plugin, "compressed_length": length}


def _d_analysis(args, result):
    plugin, pluglets, errors, warnings, proven = args
    return {"plugin": plugin, "pluglets": pluglets, "errors": errors,
            "warnings": warnings, "proven": proven}


def _d_conflict(args, result):
    plugin, conflicts, rules = args
    return {"plugin": plugin, "conflicts": conflicts, "rules": rules}


def _d_path_transition(args, result):
    path, old, new = args
    return {"path": path, "old": old, "new": new}


def _d_probed(args, result):
    pkt, path = args
    return {"packet_number": pkt.packet_number, "path": path}


def _d_spurious(args, result):
    pkt, path = args
    return {"packet_number": pkt.packet_number, "path": path}


def _d_cc_state(args, result):
    path, old, new, trigger = args
    return {"path": path, "old": old, "new": new, "trigger": trigger}


HOOKS = {
    "packet_sent_event": ("transport", "packet_sent", _d_packet_sent),
    "packet_received_event": ("transport", "packet_received",
                              _d_packet_received),
    "packet_lost_event": ("recovery", "packet_lost", _d_packet_lost),
    "rtt_updated": ("recovery", "metrics_updated", _d_rtt),
    "cc_window_updated": ("recovery", "congestion_window_updated", _d_cwnd),
    "connection_established": ("connectivity", "connection_established",
                               _d_empty),
    "connection_closed": ("connectivity", "connection_closed", _d_empty),
    "connection_state_changed": ("connectivity", "connection_state_updated",
                                 _d_state),
    "stream_opened": ("transport", "stream_opened", _d_stream_opened),
    "loss_alarm_fired": ("recovery", "loss_alarm_fired", _d_empty),
    "plugin_injected": ("plugin", "plugin_injected", _d_plugin),
    "spin_bit_flipped": ("transport", "spin_bit_updated", _d_spin),
    "plugin_fault": ("plugin", "plugin_fault", _d_plugin_fault),
    "plugin_quarantined": ("plugin", "plugin_quarantined", _d_quarantined),
    "plugin_blocklisted": ("plugin", "plugin_blocklisted", _d_plugin),
    "plugin_exchange_retry": ("plugin", "plugin_exchange_retry",
                              _d_exchange_retry),
    "plugin_exchange_degraded": ("plugin", "plugin_exchange_degraded",
                                 _d_exchange_degraded),
    "plugin_exchange_completed": ("plugin", "plugin_exchange_completed",
                                  _d_exchange_completed),
    "plugin_analyzed": ("plugin", "analysis", _d_analysis),
    "plugin_conflict_report": ("plugin", "conflict_report", _d_conflict),
    "path_validation_state_changed": ("connectivity",
                                      "path_validation_state_changed",
                                      _d_path_transition),
    "connection_migrated": ("connectivity", "connection_migrated",
                            _d_path_transition),
    "stateless_reset": ("connectivity", "stateless_reset", _d_empty),
    "probe_sent": ("recovery", "packet_probed", _d_probed),
    "on_spurious_loss": ("recovery", "spurious_loss", _d_spurious),
    "congestion_state_changed": ("recovery", "congestion_state_updated",
                                 _d_cc_state),
}


class ConnectionTracer:
    """Attach to a connection to record transport and plugin events."""

    def __init__(self, conn, max_events: int = 100_000,
                 writer: Optional[JsonlTraceWriter] = None,
                 validate: bool = False):
        self.conn = conn
        self.max_events = max_events
        self.events: list = []
        self.dropped = 0
        self.writer = writer
        self.validate = validate
        self.finished = False
        self._attached: list = []
        if writer is not None:
            writer.write_header(vantage_point=self.vantage_point)
        self._attach()

    @property
    def vantage_point(self) -> str:
        return "client" if getattr(self.conn, "is_client", False) else "server"

    # --- recording --------------------------------------------------------

    def _record(self, category: str, name: str, data: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        event = TraceEvent(self.conn.now, category, name, data)
        self._append(event)

    def _append(self, event: TraceEvent) -> None:
        if self.validate:
            validate_event(event.as_record())
        self.events.append(event)
        if self.writer is not None:
            self.writer.write_event(event.as_record())

    def record_event(self, category: str, name: str, **data) -> None:
        """Host-side entry point (profiler export, app-level markers)."""
        self._record(category, name, data)

    # --- attachment -------------------------------------------------------

    def _attach(self) -> None:
        table = self.conn.protoops
        for opname, (category, name, decode) in HOOKS.items():
            fn = self._make_hook(category, name, decode)
            table.attach(opname, Anchor.POST, fn)
            self._attached.append((opname, fn))

    def _make_hook(self, category: str, name: str, decode):
        def hook(conn, args, result):
            self._record(category, name, decode(args, result))
        return hook

    def detach(self) -> None:
        table = self.conn.protoops
        for opname, fn in self._attached:
            table.detach(opname, Anchor.POST, fn)
        self._attached.clear()

    # --- finalization -----------------------------------------------------

    def finish(self) -> None:
        """Stop recording and flush the trailer.

        Exports the attached profiler (if any) as ``pluglet_profile``
        events, appends the ``trace:truncated`` marker when events were
        dropped (bypassing ``max_events`` — the marker must always make
        it out), and closes the streaming writer.
        """
        if self.finished:
            return
        self.finished = True
        self.detach()
        profiler = getattr(self.conn, "profiler", None)
        if profiler is not None:
            for row in profiler.summary():
                self._record("pre", "pluglet_profile", row)
        if self.dropped:
            self._append(TraceEvent(
                self.conn.now, "trace", "truncated",
                {"dropped": self.dropped, "recorded": len(self.events)}))
        if self.writer is not None:
            self.writer.close(dropped=self.dropped)

    # --- output -----------------------------------------------------------

    def summary(self) -> dict:
        counts: dict = {}
        for event in self.events:
            counts[event.name] = counts.get(event.name, 0) + 1
        return counts

    def to_json(self) -> str:
        """A qlog-shaped document for external viewers."""
        return json.dumps({
            "qlog_version": "0.4-repro",
            "schema": TRACE_SCHEMA_VERSION,
            "title": "pquic-repro trace",
            "traces": [{
                "vantage_point": {"type": self.vantage_point},
                "events": [e.as_dict() for e in self.events],
            }],
        }, indent=2)
