"""Trace event schema: the versioned contract of the qlog pipeline.

Every event the tracer can emit is declared here as an :class:`EventSpec`
— its category, its data fields and their types.  The JSONL stream (see
:mod:`repro.trace.writer`) carries the schema version in its header so
external consumers (CI artifact checks, qlog viewers, PANTHER-style test
drivers) can validate a trace without importing this package.

Validation is *strict*: an unknown event name, a missing required field,
an extra field or a type mismatch all raise :class:`SchemaError`.  The CI
smoke run validates every event of a real transfer against this catalog,
so the schema cannot silently drift from the emitters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Bump the minor on additive changes (new events, new optional fields),
#: the major on anything that breaks an existing consumer.
TRACE_SCHEMA_VERSION = "repro-trace/1.3"

#: Record types appearing in a JSONL stream.
RECORD_HEADER = "header"
RECORD_EVENT = "event"
RECORD_FOOTER = "footer"

CATEGORIES = ("transport", "recovery", "connectivity", "plugin", "pre",
              "sim", "trace")


class SchemaError(ValueError):
    """A record does not conform to the trace schema."""


def _is_int(v) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


def _is_float(v) -> bool:
    return (isinstance(v, float) or _is_int(v))


_CHECKS = {
    "int": _is_int,
    "float": _is_float,  # accepts ints: JSON has one number type
    "bool": lambda v: isinstance(v, bool),
    "str": lambda v: isinstance(v, str),
}


@dataclass(frozen=True)
class EventSpec:
    """Declaration of one event type."""

    name: str
    category: str
    #: field name -> type tag ("int" | "float" | "bool" | "str")
    fields: dict = field(default_factory=dict)
    #: fields that may be absent (everything else is required)
    optional: frozenset = frozenset()
    doc: str = ""

    def validate_data(self, data: dict) -> None:
        for key, value in data.items():
            tag = self.fields.get(key)
            if tag is None:
                raise SchemaError(
                    f"event {self.name!r}: unknown field {key!r}")
            if not _CHECKS[tag](value):
                raise SchemaError(
                    f"event {self.name!r}: field {key!r} expects {tag}, "
                    f"got {type(value).__name__} ({value!r})")
        for key in self.fields:
            if key not in data and key not in self.optional:
                raise SchemaError(
                    f"event {self.name!r}: missing required field {key!r}")


def _spec(name: str, category: str, doc: str = "",
          optional: tuple = (), **fields: str) -> EventSpec:
    if category not in CATEGORIES:
        raise ValueError(f"unknown category {category!r}")
    return EventSpec(name=name, category=category, fields=fields,
                     optional=frozenset(optional), doc=doc)


#: The full event catalog, keyed by event name.
EVENT_CATALOG: dict = {
    spec.name: spec for spec in [
        # --- transport ---------------------------------------------------
        _spec("packet_sent", "transport",
              "A packet left the connection.",
              packet_number="int", size="int", path="int",
              ack_eliciting="bool"),
        _spec("packet_received", "transport",
              "A packet was decrypted and accepted.",
              packet_number="int", path="int", size="int"),
        _spec("stream_opened", "transport",
              "A new stream became active.",
              stream_id="int"),
        _spec("spin_bit_updated", "transport",
              "The latency spin bit flipped.",
              value="bool"),
        # --- recovery ----------------------------------------------------
        _spec("packet_lost", "recovery",
              "Loss detection declared a packet lost.",
              packet_number="int", path="int"),
        _spec("metrics_updated", "recovery",
              "A new RTT sample was folded into the estimator.",
              path="int", latest_rtt_ms="float"),
        _spec("congestion_window_updated", "recovery",
              "The congestion controller moved its window.",
              path="int", cwnd="int"),
        _spec("loss_alarm_fired", "recovery",
              "The PTO/loss alarm fired."),
        _spec("packet_probed", "recovery",
              "A PTO expiry queued a probe packet repeating this "
              "packet's frames (RFC 9002 §6.2.4); the original stays "
              "in flight.",
              packet_number="int", path="int"),
        _spec("spurious_loss", "recovery",
              "A packet declared lost was later acknowledged; the "
              "congestion response is undone.",
              packet_number="int", path="int"),
        _spec("congestion_state_updated", "recovery",
              "The congestion controller changed state (slow start / "
              "congestion avoidance / recovery).",
              optional=("trigger",),
              path="int", old="str", new="str", trigger="str"),
        # --- connectivity ------------------------------------------------
        _spec("connection_established", "connectivity",
              "The handshake completed."),
        _spec("connection_closed", "connectivity",
              "The connection closed."),
        _spec("connection_state_updated", "connectivity",
              "The lifecycle state machine moved "
              "(closing/draining/closed, RFC 9000 §10).",
              state="str"),
        _spec("path_validation_state_changed", "connectivity",
              "A path moved through the §8.2 validation machine "
              "(unvalidated/probing/validated/failed/abandoned).",
              path="int", old="str", new="str"),
        _spec("connection_migrated", "connectivity",
              "The connection moved to a new address (NAT rebinding or "
              "active migration, RFC 9000 §9).",
              path="int", old="str", new="str"),
        _spec("stateless_reset", "connectivity",
              "A stateless reset token matched an undecryptable "
              "datagram; the peer lost its state (RFC 9000 §10.3)."),
        # --- plugin lifecycle --------------------------------------------
        _spec("plugin_injected", "plugin",
              "A plugin attached all its pluglets.",
              plugin="str"),
        _spec("plugin_fault", "plugin",
              "A pluglet faulted at runtime.",
              plugin="str", pluglet="str", failure_class="str",
              reason="str"),
        _spec("plugin_quarantined", "plugin",
              "A crashing plugin entered backoff quarantine.",
              plugin="str", crashes="int", quarantined_until_ms="float"),
        _spec("plugin_blocklisted", "plugin",
              "A repeatedly crashing plugin was blocklisted.",
              plugin="str"),
        _spec("plugin_exchange_retry", "plugin",
              "The plugin exchange retried a request.",
              plugin="str", attempt="int"),
        _spec("plugin_exchange_degraded", "plugin",
              "The exchange gave up and the connection degraded "
              "to run without the plugin.",
              plugin="str", reason="str"),
        _spec("plugin_exchange_completed", "plugin",
              "The plugin was received, validated and cached.",
              plugin="str", compressed_length="int"),
        _spec("analysis", "plugin",
              "Attach-time static analysis of a plugin's bytecode: "
              "diagnostic totals and pluglets proven memory-safe.",
              plugin="str", pluglets="int", errors="int",
              warnings="int", proven="int"),
        _spec("conflict_report", "plugin",
              "Attach-time inter-plugin compatibility report: how many "
              "non-fatal conflicts (write-write, order-sensitive access) "
              "the incoming plugin has with the attached set, and which "
              "PRE2xx rules fired.",
              plugin="str", conflicts="int", rules="str"),
        # --- PRE execution ------------------------------------------------
        _spec("pluglet_profile", "pre",
              "Aggregated PRE execution profile for one pluglet on one "
              "protocol operation (emitted when a profiled trace closes).",
              plugin="str", pluglet="str", protoop="str",
              invocations="int", fuel="int", helper_calls="int",
              wall_ms="float", faults="int", jit_runs="int",
              interp_runs="int", path="str"),
        # --- simulator ----------------------------------------------------
        _spec("sim_summary", "sim",
              "End-of-run simulator accounting.",
              events_fired="int", pending="int", now_ms="float"),
        # --- trace meta ---------------------------------------------------
        _spec("truncated", "trace",
              "The tracer hit max_events; `dropped` events were lost.",
              dropped="int", recorded="int"),
    ]
}


def validate_event(record: dict) -> None:
    """Validate one event record (``{"type": "event", ...}`` or the bare
    ``{"time", "category", "name", "data"}`` shape)."""
    if not isinstance(record, dict):
        raise SchemaError(f"event record must be a dict, got {type(record)}")
    rtype = record.get("type", RECORD_EVENT)
    if rtype != RECORD_EVENT:
        raise SchemaError(f"not an event record: type={rtype!r}")
    for key in ("time", "category", "name", "data"):
        if key not in record:
            raise SchemaError(f"event record missing {key!r}")
    if not _is_float(record["time"]) or record["time"] < 0:
        raise SchemaError(f"bad event time {record['time']!r}")
    name = record["name"]
    spec = EVENT_CATALOG.get(name)
    if spec is None:
        raise SchemaError(f"unknown event {name!r}")
    if record["category"] != spec.category:
        raise SchemaError(
            f"event {name!r}: category {record['category']!r} != "
            f"schema category {spec.category!r}")
    data = record["data"]
    if not isinstance(data, dict):
        raise SchemaError(f"event {name!r}: data must be a dict")
    spec.validate_data(data)


def validate_record(record: dict) -> str:
    """Validate any JSONL record; returns its type tag."""
    rtype = record.get("type")
    if rtype == RECORD_HEADER:
        if record.get("schema") != TRACE_SCHEMA_VERSION:
            raise SchemaError(
                f"unsupported schema {record.get('schema')!r} "
                f"(expected {TRACE_SCHEMA_VERSION})")
        if record.get("vantage_point") not in ("client", "server", "unknown"):
            raise SchemaError(
                f"bad vantage_point {record.get('vantage_point')!r}")
        return RECORD_HEADER
    if rtype == RECORD_FOOTER:
        if not _is_int(record.get("events")) or record["events"] < 0:
            raise SchemaError("footer: bad 'events' count")
        if not _is_int(record.get("dropped")) or record["dropped"] < 0:
            raise SchemaError("footer: bad 'dropped' count")
        return RECORD_FOOTER
    validate_event(record)
    return RECORD_EVENT


def validate_stream(records, require_header: bool = True,
                    require_footer: bool = True) -> dict:
    """Validate a full JSONL stream; returns summary statistics.

    ``records`` is any iterable of parsed JSON objects in stream order.
    """
    counts: dict = {"events": 0, "by_name": {}}
    saw_header = saw_footer = False
    footer: Optional[dict] = None
    for i, record in enumerate(records):
        rtype = validate_record(record)
        if rtype == RECORD_HEADER:
            if i != 0:
                raise SchemaError("header record not first in stream")
            saw_header = True
        elif rtype == RECORD_FOOTER:
            saw_footer = True
            footer = record
        else:
            if saw_footer:
                raise SchemaError("event record after footer")
            counts["events"] += 1
            by = counts["by_name"]
            by[record["name"]] = by.get(record["name"], 0) + 1
    if require_header and not saw_header:
        raise SchemaError("stream has no header record")
    if require_footer and not saw_footer:
        raise SchemaError("stream has no footer record")
    if footer is not None and footer["events"] != counts["events"]:
        raise SchemaError(
            f"footer claims {footer['events']} events, "
            f"stream has {counts['events']}")
    return counts
