"""Streaming JSONL output for traces.

One JSON object per line: a ``header`` record (schema version, vantage
point), any number of ``event`` records, and a closing ``footer`` record
carrying the event/drop totals so a consumer can detect truncated files.
Events are written as they are recorded — a crashed run still leaves a
parseable prefix — which is what lets CI upload traces of long smoke runs
without buffering them in memory.
"""

from __future__ import annotations

import io
import json
import pathlib
from typing import Optional, Union

from .schema import (
    RECORD_EVENT,
    RECORD_FOOTER,
    RECORD_HEADER,
    TRACE_SCHEMA_VERSION,
)


class JsonlTraceWriter:
    """Writes a trace stream to a path or a file-like object."""

    def __init__(self, target: Union[str, pathlib.Path, io.IOBase],
                 title: str = "pquic-repro trace"):
        if isinstance(target, (str, pathlib.Path)):
            self._fp = open(target, "w", encoding="utf-8")
            self._owns_fp = True
        else:
            self._fp = target
            self._owns_fp = False
        self.title = title
        self.events_written = 0
        self._header_written = False
        self._closed = False

    def _write(self, record: dict) -> None:
        self._fp.write(json.dumps(record, separators=(",", ":")) + "\n")

    def write_header(self, vantage_point: str = "unknown",
                     **extra) -> None:
        if self._header_written:
            return
        self._header_written = True
        record = {"type": RECORD_HEADER, "schema": TRACE_SCHEMA_VERSION,
                  "title": self.title, "vantage_point": vantage_point}
        record.update(extra)
        self._write(record)

    def write_event(self, record: dict) -> None:
        if self._closed:
            raise ValueError("writer already closed")
        if not self._header_written:
            self.write_header()
        if record.get("type") != RECORD_EVENT:
            record = dict(record)
            record["type"] = RECORD_EVENT
        self._write(record)
        self.events_written += 1

    def close(self, dropped: int = 0) -> None:
        if self._closed:
            return
        self._closed = True
        if not self._header_written:
            self.write_header()
        self._write({"type": RECORD_FOOTER, "events": self.events_written,
                     "dropped": dropped})
        self._fp.flush()
        if self._owns_fp:
            self._fp.close()


def read_jsonl(source: Union[str, pathlib.Path, io.IOBase]) -> dict:
    """Parse a JSONL trace back into ``{header, events, footer}``.

    Purely structural — no schema validation; feed ``events`` (or all
    ``records``) to :func:`repro.trace.schema.validate_stream` for that.
    """
    if isinstance(source, (str, pathlib.Path)):
        with open(source, "r", encoding="utf-8") as fp:
            lines = fp.read().splitlines()
    else:
        lines = source.read().splitlines()
    header: Optional[dict] = None
    footer: Optional[dict] = None
    events = []
    records = []
    for line in lines:
        if not line.strip():
            continue
        record = json.loads(line)
        records.append(record)
        rtype = record.get("type")
        if rtype == RECORD_HEADER:
            header = record
        elif rtype == RECORD_FOOTER:
            footer = record
        else:
            events.append(record)
    return {"header": header, "events": events, "footer": footer,
            "records": records}
