"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the aggregation half of the observability layer: anchors
and host code record raw numbers here, and registries *merge* — a
per-connection registry folds into a simulator-wide one, simulator-wide
registries fold across experiment repetitions.  Merging is exact for
counters and histograms (same bucket bounds add bucket-wise), and
max-biased for gauges (documented below), so aggregation order never
changes a result.

Nothing in this module touches a hot path: metric objects are only
consulted when host code explicitly records into them.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional, Sequence

from repro.core.protoop import Anchor

#: Default bucket upper bounds for millisecond latencies.
DEFAULT_MS_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                      500.0, 1000.0, 2000.0, 5000.0)
#: Default bucket upper bounds for byte sizes.
DEFAULT_BYTES_BUCKETS = (256.0, 512.0, 1024.0, 1500.0, 4096.0, 16384.0,
                         65536.0, 262144.0, 1048576.0)


class MetricError(ValueError):
    """Inconsistent use of the registry (type or bucket mismatch)."""


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricError("counters only go up")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value.  Merging keeps the maximum — the only
    order-independent choice for "last seen" values from concurrent
    sources (peak queue depth, peak cwnd, ...)."""

    kind = "gauge"
    __slots__ = ("value", "_set")

    def __init__(self) -> None:
        self.value = 0.0
        self._set = False

    def set(self, value: float) -> None:
        self.value = value
        self._set = True

    def merge(self, other: "Gauge") -> None:
        if other._set and (not self._set or other.value > self.value):
            self.value = other.value
            self._set = True

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram: ``bounds`` are inclusive upper bounds, with
    an implicit overflow bucket above the last bound.

    ``counts[i]`` is the number of observations ``v <= bounds[i]`` (and
    above ``bounds[i-1]``); ``counts[-1]`` the overflow.  Histograms with
    identical bounds merge bucket-wise, which is exact — the merged
    histogram equals one that observed both input streams.
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_MS_BUCKETS):
        b = tuple(float(x) for x in bounds)
        if not b:
            raise MetricError("histogram needs at least one bound")
        if any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise MetricError(f"bounds must strictly increase: {b}")
        self.bounds = b
        self.counts = [0] * (len(b) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise MetricError(
                f"cannot merge histograms with different bounds "
                f"({self.bounds} vs {other.bounds})")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding the
        q-th observation (the last bound for overflow)."""
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]

    def snapshot(self) -> dict:
        return {
            "kind": self.kind, "count": self.count,
            "sum": round(self.total, 6),
            "min": self.min, "max": self.max,
            "buckets": [
                {"le": bound, "count": self.counts[i]}
                for i, bound in enumerate(self.bounds)
            ] + [{"le": None, "count": self.counts[-1]}],
        }


class MetricsRegistry:
    """A named collection of metrics with exact merge semantics."""

    def __init__(self, label: str = ""):
        self.label = label
        self._metrics: dict = {}

    def _get(self, name: str, kind, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(*args)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise MetricError(
                f"metric {name!r} is a {metric.kind}, not a "
                f"{kind.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_MS_BUCKETS) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(bounds)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise MetricError(f"metric {name!r} is a {metric.kind}, "
                              f"not a histogram")
        elif metric.bounds != tuple(float(b) for b in bounds):
            raise MetricError(f"metric {name!r} re-declared with "
                              f"different bounds")
        return metric

    def names(self) -> list:
        return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics.get(name)

    def merge(self, other: "MetricsRegistry", prefix: str = "") -> None:
        """Fold ``other`` into this registry, optionally prefixing names
        (e.g. ``prefix="client."`` for per-connection roll-ups)."""
        for name, metric in other._metrics.items():
            mine = self._metrics.get(prefix + name)
            if mine is None:
                if isinstance(metric, Histogram):
                    mine = Histogram(metric.bounds)
                else:
                    mine = type(metric)()
                self._metrics[prefix + name] = mine
            elif type(mine) is not type(metric):
                raise MetricError(
                    f"merge conflict on {prefix + name!r}: "
                    f"{mine.kind} vs {metric.kind}")
            mine.merge(metric)

    def snapshot(self) -> dict:
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}


class ConnectionMetrics:
    """Feed a registry from a connection's protoop anchors.

    The per-connection aggregation point of the observability layer: like
    :class:`~repro.trace.tracer.ConnectionTracer` it observes the
    connection exclusively through ``post`` anchors — the same gray-box
    interface plugins use — so attaching it changes nothing about the
    transport.  It also exposes the registry as ``conn.metrics`` for host
    subsystems (containment, exchange) to record into.
    """

    def __init__(self, conn, registry: Optional[MetricsRegistry] = None,
                 prefix: str = ""):
        self.conn = conn
        self.registry = registry if registry is not None else MetricsRegistry()
        self.prefix = prefix
        self._attached: list = []
        conn.metrics = self.registry
        r = self.registry
        p = prefix
        hooks = [
            ("packet_sent_event", self._on_sent),
            ("packet_received_event", self._on_received),
            ("packet_lost_event", self._on_lost),
            ("rtt_updated", self._on_rtt),
            ("cc_window_updated", self._on_cwnd),
            ("stream_opened", self._on_stream),
        ]
        # Create the series up front so snapshots are stable even for
        # connections that never see the corresponding event.
        r.counter(p + "packets_sent")
        r.counter(p + "bytes_sent")
        r.counter(p + "packets_received")
        r.counter(p + "packets_lost")
        r.counter(p + "streams_opened")
        r.histogram(p + "rtt_ms", DEFAULT_MS_BUCKETS)
        r.histogram(p + "packet_size_bytes", DEFAULT_BYTES_BUCKETS)
        r.gauge(p + "cwnd_peak")
        # Path-validation / migration counters are recorded host-side by
        # QuicConnection._record_path_metric (they fire from timer and
        # receive paths, not from anchored protoops); the names are never
        # prefixed so per-path series aggregate identically across
        # vantage points.  Pre-created for stable snapshots.
        for name in ("challenges_sent", "validated", "failed", "migrations",
                     "cids_rotated", "amp_blocked", "off_path_rejected",
                     "stateless_resets"):
            r.counter("quic.path." + name)
        # Loss-recovery counters, recorded host-side by
        # QuicConnection._record_recovery_metric (PTO fires from the
        # timer path) — unprefixed like quic.path.* for the same reason.
        for name in ("pto_fired", "probes_sent", "spurious_losses",
                     "persistent_congestion"):
            r.counter("quic.recovery." + name)
        table = conn.protoops
        for name, fn in hooks:
            table.attach(name, Anchor.POST, fn)
            self._attached.append((name, fn))

    # --- hooks ------------------------------------------------------------

    def _on_sent(self, conn, args, result) -> None:
        (sent,) = args
        p = self.prefix
        self.registry.counter(p + "packets_sent").inc()
        self.registry.counter(p + "bytes_sent").inc(sent.size)
        self.registry.histogram(
            p + "packet_size_bytes", DEFAULT_BYTES_BUCKETS).observe(sent.size)

    def _on_received(self, conn, args, result) -> None:
        self.registry.counter(self.prefix + "packets_received").inc()

    def _on_lost(self, conn, args, result) -> None:
        self.registry.counter(self.prefix + "packets_lost").inc()

    def _on_rtt(self, conn, args, result) -> None:
        path, latest = args
        self.registry.histogram(
            self.prefix + "rtt_ms").observe(latest * 1000.0)

    def _on_cwnd(self, conn, args, result) -> None:
        path, cwnd = args
        gauge = self.registry.gauge(self.prefix + "cwnd_peak")
        if cwnd > gauge.value or not gauge._set:
            gauge.set(float(cwnd))

    def _on_stream(self, conn, args, result) -> None:
        self.registry.counter(self.prefix + "streams_opened").inc()

    def detach(self) -> None:
        table = self.conn.protoops
        for name, fn in self._attached:
            table.detach(name, Anchor.POST, fn)
        self._attached.clear()
        if getattr(self.conn, "metrics", None) is self.registry:
            self.conn.metrics = None
