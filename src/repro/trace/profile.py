"""PRE execution profiling: attribute cost to pluglets.

The paper evaluates PRE overhead in aggregate (Table 3); at production
scale the question becomes *which pluglet on which protocol operation* is
burning the budget.  A :class:`PreProfiler` attached to a connection
makes :class:`~repro.core.plugin.PluginInstance` record, per
``(plugin, pluglet, protoop)``:

* **fuel** — PRE instructions executed (the interpreter's and the JIT's
  batched accounting agree bit-for-bit, so fuel is engine-independent);
* **helper calls** — crossings of the pluglet/host boundary;
* **wall time** — host-clock seconds inside ``vm.run``;
* **execution path** — JIT-compiled runs vs interpreter fallbacks;
* **faults** — invocations that raised.

Profiling is strictly opt-in: without an attached profiler the invoke
path keeps a single ``is not None`` test on an instance attribute, and
the protoop dispatcher is untouched (run counting is embedded in the
table's cached call plans rather than branching on every dispatch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class ProfileRecord:
    """Accumulated cost of one pluglet on one protocol operation."""

    plugin: str
    pluglet: str
    protoop: str
    invocations: int = 0
    fuel: int = 0
    helper_calls: int = 0
    wall_s: float = 0.0
    faults: int = 0
    jit_runs: int = 0
    interp_runs: int = 0

    @property
    def path(self) -> str:
        if self.jit_runs and self.interp_runs:
            return "mixed"
        return "jit" if self.jit_runs else "interp"

    def merge(self, other: "ProfileRecord") -> None:
        self.invocations += other.invocations
        self.fuel += other.fuel
        self.helper_calls += other.helper_calls
        self.wall_s += other.wall_s
        self.faults += other.faults
        self.jit_runs += other.jit_runs
        self.interp_runs += other.interp_runs

    def as_dict(self) -> dict:
        """Schema-valid ``pluglet_profile`` event data."""
        return {
            "plugin": self.plugin,
            "pluglet": self.pluglet,
            "protoop": self.protoop,
            "invocations": self.invocations,
            "fuel": self.fuel,
            "helper_calls": self.helper_calls,
            "wall_ms": round(self.wall_s * 1000.0, 6),
            "faults": self.faults,
            "jit_runs": self.jit_runs,
            "interp_runs": self.interp_runs,
            "path": self.path,
        }


class PreProfiler:
    """Per-pluglet PRE cost attribution, sharable across connections.

    The same profiler may be attached to several connections (a client
    and every server-side connection of a run, say); records merge under
    the ``(plugin, pluglet, protoop)`` key.
    """

    def __init__(self) -> None:
        self.records: dict = {}
        self._conns: list = []

    # --- wiring -----------------------------------------------------------

    def attach(self, conn) -> "PreProfiler":
        """Install on a connection: existing and future plugin instances
        report here, and the protoop table starts per-op run counting."""
        conn.profiler = self
        for instance in getattr(conn, "plugins", {}).values():
            instance._profiler = self
        table = getattr(conn, "protoops", None)
        if table is not None:
            table.enable_run_counting()
        self._conns.append(conn)
        return self

    def detach(self, conn) -> None:
        if getattr(conn, "profiler", None) is self:
            conn.profiler = None
        for instance in getattr(conn, "plugins", {}).values():
            if instance._profiler is self:
                instance._profiler = None
        table = getattr(conn, "protoops", None)
        if table is not None:
            table.disable_run_counting()
        if conn in self._conns:
            self._conns.remove(conn)

    # --- recording --------------------------------------------------------

    def record(self, plugin: str, pluglet: str, protoop: str, *,
               fuel: int, helper_calls: int, wall_s: float,
               jit: bool, fault: bool = False) -> None:
        key = (plugin, pluglet, protoop)
        rec = self.records.get(key)
        if rec is None:
            rec = ProfileRecord(plugin, pluglet, protoop)
            self.records[key] = rec
        rec.invocations += 1
        rec.fuel += fuel
        rec.helper_calls += helper_calls
        rec.wall_s += wall_s
        if fault:
            rec.faults += 1
        if jit:
            rec.jit_runs += 1
        else:
            rec.interp_runs += 1

    def merge(self, other: "PreProfiler") -> None:
        for key, rec in other.records.items():
            mine = self.records.get(key)
            if mine is None:
                self.records[key] = ProfileRecord(*key)
                mine = self.records[key]
            mine.merge(rec)

    # --- reporting --------------------------------------------------------

    def summary(self) -> list:
        """Profile rows as schema-valid dicts, costliest fuel first."""
        return [rec.as_dict() for rec in
                sorted(self.records.values(),
                       key=lambda r: (-r.fuel, r.plugin, r.pluglet,
                                      r.protoop))]

    def totals(self) -> dict:
        return {
            "invocations": sum(r.invocations for r in self.records.values()),
            "fuel": sum(r.fuel for r in self.records.values()),
            "helper_calls": sum(r.helper_calls
                                for r in self.records.values()),
            "wall_ms": round(sum(r.wall_s for r in self.records.values())
                             * 1000.0, 6),
            "faults": sum(r.faults for r in self.records.values()),
        }

    def protoop_runs(self, conn=None) -> dict:
        """Host-side per-protoop run counts from the attached tables."""
        conns = [conn] if conn is not None else self._conns
        merged: dict = {}
        for c in conns:
            table = getattr(c, "protoops", None)
            for name, count in getattr(table, "run_counts", {}).items():
                merged[name] = merged.get(name, 0) + count
        return merged

    def format_table(self, max_rows: Optional[int] = None) -> str:
        """A human-readable attribution table for the CLI."""
        rows = self.summary()
        if max_rows is not None:
            rows = rows[:max_rows]
        if not rows:
            return "no pluglet executions recorded"
        headers = ("plugin", "pluglet", "protoop", "calls", "fuel",
                   "helpers", "wall-ms", "path", "faults")
        table = [headers]
        for r in rows:
            table.append((r["plugin"], r["pluglet"], r["protoop"],
                          str(r["invocations"]), str(r["fuel"]),
                          str(r["helper_calls"]),
                          f"{r['wall_ms']:.3f}", r["path"],
                          str(r["faults"])))
        widths = [max(len(row[i]) for row in table)
                  for i in range(len(headers))]
        lines = []
        for j, row in enumerate(table):
            cells = [
                row[i].ljust(widths[i]) if i < 3
                else row[i].rjust(widths[i])
                for i in range(len(headers))
            ]
            lines.append("  ".join(cells).rstrip())
            if j == 0:
                lines.append("  ".join("-" * w for w in widths))
        t = self.totals()
        lines.append("")
        lines.append(
            f"total: {t['invocations']} invocations, {t['fuel']} fuel, "
            f"{t['helper_calls']} helper calls, {t['wall_ms']:.3f} ms, "
            f"{t['faults']} faults")
        return "\n".join(lines)
