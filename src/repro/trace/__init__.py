"""Unified observability: schema-versioned traces, metrics, PRE profiling.

The paper's first demonstration plugin is *monitoring* — observing a
connection through protocol-operation anchors — and this package scales
that idea into the host's own observability layer:

* :mod:`repro.trace.schema` — the versioned event catalog and validators;
* :mod:`repro.trace.tracer` — :class:`ConnectionTracer`, the qlog
  pipeline (in-memory, streaming JSONL, strict validation);
* :mod:`repro.trace.writer` — JSONL streaming with header/footer framing;
* :mod:`repro.trace.metrics` — counters / gauges / mergeable fixed-bucket
  histograms, aggregated per connection and simulator-wide;
* :mod:`repro.trace.profile` — per-pluglet PRE cost attribution
  (fuel, wall time, helper calls, JIT vs interpreter path).

Everything is opt-in and zero-cost when disabled: hooks attach through
the same protoop anchors plugins use, and the hot paths carry no
tracing branches unless a tracer/profiler is installed.
"""

from .metrics import (
    DEFAULT_BYTES_BUCKETS,
    DEFAULT_MS_BUCKETS,
    ConnectionMetrics,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from .profile import PreProfiler, ProfileRecord
from .schema import (
    EVENT_CATALOG,
    TRACE_SCHEMA_VERSION,
    EventSpec,
    SchemaError,
    validate_event,
    validate_record,
    validate_stream,
)
from .tracer import ConnectionTracer, TraceEvent
from .writer import JsonlTraceWriter, read_jsonl

__all__ = [
    "ConnectionMetrics",
    "ConnectionTracer",
    "Counter",
    "DEFAULT_BYTES_BUCKETS",
    "DEFAULT_MS_BUCKETS",
    "EVENT_CATALOG",
    "EventSpec",
    "Gauge",
    "Histogram",
    "JsonlTraceWriter",
    "MetricError",
    "MetricsRegistry",
    "PreProfiler",
    "ProfileRecord",
    "SchemaError",
    "TRACE_SCHEMA_VERSION",
    "TraceEvent",
    "read_jsonl",
    "validate_event",
    "validate_record",
    "validate_stream",
]
