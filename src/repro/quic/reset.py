"""Stateless reset (RFC 9000 §10.3).

An endpoint that lost its per-connection state (crash, reboot) cannot
decrypt incoming short-header packets, but it can still terminate the
orphaned connection: it answers with a datagram that is indistinguishable
from a regular packet except for a 16-byte token in its tail.  The peer
recognises the token — learned through transport parameters or
NEW_CONNECTION_ID frames — and enters DRAINING.

Tokens are derived from a static per-endpoint key and the connection ID,
so a rebooted endpoint regenerates exactly the tokens it advertised
before losing state — the property the whole mechanism rests on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional

RESET_TOKEN_LENGTH = 16
#: §10.3: 5 bytes that mimic a short header + the 16-byte token.
MIN_STATELESS_RESET_SIZE = 21
#: Upper bound on generated resets; mimicking larger packets buys nothing.
MAX_STATELESS_RESET_SIZE = 64

_DERIVE_LABEL = b"repro stateless_reset"


def stateless_reset_token(key: bytes, cid: bytes) -> bytes:
    """The reset token an endpoint holding ``key`` uses for ``cid``.

    A keyed SHA-256 over the connection ID (the static-key-plus-CID
    construction §10.3.2 suggests), truncated to 16 bytes."""
    digest = hashlib.sha256(_DERIVE_LABEL + key + cid).digest()
    return digest[:RESET_TOKEN_LENGTH]


def build_stateless_reset(token: bytes, rng: random.Random,
                          trigger_size: int) -> Optional[bytes]:
    """A reset datagram answering a ``trigger_size``-byte datagram.

    Looks like a short-header packet with random payload and ends in the
    token.  It must be strictly smaller than the trigger (§10.3.3 —
    otherwise two stateless endpoints could ping-pong resets forever), so
    triggers of up to ``MIN_STATELESS_RESET_SIZE`` bytes go unanswered."""
    size = min(trigger_size - 1, MAX_STATELESS_RESET_SIZE)
    if size < MIN_STATELESS_RESET_SIZE:
        return None
    head = bytes([0x40 | rng.randrange(0x40)])  # fixed bit, short header
    filler = bytes(rng.randrange(256)
                   for _ in range(size - 1 - RESET_TOKEN_LENGTH))
    return head + filler + token


def is_stateless_reset(data: bytes, tokens) -> bool:
    """Whether ``data`` ends in one of ``tokens``.

    Checked only for datagrams that failed normal processing, as §10.3.1
    requires — a decryptable packet is never treated as a reset."""
    if len(data) < MIN_STATELESS_RESET_SIZE or not tokens:
        return False
    if data[0] & 0x80:  # long header form bit: never a stateless reset
        return False
    return data[-RESET_TOKEN_LENGTH:] in tokens
