"""QUIC transport parameters, including PQUIC's two plugin parameters.

Section 3.4: "PQUIC proposes two new QUIC transport parameters:
``supported_plugins`` and ``plugins_to_inject``, both containing an ordered
list of protocol plugins identifiers."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .errors import TransportError, TransportErrorCode
from .wire import Buffer

# Parameter IDs (core ones follow RFC 9000 numbering; the PQUIC ones use a
# private-range id, as an experimental extension would).
PARAM_IDLE_TIMEOUT = 0x01
PARAM_STATELESS_RESET_TOKEN = 0x02
PARAM_MAX_UDP_PAYLOAD_SIZE = 0x03
PARAM_INITIAL_MAX_DATA = 0x04
PARAM_INITIAL_MAX_STREAM_DATA = 0x05
PARAM_INITIAL_MAX_STREAMS_BIDI = 0x08
PARAM_INITIAL_MAX_STREAMS_UNI = 0x09
PARAM_ACK_DELAY_EXPONENT = 0x0A
PARAM_MAX_ACK_DELAY = 0x0B
PARAM_ORIGINAL_DCID = 0x0F
PARAM_SUPPORTED_PLUGINS = 0x50
PARAM_PLUGINS_TO_INJECT = 0x51


@dataclass
class TransportParameters:
    """The negotiated per-connection transport configuration."""

    idle_timeout: float = 30.0
    max_udp_payload_size: int = 1452
    initial_max_data: int = 1024 * 1024
    initial_max_stream_data: int = 256 * 1024
    initial_max_streams_bidi: int = 100
    initial_max_streams_uni: int = 100
    ack_delay_exponent: int = 3
    #: Most delay (seconds) this endpoint may hold ACKs; the peer caps
    #: reported ack_delays here when adjusting RTT (RFC 9002 §5.3).
    max_ack_delay: float = 0.025
    original_dcid: Optional[bytes] = None
    #: §10.3: the stateless reset token the server will use for the CID
    #: negotiated in the handshake (servers only; RFC 9000 §18.2).
    stateless_reset_token: Optional[bytes] = None
    supported_plugins: list = field(default_factory=list)
    plugins_to_inject: list = field(default_factory=list)

    def serialize(self) -> bytes:
        buf = Buffer()

        def put(pid: int, payload: bytes) -> None:
            buf.push_varint(pid)
            buf.push_varint_prefixed_bytes(payload)

        def put_varint(pid: int, value: int) -> None:
            b = Buffer()
            b.push_varint(value)
            put(pid, b.data())

        put_varint(PARAM_IDLE_TIMEOUT, int(self.idle_timeout * 1000))
        put_varint(PARAM_MAX_UDP_PAYLOAD_SIZE, self.max_udp_payload_size)
        put_varint(PARAM_INITIAL_MAX_DATA, self.initial_max_data)
        put_varint(PARAM_INITIAL_MAX_STREAM_DATA, self.initial_max_stream_data)
        put_varint(PARAM_INITIAL_MAX_STREAMS_BIDI, self.initial_max_streams_bidi)
        put_varint(PARAM_INITIAL_MAX_STREAMS_UNI, self.initial_max_streams_uni)
        put_varint(PARAM_ACK_DELAY_EXPONENT, self.ack_delay_exponent)
        put_varint(PARAM_MAX_ACK_DELAY, int(self.max_ack_delay * 1000))
        if self.original_dcid is not None:
            put(PARAM_ORIGINAL_DCID, self.original_dcid)
        if self.stateless_reset_token is not None:
            put(PARAM_STATELESS_RESET_TOKEN, self.stateless_reset_token)
        for pid, names in (
            (PARAM_SUPPORTED_PLUGINS, self.supported_plugins),
            (PARAM_PLUGINS_TO_INJECT, self.plugins_to_inject),
        ):
            if names:
                put(pid, _encode_plugin_list(names))
        return buf.data()

    @classmethod
    def parse(cls, data: bytes) -> "TransportParameters":
        params = cls()
        buf = Buffer(data)
        seen: set[int] = set()
        while not buf.eof():
            pid = buf.pull_varint()
            payload = buf.pull_varint_prefixed_bytes()
            if pid in seen:
                raise TransportError(
                    TransportErrorCode.TRANSPORT_PARAMETER_ERROR,
                    f"duplicate transport parameter 0x{pid:x}",
                )
            seen.add(pid)
            inner = Buffer(payload)
            if pid == PARAM_IDLE_TIMEOUT:
                params.idle_timeout = inner.pull_varint() / 1000.0
            elif pid == PARAM_MAX_UDP_PAYLOAD_SIZE:
                params.max_udp_payload_size = inner.pull_varint()
            elif pid == PARAM_INITIAL_MAX_DATA:
                params.initial_max_data = inner.pull_varint()
            elif pid == PARAM_INITIAL_MAX_STREAM_DATA:
                params.initial_max_stream_data = inner.pull_varint()
            elif pid == PARAM_INITIAL_MAX_STREAMS_BIDI:
                params.initial_max_streams_bidi = inner.pull_varint()
            elif pid == PARAM_INITIAL_MAX_STREAMS_UNI:
                params.initial_max_streams_uni = inner.pull_varint()
            elif pid == PARAM_ACK_DELAY_EXPONENT:
                params.ack_delay_exponent = inner.pull_varint()
            elif pid == PARAM_MAX_ACK_DELAY:
                params.max_ack_delay = inner.pull_varint() / 1000.0
            elif pid == PARAM_ORIGINAL_DCID:
                params.original_dcid = payload
            elif pid == PARAM_STATELESS_RESET_TOKEN:
                params.stateless_reset_token = payload
            elif pid == PARAM_SUPPORTED_PLUGINS:
                params.supported_plugins = _decode_plugin_list(payload)
            elif pid == PARAM_PLUGINS_TO_INJECT:
                params.plugins_to_inject = _decode_plugin_list(payload)
            # Unknown parameters are ignored (must-ignore semantics).
        if params.max_udp_payload_size < 1200:
            raise TransportError(
                TransportErrorCode.TRANSPORT_PARAMETER_ERROR,
                "max_udp_payload_size below 1200",
            )
        return params


def _encode_plugin_list(names: list) -> bytes:
    buf = Buffer()
    buf.push_varint(len(names))
    for name in names:
        buf.push_varint_prefixed_bytes(name.encode("ascii"))
    return buf.data()


def _decode_plugin_list(payload: bytes) -> list:
    buf = Buffer(payload)
    count = buf.pull_varint()
    names = []
    for _ in range(count):
        names.append(buf.pull_varint_prefixed_bytes().decode("ascii"))
    return names
