"""The PQUIC connection: a QUIC state machine decomposed into protocol
operations.

Every step a plugin might want to observe or replace — frame parsing and
processing, RTT updates, loss detection, packet preparation, path
selection, the Spin Bit — is dispatched through a per-connection
:class:`~repro.core.protoop.ProtoopTable`, exactly as Figure 1b describes:
the monolithic call graph becomes a web of named, anchored operations.

The connection is sans-io: it consumes datagrams via
:meth:`receive_datagram`, emits them via :meth:`datagrams_to_send`, and
reports its next timer via :meth:`next_timer`.  The endpoint adapter in
:mod:`repro.quic.endpoint` glues it to the network simulator.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.protoop import Anchor, ProtoopError, ProtoopTable

from . import frames as F
from .cc import DEFAULT_INITIAL_WINDOW, MAX_DATAGRAM_SIZE, NewRenoController
from .crypto import (
    TAG_LENGTH,
    CryptoPair,
    initial_crypto_pair,
    one_rtt_crypto_pair,
    session_secret,
)
from .errors import (
    CryptoError,
    ProtocolViolation,
    QuicError,
    TransportError,
    TransportErrorCode,
)
from .packet import (
    FORM_LONG,
    Epoch,
    PacketHeader,
    PacketType,
    decode_packet_number,
    encode_long_header,
    encode_short_header,
    parse_header,
    seal_packet,
    seal_packet_into,
)
from .recovery import (
    K_PERSISTENT_CONGESTION_THRESHOLD,
    MAX_PTO_PROBES,
    PacketNumberSpace,
    RttEstimator,
    SentPacket,
)
from .reset import is_stateless_reset, stateless_reset_token
from .stream import ReceiveStream, SendStream
from .transport_params import TransportParameters
from .wire import Buffer

import itertools

_instance_counter = itertools.count(1)


def reset_instance_counter() -> None:
    """Reset the per-process connection counter that perturbs connection
    RNG seeds.  Experiments that must be bit-identical across repeated
    in-process runs (e.g. fault-injection determinism checks) call this
    between runs so the i-th connection of each run draws the same seed."""
    global _instance_counter
    _instance_counter = itertools.count(1)

CID_LENGTH = 8
INITIAL_PADDING_TARGET = 1200
HANDSHAKE_CH = 1
HANDSHAKE_SH = 2
#: §8.1: an unvalidated path may carry at most 3x the bytes received on it.
AMP_FACTOR = 3
#: PATH_CHALLENGE (re)transmissions before a path is declared FAILED.
MAX_PATH_PROBES = 6


class ConnectionState:
    """Connection lifecycle states (RFC 9000 §10).

    ``ACTIVE`` covers handshake and established operation.  ``close()``
    moves to ``CLOSING`` (we sent CONNECTION_CLOSE and retransmit it,
    rate-limited, while peer packets keep arriving); receiving the
    peer's CONNECTION_CLOSE moves to ``DRAINING`` (send nothing).  Both
    hold connection IDs for a drain period of 3×PTO so late packets
    still match a known connection instead of spawning a new one, then
    the drain timer retires the CIDs, releases per-connection buffers
    and lands in ``CLOSED``.  An idle timeout closes silently: straight
    to ``CLOSED``, nothing sent, no drain.
    """

    ACTIVE = "active"
    CLOSING = "closing"
    DRAINING = "draining"
    CLOSED = "closed"


@dataclass
class QuicConfiguration:
    """Per-endpoint configuration."""

    is_client: bool = True
    transport_parameters: TransportParameters = field(default_factory=TransportParameters)
    initial_window: int = DEFAULT_INITIAL_WINDOW
    max_udp_payload_size: int = 1280
    seed: int = 0
    #: Plugins available in the local cache (names).
    supported_plugins: list = field(default_factory=list)
    #: Plugins this endpoint wants the peer to run (names).
    plugins_to_inject: list = field(default_factory=list)
    #: Static key deriving per-CID stateless reset tokens (§10.3); None
    #: disables stateless reset generation and advertisement.
    stateless_reset_key: Optional[bytes] = None
    #: Pre-RFC 9002 PTO response: declare every outstanding packet lost
    #: on PTO expiry instead of sending 1-2 probe packets.  Exists solely
    #: as the baseline the ``lossy-recovery`` benchmark compares probe
    #: recovery against; none of the kill-switch modes sets it.
    declare_all_on_pto: bool = False


class PathState:
    """Path validation states (RFC 9000 §8.2).

    A path starts ``UNVALIDATED``; sending a PATH_CHALLENGE moves it to
    ``PROBING``; the matching PATH_RESPONSE moves it to ``VALIDATED``.
    ``MAX_PATH_PROBES`` unanswered probes (PTO backoff) end in
    ``FAILED``; host code retires a path with ``ABANDONED``."""

    UNVALIDATED = "unvalidated"
    PROBING = "probing"
    VALIDATED = "validated"
    FAILED = "failed"
    ABANDONED = "abandoned"


class Path:
    """One network path: addresses, its own 1-RTT packet-number space,
    RTT estimator, congestion controller and validation state.

    Single-path connections use path 0 only; the multipath plugin creates
    additional paths (§4.3).  Path 0 starts VALIDATED for a client — the
    handshake itself validates the server address (§8.1) — while every
    other path must earn VALIDATED through a PATH_CHALLENGE/PATH_RESPONSE
    exchange."""

    def __init__(self, index: int, initial_window: int):
        self.index = index
        self.local_addr: Optional[str] = None
        self.peer_addr: Optional[str] = None
        self.space = PacketNumberSpace()
        self.rtt = RttEstimator()
        self.cc = NewRenoController(initial_window)
        self.active = index == 0
        self.challenge_data: Optional[bytes] = None
        self.state = PathState.VALIDATED if index == 0 else PathState.UNVALIDATED
        #: PATH_CHALLENGE/PATH_RESPONSE frames that must leave on *this*
        #: path (§8.2.2), unlike ordinary (path-agnostic) control frames.
        self.probe_frames: list = []
        #: PTO probe bundles (RFC 9002 §6.2.4): each inner list is the
        #: retransmittable frame set of one oldest-unacked packet, sent
        #: as one probe packet, exempt from the congestion window (§7.5).
        self.pto_probes: list = []
        self.probe_count = 0
        self.probe_deadline: Optional[float] = None
        #: §8.1 anti-amplification: while True, at most ``AMP_FACTOR``
        #: times ``amp_received`` bytes may leave on this path.
        self.amp_limited = False
        self.amp_received = 0
        self.amp_sent = 0

    @property
    def validated(self) -> bool:
        return self.state == PathState.VALIDATED

    @validated.setter
    def validated(self, value: bool) -> None:
        # Back-compat setter (plugin bytecode writes FLD_PATH_VALIDATED
        # through it); observable state *transitions* should go through
        # Connection._set_path_state instead.
        self.state = PathState.VALIDATED if value else PathState.UNVALIDATED
        if value:
            self.amp_limited = False
            self.probe_deadline = None

    def amp_budget(self) -> int:
        """Bytes still sendable under the 3x anti-amplification limit."""
        if not self.amp_limited:
            return 1 << 62
        return AMP_FACTOR * self.amp_received - self.amp_sent

    def __repr__(self) -> str:
        return f"<Path {self.index} {self.local_addr}->{self.peer_addr}>"


@dataclass
class ReservedFrame:
    """A frame slot booked by a plugin via ``reserve_frames`` (§2.3)."""

    frame: F.Frame
    plugin: str
    retransmittable: bool = True
    congestion_controlled: bool = True


class QuicConnection:
    """A pluginized QUIC connection endpoint."""

    def __init__(self, configuration: QuicConfiguration, now: float = 0.0):
        self.configuration = configuration
        self.is_client = configuration.is_client
        # Unique per instance yet deterministic across identical runs: mix
        # the configured seed with a process-wide connection counter.
        self._rng = random.Random(
            (configuration.seed << 24)
            ^ (next(_instance_counter) << 1)
            ^ (0 if self.is_client else 1)
        )
        self.local_cid = bytes(self._rng.randrange(256) for _ in range(CID_LENGTH))
        self.peer_cid = b""
        self._original_dcid = b""
        self.protoops = ProtoopTable()
        self.frame_registry = F.FrameRegistry()
        self.now = now

        # Packet-number spaces: Initial is global, 1-RTT is per-path.
        self.initial_space = PacketNumberSpace()
        self.paths: list[Path] = [Path(0, configuration.initial_window)]
        if not self.is_client:
            # §8.1: until the handshake completes, the client address is
            # unvalidated and the server may send at most 3x what it
            # received on the path.
            self.paths[0].amp_limited = True
        self.crypto: dict[Epoch, Optional[CryptoPair]] = {
            Epoch.INITIAL: None,
            Epoch.ONE_RTT: None,
        }

        # Handshake / crypto stream state (Initial epoch only in this model).
        self._crypto_send = SendStream(-1, 1 << 30)
        self._crypto_recv = ReceiveStream(-1, 1 << 30)
        self._key_share = bytes(self._rng.randrange(256) for _ in range(32))
        self._handshake_sent = False
        self.handshake_complete = False
        self.peer_transport_parameters: Optional[TransportParameters] = None

        # Streams and flow control.
        self.streams_send: dict[int, SendStream] = {}
        self.streams_recv: dict[int, ReceiveStream] = {}
        self._next_stream_id = 0 if self.is_client else 1
        self.max_data_local = configuration.transport_parameters.initial_max_data
        self.max_data_remote = 0  # learned from peer params
        self.data_sent = 0
        self.data_received = 0
        self._max_data_frame_pending = False

        # Control frames awaiting transmission (flow control updates, etc.).
        self._control_frames: list[F.Frame] = []
        # Plugin-reserved frames (deficit-round-robin between plugins).
        self.reserved_frames: list[ReservedFrame] = []

        # Spin bit state (§4.1: the only cleartext performance signal).
        self.spin_bit = False

        # Timers and lifecycle.
        self._pto_count = 0
        self._last_activity = now
        #: Extension wakeup hints: callables returning an absolute deadline
        #: (connection time) or None.  Consulted by :meth:`next_timer`
        #: alongside the loss and idle alarms so sans-io extensions (e.g.
        #: the plugin exchanger's retry clock) can wake an otherwise idle
        #: connection.  Plain callables — not protoops — to keep the
        #: paper's 72-operation census intact.
        self.wakeup_hints: list[Callable[[], Optional[float]]] = []
        self.state = ConnectionState.ACTIVE
        self.close_error: Optional[tuple[int, str]] = None
        self._close_frame_pending: Optional[F.ConnectionCloseFrame] = None
        #: Absolute deadline of the drain period (3×PTO) while CLOSING or
        #: DRAINING; None otherwise.
        self.drain_deadline: Optional[float] = None
        #: CIDs this connection retired on termination; endpoints unbind
        #: them from their demux tables.
        self.retired_cids: list[bytes] = []
        # Connection ID rotation (§5.1/§9.5): spare CIDs we issued to the
        # peer, unused CIDs the peer issued to us, and the stateless reset
        # tokens (§10.3) we learned for the peer's CIDs.
        self.issued_cids: list[bytes] = []
        self.peer_cids_available: list[bytes] = []
        self._peer_reset_tokens: set[bytes] = set()
        #: Endpoint callback: a fresh local CID was issued to the peer
        #: (servers bind it into their demux table).
        self.on_cid_issued: Optional[Callable[[bytes], None]] = None
        # CONNECTION_CLOSE retransmit rate limit (RFC 9000 §10.2.1): one
        # close packet per 2^k packets received while closing.
        self._close_rexmit_threshold = 1
        self._close_packets_seen = 0

        # Application callbacks.
        self.on_stream_data: Optional[Callable[[int, bytes, bool], None]] = None
        self.on_established: Optional[Callable[[], None]] = None
        self.on_close: Optional[Callable[[int, str], None]] = None
        #: Fires once at *termination* (CLOSED), after the drain period —
        #: unlike ``on_close``, which fires when closing begins.
        self.on_closed: Optional[Callable[["QuicConnection"], None]] = None
        self.on_plugin_message: Optional[Callable[[str, bytes], None]] = None

        # Plugin machinery attachment points (populated by repro.core).
        self.plugins: dict[str, Any] = {}
        self.plugin_queues: dict[str, list] = {}
        #: Additional local addresses a multipath plugin may open paths on.
        self.extra_local_addresses: list = []

        # Reusable per-packet encode buffer (cleared before each use).
        self._payload_buf = Buffer()
        # Batched datapath (REPRO_BATCH=0 restores one packet per
        # datagram).  Read once at construction so a single process can
        # host batched and unbatched endpoints side by side (the bench
        # A/B does exactly that).
        self._batch = os.environ.get("REPRO_BATCH", "1") != "0"
        # Pooled scatter-gather packet buffer: header ‖ ciphertext ‖ tag
        # are appended into it, never concatenated.
        self._pkt_buf = bytearray()
        # Differential hook: when True every outgoing packet is also
        # produced through the legacy encode/seal path and compared
        # byte-for-byte; mismatches accumulate here.
        self._shadow_encode = False
        self.shadow_mismatches: list = []

        # Statistics (read by the monitoring plugin through get/set API).
        self.stats = {
            "packets_sent": 0,
            "packets_received": 0,
            "bytes_sent": 0,
            "bytes_received": 0,
            "packets_lost": 0,
            "packets_acked": 0,
            "probes_sent": 0,
            "spurious_losses": 0,
            "persistent_congestion": 0,
            "pto_fired": 0,
            "frames_received": 0,
            "acks_received": 0,
            "spurious_received": 0,
            "ecn_ce_received": 0,
            "migrations": 0,
            "cids_rotated": 0,
            "path_challenges_sent": 0,
            "path_responses_sent": 0,
            "amp_blocked": 0,
            "off_path_rejected": 0,
            "stateless_resets_received": 0,
            "undersized_initials_dropped": 0,
        }

        self._register_protocol_operations()

        if self.is_client:
            self._start_client_handshake()

    # ------------------------------------------------------------------
    # Protocol operation registration (the gray box of §2.2).
    # ------------------------------------------------------------------

    def _register_protocol_operations(self) -> None:
        t = self.protoops
        # -- Parameterized frame operations (the 4 parameterized protoops).
        for name in ("parse_frame", "process_frame", "write_frame", "notify_frame"):
            t.register(name, None, parameterized=True)
        t.register("parse_frame", self._default_parse_frame, param="default",
                   parameterized=True)
        t.register("write_frame", self._default_write_frame, param="default",
                   parameterized=True)
        for ftype, handler in self._default_frame_processors().items():
            t.register("process_frame", handler, param=ftype, parameterized=True)
        for ftype, handler in self._default_frame_notifiers().items():
            t.register("notify_frame", handler, param=ftype, parameterized=True)

        # -- Internal processing.
        t.register("update_rtt", self._op_update_rtt)
        t.register("set_loss_alarm", self._op_set_loss_alarm)
        t.register("on_loss_alarm", self._op_on_loss_alarm)
        t.register("detect_lost_packets", self._op_detect_lost_packets)
        t.register("on_packet_acked", self._op_on_packet_acked)
        t.register("on_packet_lost", self._op_on_packet_lost)
        t.register("congestion_on_ack", self._op_congestion_on_ack)
        t.register("congestion_on_loss", self._op_congestion_on_loss)
        t.register("retransmit_packet", self._op_retransmit_packet)
        t.register("stream_to_send", self._op_stream_to_send)
        t.register("schedule_frames", self._op_schedule_frames)
        t.register("reserve_frame_slot", self._op_reserve_frame_slot)
        t.register("get_max_data", self._op_get_max_data)
        t.register("update_flow_credit", self._op_update_flow_credit)
        t.register("should_send_max_data", self._op_should_send_max_data)
        t.register("create_stream", self._op_create_stream)
        t.register("get_send_stream", self._op_get_send_stream)
        t.register("get_receive_stream", self._op_get_receive_stream)
        t.register("stream_data_received", self._op_stream_data_received)
        t.register("crypto_data_received", self._op_crypto_data_received)
        t.register("process_handshake_message", self._op_process_handshake_message)
        t.register("derive_one_rtt_keys", self._op_derive_one_rtt_keys)
        t.register("set_idle_timer", self._op_set_idle_timer)
        t.register("queue_control_frame", self._op_queue_control_frame)

        # -- Packet management.
        t.register("prepare_packet", self._op_prepare_packet)
        t.register("finalize_and_protect_packet", self._op_finalize_and_protect)
        t.register("parse_packet_header", self._op_parse_packet_header)
        t.register("decode_packet_number", self._op_decode_packet_number)
        t.register("process_incoming_packet", self._op_process_incoming_packet)
        t.register("set_spin_bit", self._op_set_spin_bit)
        t.register("get_destination_cid", self._op_get_destination_cid)
        t.register("get_source_cid", self._op_get_source_cid)
        t.register("select_sending_path", self._op_select_sending_path)
        t.register("get_path", self._op_get_path)
        t.register("create_path", self._op_create_path)
        t.register("path_bytes_allowed", self._op_path_bytes_allowed)
        t.register("map_incoming_path", self._op_map_incoming_path)
        t.register("process_recovered_payload", self._op_process_recovered_payload)

        # -- Introspection operations (used by monitoring & multipath).
        t.register("get_rtt", lambda conn, i=0: self.paths[i].rtt.smoothed,
                   doc="Smoothed RTT of a path.")
        t.register("get_cwin", lambda conn, i=0: self.paths[i].cc.cwnd,
                   doc="Congestion window of a path.")
        t.register("get_bytes_in_flight",
                   lambda conn, i=0: self.paths[i].cc.bytes_in_flight,
                   doc="Bytes currently in flight on a path.")
        t.register("stream_bytes_pending",
                   lambda conn: sum(s.bytes_in_flight_or_pending
                                    for s in self.streams_send.values()),
                   doc="Application bytes waiting for (re)transmission.")
        t.register("is_ack_needed",
                   lambda conn, i=0: self.paths[i].space.ack_needed,
                   doc="Whether the path's space owes the peer an ACK.")
        t.register("get_largest_acked",
                   lambda conn, i=0: self.paths[i].space.largest_acked,
                   doc="Largest packet number acked by the peer on a path.")
        t.register("get_next_packet_number",
                   lambda conn, i=0: self.paths[i].space.next_packet_number,
                   doc="Next packet number to be used on a path.")

        # -- Connection-workflow events (empty anchors, §2.2 category 4).
        for event in (
            "connection_established",
            "before_sending_packet",
            "packet_ready",            # (epoch, path_index, pn, plaintext)
            "packet_sent_event",       # (sent_packet,)
            "packet_received_event",   # (epoch, path_index, pn, plaintext)
            "frames_decoded",          # after decoding all frames of a packet
            "packet_lost_event",       # after a packet loss
            "packet_acked_event",
            "rtt_updated",
            "stream_opened",
            "stream_closed",
            "handshake_message_sent",
            "connection_closing",
            "connection_closed",
            "idle_timeout_event",
            "plugin_injected",
            "path_created",
            "path_validated",
            "ack_frame_built",
            "flow_control_raised",
            "loss_alarm_fired",
            "cc_window_updated",
            "spin_bit_flipped",
        ):
            t.declare(event)
        # Fault containment & recovery events (plugin_fault,
        # plugin_quarantined, plugin_exchange_retry, ...) are declared by
        # the modules that emit them (repro.core.containment/.exchange):
        # they are extensions, not part of the paper's 72-protoop census.

    # ------------------------------------------------------------------
    # Handshake.
    # ------------------------------------------------------------------

    def _start_client_handshake(self) -> None:
        self.peer_cid = bytes(self._rng.randrange(256) for _ in range(CID_LENGTH))
        self._original_dcid = self.peer_cid
        self.crypto[Epoch.INITIAL] = initial_crypto_pair(self._original_dcid, True)
        # The ClientHello is queued lazily (first send) so extensions set
        # up after construction — e.g. a PluginExchanger advertising the
        # cache via supported_plugins — make it into the handshake.
        self._ch_pending = True

    def _handshake_params(self) -> TransportParameters:
        params = self.configuration.transport_parameters
        params.supported_plugins = list(self.configuration.supported_plugins)
        params.plugins_to_inject = list(self.configuration.plugins_to_inject)
        if not self.is_client and self.configuration.stateless_reset_key is not None:
            # §10.3: only the server advertises a reset token in transport
            # parameters (the client's handshake CID is transient).
            params.stateless_reset_token = stateless_reset_token(
                self.configuration.stateless_reset_key, self.local_cid
            )
        return params

    def _queue_handshake_message(self, msg_type: int) -> None:
        buf = Buffer()
        buf.push_uint8(msg_type)
        buf.push_bytes(self._key_share)
        buf.push_varint_prefixed_bytes(self._handshake_params().serialize())
        self._crypto_send.write(buf.data())
        self._handshake_sent = True
        self.protoops.run(self, "handshake_message_sent", None, msg_type)

    def _op_process_handshake_message(self, conn, data: bytes) -> None:
        """Process one handshake message arriving on the crypto stream."""
        buf = Buffer(data)
        msg_type = buf.pull_uint8()
        peer_share = buf.pull_bytes(32)
        params = TransportParameters.parse(buf.pull_varint_prefixed_bytes())
        self.peer_transport_parameters = params
        self.max_data_remote = params.initial_max_data
        if params.stateless_reset_token:
            self._peer_reset_tokens.add(bytes(params.stateless_reset_token))
        for path in self.paths:
            path.rtt.max_ack_delay = params.max_ack_delay
        if msg_type == HANDSHAKE_CH and not self.is_client:
            self.protoops.run(self, "derive_one_rtt_keys", None, peer_share)
            self._queue_handshake_message(HANDSHAKE_SH)
            self._set_established()
        elif msg_type == HANDSHAKE_SH and self.is_client:
            self.protoops.run(self, "derive_one_rtt_keys", None, peer_share)
            self._set_established()
        else:
            raise ProtocolViolation(f"unexpected handshake message {msg_type}")

    def _op_derive_one_rtt_keys(self, conn, peer_share: bytes) -> None:
        if self.is_client:
            secret = session_secret(self._key_share, peer_share)
        else:
            secret = session_secret(peer_share, self._key_share)
        self.crypto[Epoch.ONE_RTT] = one_rtt_crypto_pair(secret, self.is_client)

    def _set_established(self) -> None:
        if self.handshake_complete:
            return
        self.handshake_complete = True
        # Handshake progress also resets the PTO backoff (RFC 9002 §6.2.1).
        self._pto_count = 0
        if not self.is_client:
            # Completing the handshake validates the client address (§8.1)
            # and is the moment to offer a spare CID the client can rotate
            # to when it migrates (§9.5).
            self.paths[0].amp_limited = False
            self._issue_new_cid()
        self.protoops.run(self, "connection_established", None)
        if self.on_established is not None:
            self.on_established()

    def _issue_new_cid(self) -> None:
        cid = bytes(self._rng.randrange(256) for _ in range(CID_LENGTH))
        token = b""
        if self.configuration.stateless_reset_key is not None:
            token = stateless_reset_token(
                self.configuration.stateless_reset_key, cid)
        self.issued_cids.append(cid)
        self._control_frames.append(F.NewConnectionIdFrame(
            sequence=len(self.issued_cids), connection_id=cid,
            reset_token=token))
        if self.on_cid_issued is not None:
            self.on_cid_issued(cid)

    # ------------------------------------------------------------------
    # Public application API.
    # ------------------------------------------------------------------

    def create_stream(self) -> int:
        return self.protoops.run_external(self, "create_stream", None)

    def send_stream_data(self, stream_id: int, data: bytes, fin: bool = False) -> None:
        stream = self.protoops.run(self, "get_send_stream", None, stream_id)
        stream.write(data)
        if fin:
            stream.finish()

    @property
    def closed(self) -> bool:
        """True once closing has begun (any state past ACTIVE)."""
        return self.state is not ConnectionState.ACTIVE

    def close(self, error_code: int = 0, reason: str = "") -> None:
        if self.state is not ConnectionState.ACTIVE:
            return
        self.protoops.run(self, "connection_closing", None, error_code, reason)
        self._close_frame_pending = F.ConnectionCloseFrame(
            error_code=error_code, reason=reason
        )
        self._finish_close(error_code, reason)

    def _finish_close(
        self, error_code: int, reason: str,
        next_state: str = ConnectionState.CLOSING,
    ) -> None:
        """Leave ACTIVE: record the error, notify, enter ``next_state``.

        ``CLOSING``/``DRAINING`` arm the drain timer; ``CLOSED`` (silent
        close, e.g. idle timeout) terminates immediately.
        """
        self.close_error = (error_code, reason)
        self.protoops.run(self, "connection_closed", None)
        if self.on_close is not None:
            self.on_close(error_code, reason)
        if next_state is ConnectionState.CLOSED:
            self._set_state(next_state)
            self._terminate()
        else:
            self._set_state(next_state)
            self.drain_deadline = self.now + 3 * self.paths[0].rtt.pto()

    def _set_state(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        # Declared on first emission, like the containment/exchange
        # events: a lifecycle extension, not part of the paper's
        # 72-protoop census.
        if not self.protoops.exists("connection_state_changed"):
            self.protoops.declare("connection_state_changed")
        self.protoops.run(self, "connection_state_changed", None, state)

    def _terminate(self) -> None:
        """End of the drain period: retire CIDs, release per-connection
        state and fire ``on_closed``.  Idempotent."""
        if self.retired_cids:
            return
        self._set_state(ConnectionState.CLOSED)
        self.drain_deadline = None
        self._close_frame_pending = None
        self._release_state()
        if self.on_closed is not None:
            self.on_closed(self)

    def _release_state(self) -> None:
        """Retire connection IDs and drop the bulky per-connection
        buffers (streams, sent-packet maps, received ranges) so a server
        holding many terminated connections does not accrete memory."""
        self.retired_cids = [
            cid for cid in (self.local_cid, self._original_dcid) if cid
        ]
        self.streams_send.clear()
        self.streams_recv.clear()
        self._control_frames.clear()
        self.reserved_frames.clear()
        self.wakeup_hints.clear()
        for space, _path in self._spaces_and_paths():
            space.release()

    def abort_on_plugin_failure(self, error: TransportError) -> None:
        """Plugin machinery failures terminate the connection (§2.1)."""
        if self.state is ConnectionState.ACTIVE:
            self._close_frame_pending = F.ConnectionCloseFrame(
                error_code=int(error.code), reason=error.reason
            )
            self._finish_close(int(error.code), error.reason)

    def run_external_protoop(self, name: str, param: Any = None, *args: Any) -> Any:
        """Application entry point to external protocol operations (§2.4)."""
        return self.protoops.run_external(self, name, param, *args)

    def push_message_to_app(self, plugin_name: str, message: bytes) -> None:
        """Used by plugins to asynchronously message the application."""
        if self.on_plugin_message is not None:
            self.on_plugin_message(plugin_name, message)
        else:
            self.plugin_queues.setdefault(plugin_name, []).append(message)

    # ------------------------------------------------------------------
    # Stream protoops.
    # ------------------------------------------------------------------

    def _op_create_stream(self, conn) -> int:
        stream_id = self._next_stream_id
        self._next_stream_id += 4
        self._get_or_create_streams(stream_id)
        self.protoops.run(self, "stream_opened", None, stream_id)
        return stream_id

    def _remote_stream_limit(self) -> int:
        params = self.peer_transport_parameters
        if params is None:
            return self.configuration.transport_parameters.initial_max_stream_data
        return params.initial_max_stream_data

    def _get_or_create_streams(self, stream_id: int) -> None:
        if stream_id not in self.streams_send:
            self.streams_send[stream_id] = SendStream(
                stream_id, self._remote_stream_limit()
            )
            self.streams_recv[stream_id] = ReceiveStream(
                stream_id,
                self.configuration.transport_parameters.initial_max_stream_data,
            )

    def _op_get_send_stream(self, conn, stream_id: int) -> SendStream:
        self._get_or_create_streams(stream_id)
        return self.streams_send[stream_id]

    def _op_get_receive_stream(self, conn, stream_id: int) -> ReceiveStream:
        self._get_or_create_streams(stream_id)
        return self.streams_recv[stream_id]

    def _op_stream_data_received(self, conn, stream_id: int, readable: bytes, fin: bool) -> None:
        if self.on_stream_data is not None and (readable or fin):
            self.on_stream_data(stream_id, readable, fin)

    def _op_crypto_data_received(self, conn, data: bytes) -> None:
        """Drain complete handshake messages from the crypto stream."""
        stash = getattr(self, "_crypto_pending", b"") + data
        while True:
            if len(stash) < 33:
                break
            buf = Buffer(stash)
            buf.pull_uint8()
            buf.pull_bytes(32)
            try:
                buf.pull_varint_prefixed_bytes()
            except QuicError:
                break
            msg_len = buf.position
            message, stash = stash[:msg_len], stash[msg_len:]
            self.protoops.run(self, "process_handshake_message", None, message)
        self._crypto_pending = stash

    # ------------------------------------------------------------------
    # Flow control protoops.
    # ------------------------------------------------------------------

    def _op_get_max_data(self, conn) -> int:
        return self.max_data_remote

    def _op_should_send_max_data(self, conn) -> bool:
        window = self.configuration.transport_parameters.initial_max_data
        return self.data_received > self.max_data_local - window // 2

    def _op_update_flow_credit(self, conn) -> None:
        """Raise connection and stream receive windows as data is consumed."""
        window = self.configuration.transport_parameters.initial_max_data
        if self.protoops.run(self, "should_send_max_data", None):
            self.max_data_local = self.data_received + window
            self.protoops.run(
                self, "queue_control_frame", None,
                F.MaxDataFrame(maximum=self.max_data_local),
            )
            self.protoops.run(self, "flow_control_raised", None, self.max_data_local)
        stream_window = self.configuration.transport_parameters.initial_max_stream_data
        for stream_id, stream in self.streams_recv.items():
            if stream.final_size is not None:
                continue
            if stream.bytes_received > stream.max_stream_data - stream_window // 2:
                new_limit = stream.grant_credit(stream_window)
                if new_limit:
                    self.protoops.run(
                        self, "queue_control_frame", None,
                        F.MaxStreamDataFrame(stream_id=stream_id, maximum=new_limit),
                    )

    def _op_queue_control_frame(self, conn, frame: F.Frame) -> None:
        self._control_frames.append(frame)

    # ------------------------------------------------------------------
    # Frame parsing / processing defaults.
    # ------------------------------------------------------------------

    def _default_parse_frame(self, conn, buf: Buffer, frame_type: int) -> F.Frame:
        cls = self.frame_registry.lookup(frame_type)
        return cls.parse(buf, frame_type)

    def _default_write_frame(self, conn, frame: F.Frame, buf: Buffer) -> None:
        frame.serialize(buf)

    def _default_frame_processors(self) -> dict:
        return {
            F.PADDING: lambda conn, frame, ctx: None,
            F.PING: lambda conn, frame, ctx: None,
            F.ACK: self._process_ack_frame,
            F.CRYPTO: self._process_crypto_frame,
            "stream": self._process_stream_frame,
            F.MAX_DATA: self._process_max_data_frame,
            F.MAX_STREAM_DATA: self._process_max_stream_data_frame,
            F.MAX_STREAMS: lambda conn, frame, ctx: None,
            F.DATA_BLOCKED: lambda conn, frame, ctx: None,
            F.STREAM_DATA_BLOCKED: lambda conn, frame, ctx: None,
            F.RESET_STREAM: self._process_reset_stream_frame,
            F.STOP_SENDING: lambda conn, frame, ctx: None,
            F.NEW_CONNECTION_ID: self._process_new_connection_id,
            F.PATH_CHALLENGE: self._process_path_challenge,
            F.PATH_RESPONSE: self._process_path_response,
            F.CONNECTION_CLOSE: self._process_connection_close,
            F.CONNECTION_CLOSE + 1: self._process_connection_close,
            F.HANDSHAKE_DONE: lambda conn, frame, ctx: None,
        }

    def _frame_param(self, frame_type: int) -> Any:
        if F.STREAM_BASE <= frame_type < F.STREAM_BASE + 8:
            return "stream"
        return frame_type

    def _process_ack_frame(self, conn, frame: F.AckFrame, ctx: dict) -> None:
        epoch: Epoch = ctx["epoch"]
        path = self.paths[ctx["path_index"]]
        space = self.initial_space if epoch is Epoch.INITIAL else path.space
        self.stats["acks_received"] += 1
        result = space.on_ack_received(frame, self.now, path.rtt)
        # Together with packets_lost this closes the send-side ledger:
        # packets_sent == packets_acked + packets_lost + len(space.sent)
        # at any instant — the conservation law the conformance oracles
        # check across execution modes.
        self.stats["packets_acked"] += len(result.newly_acked)
        if result.latest_rtt is not None:
            self.protoops.run(
                self, "update_rtt", None, path.index, result.latest_rtt, frame.ack_delay
            )
        for pkt in result.newly_acked:
            self.protoops.run(self, "on_packet_acked", None, pkt, path.index)
        for pkt in result.spurious:
            self._run_spurious_loss(pkt, path.index)
        for pkt in result.lost:
            self.protoops.run(self, "on_packet_lost", None, pkt, path.index)
        self._maybe_persistent_congestion(space, path, result.lost)
        if result.newly_acked:
            # Forward progress: the PTO backoff restarts (RFC 9002 §6.2.1).
            self._pto_count = 0

    def _process_crypto_frame(self, conn, frame: F.CryptoFrame, ctx: dict) -> None:
        readable = self._crypto_recv.receive(frame.offset, frame.data, False)
        if readable:
            self.protoops.run(self, "crypto_data_received", None, readable)

    def _process_stream_frame(self, conn, frame: F.StreamFrame, ctx: dict) -> None:
        stream = self.protoops.run(self, "get_receive_stream", None, frame.stream_id)
        before = stream.bytes_received
        readable = stream.receive(frame.offset, frame.data, frame.fin)
        newly = stream.bytes_received - before
        if newly > 0:
            self.data_received += newly
            if self.data_received > self.max_data_local:
                raise TransportError(
                    TransportErrorCode.FLOW_CONTROL_ERROR,
                    "connection flow control exceeded",
                )
        self.protoops.run(
            self, "stream_data_received", None,
            frame.stream_id, readable, stream.is_finished,
        )
        self.protoops.run(self, "update_flow_credit", None)

    def _process_max_data_frame(self, conn, frame: F.MaxDataFrame, ctx: dict) -> None:
        if frame.maximum > self.max_data_remote:
            self.max_data_remote = frame.maximum

    def _process_max_stream_data_frame(self, conn, frame: F.MaxStreamDataFrame, ctx: dict) -> None:
        self._get_or_create_streams(frame.stream_id)
        self.streams_send[frame.stream_id].update_max_stream_data(frame.maximum)

    def _process_reset_stream_frame(self, conn, frame: F.ResetStreamFrame, ctx: dict) -> None:
        self._get_or_create_streams(frame.stream_id)
        stream = self.streams_recv[frame.stream_id]
        stream.final_size = frame.final_size
        self.protoops.run(self, "stream_closed", None, frame.stream_id)

    def _process_new_connection_id(self, conn, frame: F.NewConnectionIdFrame, ctx: dict) -> None:
        """Stash a peer-issued CID (§5.1.1) for rotation on migration
        (§9.5), and its stateless reset token (§10.3) for detection."""
        if frame.connection_id and frame.connection_id not in self.peer_cids_available:
            self.peer_cids_available.append(bytes(frame.connection_id))
        if frame.reset_token:
            self._peer_reset_tokens.add(bytes(frame.reset_token))

    def _process_path_challenge(self, conn, frame: F.PathChallengeFrame, ctx: dict) -> None:
        # §8.2.2: the response must leave on the path the challenge came
        # in on, so it rides the per-path probe queue rather than the
        # path-agnostic control-frame queue.
        path_index = ctx.get("path_index", 0)
        self.paths[path_index].probe_frames.append(
            F.PathResponseFrame(data=frame.data))
        self.stats["path_responses_sent"] += 1

    def _process_path_response(self, conn, frame: F.PathResponseFrame, ctx: dict) -> None:
        for path in self.paths:
            if path.challenge_data == frame.data:
                path.challenge_data = None
                path.probe_deadline = None
                path.probe_count = 0
                path.amp_limited = False
                path.active = True
                self._set_path_state(path, PathState.VALIDATED)
                self.protoops.run(self, "path_validated", None, path.index)

    def _process_connection_close(self, conn, frame: F.ConnectionCloseFrame, ctx: dict) -> None:
        if self.state is ConnectionState.ACTIVE:
            self._finish_close(frame.error_code, frame.reason,
                               next_state=ConnectionState.DRAINING)

    # ------------------------------------------------------------------
    # Path validation, migration and stateless reset (RFC 9000 §8-§10.3).
    # ------------------------------------------------------------------

    def _run_extension_event(self, name: str, *args: Any) -> None:
        """Run a lazily-declared extension event: declared on first
        emission, like the containment/exchange events, so the paper's
        72-protoop census stays intact."""
        if not self.protoops.exists(name):
            self.protoops.declare(name)
        self.protoops.run(self, name, None, *args)

    def _record_path_metric(self, name: str, amount: int = 1) -> None:
        registry = getattr(self, "metrics", None)
        if registry is not None:
            registry.counter("quic.path." + name).inc(amount)

    def _record_recovery_metric(self, name: str, amount: int = 1) -> None:
        """Host-side ``quic.recovery.*`` counters (probes, spurious
        losses, persistent congestion); unprefixed like ``quic.path.*``
        so vantage points aggregate identically."""
        registry = getattr(self, "metrics", None)
        if registry is not None:
            registry.counter("quic.recovery." + name).inc(amount)

    def _emit_cc_state(self, path_index: int, old: str, new: str,
                       trigger: str) -> None:
        if old != new:
            self._run_extension_event(
                "congestion_state_changed", path_index, old, new, trigger)

    def _set_path_state(self, path: Path, state: str) -> None:
        if path.state == state:
            return
        old = path.state
        path.state = state
        self._run_extension_event(
            "path_validation_state_changed", path.index, old, state)
        if state == PathState.VALIDATED:
            self._record_path_metric("validated")
        elif state == PathState.FAILED:
            self._record_path_metric("failed")

    def start_path_validation(self, path_index: int) -> None:
        """Begin (or restart) §8.2 validation of a path: queue a
        PATH_CHALLENGE carrying a fresh random 8-byte token on the path
        itself and arm the PTO-based probe retransmission timer."""
        path = self.paths[path_index]
        path.challenge_data = bytes(
            self._rng.randrange(256) for _ in range(8))
        path.probe_count = 0
        path.probe_frames.append(
            F.PathChallengeFrame(data=path.challenge_data))
        path.probe_deadline = self.now + self._probe_timeout(path)
        self.stats["path_challenges_sent"] += 1
        self._record_path_metric("challenges_sent")
        self._set_path_state(path, PathState.PROBING)

    def _probe_timeout(self, path: Path) -> float:
        # §8.2.1: probe timers back off like PTO.
        return path.rtt.pto() * (1 << min(path.probe_count, 6))

    def _on_probe_timeout(self, path: Path) -> None:
        path.probe_count += 1
        if path.probe_count >= MAX_PATH_PROBES:
            # §8.2.4: give up — the path is unusable.
            path.probe_deadline = None
            path.challenge_data = None
            path.probe_frames = [
                f for f in path.probe_frames if f.type != F.PATH_CHALLENGE
            ]
            path.active = False
            self._set_path_state(path, PathState.FAILED)
            return
        path.probe_frames.append(
            F.PathChallengeFrame(data=path.challenge_data))
        path.probe_deadline = self.now + self._probe_timeout(path)
        self.stats["path_challenges_sent"] += 1
        self._record_path_metric("challenges_sent")

    def on_peer_address_changed(self, path_index: int, new_addr: str,
                                received_bytes: int = 0) -> None:
        """Passive migration (§9): an authenticated packet arrived from a
        new peer address (NAT rebinding).  The path follows the peer,
        loses its congestion and RTT state (§9.4), becomes
        amplification-limited again and must revalidate."""
        path = self.paths[path_index]
        old = path.peer_addr or ""
        path.peer_addr = new_addr
        path.cc = NewRenoController(self.configuration.initial_window)
        max_ack_delay = path.rtt.max_ack_delay
        path.rtt = RttEstimator()
        path.rtt.max_ack_delay = max_ack_delay
        path.amp_limited = not self.is_client
        path.amp_received = received_bytes
        path.amp_sent = 0
        if path.state in (PathState.VALIDATED, PathState.FAILED):
            self._set_path_state(path, PathState.UNVALIDATED)
        self.stats["migrations"] += 1
        self._record_path_metric("migrations")
        self._run_extension_event(
            "connection_migrated", path_index, old, new_addr)
        self.start_path_validation(path_index)

    def migrate(self, new_local_addr: str) -> None:
        """Active client migration (§9.5): move path 0 to a new local
        address, rotate to an unused peer-issued CID so the old and new
        paths cannot be linked, and revalidate."""
        path = self.paths[0]
        old = path.local_addr or ""
        path.local_addr = new_local_addr
        if self.peer_cids_available:
            self.peer_cid = self.peer_cids_available.pop(0)
            self.stats["cids_rotated"] += 1
            self._record_path_metric("cids_rotated")
        self.stats["migrations"] += 1
        self._record_path_metric("migrations")
        self._run_extension_event(
            "connection_migrated", 0, old, new_local_addr)
        if path.state == PathState.VALIDATED:
            self._set_path_state(path, PathState.UNVALIDATED)
        self.start_path_validation(0)

    def note_off_path_packet(self) -> None:
        """An unauthenticated datagram from a foreign address was dropped
        without touching any connection state (§9.3.2)."""
        self.stats["off_path_rejected"] += 1
        self._record_path_metric("off_path_rejected")

    def _handle_stateless_reset(self) -> None:
        """§10.3: the peer lost its state — stop sending immediately."""
        self.stats["stateless_resets_received"] += 1
        self._record_path_metric("stateless_resets")
        self._run_extension_event("stateless_reset")
        self._finish_close(0, "stateless reset",
                           next_state=ConnectionState.DRAINING)

    # ------------------------------------------------------------------
    # ACK / loss protoops.
    # ------------------------------------------------------------------

    def _op_update_rtt(self, conn, path_index: int, latest: float, ack_delay: float) -> float:
        path = self.paths[path_index]
        self.protoops.run(self, "rtt_updated", None, path_index, latest)
        return path.rtt.smoothed

    def _op_on_packet_acked(self, conn, pkt: SentPacket, path_index: int) -> None:
        if pkt.in_flight:
            self.protoops.run(self, "congestion_on_ack", None, pkt, path_index)
        for frame in pkt.frames:
            self.protoops.run(
                self, "notify_frame", self._frame_param(frame.type), frame, True, pkt
            )
        self.protoops.run(self, "packet_acked_event", None, pkt)

    def _op_on_packet_lost(self, conn, pkt: SentPacket, path_index: int) -> None:
        self.stats["packets_lost"] += 1
        if pkt.in_flight:
            self.protoops.run(self, "congestion_on_loss", None, pkt, path_index)
        self.protoops.run(self, "retransmit_packet", None, pkt)
        self.protoops.run(self, "packet_lost_event", None, pkt)

    def _op_congestion_on_ack(self, conn, pkt: SentPacket, path_index: int) -> None:
        path = self.paths[path_index]
        old = path.cc.state
        path.cc.on_ack(pkt.size, self.now, pkt.sent_time,
                       app_limited=pkt.app_limited)
        self._emit_cc_state(path_index, old, path.cc.state, "ack")
        self.protoops.run(self, "cc_window_updated", None, path_index, path.cc.cwnd)

    def _op_congestion_on_loss(self, conn, pkt: SentPacket, path_index: int) -> None:
        path = self.paths[path_index]
        old = path.cc.state
        path.cc.on_loss(pkt.size, self.now, pkt.sent_time)
        self._emit_cc_state(path_index, old, path.cc.state, "loss")
        self.protoops.run(self, "cc_window_updated", None, path_index, path.cc.cwnd)

    def _run_spurious_loss(self, pkt: SentPacket, path_index: int) -> None:
        """Dispatch the ``on_spurious_loss`` protoop anchor, registering
        its default lazily (first spurious loss) so the paper's
        72-protoop census stays intact, like the other extension ops."""
        table = self.protoops
        if not table.exists("on_spurious_loss") or \
                not table.get("on_spurious_loss").defaults:
            table.register("on_spurious_loss", self._op_on_spurious_loss)
        table.run(self, "on_spurious_loss", None, pkt, path_index)

    def _op_on_spurious_loss(self, conn, pkt: SentPacket, path_index: int) -> None:
        """A packet declared lost was later acknowledged: the loss was
        spurious.  The send-side mirror of the receive side's
        ``spurious_received`` accounting — and the congestion response
        the false loss triggered is undone."""
        path = self.paths[path_index]
        self.stats["spurious_losses"] += 1
        self._record_recovery_metric("spurious_losses")
        old = path.cc.state
        if pkt.in_flight:
            path.cc.on_spurious_loss(pkt.size, pkt.lost_time, pkt.sent_time)
        self._emit_cc_state(path_index, old, path.cc.state, "spurious_loss")
        self.protoops.run(self, "cc_window_updated", None, path_index, path.cc.cwnd)

    def _maybe_persistent_congestion(self, space: PacketNumberSpace,
                                     path: Path, lost: list) -> None:
        """RFC 9002 §7.6: collapse cwnd to the minimum only when a
        duration-spanning unbroken run of losses proves the path dead —
        and only once an RTT sample exists to size the duration."""
        if not lost or path.rtt.samples == 0:
            return
        duration = path.rtt.pto() * K_PERSISTENT_CONGESTION_THRESHOLD
        if not space.persistent_congestion(lost, duration):
            return
        old = path.cc.state
        path.cc.on_persistent_congestion()
        self.stats["persistent_congestion"] += 1
        self._record_recovery_metric("persistent_congestion")
        self._emit_cc_state(path.index, old, path.cc.state,
                            "persistent_congestion")
        self.protoops.run(self, "cc_window_updated", None, path.index, path.cc.cwnd)

    def _op_retransmit_packet(self, conn, pkt: SentPacket) -> None:
        for frame in pkt.frames:
            self.protoops.run(
                self, "notify_frame", self._frame_param(frame.type), frame, False, pkt
            )

    def _default_frame_notifiers(self) -> dict:
        """Default ACK/loss notifications per frame type.

        Signature: (conn, frame, acked: bool, sent_packet).
        """
        def stream_notify(conn, frame, acked, pkt):
            stream = self.streams_send.get(frame.stream_id)
            if stream is None:
                return
            if acked:
                stream.on_ack(frame.offset, len(frame.data), frame.fin)
                if stream.all_acked:
                    self.protoops.run(self, "stream_closed", None, frame.stream_id)
            else:
                stream.on_loss(frame.offset, len(frame.data), frame.fin)

        def crypto_notify(conn, frame, acked, pkt):
            if acked:
                self._crypto_send.on_ack(frame.offset, len(frame.data), False)
            else:
                self._crypto_send.on_loss(frame.offset, len(frame.data), False)

        def requeue_on_loss(conn, frame, acked, pkt):
            if not acked:
                self._control_frames.append(frame)

        def ignore(conn, frame, acked, pkt):
            return None

        def path_challenge_lost(conn, frame, acked, pkt):
            # Probe retransmission is timer-driven (PTO backoff in
            # _on_probe_timeout), so a lost challenge is NOT requeued
            # here: doing both would duplicate probes, and the generic
            # control-frame queue could not honour the per-path routing
            # of §8.2.2 anyway.
            return None

        def path_response_lost(conn, frame, acked, pkt):
            # §13.3: a PATH_RESPONSE is sent only once.  If it is lost,
            # the peer's probe-retransmit repeats the PATH_CHALLENGE and
            # a fresh response answers that copy.
            return None

        return {
            "stream": stream_notify,
            F.CRYPTO: crypto_notify,
            F.MAX_DATA: requeue_on_loss,
            F.MAX_STREAM_DATA: requeue_on_loss,
            F.MAX_STREAMS: requeue_on_loss,
            F.RESET_STREAM: requeue_on_loss,
            F.STOP_SENDING: requeue_on_loss,
            F.PING: ignore,
            F.ACK: ignore,
            F.PADDING: ignore,
            F.PATH_CHALLENGE: path_challenge_lost,
            F.PATH_RESPONSE: path_response_lost,
            F.CONNECTION_CLOSE: ignore,
            F.HANDSHAKE_DONE: requeue_on_loss,
            F.NEW_CONNECTION_ID: requeue_on_loss,
            F.DATA_BLOCKED: ignore,
            F.STREAM_DATA_BLOCKED: ignore,
        }

    # ------------------------------------------------------------------
    # Timers.
    # ------------------------------------------------------------------

    def _op_set_loss_alarm(self, conn) -> Optional[float]:
        """Earliest loss/PTO deadline across spaces and paths."""
        deadlines = []
        t = self.initial_space.next_timer(self.paths[0].rtt, self._pto_count)
        if t is not None:
            deadlines.append(t)
        for path in self.paths:
            t = path.space.next_timer(path.rtt, self._pto_count)
            if t is not None:
                deadlines.append(t)
        return min(deadlines) if deadlines else None

    def _op_set_idle_timer(self, conn) -> float:
        return self._last_activity + self.configuration.transport_parameters.idle_timeout

    def next_timer(self) -> Optional[float]:
        if self.state is ConnectionState.CLOSED:
            return None
        if self.drain_deadline is not None:
            return self.drain_deadline
        alarm = self.protoops.run(self, "set_loss_alarm", None)
        idle = self.protoops.run(self, "set_idle_timer", None)
        probes = (p.probe_deadline for p in self.paths)
        hints = (hint() for hint in self.wakeup_hints)
        candidates = [t for t in (alarm, idle, *probes, *hints)
                      if t is not None]
        return min(candidates) if candidates else None

    def handle_timer(self, now: float) -> None:
        if self.state is ConnectionState.CLOSED:
            return
        self.now = max(self.now, now)
        if self.drain_deadline is not None:
            if now >= self.drain_deadline - 1e-12:
                self._terminate()
            return
        idle = self.protoops.run(self, "set_idle_timer", None)
        if now >= idle:
            # Silent close (RFC 9000 §10.1): nothing is sent, no drain.
            self.protoops.run(self, "idle_timeout_event", None)
            self._finish_close(0, "idle timeout",
                               next_state=ConnectionState.CLOSED)
            return
        for path in self.paths:
            if (path.probe_deadline is not None
                    and now >= path.probe_deadline - 1e-12):
                self._on_probe_timeout(path)
        alarm = self.protoops.run(self, "set_loss_alarm", None)
        if alarm is not None and now >= alarm - 1e-12:
            self.protoops.run(self, "on_loss_alarm", None)

    def _op_on_loss_alarm(self, conn) -> None:
        self.protoops.run(self, "loss_alarm_fired", None)
        fired = False
        for space, path in self._spaces_and_paths():
            if space.loss_time is not None and self.now >= space.loss_time - 1e-12:
                lost = self.protoops.run(self, "detect_lost_packets", None, space, path.index)
                for pkt in lost:
                    self.protoops.run(self, "on_packet_lost", None, pkt, path.index)
                self._maybe_persistent_congestion(space, path, lost)
                fired = True
        if not fired:
            # PTO (RFC 9002 §6.2.4): a late ACK is not evidence of loss.
            # Send up to two ack-eliciting probe packets carrying the
            # oldest unacked frames — no packet is declared lost, cwnd
            # is untouched, and the backoff doubles until an ACK or
            # handshake progress resets it.
            self._pto_count += 1
            self.stats["pto_fired"] += 1
            self._record_recovery_metric("pto_fired")
            for space, path in self._spaces_and_paths():
                deadline = space.pto_deadline(path.rtt, max(0, self._pto_count - 1))
                if deadline is not None and self.now >= deadline - 1e-12:
                    if self.configuration.declare_all_on_pto:
                        # Legacy declare-all-lost behavior, kept only as
                        # the bench baseline the probe path must beat.
                        for pkt in space.declare_all_lost():
                            self.protoops.run(
                                self, "on_packet_lost", None, pkt, path.index)
                    else:
                        self._send_pto_probes(space, path)

    def _send_pto_probes(self, space: PacketNumberSpace, path: Path) -> None:
        """Queue 1-2 ack-eliciting probe packets for *space* on *path*.

        Probes retransmit the oldest unacked frames without removing the
        original packets from flight (conservation stays exact: the
        originals remain in ``sent`` until acked or declared lost by the
        normal detector).  Probe bundles are cwnd-exempt (§7.5)."""
        candidates = space.probe_candidates(MAX_PTO_PROBES)
        for pkt in candidates:
            if space is self.initial_space:
                # Handshake data re-enters the crypto send queue; the
                # scheduler already treats Initial crypto as cwnd-exempt.
                self.protoops.run(self, "retransmit_packet", None, pkt)
            else:
                # Only retransmittable frames ride in a probe: unreliable
                # extension frames (DATAGRAM, §4.2) must never be
                # repeated, and path probes are timer-driven (§8.2.2).
                bundle = [
                    f for f in pkt.frames
                    if f.retransmittable
                    and f.type not in (F.PATH_CHALLENGE, F.PATH_RESPONSE)
                ]
                if not bundle:
                    bundle = [F.PingFrame()]
                path.pto_probes.append(bundle)
            self.stats["probes_sent"] += 1
            self._record_recovery_metric("probes_sent")
            self._run_extension_event("probe_sent", pkt, path.index)

    def _op_detect_lost_packets(self, conn, space: PacketNumberSpace, path_index: int) -> list:
        return space.detect_lost(self.now, self.paths[path_index].rtt)

    def _spaces_and_paths(self):
        yield self.initial_space, self.paths[0]
        for path in self.paths:
            yield path.space, path

    # ------------------------------------------------------------------
    # Receiving datagrams.
    # ------------------------------------------------------------------

    def receive_datagram(self, data: bytes, now: float, path_index: int = 0,
                         from_peer: bool = True) -> None:
        if self.state is ConnectionState.CLOSING:
            self._receive_while_closing(data, now)
            return
        if self.state is not ConnectionState.ACTIVE:
            return
        self.now = max(self.now, now)
        self._last_activity = self.now
        self.stats["bytes_received"] += len(data)
        if from_peer and path_index < len(self.paths):
            # §8.1: every byte received on a path earns 3x send credit,
            # decryptable or not (the credit is per address, not per
            # authenticated packet).
            self.paths[path_index].amp_received += len(data)
        try:
            self.protoops.run(self, "process_incoming_packet", None, data, path_index)
        except ProtoopError as exc:
            self.abort_on_plugin_failure(exc)
        except CryptoError:
            # Undecryptable datagrams are dropped silently — unless they
            # end in a stateless reset token we were told about (§10.3).
            if is_stateless_reset(data, self._peer_reset_tokens):
                self._handle_stateless_reset()
        except TransportError as exc:
            self.close(int(exc.code), exc.reason)

    def _receive_while_closing(self, data: bytes, now: float) -> None:
        """CLOSING-state receive path (RFC 9000 §10.2.1/§10.2.2): the
        peer's CONNECTION_CLOSE moves us to DRAINING; any other packet
        re-arms our own close packet, rate-limited by doubling the
        number of packets required between retransmissions."""
        self.now = max(self.now, now)
        if self._datagram_contains_close(data):
            self._close_frame_pending = None
            self._set_state(ConnectionState.DRAINING)
            return
        self._close_packets_seen += 1
        if self._close_packets_seen >= self._close_rexmit_threshold:
            self._close_packets_seen = 0
            self._close_rexmit_threshold *= 2
            if self.close_error is not None and self._close_frame_pending is None:
                self._close_frame_pending = F.ConnectionCloseFrame(
                    error_code=self.close_error[0], reason=self.close_error[1]
                )

    def _datagram_contains_close(self, data: bytes) -> bool:
        """Decrypt and scan a datagram for CONNECTION_CLOSE without
        processing it (used while CLOSING, when normal processing has
        stopped).  Scans every coalesced packet in the datagram (§12.2);
        anything undecodable counts as not-a-close."""
        try:
            buf = Buffer(data)
            while not buf.eof():
                start = buf.position
                header, payload_len = parse_header(buf, CID_LENGTH)
                header_bytes = data[start:buf.position]
                ciphertext = buf.pull_bytes(payload_len)
                pair = self.crypto.get(header.epoch)
                if pair is None:
                    return False
                space = (self.initial_space if header.epoch is Epoch.INITIAL
                         else self.paths[0].space)
                pn = decode_packet_number(
                    header.packet_number, space.largest_received)
                plaintext = pair.recv.open(pn, header_bytes, ciphertext)
                fbuf = Buffer(plaintext)
                while not fbuf.eof():
                    ftype = fbuf.pull_varint()
                    self.frame_registry.lookup(ftype).parse(fbuf, ftype)
                    if ftype in (F.CONNECTION_CLOSE, F.CONNECTION_CLOSE + 1):
                        return True
        except (QuicError, ValueError, KeyError):
            return False
        return False

    def _op_parse_packet_header(self, conn, buf: Buffer) -> tuple:
        return parse_header(buf, CID_LENGTH)

    def _op_decode_packet_number(self, conn, truncated: int, largest: int) -> int:
        return decode_packet_number(truncated, largest)

    def _op_process_incoming_packet(self, conn, data: bytes, path_index: int) -> None:
        """Process every QUIC packet coalesced into the datagram (§12.2).

        Everything up to AEAD opening works on unauthenticated bytes: a
        corrupted datagram must be *dropped*, never close the connection
        (which a bare FrameEncodingError — a TransportError — would do).
        Once at least one packet of the datagram has authenticated, an
        undecodable or undecryptable tail is dropped silently (§12.2:
        receivers ignore coalesced packets they cannot process); only a
        datagram with *no* authenticated packet raises, which keeps the
        stateless-reset check in :meth:`receive_datagram` reachable —
        a reset datagram (§10.3) never authenticates.
        """
        buf = Buffer(data)
        mview = memoryview(data)
        datagram_len = len(data)
        authenticated = 0
        while not buf.eof():
            start = buf.position
            try:
                header, payload_len = self.protoops.run(
                    self, "parse_packet_header", None, buf)
                header_bytes = mview[start:buf.position]
                ciphertext = buf.pull_view(payload_len)
            except ProtoopError:
                raise
            except (TransportError, ValueError) as exc:
                if authenticated:
                    return
                raise CryptoError(f"undecodable packet header: {exc}") from exc
            epoch = header.epoch
            if epoch is Epoch.HANDSHAKE:
                if authenticated:
                    return
                raise CryptoError("handshake epoch unused in this model")
            if (epoch is Epoch.INITIAL and not self.is_client
                    and datagram_len < INITIAL_PADDING_TARGET):
                # §14.1: clients must expand Initial datagrams to 1200
                # bytes (the whole datagram counts, §12.2).  Dropping
                # smaller ones before deriving keys denies spoofed
                # mini-Initials both amplification and server-side state.
                self.stats["undersized_initials_dropped"] += 1
                if authenticated:
                    return
                raise CryptoError("client Initial datagram below 1200 bytes")
            if epoch is Epoch.INITIAL and self.crypto[Epoch.INITIAL] is None:
                # Server side: derive initial keys from the client's DCID.
                self._original_dcid = header.destination_cid
                self.crypto[Epoch.INITIAL] = initial_crypto_pair(
                    header.destination_cid, False)
            pair = self.crypto[epoch]
            if pair is None:
                if authenticated:
                    return
                raise CryptoError(f"no keys for epoch {epoch}")
            if path_index >= len(self.paths):
                path_index = 0
            space = (self.initial_space if epoch is Epoch.INITIAL
                     else self.paths[path_index].space)
            full_pn = self.protoops.run(
                self, "decode_packet_number", None,
                header.packet_number, space.largest_received,
            )
            try:
                plaintext = pair.recv.open(full_pn, header_bytes, ciphertext)
            except CryptoError:
                if authenticated:
                    return
                raise
            authenticated += 1
            if epoch is Epoch.INITIAL and header.source_cid:
                # Both sides learn the peer's chosen source CID from Initials.
                self.peer_cid = header.source_cid
            if epoch is Epoch.ONE_RTT:
                # Spin bit: the server echoes, the client inverts (§4.1 / [96]).
                new_spin = (header.spin_bit if not self.is_client
                            else not header.spin_bit)
                if new_spin != self.spin_bit:
                    self.protoops.run(self, "spin_bit_flipped", None, new_spin)
                self.spin_bit = new_spin
            self._process_payload(epoch, path_index, full_pn, plaintext, space)

    def _process_payload(
        self,
        epoch: Epoch,
        path_index: int,
        pn: int,
        plaintext: bytes,
        space: PacketNumberSpace,
    ) -> None:
        self.stats["packets_received"] += 1
        buf = Buffer(plaintext)
        ctx = {"epoch": epoch, "path_index": path_index, "packet_number": pn}
        ack_eliciting = False
        decoded = []
        table = self.protoops
        while not buf.eof():
            frame_type = buf.pull_varint()
            param = self._frame_param(frame_type)
            if not table.has_behavior("parse_frame", param):
                param = "default"
            frame = table.run(self, "parse_frame", param, buf, frame_type)
            decoded.append((frame_type, frame))
        if not space.record_received(pn, self.now, False):
            self.stats["spurious_received"] += 1
            return  # duplicate (e.g. already FEC-recovered)
        for frame_type, frame in decoded:
            self.stats["frames_received"] += 1
            if frame.ack_eliciting:
                ack_eliciting = True
            param = self._frame_param(frame_type)
            if param not in table.known_params("process_frame"):
                raise ProtocolViolation(f"no processor for frame 0x{frame_type:x}")
            table.run(self, "process_frame", param, frame, ctx)
        if ack_eliciting:
            space.ack_needed = True
        self.protoops.run(self, "frames_decoded", None, epoch, path_index, pn, decoded)
        self.protoops.run(
            self, "packet_received_event", None, epoch, path_index, pn, plaintext
        )

    def _op_process_recovered_payload(self, conn, path_index: int, pn: int, plaintext: bytes) -> None:
        """Inject a FEC-recovered packet payload as if the packet arrived."""
        space = self.paths[path_index].space
        if pn in space.received:
            return
        self._process_payload(Epoch.ONE_RTT, path_index, pn, plaintext, space)

    # ------------------------------------------------------------------
    # Sending datagrams.
    # ------------------------------------------------------------------

    def _op_get_destination_cid(self, conn) -> bytes:
        return self.peer_cid

    def _op_get_source_cid(self, conn) -> bytes:
        return self.local_cid

    def _op_set_spin_bit(self, conn) -> bool:
        return self.spin_bit

    def _op_select_sending_path(self, conn) -> int:
        """Default single-path behaviour; the multipath plugin replaces it."""
        return 0

    def _op_get_path(self, conn, index: int) -> Path:
        return self.paths[index]

    def _op_map_incoming_path(self, conn, local_addr: str, peer_addr: str) -> int:
        """Which path an incoming datagram belongs to. The multipath
        plugin replaces this to create paths for new address pairs."""
        for path in self.paths:
            if path.local_addr == local_addr and path.peer_addr == peer_addr:
                return path.index
        return 0

    def _op_create_path(self, conn, local_addr: str, peer_addr: str) -> int:
        path = Path(len(self.paths), self.configuration.initial_window)
        path.local_addr = local_addr
        path.peer_addr = peer_addr
        path.active = True
        # A server-created path is amplification-limited until validated
        # (§8.1); a client opens paths toward an already-validated server.
        path.amp_limited = not self.is_client
        if self.peer_transport_parameters is not None:
            path.rtt.max_ack_delay = self.peer_transport_parameters.max_ack_delay
        self.paths.append(path)
        self.protoops.run(self, "path_created", None, path.index)
        return path.index

    def _op_path_bytes_allowed(self, conn, path_index: int) -> int:
        return self.paths[path_index].cc.available_window

    def _op_stream_to_send(self, conn) -> Optional[int]:
        """Pick the next stream with sendable data (round-robin-ish)."""
        for stream_id, stream in self.streams_send.items():
            if stream.has_pending and (
                stream.bytes_in_flight_or_pending == 0
                or self.data_sent < self.max_data_remote
                or True
            ):
                return stream_id
        return None

    def _op_reserve_frame_slot(self, conn, reserved: ReservedFrame) -> None:
        self.reserved_frames.append(reserved)

    def reserve_frames(self, reserved: list) -> None:
        """Plugin API (Table 1): book slots for sending frames."""
        for r in reserved:
            self.protoops.run(self, "reserve_frame_slot", None, r)

    def datagrams_to_send(self, now: float) -> list:
        """Build as many packets as credit allows; returns
        [(datagram, path_index), ...].  On the batched path several
        QUIC packets may share one datagram (§12.2 coalescing)."""
        self.now = max(self.now, now)
        out = []
        if self._close_frame_pending is not None:
            pkt = self._build_close_packet()
            if pkt is not None:
                out.append((pkt, 0))
            self._close_frame_pending = None
            return out
        if self.closed:
            return out
        for _ in range(256):  # per-call packet budget
            built = self.protoops.run(self, "prepare_packet", None)
            if built is None:
                break
            out.append(built)
        if self._batch and len(out) > 1:
            out = self._coalesce_datagrams(out)
        return out

    def _coalesce_datagrams(self, packets: list) -> list:
        """Pack consecutive QUIC packets into shared UDP datagrams
        (RFC 9000 §12.2).

        Only a long-header packet carries an explicit Length field, so
        only it may be followed by another packet in the same datagram;
        a short-header packet runs to the datagram end and always closes
        one.  Packets coalesce only onto the same path and never beyond
        the path MTU.  The wire bytes of every packet are unchanged —
        receivers split the train on the Length fields."""
        mtu = self.configuration.max_udp_payload_size
        out = []
        parts: list = []
        parts_len = 0
        parts_path = -1
        prev_open = False  # last appended packet had a long header
        for pkt, path_index in packets:
            if (prev_open and path_index == parts_path
                    and parts_len + len(pkt) <= mtu):
                parts.append(pkt)
                parts_len += len(pkt)
            else:
                if parts:
                    out.append((parts[0] if len(parts) == 1
                                else b"".join(parts), parts_path))
                parts = [pkt]
                parts_len = len(pkt)
                parts_path = path_index
            prev_open = bool(pkt[0] & FORM_LONG)
        if parts:
            out.append((parts[0] if len(parts) == 1
                        else b"".join(parts), parts_path))
        return out

    def _build_close_packet(self) -> Optional[bytes]:
        epoch = Epoch.ONE_RTT if self.crypto[Epoch.ONE_RTT] is not None else Epoch.INITIAL
        if self.crypto[epoch] is None:
            return None
        payload = self._close_frame_pending.to_bytes()
        return self._protect_and_record(epoch, 0, payload, [], False)

    def _op_prepare_packet(self, conn) -> Optional[tuple]:
        """Build one packet if anything needs sending. Returns
        (datagram_bytes, path_index) or None."""
        self.protoops.run(self, "before_sending_packet", None)
        # Initial epoch first (handshake); the call also queues a pending
        # ClientHello.
        if self._initial_needs_sending():
            pkt = self._prepare_epoch_packet(Epoch.INITIAL, 0)
            if pkt is not None:
                return pkt, 0
        if self.crypto[Epoch.ONE_RTT] is None:
            return None
        # Path probes (PATH_CHALLENGE/PATH_RESPONSE) must leave on their
        # specific path (§8.2.2) and PTO probe bundles on the path whose
        # deadline expired, so both bypass path selection.
        for path in self.paths:
            if path.probe_frames or path.pto_probes:
                pkt = self._prepare_epoch_packet(Epoch.ONE_RTT, path.index)
                if pkt is not None:
                    return pkt, path.index
        path_index = self.protoops.run(self, "select_sending_path", None)
        pkt = self._prepare_epoch_packet(Epoch.ONE_RTT, path_index)
        if pkt is not None:
            return pkt, path_index
        return None

    def _initial_needs_sending(self) -> bool:
        if self.crypto[Epoch.INITIAL] is None:
            return False
        if getattr(self, "_ch_pending", False):
            self._ch_pending = False
            self._queue_handshake_message(HANDSHAKE_CH)
        return self._crypto_send.has_pending or self.initial_space.ack_needed

    def _prepare_epoch_packet(self, epoch: Epoch, path_index: int) -> Optional[bytes]:
        path = self.paths[path_index]
        space = self.initial_space if epoch is Epoch.INITIAL else path.space
        budget = self.configuration.max_udp_payload_size - TAG_LENGTH - 32
        if path.amp_limited:
            # §8.1: never put more than 3x the received bytes on an
            # unvalidated path.  Block *before* scheduling so no frame
            # state is consumed for a packet that cannot leave.
            allowed = path.amp_budget() - TAG_LENGTH - 32
            if allowed <= 0:
                self.stats["amp_blocked"] += 1
                self._record_path_metric("amp_blocked")
                return None
            budget = min(budget, allowed)
        frames, ack_only = self.protoops.run(
            self, "schedule_frames", None, epoch, path_index, budget
        )
        if not frames:
            return None
        payload = self._payload_buf
        payload.clear()
        for frame in frames:
            self.protoops.run(
                self, "write_frame",
                self._write_param(frame), frame, payload,
            )
        plaintext = payload.data()
        if self._shadow_encode:
            # Differential check: the scatter-gather encode must be
            # bit-identical to the legacy one-bytes-per-frame path.
            legacy = b"".join(f.to_bytes() for f in frames)
            if legacy != plaintext:
                self.shadow_mismatches.append(("encode", epoch, plaintext, legacy))
        return self._protect_and_record(
            epoch, path_index, plaintext, frames, not ack_only
        )

    def _write_param(self, frame: F.Frame) -> Any:
        param = self._frame_param(frame.type)
        if param in self.protoops.known_params("write_frame"):
            return param
        return "default"

    def _protect_and_record(
        self,
        epoch: Epoch,
        path_index: int,
        plaintext: bytes,
        frames: list,
        ack_eliciting: bool,
    ) -> bytes:
        return self.protoops.run(
            self, "finalize_and_protect_packet", None,
            epoch, path_index, plaintext, frames, ack_eliciting,
        )

    def _op_finalize_and_protect(
        self,
        conn,
        epoch: Epoch,
        path_index: int,
        plaintext: bytes,
        frames: list,
        ack_eliciting: bool,
    ) -> bytes:
        path = self.paths[path_index]
        space = self.initial_space if epoch is Epoch.INITIAL else path.space
        pn = space.take_packet_number()
        self.protoops.run(self, "packet_ready", None, epoch, path_index, pn, plaintext)
        if epoch is Epoch.INITIAL:
            dcid = self.protoops.run(self, "get_destination_cid", None)
            header = encode_long_header(
                PacketType.INITIAL,
                dcid,
                self.protoops.run(self, "get_source_cid", None),
                pn,
                len(plaintext) + TAG_LENGTH,
            )
        else:
            header = encode_short_header(
                self.protoops.run(self, "get_destination_cid", None),
                pn,
                spin_bit=self.protoops.run(self, "set_spin_bit", None),
            )
        pkt_buf = self._pkt_buf
        del pkt_buf[:]
        seal_packet_into(pkt_buf, header, plaintext, self.crypto[epoch].send, pn)
        packet = bytes(pkt_buf)
        if self._shadow_encode:
            # Differential check: scatter-gather sealing must be
            # bit-identical to the legacy header + seal() concatenation.
            legacy = seal_packet(header, plaintext, self.crypto[epoch].send, pn)
            if legacy != packet:
                self.shadow_mismatches.append(("seal", pn, packet, legacy))
        if epoch is Epoch.INITIAL and self.is_client and len(packet) < INITIAL_PADDING_TARGET:
            # Clients pad Initial datagrams (anti-amplification).
            pad = INITIAL_PADDING_TARGET - len(packet)
            padded_plain = plaintext + b"\x00" * pad
            packet = seal_packet(
                encode_long_header(
                    PacketType.INITIAL, dcid,
                    self.local_cid, pn, len(padded_plain) + TAG_LENGTH,
                ),
                padded_plain, self.crypto[epoch].send, pn,
            )
        # Every ack-eliciting frame is tracked for ACK/loss notification;
        # whether a lost frame is retransmitted is the per-type notifier's
        # decision (e.g. DATAGRAM frames only count their losses, §4.2).
        notified = [
            f for f in frames
            if f.ack_eliciting or isinstance(f, F.CryptoFrame)
        ]
        largest_ack = -1
        for f in frames:
            if isinstance(f, F.AckFrame) and f.ranges:
                top = f.ranges.largest()
                if top > largest_ack:
                    largest_ack = top
        sent = SentPacket(
            packet_number=pn,
            sent_time=self.now,
            size=len(packet),
            ack_eliciting=ack_eliciting,
            in_flight=ack_eliciting,
            frames=notified,
            path_id=path_index,
            largest_ack_reported=largest_ack,
        )
        space.on_packet_sent(sent)
        if sent.in_flight:
            path.cc.on_packet_sent(sent.size)
            # §7.8: if the window is still open and nothing more waits,
            # the application — not cwnd — limited this send; its ACK
            # must not grow the window.
            sent.app_limited = (
                path.cc.available_window >= MAX_DATAGRAM_SIZE
                and not self.data_to_send_pending()
            )
        if path.amp_limited:
            path.amp_sent += len(packet)
        self.stats["packets_sent"] += 1
        self.stats["bytes_sent"] += len(packet)
        self._last_activity = self.now
        self.protoops.run(self, "packet_sent_event", None, sent)
        return packet

    # ------------------------------------------------------------------
    # Frame scheduling (default; repro.core.scheduler provides CBQ+DRR
    # once plugins reserve frames).
    # ------------------------------------------------------------------

    def _op_schedule_frames(self, conn, epoch: Epoch, path_index: int, budget: int) -> tuple:
        """Fill one packet's frame list. Returns (frames, ack_only)."""
        from repro.core.scheduler import schedule_packet_frames

        return schedule_packet_frames(self, epoch, path_index, budget)

    # Helpers used by the scheduler ------------------------------------

    def pop_control_frame(self) -> Optional[F.Frame]:
        if self._control_frames:
            return self._control_frames.pop(0)
        return None

    def peek_control_frames(self) -> list:
        return list(self._control_frames)

    def connection_flow_credit(self) -> int:
        return max(0, self.max_data_remote - self.data_sent)

    @property
    def is_established(self) -> bool:
        return self.handshake_complete

    def data_to_send_pending(self) -> bool:
        """True when application data is waiting (used by the scheduler's
        core-traffic guarantee)."""
        return any(s.has_pending for s in self.streams_send.values())
