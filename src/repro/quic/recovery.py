"""Loss recovery: RTT estimation, sent-packet tracking, loss detection.

This is the machinery the paper's protoops wrap: ``update_rtt``,
``process_frame[ACK]``, ``set_loss_alarm``, retransmission decisions — all
exposed as pluggable operations by the connection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .frames import AckFrame, Frame
from .wire import RangeSet

K_GRANULARITY = 0.001  # 1 ms
K_PACKET_THRESHOLD = 3
K_TIME_THRESHOLD = 9 / 8
K_INITIAL_RTT = 0.1
MAX_ACK_DELAY = 0.025
#: ACK frames report at most this many of the highest received ranges.
MAX_ACK_RANGES = 32


class RttEstimator:
    """Smoothed RTT / variance per RFC 9002 §5."""

    def __init__(self, initial_rtt: float = K_INITIAL_RTT):
        self.latest: float = 0.0
        self.min_rtt: float = float("inf")
        self.smoothed: float = initial_rtt
        self.variance: float = initial_rtt / 2
        self.samples = 0
        #: The peer's negotiated ``max_ack_delay`` transport parameter;
        #: caps the ack_delay it may subtract from samples (RFC 9002
        #: §5.3) and bounds the PTO slack.
        self.max_ack_delay = MAX_ACK_DELAY

    def update(self, latest: float, ack_delay: float = 0.0) -> None:
        if latest <= 0:
            return
        self.latest = latest
        self.samples += 1
        if self.samples == 1:
            self.min_rtt = latest
            self.smoothed = latest
            self.variance = latest / 2
            return
        self.min_rtt = min(self.min_rtt, latest)
        # RFC 9002 §5.3: a peer may not claim more delay than it
        # negotiated — unclamped, a misbehaving peer reporting huge
        # ack_delays would drag smoothed RTT toward min_rtt and mask
        # real queueing.
        ack_delay = min(ack_delay, self.max_ack_delay)
        adjusted = latest
        if latest - ack_delay >= self.min_rtt:
            adjusted = latest - ack_delay
        self.variance = 0.75 * self.variance + 0.25 * abs(self.smoothed - adjusted)
        self.smoothed = 0.875 * self.smoothed + 0.125 * adjusted

    def pto(self) -> float:
        return self.smoothed + max(4 * self.variance, K_GRANULARITY) + self.max_ack_delay


@dataclass
class SentPacket:
    """Bookkeeping for one sent, possibly-retransmittable packet."""

    packet_number: int
    sent_time: float
    size: int
    ack_eliciting: bool
    in_flight: bool
    frames: list = field(default_factory=list)
    path_id: int = 0
    #: Largest received packet number this packet's ACK frame reported,
    #: or -1 if it carried no ACK.  When the peer acks this packet it
    #: has provably seen that ACK, so received ranges at or below the
    #: bound can be pruned (they will never need re-reporting).
    largest_ack_reported: int = -1


@dataclass
class AckResult:
    """Outcome of processing one ACK frame."""

    newly_acked: list = field(default_factory=list)
    lost: list = field(default_factory=list)
    latest_rtt: Optional[float] = None


class PacketNumberSpace:
    """Send/receive state for one packet-number space (or one path)."""

    def __init__(self) -> None:
        # Send side.
        self.next_packet_number = 0
        self.sent: dict[int, SentPacket] = {}
        self.largest_acked = -1
        self.loss_time: Optional[float] = None
        self.last_ack_eliciting_sent: Optional[float] = None
        # Receive side.
        self.received = RangeSet()
        self.largest_received = -1
        self.largest_received_time = 0.0
        self.ack_needed = False

    # --- sending ---------------------------------------------------------

    def take_packet_number(self) -> int:
        pn = self.next_packet_number
        self.next_packet_number += 1
        return pn

    def on_packet_sent(self, packet: SentPacket) -> None:
        self.sent[packet.packet_number] = packet
        if packet.ack_eliciting:
            self.last_ack_eliciting_sent = packet.sent_time

    @property
    def ack_eliciting_in_flight(self) -> int:
        return sum(1 for p in self.sent.values() if p.ack_eliciting)

    # --- receiving ---------------------------------------------------------

    def record_received(self, packet_number: int, now: float, ack_eliciting: bool) -> bool:
        """Track an incoming packet number; returns False for duplicates."""
        if packet_number in self.received:
            return False
        self.received.add(packet_number)
        if packet_number > self.largest_received:
            self.largest_received = packet_number
            self.largest_received_time = now
        if ack_eliciting:
            self.ack_needed = True
        return True

    def ack_frame(self, now: float) -> Optional[AckFrame]:
        """Build an ACK frame for everything received so far."""
        if not self.received:
            return None
        delay = max(0.0, now - self.largest_received_time)
        return AckFrame(ranges=self.received.tail(MAX_ACK_RANGES), ack_delay=delay)

    # --- ACK processing & loss detection ------------------------------------

    def on_ack_received(
        self, ack: AckFrame, now: float, rtt: RttEstimator
    ) -> AckResult:
        """Process a peer ACK; detects newly acked and (by packet threshold
        and time threshold) lost packets."""
        result = AckResult()
        largest = ack.ranges.largest()
        # Merge-walk the sorted outstanding packets against the sorted ACK
        # ranges: O(sent + ranges) regardless of how many numbers the
        # ranges cover.
        ranges = list(ack.ranges)
        candidates = []
        ri = 0
        for pn in sorted(self.sent):
            while ri < len(ranges) and pn >= ranges[ri].stop:
                ri += 1
            if ri == len(ranges):
                break
            if pn >= ranges[ri].start:
                candidates.append(pn)
        for pn in candidates:
            pkt = self.sent.pop(pn)
            result.newly_acked.append(pkt)
            if pn == largest and pkt.ack_eliciting:
                result.latest_rtt = now - pkt.sent_time
                rtt.update(result.latest_rtt, ack.ack_delay)
        if largest > self.largest_acked:
            self.largest_acked = largest
        # ACK-of-ACK pruning: the peer just acked packets whose ACK
        # frames reported everything up to `bound`, so it has provably
        # seen those ranges acknowledged — they never need re-reporting
        # and can leave `received`, keeping it bounded on long transfers.
        bound = -1
        for pkt in result.newly_acked:
            if pkt.largest_ack_reported > bound:
                bound = pkt.largest_ack_reported
        if bound >= 0:
            self.received.prune_below(bound)
        result.lost = self.detect_lost(now, rtt)
        return result

    def detect_lost(self, now: float, rtt: RttEstimator) -> list:
        """Packet- and time-threshold loss detection (RFC 9002 §6.1)."""
        self.loss_time = None
        if self.largest_acked < 0:
            return []
        loss_delay = K_TIME_THRESHOLD * max(rtt.latest or rtt.smoothed, rtt.smoothed)
        loss_delay = max(loss_delay, K_GRANULARITY)
        lost: list[SentPacket] = []
        for pn in sorted(self.sent):
            if pn > self.largest_acked:
                continue
            pkt = self.sent[pn]
            # The tolerance keeps this comparison consistent with the
            # re-armed loss_time below: without it, floating-point error
            # can re-arm the alarm at exactly `now` forever.
            if (
                self.largest_acked - pn >= K_PACKET_THRESHOLD
                or pkt.sent_time + loss_delay <= now + 1e-9
            ):
                lost.append(pkt)
            else:
                when = pkt.sent_time + loss_delay
                if self.loss_time is None or when < self.loss_time:
                    self.loss_time = when
        for pkt in lost:
            del self.sent[pkt.packet_number]
        return lost

    def pto_deadline(self, rtt: RttEstimator, pto_count: int) -> Optional[float]:
        """When the PTO alarm should fire, or None if nothing in flight."""
        if self.last_ack_eliciting_sent is None or not self.sent:
            return None
        if not any(p.ack_eliciting for p in self.sent.values()):
            return None
        return self.last_ack_eliciting_sent + rtt.pto() * (1 << pto_count)

    def next_timer(self, rtt: RttEstimator, pto_count: int) -> Optional[float]:
        """Earliest of the loss-time and PTO alarms."""
        candidates = [t for t in (self.loss_time, self.pto_deadline(rtt, pto_count)) if t is not None]
        return min(candidates) if candidates else None

    def release(self) -> None:
        """Drop all send/receive tracking (connection terminated)."""
        self.sent.clear()
        self.received = RangeSet()
        self.loss_time = None
        self.last_ack_eliciting_sent = None
        self.ack_needed = False

    def on_pto(self, now: float, rtt: RttEstimator) -> list:
        """PTO expiry: declare the oldest ack-eliciting packets lost so
        their frames are retransmitted.

        A full implementation sends probe packets; retransmit-on-PTO is an
        accepted simplification that keeps identical recovery externally.
        """
        lost = [self.sent[pn] for pn in sorted(self.sent)]
        self.sent.clear()
        return lost
