"""Loss recovery: RTT estimation, sent-packet tracking, loss detection.

This is the machinery the paper's protoops wrap: ``update_rtt``,
``process_frame[ACK]``, ``set_loss_alarm``, retransmission decisions — all
exposed as pluggable operations by the connection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .frames import AckFrame, Frame
from .wire import RangeSet

K_GRANULARITY = 0.001  # 1 ms
K_PACKET_THRESHOLD = 3
K_TIME_THRESHOLD = 9 / 8
K_INITIAL_RTT = 0.1
#: RFC 9002 §7.6.1: persistent congestion needs a run of losses spanning
#: this many PTO periods with no delivery in between.
K_PERSISTENT_CONGESTION_THRESHOLD = 3
MAX_ACK_DELAY = 0.025
#: ACK frames report at most this many of the highest received ranges.
MAX_ACK_RANGES = 32
#: RFC 9002 §6.2.4: a PTO expiry elicits at most this many probe packets.
MAX_PTO_PROBES = 2
#: Declared-lost packets remembered for spurious-loss detection (§6.1's
#: "packets ACKed after being declared lost"); bounds send-side state.
MAX_LOST_HISTORY = 4096


class RttEstimator:
    """Smoothed RTT / variance per RFC 9002 §5."""

    def __init__(self, initial_rtt: float = K_INITIAL_RTT):
        self.latest: float = 0.0
        self.min_rtt: float = float("inf")
        self.smoothed: float = initial_rtt
        self.variance: float = initial_rtt / 2
        self.samples = 0
        #: The peer's negotiated ``max_ack_delay`` transport parameter;
        #: caps the ack_delay it may subtract from samples (RFC 9002
        #: §5.3) and bounds the PTO slack.
        self.max_ack_delay = MAX_ACK_DELAY

    def update(self, latest: float, ack_delay: float = 0.0) -> None:
        if latest <= 0:
            return
        self.latest = latest
        self.samples += 1
        if self.samples == 1:
            self.min_rtt = latest
            self.smoothed = latest
            self.variance = latest / 2
            return
        self.min_rtt = min(self.min_rtt, latest)
        # RFC 9002 §5.3: a peer may not claim more delay than it
        # negotiated — unclamped, a misbehaving peer reporting huge
        # ack_delays would drag smoothed RTT toward min_rtt and mask
        # real queueing.
        ack_delay = min(ack_delay, self.max_ack_delay)
        adjusted = latest
        if latest - ack_delay >= self.min_rtt:
            adjusted = latest - ack_delay
        self.variance = 0.75 * self.variance + 0.25 * abs(self.smoothed - adjusted)
        self.smoothed = 0.875 * self.smoothed + 0.125 * adjusted

    def pto(self) -> float:
        return self.smoothed + max(4 * self.variance, K_GRANULARITY) + self.max_ack_delay


@dataclass
class SentPacket:
    """Bookkeeping for one sent, possibly-retransmittable packet."""

    packet_number: int
    sent_time: float
    size: int
    ack_eliciting: bool
    in_flight: bool
    frames: list = field(default_factory=list)
    path_id: int = 0
    #: Largest received packet number this packet's ACK frame reported,
    #: or -1 if it carried no ACK.  When the peer acks this packet it
    #: has provably seen that ACK, so received ranges at or below the
    #: bound can be pruned (they will never need re-reporting).
    largest_ack_reported: int = -1
    #: When loss detection declared this packet lost, or -1.0 while it is
    #: still outstanding.  A later ACK of a packet with lost_time >= 0 is
    #: a spurious loss (the congestion response can be undone).
    lost_time: float = -1.0
    #: RFC 9002 §7.8: True when this packet left with the congestion
    #: window still open and nothing more to send — the application, not
    #: congestion, was the bottleneck, so its ACK must not grow cwnd.
    app_limited: bool = False


@dataclass
class AckResult:
    """Outcome of processing one ACK frame."""

    newly_acked: list = field(default_factory=list)
    lost: list = field(default_factory=list)
    #: Packets previously declared lost that this ACK now acknowledges:
    #: the loss (and any congestion reduction it caused) was spurious.
    spurious: list = field(default_factory=list)
    latest_rtt: Optional[float] = None


class PacketNumberSpace:
    """Send/receive state for one packet-number space (or one path)."""

    def __init__(self) -> None:
        # Send side.
        self.next_packet_number = 0
        self.sent: dict[int, SentPacket] = {}
        self.largest_acked = -1
        self.loss_time: Optional[float] = None
        self.last_ack_eliciting_sent: Optional[float] = None
        #: Packet numbers the peer has acknowledged (coalesces to a few
        #: ranges); consulted by the §7.6 persistent-congestion walk — an
        #: acked packet between two losses breaks the run.
        self.acked_pns = RangeSet()
        #: Declared-lost packets awaiting possible late ACKs (spurious
        #: loss detection), newest MAX_LOST_HISTORY only.
        self.lost_packets: dict[int, SentPacket] = {}
        # Receive side.
        self.received = RangeSet()
        self.largest_received = -1
        self.largest_received_time = 0.0
        self.ack_needed = False

    # --- sending ---------------------------------------------------------

    def take_packet_number(self) -> int:
        pn = self.next_packet_number
        self.next_packet_number += 1
        return pn

    def on_packet_sent(self, packet: SentPacket) -> None:
        self.sent[packet.packet_number] = packet
        if packet.ack_eliciting:
            self.last_ack_eliciting_sent = packet.sent_time

    @property
    def ack_eliciting_in_flight(self) -> int:
        return sum(1 for p in self.sent.values() if p.ack_eliciting)

    # --- receiving ---------------------------------------------------------

    def record_received(self, packet_number: int, now: float, ack_eliciting: bool) -> bool:
        """Track an incoming packet number; returns False for duplicates."""
        if packet_number in self.received:
            return False
        self.received.add(packet_number)
        if packet_number > self.largest_received:
            self.largest_received = packet_number
            self.largest_received_time = now
        if ack_eliciting:
            self.ack_needed = True
        return True

    def ack_frame(self, now: float,
                  max_ack_delay: float = MAX_ACK_DELAY) -> Optional[AckFrame]:
        """Build an ACK frame for everything received so far.

        The reported ack_delay is clamped to our own advertised
        ``max_ack_delay`` — the send-side mirror of the §5.3 receive-side
        clamp — so a slow event loop cannot report a delay we never
        negotiated and poison the peer's RTT estimator.
        """
        if not self.received:
            return None
        delay = max(0.0, now - self.largest_received_time)
        delay = min(delay, max_ack_delay)
        return AckFrame(ranges=self.received.tail(MAX_ACK_RANGES), ack_delay=delay)

    # --- ACK processing & loss detection ------------------------------------

    def on_ack_received(
        self, ack: AckFrame, now: float, rtt: RttEstimator
    ) -> AckResult:
        """Process a peer ACK; detects newly acked and (by packet threshold
        and time threshold) lost packets."""
        result = AckResult()
        largest = ack.ranges.largest()
        # Merge-walk the sorted outstanding packets against the sorted ACK
        # ranges: O(sent + ranges) regardless of how many numbers the
        # ranges cover.
        ranges = list(ack.ranges)
        candidates = []
        ri = 0
        for pn in sorted(self.sent):
            while ri < len(ranges) and pn >= ranges[ri].stop:
                ri += 1
            if ri == len(ranges):
                break
            if pn >= ranges[ri].start:
                candidates.append(pn)
        for pn in candidates:
            pkt = self.sent.pop(pn)
            result.newly_acked.append(pkt)
            self.acked_pns.add(pn)
            if pn == largest and pkt.ack_eliciting:
                result.latest_rtt = now - pkt.sent_time
                rtt.update(result.latest_rtt, ack.ack_delay)
        # Spurious losses: the same merge-walk over the declared-lost
        # history.  A hit means the packet actually arrived — it leaves
        # the history, counts as delivered for the §7.6 run check, and
        # the caller can undo the congestion response.
        if self.lost_packets:
            ri = 0
            spurious_pns = []
            for pn in sorted(self.lost_packets):
                while ri < len(ranges) and pn >= ranges[ri].stop:
                    ri += 1
                if ri == len(ranges):
                    break
                if pn >= ranges[ri].start:
                    spurious_pns.append(pn)
            for pn in spurious_pns:
                pkt = self.lost_packets.pop(pn)
                self.acked_pns.add(pn)
                result.spurious.append(pkt)
        if largest > self.largest_acked:
            self.largest_acked = largest
        # ACK-of-ACK pruning: the peer just acked packets whose ACK
        # frames reported everything up to `bound`, so it has provably
        # seen those ranges acknowledged — they never need re-reporting
        # and can leave `received`, keeping it bounded on long transfers.
        bound = -1
        for pkt in result.newly_acked:
            if pkt.largest_ack_reported > bound:
                bound = pkt.largest_ack_reported
        if bound >= 0:
            self.received.prune_below(bound)
        result.lost = self.detect_lost(now, rtt)
        return result

    def detect_lost(self, now: float, rtt: RttEstimator) -> list:
        """Packet- and time-threshold loss detection (RFC 9002 §6.1)."""
        self.loss_time = None
        if self.largest_acked < 0:
            return []
        loss_delay = K_TIME_THRESHOLD * max(rtt.latest or rtt.smoothed, rtt.smoothed)
        loss_delay = max(loss_delay, K_GRANULARITY)
        lost: list[SentPacket] = []
        for pn in sorted(self.sent):
            if pn > self.largest_acked:
                # The walk is sorted, so nothing past largest_acked can
                # satisfy either threshold — stop instead of scanning the
                # whole in-flight tail on every ACK.
                break
            pkt = self.sent[pn]
            # The tolerance keeps this comparison consistent with the
            # re-armed loss_time below: without it, floating-point error
            # can re-arm the alarm at exactly `now` forever.
            if (
                self.largest_acked - pn >= K_PACKET_THRESHOLD
                or pkt.sent_time + loss_delay <= now + 1e-9
            ):
                lost.append(pkt)
            else:
                when = pkt.sent_time + loss_delay
                if self.loss_time is None or when < self.loss_time:
                    self.loss_time = when
        for pkt in lost:
            del self.sent[pkt.packet_number]
            pkt.lost_time = now
            self.lost_packets[pkt.packet_number] = pkt
        if len(self.lost_packets) > MAX_LOST_HISTORY:
            for pn in sorted(self.lost_packets)[:-MAX_LOST_HISTORY]:
                del self.lost_packets[pn]
        return lost

    def persistent_congestion(self, lost: list, duration: float) -> bool:
        """RFC 9002 §7.6: is there an unbroken run of newly lost
        ack-eliciting packets whose send times span more than
        ``duration``?  Unbroken means every packet numbered between two
        run members is also lost — none was acked or is still
        outstanding."""
        eliciting = sorted(
            (p for p in lost if p.ack_eliciting),
            key=lambda p: p.packet_number,
        )
        if len(eliciting) < 2:
            return False
        run_start = prev = eliciting[0]
        for pkt in eliciting[1:]:
            if self._run_broken(prev.packet_number, pkt.packet_number):
                run_start = pkt
            elif pkt.sent_time - run_start.sent_time > duration:
                return True
            prev = pkt
        return False

    def _run_broken(self, low_pn: int, high_pn: int) -> bool:
        """True if any packet numbered strictly between ``low_pn`` and
        ``high_pn`` was delivered (acked) or is still outstanding."""
        for pn in range(low_pn + 1, high_pn):
            if pn in self.acked_pns or pn in self.sent:
                return True
        return False

    def pto_deadline(self, rtt: RttEstimator, pto_count: int) -> Optional[float]:
        """When the PTO alarm should fire, or None if nothing in flight."""
        if self.last_ack_eliciting_sent is None or not self.sent:
            return None
        if not any(p.ack_eliciting for p in self.sent.values()):
            return None
        return self.last_ack_eliciting_sent + rtt.pto() * (1 << pto_count)

    def next_timer(self, rtt: RttEstimator, pto_count: int) -> Optional[float]:
        """Earliest of the loss-time and PTO alarms."""
        candidates = [t for t in (self.loss_time, self.pto_deadline(rtt, pto_count)) if t is not None]
        return min(candidates) if candidates else None

    def release(self) -> None:
        """Drop all send/receive tracking (connection terminated)."""
        self.sent.clear()
        self.lost_packets.clear()
        self.received = RangeSet()
        self.loss_time = None
        self.last_ack_eliciting_sent = None
        self.ack_needed = False

    def probe_candidates(self, max_probes: int = MAX_PTO_PROBES) -> list:
        """PTO expiry (RFC 9002 §6.2.4): the oldest ack-eliciting
        outstanding packets whose frames the probe packets retransmit.

        Nothing is declared lost and nothing leaves ``sent`` — an ACK
        may still be merely late.  Actual loss stays the job of the
        packet/time thresholds in :meth:`detect_lost` once the probe
        elicits a fresh ACK.
        """
        probes: list[SentPacket] = []
        for pn in sorted(self.sent):
            pkt = self.sent[pn]
            if pkt.ack_eliciting:
                probes.append(pkt)
                if len(probes) >= max_probes:
                    break
        return probes

    def declare_all_lost(self) -> list:
        """Pre-RFC 9002 PTO response: declare every outstanding packet
        lost and retransmit whole flights.  Kept only as the baseline the
        ``lossy-recovery`` benchmark (and its CI gate) compares the probe
        path against — no kill-switch mode uses it."""
        lost = [self.sent[pn] for pn in sorted(self.sent)]
        self.sent.clear()
        return lost
