"""Congestion controllers.

NewReno is the default, as in picoquic at the time of the paper; the
initial congestion window defaults to 16 kB ("the initial path window of
mp-quic (32 kB), inherited from quic-go, is twice the default one of PQUIC
(16 kB)" — §4.3), which the Figure-9 baseline reproduces by passing 32 kB.
"""

from __future__ import annotations

MAX_DATAGRAM_SIZE = 1280
DEFAULT_INITIAL_WINDOW = 16 * 1024
MINIMUM_WINDOW = 2 * MAX_DATAGRAM_SIZE
LOSS_REDUCTION_FACTOR = 0.5


class CongestionController:
    """Interface shared by all congestion controllers."""

    def __init__(self, initial_window: int = DEFAULT_INITIAL_WINDOW):
        self.cwnd = initial_window
        self.initial_window = initial_window
        self.bytes_in_flight = 0

    @property
    def available_window(self) -> int:
        return max(0, self.cwnd - self.bytes_in_flight)

    @property
    def state(self) -> str:
        """Congestion state label for the qlog
        ``congestion_state_updated`` event."""
        return "unknown"

    def can_send(self) -> bool:
        return self.bytes_in_flight < self.cwnd

    def on_packet_sent(self, size: int) -> None:
        self.bytes_in_flight += size

    def on_packet_discarded(self, size: int) -> None:
        self.bytes_in_flight = max(0, self.bytes_in_flight - size)

    def on_ack(self, size: int, now: float, sent_time: float,
               app_limited: bool = False) -> None:
        raise NotImplementedError

    def on_loss(self, size: int, now: float, sent_time: float) -> None:
        raise NotImplementedError

    def on_persistent_congestion(self) -> None:
        """RFC 9002 §7.6: a duration-spanning run of losses proved the
        path persistently congested.  No-op by default."""

    def on_spurious_loss(self, size: int, lost_time: float,
                         sent_time: float) -> None:
        """A declared-lost packet was later acked.  No-op by default."""


class NewRenoController(CongestionController):
    """Slow start + AIMD congestion avoidance with loss-epoch handling."""

    def __init__(self, initial_window: int = DEFAULT_INITIAL_WINDOW):
        super().__init__(initial_window)
        self.ssthresh: float = float("inf")
        self._recovery_start: float = -1.0
        self._in_recovery = False
        # Byte-counting accumulator for congestion avoidance: the
        # classic `MSS * acked // cwnd` increment rounds to zero for
        # small ACKed sizes at large cwnd, freezing growth entirely.
        # Instead, accumulate acked bytes and add one full MSS per cwnd
        # of data acknowledged (RFC 3465-style byte counting).
        self._ca_acked = 0
        # Pre-reduction window saved for spurious-loss undo; restored
        # when every loss of the epoch proves spurious.
        self._undo_cwnd = 0
        self._undo_ssthresh: float = float("inf")
        self._undo_available = False
        self._epoch_losses = 0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    @property
    def state(self) -> str:
        if self._in_recovery:
            return "recovery"
        if self.in_slow_start:
            return "slow_start"
        return "congestion_avoidance"

    def on_ack(self, size: int, now: float, sent_time: float,
               app_limited: bool = False) -> None:
        self.bytes_in_flight = max(0, self.bytes_in_flight - size)
        if sent_time <= self._recovery_start:
            return  # no growth for packets sent before recovery began
        if self._in_recovery:
            self._in_recovery = False  # forward progress past the epoch
        if app_limited:
            # §7.8: the window was under-utilized when this packet left;
            # growing it would not be validated by actual delivery rate.
            return
        if self.in_slow_start:
            self.cwnd += size
        else:
            self._ca_acked += size
            if self._ca_acked >= self.cwnd:
                self._ca_acked -= self.cwnd
                self.cwnd += MAX_DATAGRAM_SIZE

    def on_loss(self, size: int, now: float, sent_time: float) -> None:
        self.bytes_in_flight = max(0, self.bytes_in_flight - size)
        if sent_time <= self._recovery_start:
            self._epoch_losses += 1  # same epoch, no further reduction
            return
        self._undo_cwnd = self.cwnd
        self._undo_ssthresh = self.ssthresh
        self._undo_available = True
        self._epoch_losses = 1
        self._recovery_start = now
        self._in_recovery = True
        self._ca_acked = 0
        self.cwnd = max(int(self.cwnd * LOSS_REDUCTION_FACTOR), MINIMUM_WINDOW)
        self.ssthresh = self.cwnd

    def on_persistent_congestion(self) -> None:
        # §7.6.2: collapse to the minimum window and restart from slow
        # start; the next loss may open a fresh epoch immediately.  The
        # collapse is evidence, not conjecture — no undo.
        self.cwnd = MINIMUM_WINDOW
        self._ca_acked = 0
        self._in_recovery = False
        self._undo_available = False
        self._recovery_start = -1.0

    def on_spurious_loss(self, size: int, lost_time: float,
                         sent_time: float) -> None:
        # bytes_in_flight was already charged when the loss was declared;
        # only the window reduction may need undoing.  Each spurious loss
        # belonging to the current epoch cancels one genuine loss; when
        # none remain, the whole reduction was built on late ACKs —
        # restore the pre-reduction cwnd/ssthresh (F-RTO-style undo).
        if lost_time < self._recovery_start:
            return  # declared lost before the current epoch began
        self._epoch_losses = max(0, self._epoch_losses - 1)
        if self._undo_available and self._epoch_losses == 0:
            self.cwnd = max(self.cwnd, self._undo_cwnd)
            self.ssthresh = self._undo_ssthresh
            self._undo_available = False
            self._in_recovery = False
