"""Congestion controllers.

NewReno is the default, as in picoquic at the time of the paper; the
initial congestion window defaults to 16 kB ("the initial path window of
mp-quic (32 kB), inherited from quic-go, is twice the default one of PQUIC
(16 kB)" — §4.3), which the Figure-9 baseline reproduces by passing 32 kB.
"""

from __future__ import annotations

MAX_DATAGRAM_SIZE = 1280
DEFAULT_INITIAL_WINDOW = 16 * 1024
MINIMUM_WINDOW = 2 * MAX_DATAGRAM_SIZE
LOSS_REDUCTION_FACTOR = 0.5


class CongestionController:
    """Interface shared by all congestion controllers."""

    def __init__(self, initial_window: int = DEFAULT_INITIAL_WINDOW):
        self.cwnd = initial_window
        self.initial_window = initial_window
        self.bytes_in_flight = 0

    @property
    def available_window(self) -> int:
        return max(0, self.cwnd - self.bytes_in_flight)

    def can_send(self) -> bool:
        return self.bytes_in_flight < self.cwnd

    def on_packet_sent(self, size: int) -> None:
        self.bytes_in_flight += size

    def on_packet_discarded(self, size: int) -> None:
        self.bytes_in_flight = max(0, self.bytes_in_flight - size)

    def on_ack(self, size: int, now: float, sent_time: float) -> None:
        raise NotImplementedError

    def on_loss(self, size: int, now: float, sent_time: float) -> None:
        raise NotImplementedError


class NewRenoController(CongestionController):
    """Slow start + AIMD congestion avoidance with loss-epoch handling."""

    def __init__(self, initial_window: int = DEFAULT_INITIAL_WINDOW):
        super().__init__(initial_window)
        self.ssthresh: float = float("inf")
        self._recovery_start: float = -1.0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, size: int, now: float, sent_time: float) -> None:
        self.bytes_in_flight = max(0, self.bytes_in_flight - size)
        if sent_time <= self._recovery_start:
            return  # no growth for packets sent before recovery began
        if self.in_slow_start:
            self.cwnd += size
        else:
            self.cwnd += MAX_DATAGRAM_SIZE * size // self.cwnd

    def on_loss(self, size: int, now: float, sent_time: float) -> None:
        self.bytes_in_flight = max(0, self.bytes_in_flight - size)
        if sent_time <= self._recovery_start:
            return  # already reacted to this loss epoch
        self._recovery_start = now
        self.cwnd = max(int(self.cwnd * LOSS_REDUCTION_FACTOR), MINIMUM_WINDOW)
        self.ssthresh = self.cwnd
