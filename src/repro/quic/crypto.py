"""Simulated packet protection and key schedule.

The real PQUIC uses TLS 1.3 (picotls).  Inside the simulator we substitute
a deterministic construction that preserves the properties the paper relies
on: payloads and most header bits are opaque to on-path observers, packets
are integrity-protected (any tamper is detected and the packet dropped),
and keys are derived per-connection and per-epoch.

Construction (NOT cryptographically secure against an active attacker who
sees the handshake — it is a simulation substrate, documented in DESIGN.md):

* keystream: SHA-256(key || nonce || counter) blocks XORed over the payload;
* tag: first 16 bytes of SHA-256(key || nonce || header || plaintext);
* initial secrets derived from the client's destination connection ID, as
  in QUIC, so both endpoints can protect Initial packets before key
  agreement completes;
* 1-RTT secrets derived from both endpoints' random key shares exchanged in
  CRYPTO frames.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Optional

from .errors import CryptoError

TAG_LENGTH = 16
INITIAL_SALT = b"pquic-repro-initial-salt"


def _hash(*parts: bytes) -> bytes:
    h = hashlib.sha256()
    for p in parts:
        h.update(len(p).to_bytes(4, "big"))
        h.update(p)
    return h.digest()


def hkdf_like(secret: bytes, label: bytes) -> bytes:
    """Derive a sub-key from ``secret`` for ``label`` (HKDF-expand analogue)."""
    return hmac.new(secret, b"pquic " + label, hashlib.sha256).digest()


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Expand one hash block to ``length`` bytes.

    A real AEAD derives every block independently; repeating a single
    per-packet block keeps payloads opaque to the simulated network while
    making packet protection cheap enough for large-scale experiments."""
    block = _hash(key, nonce)
    reps = length // len(block) + 1
    return (block * reps)[:length]


def _xor(data: bytes, keystream: bytes) -> bytes:
    n = int.from_bytes(data, "big") ^ int.from_bytes(keystream[: len(data)], "big")
    return n.to_bytes(len(data), "big")


_NONCE_LEN_PREFIX = (8).to_bytes(4, "big")

#: Keystream blocks cached per (context, nonce); bounded so a long-lived
#: connection cannot grow without limit (cleared wholesale when full).
_BLOCK_CACHE_LIMIT = 1024


class AeadContext:
    """Seals/opens packet payloads for one direction of one epoch.

    Fast path: the SHA-256 state over the (length-prefixed) key is computed
    once per context and ``copy()``-ed per packet, so the per-packet work
    feeds only the nonce — and the same nonce state then continues into the
    tag computation, sharing the prefix between keystream and tag.  The
    resulting bytes are identical to ``_keystream``/``_hash``.
    """

    def __init__(self, key: bytes):
        if len(key) < 16:
            raise ValueError("key too short")
        self.key = key
        state = hashlib.sha256()
        state.update(len(key).to_bytes(4, "big"))
        state.update(key)
        self._key_state = state
        self._block_cache: dict = {}  # nonce -> 32-byte keystream block

    def _nonce(self, packet_number: int) -> bytes:
        return packet_number.to_bytes(8, "big")

    def _nonce_state(self, nonce: bytes):
        state = self._key_state.copy()
        state.update(_NONCE_LEN_PREFIX)
        state.update(nonce)
        return state

    def _block(self, nonce: bytes, state) -> bytes:
        block = self._block_cache.get(nonce)
        if block is None:
            if len(self._block_cache) >= _BLOCK_CACHE_LIMIT:
                self._block_cache.clear()
            block = state.digest()  # == _hash(key, nonce)
            self._block_cache[nonce] = block
        return block

    def _tag(self, state, header: bytes, plaintext: bytes) -> bytes:
        state.update(len(header).to_bytes(4, "big"))
        state.update(header)
        state.update(len(plaintext).to_bytes(4, "big"))
        state.update(plaintext)
        return state.digest()[:TAG_LENGTH]

    def seal(self, packet_number: int, header: bytes, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext``, authenticating ``header`` as AD."""
        nonce = self._nonce(packet_number)
        state = self._nonce_state(nonce)
        block = self._block(nonce, state)
        length = len(plaintext)
        keystream = block if length <= len(block) \
            else block * (length // len(block) + 1)
        cipher = _xor(plaintext, keystream)
        return cipher + self._tag(state, header, plaintext)

    def seal_into(self, out: bytearray, packet_number: int,
                  header: bytes, plaintext: bytes) -> None:
        """Scatter-gather variant of :meth:`seal`: append the complete
        protected packet (header ‖ ciphertext ‖ tag) into ``out``.

        ``header`` and ``plaintext`` may be any buffer (bytes, bytearray,
        memoryview); nothing is concatenated per packet — the pooled
        datagram buffer receives the pieces directly, and the bytes are
        identical to ``header + seal(...)``.
        """
        nonce = self._nonce(packet_number)
        state = self._nonce_state(nonce)
        block = self._block(nonce, state)
        length = len(plaintext)
        keystream = block if length <= len(block) \
            else block * (length // len(block) + 1)
        out += header
        out += _xor(plaintext, keystream)
        out += self._tag(state, header, plaintext)

    def open(self, packet_number: int, header: bytes, ciphertext: bytes) -> bytes:
        """Decrypt and verify; raises CryptoError on any mismatch."""
        if len(ciphertext) < TAG_LENGTH:
            raise CryptoError("ciphertext shorter than tag")
        nonce = self._nonce(packet_number)
        cipher, tag = ciphertext[:-TAG_LENGTH], ciphertext[-TAG_LENGTH:]
        state = self._nonce_state(nonce)
        block = self._block(nonce, state)
        length = len(cipher)
        keystream = block if length <= len(block) \
            else block * (length // len(block) + 1)
        plaintext = _xor(cipher, keystream)
        expected = self._tag(state, header, plaintext)
        if not hmac.compare_digest(tag, expected):
            raise CryptoError("AEAD tag mismatch")
        return plaintext


class CryptoPair:
    """The (send, receive) AEAD contexts for one packet-number space."""

    def __init__(self, send_key: bytes, recv_key: bytes):
        self.send = AeadContext(send_key)
        self.recv = AeadContext(recv_key)


def initial_crypto_pair(destination_cid: bytes, is_client: bool) -> CryptoPair:
    """Initial keys derived from the client's first destination CID."""
    secret = hmac.new(INITIAL_SALT, destination_cid, hashlib.sha256).digest()
    client_key = hkdf_like(secret, b"client initial")
    server_key = hkdf_like(secret, b"server initial")
    if is_client:
        return CryptoPair(client_key, server_key)
    return CryptoPair(server_key, client_key)


def session_secret(client_share: bytes, server_share: bytes) -> bytes:
    """Combine the two key shares into the 1-RTT master secret.

    Both sides see both shares after the handshake, so both compute the
    same secret.  (A real deployment uses an actual key agreement; the
    plugins never see these keys either way — §2.3, footnote 4.)
    """
    return _hash(b"session", client_share, server_share)


def one_rtt_crypto_pair(secret: bytes, is_client: bool) -> CryptoPair:
    client_key = hkdf_like(secret, b"client 1rtt")
    server_key = hkdf_like(secret, b"server 1rtt")
    if is_client:
        return CryptoPair(client_key, server_key)
    return CryptoPair(server_key, client_key)
