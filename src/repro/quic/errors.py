"""Re-export of the shared error definitions (see :mod:`repro.errors`)."""

from repro.errors import (  # noqa: F401
    CryptoError,
    FinalSizeError,
    FlowControlError,
    FrameEncodingError,
    ProtocolViolation,
    QuicError,
    StreamStateError,
    TransportError,
    TransportErrorCode,
)
