"""Backwards-compatible alias for the promoted trace pipeline.

The connection tracer grew into the full observability layer at
:mod:`repro.trace` (schema-versioned events, JSONL streaming, metrics,
PRE profiling).  This module keeps the historical import path working::

    from repro.quic.qlog import ConnectionTracer   # still works, warns
    from repro.trace import ConnectionTracer       # preferred
"""

import warnings

from repro.trace.tracer import ConnectionTracer, TraceEvent

warnings.warn(
    "repro.quic.qlog is deprecated; import from repro.trace instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["ConnectionTracer", "TraceEvent"]
