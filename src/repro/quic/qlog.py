"""A qlog-style connection tracer built on protocol-operation anchors.

Nothing here touches the connection internals: every event is observed
through ``pre``/``post`` anchors on the same protocol operations plugins
use — the tracer is a host-side demonstration of the gray-box interface
(and a debugging aid for plugin authors).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.core.protoop import Anchor


@dataclass
class TraceEvent:
    time: float
    category: str
    name: str
    data: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "time": round(self.time * 1000, 3),  # ms, qlog convention
            "category": self.category,
            "name": self.name,
            "data": self.data,
        }


class ConnectionTracer:
    """Attach to a connection to record transport events."""

    def __init__(self, conn, max_events: int = 100_000):
        self.conn = conn
        self.max_events = max_events
        self.events: list = []
        self._attached: list = []
        self._attach()

    def _record(self, category: str, name: str, **data) -> None:
        if len(self.events) >= self.max_events:
            return
        self.events.append(TraceEvent(self.conn.now, category, name, data))

    def _attach(self) -> None:
        table = self.conn.protoops
        hooks = [
            ("packet_sent_event", self._on_packet_sent),
            ("packet_received_event", self._on_packet_received),
            ("packet_lost_event", self._on_packet_lost),
            ("rtt_updated", self._on_rtt),
            ("cc_window_updated", self._on_cwnd),
            ("connection_established", self._on_established),
            ("connection_closed", self._on_closed),
            ("stream_opened", self._on_stream_opened),
            ("loss_alarm_fired", self._on_alarm),
            ("plugin_injected", self._on_plugin),
            ("spin_bit_flipped", self._on_spin),
            ("plugin_fault", self._on_plugin_fault),
            ("plugin_quarantined", self._on_plugin_quarantined),
            ("plugin_blocklisted", self._on_plugin_blocklisted),
            ("plugin_exchange_retry", self._on_exchange_retry),
            ("plugin_exchange_degraded", self._on_exchange_degraded),
            ("plugin_exchange_completed", self._on_exchange_completed),
        ]
        for name, fn in hooks:
            table.attach(name, Anchor.POST, fn)
            self._attached.append((name, fn))

    def detach(self) -> None:
        for name, fn in self._attached:
            self.conn.protoops.detach(name, Anchor.POST, fn)
        self._attached.clear()

    # --- hooks -----------------------------------------------------------

    def _on_packet_sent(self, conn, args, result) -> None:
        (sent,) = args
        self._record("transport", "packet_sent",
                     packet_number=sent.packet_number, size=sent.size,
                     path=sent.path_id, ack_eliciting=sent.ack_eliciting)

    def _on_packet_received(self, conn, args, result) -> None:
        epoch, path, pn, payload = args
        self._record("transport", "packet_received",
                     packet_number=pn, path=path, size=len(payload))

    def _on_packet_lost(self, conn, args, result) -> None:
        (pkt,) = args
        self._record("recovery", "packet_lost",
                     packet_number=pkt.packet_number, path=pkt.path_id)

    def _on_rtt(self, conn, args, result) -> None:
        path, latest = args
        self._record("recovery", "metrics_updated",
                     path=path, latest_rtt_ms=round(latest * 1000, 3))

    def _on_cwnd(self, conn, args, result) -> None:
        path, cwnd = args
        self._record("recovery", "congestion_window_updated",
                     path=path, cwnd=int(cwnd))

    def _on_established(self, conn, args, result) -> None:
        self._record("connectivity", "connection_established")

    def _on_closed(self, conn, args, result) -> None:
        self._record("connectivity", "connection_closed")

    def _on_stream_opened(self, conn, args, result) -> None:
        self._record("transport", "stream_opened", stream_id=args[0])

    def _on_alarm(self, conn, args, result) -> None:
        self._record("recovery", "loss_alarm_fired")

    def _on_plugin(self, conn, args, result) -> None:
        self._record("pquic", "plugin_injected", plugin=args[0])

    def _on_spin(self, conn, args, result) -> None:
        self._record("transport", "spin_bit_updated", value=bool(args[0]))

    def _on_plugin_fault(self, conn, args, result) -> None:
        plugin, pluglet, failure_class, reason = args
        self._record("pquic", "plugin_fault", plugin=plugin,
                     pluglet=pluglet, failure_class=failure_class,
                     reason=reason)

    def _on_plugin_quarantined(self, conn, args, result) -> None:
        plugin, crashes, until = args
        self._record("pquic", "plugin_quarantined", plugin=plugin,
                     crashes=crashes,
                     quarantined_until_ms=round(until * 1000, 3))

    def _on_plugin_blocklisted(self, conn, args, result) -> None:
        self._record("pquic", "plugin_blocklisted", plugin=args[0])

    def _on_exchange_retry(self, conn, args, result) -> None:
        plugin, attempt = args
        self._record("pquic", "plugin_exchange_retry", plugin=plugin,
                     attempt=attempt)

    def _on_exchange_degraded(self, conn, args, result) -> None:
        plugin, reason = args
        self._record("pquic", "plugin_exchange_degraded", plugin=plugin,
                     reason=reason)

    def _on_exchange_completed(self, conn, args, result) -> None:
        plugin, length = args
        self._record("pquic", "plugin_exchange_completed", plugin=plugin,
                     compressed_length=length)

    # --- output ------------------------------------------------------------

    def summary(self) -> dict:
        counts: dict = {}
        for event in self.events:
            counts[event.name] = counts.get(event.name, 0) + 1
        return counts

    def to_json(self) -> str:
        """A qlog-shaped document for external viewers."""
        return json.dumps({
            "qlog_version": "0.4-repro",
            "title": "pquic-repro trace",
            "traces": [{
                "vantage_point": {
                    "type": "client" if self.conn.is_client else "server",
                },
                "events": [e.as_dict() for e in self.events],
            }],
        }, indent=2)
