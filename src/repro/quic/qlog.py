"""Backwards-compatible alias for the promoted trace pipeline.

The connection tracer grew into the full observability layer at
:mod:`repro.trace` (schema-versioned events, JSONL streaming, metrics,
PRE profiling).  This module keeps the historical import path working::

    from repro.quic.qlog import ConnectionTracer   # still fine
    from repro.trace import ConnectionTracer       # preferred
"""

from repro.trace.tracer import ConnectionTracer, TraceEvent

__all__ = ["ConnectionTracer", "TraceEvent"]
