"""Endpoint adapters: glue between sans-io connections and the simulator.

A :class:`ClientEndpoint` drives a single connection; a
:class:`ServerEndpoint` demultiplexes incoming datagrams onto per-client
connections by destination connection ID and spawns new connections for
unknown Initials.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable, Optional

from repro.netsim import Datagram, DatagramBurst, Host, Simulator

from .connection import (
    CID_LENGTH,
    INITIAL_PADDING_TARGET,
    ConnectionState,
    QuicConfiguration,
    QuicConnection,
)
from .packet import FORM_LONG
from .reset import build_stateless_reset, stateless_reset_token


class _ConnectionDriver:
    """Pumps one connection: sends datagrams, manages its timer event."""

    def __init__(self, sim: Simulator, host: Host, local_port: int,
                 peer_port: int, conn: QuicConnection):
        self.sim = sim
        self.host = host
        self.local_port = local_port
        self.peer_port = peer_port
        self.conn = conn
        self._timer_event = None
        #: CIDs this driver is registered under in a server demux table.
        self.bound_cids: list[bytes] = []
        #: Called once when the connection reaches CLOSED (after the
        #: drain period); endpoints use it to evict and unbind.
        self.on_terminated: Optional[Callable[["_ConnectionDriver"], None]] = None
        self._terminated = False

    def pump(self) -> None:
        """Send everything sendable and rearm the timer."""
        out = self.conn.datagrams_to_send(self.sim.now)
        if len(out) > 1 and self.conn._batch:
            self._send_batched(out)
        else:
            for payload, path_index in out:
                path = self.conn.paths[path_index]
                if path.local_addr is None or path.peer_addr is None:
                    continue
                self.host.sendto(
                    payload, path.local_addr, self.local_port,
                    path.peer_addr, self.peer_port,
                )
        self._rearm_timer()
        if (not self._terminated
                and self.conn.state is ConnectionState.CLOSED):
            self._terminated = True
            self.stop()
            if self.on_terminated is not None:
                self.on_terminated(self)

    #: Max datagrams per GSO burst.  RFC 9002 §7.7 tells senders to limit
    #: bursts to the initial congestion window (~10 packets); the cap also
    #: keeps the tail-aligned burst delivery model honest — an uncapped
    #: burst would collapse a whole flight into one arrival instant and
    #: erase intra-flight ACK clocking.
    MAX_BURST_SEGMENTS = 10

    def _send_batched(self, out: list) -> None:
        """GSO-style emit: consecutive datagrams for the same path travel
        as one :class:`DatagramBurst` — a single simulator event and one
        route lookup per hop for the whole train."""
        conn = self.conn
        segments: list = []
        cur_path = None
        for payload, path_index in out:
            path = conn.paths[path_index]
            if path.local_addr is None or path.peer_addr is None:
                continue
            if segments and (path is not cur_path
                             or len(segments) >= self.MAX_BURST_SEGMENTS):
                self._flush_burst(segments)
                segments = []
            cur_path = path
            segments.append(Datagram(
                path.local_addr, self.local_port,
                path.peer_addr, self.peer_port, payload))
        if segments:
            self._flush_burst(segments)

    def _flush_burst(self, segments: list) -> None:
        if len(segments) == 1:
            d = segments[0]
            self.host.sendto(d.payload, d.src_addr, d.src_port,
                             d.dst_addr, d.dst_port)
        else:
            self.host.send_burst(DatagramBurst(segments))

    def _rearm_timer(self) -> None:
        if self._timer_event is not None:
            self._timer_event.cancel()
            self._timer_event = None
        # A closing/draining connection still reports its drain deadline
        # through next_timer(); only CLOSED (or a fully idle connection)
        # returns None.
        deadline = self.conn.next_timer()
        if deadline is None:
            return
        # Enforce minimum progress: a deadline at or before `now` must
        # still advance simulated time, or a no-op alarm would loop the
        # simulation at a single instant.
        deadline = max(deadline, self.sim.now + 1e-4)
        self._timer_event = self.sim.schedule_at(deadline, self._on_timer)

    def _on_timer(self) -> None:
        self._timer_event = None
        self.conn.handle_timer(self.sim.now)
        self.pump()

    def receive(self, dgram: Datagram) -> None:
        self._receive_one(dgram)
        self.pump()

    def receive_burst(self, burst: DatagramBurst) -> None:
        """GRO-style receive: drain the whole burst, then pump ONCE —
        ACK generation and the timer re-arm are coalesced per batch
        instead of per datagram (the dominant batching win: one ACK
        packet answers the train)."""
        for dgram in burst.segments:
            self._receive_one(dgram)
        self.pump()

    def _receive_one(self, dgram: Datagram) -> None:
        try:
            path_index = self.conn.protoops.run(
                self.conn, "map_incoming_path", None,
                dgram.dst_addr, dgram.src_addr,
            )
        except Exception:
            path_index = 0
        if path_index >= len(self.conn.paths):
            path_index = 0
        path = self.conn.paths[path_index]
        # Only datagrams from the path's known peer address earn the §8.1
        # anti-amplification credit; an off-path source must not be able
        # to buy send budget for an address it merely wrote on a packet.
        from_peer = path.peer_addr is None or path.peer_addr == dgram.src_addr
        before = self.conn.stats["packets_received"]
        if getattr(dgram, "ecn_ce", False):
            self.conn.stats["ecn_ce_received"] += 1
        self.conn.receive_datagram(dgram.payload, self.sim.now, path_index,
                                   from_peer=from_peer)
        authenticated = self.conn.stats["packets_received"] > before
        moved = (path.peer_addr != dgram.src_addr
                 or self.peer_port != dgram.src_port)
        if authenticated and moved and self.conn.handshake_complete:
            # The packet authenticated under this connection's keys but
            # arrived from a new peer address: a NAT rebinding.  QUIC's
            # connection IDs make the connection survive it (§4.3) — the
            # path follows the peer, must revalidate the new address (§9)
            # and is amplification-limited until it does (§8.1).
            self.conn.on_peer_address_changed(
                path_index, dgram.src_addr, dgram.size)
            self.peer_port = dgram.src_port
        elif not authenticated and not from_peer:
            self.conn.note_off_path_packet()

    def stop(self) -> None:
        if self._timer_event is not None:
            self._timer_event.cancel()
            self._timer_event = None


class ClientEndpoint:
    """A client endpoint owning one connection on one UDP port."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        local_addr: str,
        local_port: int,
        server_addr: str,
        server_port: int,
        configuration: Optional[QuicConfiguration] = None,
    ):
        self.sim = sim
        self.host = host
        configuration = configuration or QuicConfiguration(is_client=True)
        configuration.is_client = True
        self.conn = QuicConnection(configuration, now=sim.now)
        path0 = self.conn.paths[0]
        path0.local_addr = local_addr
        path0.peer_addr = server_addr
        self.driver = _ConnectionDriver(sim, host, local_port, server_port, self.conn)
        self.driver.on_terminated = self._on_terminated
        host.bind(local_port, self.driver.receive, self.driver.receive_burst)
        self._unbound = False

    def connect(self) -> None:
        """Kick off the handshake (the client Initial)."""
        self.driver.pump()

    def pump(self) -> None:
        self.driver.pump()

    def migrate(self, new_local_addr: str,
                new_local_port: Optional[int] = None) -> None:
        """Actively migrate the connection to a new local address (§9.5):
        bind the new port, rotate to a server-issued CID if one is
        available, and start validating the new path.  The old binding
        stays so in-flight replies are not dropped mid-switch."""
        if new_local_port is not None and new_local_port != self.driver.local_port:
            self.host.bind(new_local_port, self.driver.receive,
                           self.driver.receive_burst)
            self.driver.local_port = new_local_port
        self.conn.migrate(new_local_addr)
        self.driver.pump()

    def close(self, error_code: int = 0, reason: str = "") -> None:
        """Begin closing: send CONNECTION_CLOSE and enter the drain
        period.  The port unbinds once the connection terminates."""
        self.conn.close(error_code, reason)
        self.driver.pump()

    def _on_terminated(self, driver: _ConnectionDriver) -> None:
        if not self._unbound:
            self._unbound = True
            self.host.unbind(driver.local_port)


class ServerEndpoint:
    """A server endpoint accepting any number of connections on one port.

    Connections whose drain period ends are *evicted*: their drivers are
    unbound from the CID demux table, removed from ``connections`` and
    their timer events cancelled, so a server under churn stays bounded
    by the number of *open* connections.  Lifecycle counters live in
    ``stats`` and, when a metrics registry is supplied, are mirrored
    into it under ``quic.server.*``.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        local_addr: str,
        port: int,
        configuration_factory: Optional[Callable[[], QuicConfiguration]] = None,
        on_connection: Optional[Callable[[QuicConnection], None]] = None,
        metrics=None,
        reset_key: Optional[bytes] = None,
    ):
        self.sim = sim
        self.host = host
        self.local_addr = local_addr
        self.port = port
        self.configuration_factory = configuration_factory or (
            lambda: QuicConfiguration(is_client=False)
        )
        self.on_connection = on_connection
        self.metrics = metrics
        if reset_key is None:
            # Derived from the listening address so a "rebooted" endpoint
            # on the same address/port regenerates the very tokens it
            # advertised before losing state — what §10.3 relies on.
            reset_key = hashlib.sha256(
                f"reset-key:{local_addr}:{port}".encode()).digest()
        self.reset_key = reset_key
        self._reset_rng = random.Random(
            int.from_bytes(hashlib.sha256(reset_key).digest()[:8], "big"))
        self.connections: list[QuicConnection] = []
        self._by_cid: dict[bytes, _ConnectionDriver] = {}
        self.stats = {
            "accepted": 0,
            "evicted": 0,
            "cids_retired": 0,
            "peak_connections": 0,
            "stateless_resets_sent": 0,
            "undersized_initials": 0,
        }
        host.bind(port, self._receive, self._receive_burst)

    def _receive(self, dgram: Datagram) -> None:
        driver = self._classify(dgram)
        if driver is not None:
            driver.receive(dgram)

    def _receive_burst(self, burst: DatagramBurst) -> None:
        """GRO-style batch receive: demux each segment, then pump every
        touched driver ONCE — one ACK and one timer re-arm per driver
        per burst, instead of per datagram."""
        pumped: list = []
        for dgram in burst.segments:
            driver = self._classify(dgram)
            if driver is None:
                continue
            driver._receive_one(dgram)
            if driver not in pumped:
                pumped.append(driver)
        for driver in pumped:
            driver.pump()

    def _classify(self, dgram: Datagram) -> Optional[_ConnectionDriver]:
        """Route one datagram to its driver (accepting a new connection
        if warranted), or handle it terminally (reset / drop)."""
        dcid = self._destination_cid(dgram.payload)
        if dcid is None:
            return None
        driver = self._by_cid.get(dcid)
        if driver is None:
            if not dgram.payload or not dgram.payload[0] & FORM_LONG:
                # Short-header packet for a connection we hold no state
                # for (e.g. we rebooted): answer with a stateless reset
                # so the peer stops retrying into the void (§10.3).
                self._send_stateless_reset(dgram, dcid)
                return None
            if len(dgram.payload) < INITIAL_PADDING_TARGET:
                # §14.1: drop undersized client Initials before spending
                # connection state on them — a spoofed mini-Initial gets
                # neither amplification nor a half-open connection.
                self.stats["undersized_initials"] += 1
                return None
            driver = self._accept(dgram, dcid)
        return driver

    def _send_stateless_reset(self, dgram: Datagram, dcid: bytes) -> None:
        reset = build_stateless_reset(
            stateless_reset_token(self.reset_key, dcid),
            self._reset_rng, dgram.size)
        if reset is None:
            return  # trigger too small to answer without looping (§10.3.3)
        self.stats["stateless_resets_sent"] += 1
        if self.metrics is not None:
            self.metrics.counter("quic.server.stateless_resets_sent").inc()
        self.host.sendto(reset, dgram.dst_addr, self.port,
                         dgram.src_addr, dgram.src_port)

    def _accept(self, dgram: Datagram, dcid: bytes) -> _ConnectionDriver:
        configuration = self.configuration_factory()
        configuration.is_client = False
        if configuration.stateless_reset_key is None:
            configuration.stateless_reset_key = self.reset_key
        conn = QuicConnection(configuration, now=self.sim.now)
        path0 = conn.paths[0]
        path0.local_addr = dgram.dst_addr
        path0.peer_addr = dgram.src_addr
        driver = _ConnectionDriver(self.sim, self.host, self.port,
                                   dgram.src_port, conn)
        self.connections.append(conn)
        self._by_cid[dcid] = driver           # client's initial random DCID
        self._by_cid[conn.local_cid] = driver  # our CID in short headers
        driver.bound_cids = [dcid, conn.local_cid]
        driver.on_terminated = self._evict
        conn.on_cid_issued = (
            lambda cid, drv=driver: self._bind_extra_cid(drv, cid))
        self.stats["accepted"] += 1
        if len(self.connections) > self.stats["peak_connections"]:
            self.stats["peak_connections"] = len(self.connections)
        if self.metrics is not None:
            self.metrics.counter("quic.server.connections_accepted").inc()
            self.metrics.gauge("quic.server.connections_peak").set(
                float(len(self.connections)))
        if self.on_connection is not None:
            self.on_connection(conn)
        return driver

    def _bind_extra_cid(self, driver: _ConnectionDriver, cid: bytes) -> None:
        """Register a freshly issued CID (§5.1.1) in the demux table so
        a client rotating to it on migration still reaches its driver."""
        self._by_cid[cid] = driver
        driver.bound_cids.append(cid)

    def shutdown(self) -> None:
        """Forget every connection and release the port — simulating an
        endpoint crash/reboot (the §10.3 stateless reset scenario).
        Nothing is sent to the peers; they discover the loss through the
        stateless resets of whatever next listens on this address."""
        for driver in set(self._by_cid.values()):
            driver.stop()
        self._by_cid.clear()
        self.connections.clear()
        self.host.unbind(self.port)

    def _evict(self, driver: _ConnectionDriver) -> None:
        """Unbind a terminated connection from the demux table and drop
        it from the live list; its timer events are already cancelled by
        the driver."""
        retired = 0
        for cid in driver.bound_cids:
            if self._by_cid.get(cid) is driver:
                del self._by_cid[cid]
                retired += 1
        driver.bound_cids = []
        try:
            self.connections.remove(driver.conn)
        except ValueError:
            pass
        self.stats["evicted"] += 1
        self.stats["cids_retired"] += retired
        if self.metrics is not None:
            self.metrics.counter("quic.server.connections_evicted").inc()
            if retired:
                self.metrics.counter("quic.server.cids_retired").inc(retired)

    @staticmethod
    def _destination_cid(payload: bytes) -> Optional[bytes]:
        if not payload:
            return None
        if payload[0] & FORM_LONG:
            if len(payload) < 6:
                return None
            dcid_len = payload[5]
            return payload[6:6 + dcid_len]
        return payload[1:1 + CID_LENGTH]
