"""QUIC packet headers: long (Initial/Handshake) and short (1-RTT).

The wire image is a simplified but faithful rendering of the draft-14
design: long headers carry version and both connection IDs during the
handshake, short headers carry only the destination CID plus the Spin Bit
(§4.1), packet numbers are truncated to 32 bits on the wire and recovered
against the largest received number, and everything after the header is
AEAD-protected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from .crypto import AeadContext
from .errors import FrameEncodingError, ProtocolViolation
from .wire import Buffer, encode_varint

QUIC_VERSION = 0xFF00000E  # draft-14

FORM_LONG = 0x80
FIXED_BIT = 0x40
SPIN_BIT = 0x20
LONG_TYPE_INITIAL = 0x00
LONG_TYPE_HANDSHAKE = 0x10
PN_WIRE_BYTES = 4

#: Memoized short-header prefix splits: raw (flags + CID) bytes ->
#: (destination_cid, spin_bit).  Bounded and cleared wholesale when full.
_SHORT_PREFIX_CACHE: dict = {}
_SHORT_PREFIX_CACHE_LIMIT = 4096


class PacketType(enum.Enum):
    INITIAL = "initial"
    HANDSHAKE = "handshake"
    ONE_RTT = "1rtt"


class Epoch(enum.IntEnum):
    """Packet number spaces / encryption epochs."""

    INITIAL = 0
    HANDSHAKE = 1
    ONE_RTT = 2


EPOCH_FOR_TYPE = {
    PacketType.INITIAL: Epoch.INITIAL,
    PacketType.HANDSHAKE: Epoch.HANDSHAKE,
    PacketType.ONE_RTT: Epoch.ONE_RTT,
}


@dataclass
class PacketHeader:
    """Decoded header fields of an incoming packet."""

    packet_type: PacketType
    destination_cid: bytes
    source_cid: bytes = b""
    version: int = QUIC_VERSION
    token: bytes = b""
    spin_bit: bool = False
    packet_number: int = 0  # truncated; expanded by the receiver

    @property
    def epoch(self) -> Epoch:
        return EPOCH_FOR_TYPE[self.packet_type]


def encode_packet_number(pn: int) -> bytes:
    return (pn & 0xFFFFFFFF).to_bytes(PN_WIRE_BYTES, "big")


def decode_packet_number(truncated: int, largest_received: int) -> int:
    """Expand a 32-bit truncated packet number (RFC 9000 A.3, 32-bit window)."""
    expected = largest_received + 1
    window = 1 << (PN_WIRE_BYTES * 8)
    half = window // 2
    candidate = (expected & ~(window - 1)) | truncated
    if candidate <= expected - half and candidate + window < (1 << 62):
        return candidate + window
    if candidate > expected + half and candidate >= window:
        return candidate - window
    return candidate


def encode_long_header(
    packet_type: PacketType,
    destination_cid: bytes,
    source_cid: bytes,
    packet_number: int,
    payload_length: int,
    token: bytes = b"",
    version: int = QUIC_VERSION,
) -> bytes:
    if packet_type not in (PacketType.INITIAL, PacketType.HANDSHAKE):
        raise ValueError(f"not a long-header type: {packet_type}")
    flags = FORM_LONG | FIXED_BIT
    flags |= LONG_TYPE_INITIAL if packet_type is PacketType.INITIAL else LONG_TYPE_HANDSHAKE
    out = bytearray()
    out.append(flags)
    out += (version & 0xFFFFFFFF).to_bytes(4, "big")
    out.append(len(destination_cid))
    out += destination_cid
    out.append(len(source_cid))
    out += source_cid
    if packet_type is PacketType.INITIAL:
        out += encode_varint(len(token))
        out += token
    out += encode_varint(payload_length + PN_WIRE_BYTES)
    out += encode_packet_number(packet_number)
    return bytes(out)


def encode_short_header(
    destination_cid: bytes,
    packet_number: int,
    spin_bit: bool = False,
) -> bytes:
    flags = FIXED_BIT | (SPIN_BIT if spin_bit else 0)
    return (bytes((flags,)) + destination_cid
            + encode_packet_number(packet_number))


def parse_header(buf: Buffer, local_cid_length: int) -> tuple[PacketHeader, int]:
    """Parse one packet header from ``buf``.

    Returns (header, payload_length). For short-header packets the payload
    runs to the end of the datagram (payload_length == buf.remaining after
    the header).  ``local_cid_length`` tells the receiver how many bytes of
    destination CID to strip from a short header.
    """
    start = buf.position
    flags = buf.pull_uint8()
    if not flags & FIXED_BIT:
        raise ProtocolViolation("fixed bit is zero")
    if flags & FORM_LONG:
        version = buf.pull_uint32()
        dcid = buf.pull_bytes(buf.pull_uint8())
        scid = buf.pull_bytes(buf.pull_uint8())
        long_type = flags & 0x30
        if long_type == LONG_TYPE_INITIAL:
            ptype = PacketType.INITIAL
            token = buf.pull_bytes(buf.pull_varint())
        elif long_type == LONG_TYPE_HANDSHAKE:
            ptype = PacketType.HANDSHAKE
            token = b""
        else:
            raise ProtocolViolation(f"unknown long packet type {long_type:#x}")
        length = buf.pull_varint()
        if length < PN_WIRE_BYTES or length - PN_WIRE_BYTES > buf.remaining:
            raise FrameEncodingError("long header length field invalid")
        pn = buf.pull_uint32()
        header = PacketHeader(
            packet_type=ptype,
            destination_cid=dcid,
            source_cid=scid,
            version=version,
            token=token,
            packet_number=pn,
        )
        return header, length - PN_WIRE_BYTES
    # Short header.  A receiver sees the same (flags, destination CID)
    # prefix on almost every 1-RTT packet of a connection, so the CID
    # split is memoized on the raw prefix bytes.
    buf.seek(start)
    prefix = buf.pull_bytes(1 + local_cid_length)
    split = _SHORT_PREFIX_CACHE.get(prefix)
    if split is None:
        if len(_SHORT_PREFIX_CACHE) >= _SHORT_PREFIX_CACHE_LIMIT:
            _SHORT_PREFIX_CACHE.clear()
        split = (prefix[1:], bool(flags & SPIN_BIT))
        _SHORT_PREFIX_CACHE[prefix] = split
    pn = buf.pull_uint32()
    header = PacketHeader(
        packet_type=PacketType.ONE_RTT,
        destination_cid=split[0],
        spin_bit=split[1],
        packet_number=pn,
    )
    return header, buf.remaining


def seal_packet(header_bytes: bytes, payload: bytes, aead: AeadContext, full_pn: int) -> bytes:
    """Encrypt ``payload`` and return the complete wire packet."""
    return header_bytes + aead.seal(full_pn, header_bytes, payload)


def seal_packet_into(
    out: bytearray, header_bytes: bytes, payload: bytes,
    aead: AeadContext, full_pn: int,
) -> None:
    """Append the complete wire packet into ``out`` (the pooled datagram
    buffer) without per-packet concatenation; bit-identical to
    :func:`seal_packet`."""
    aead.seal_into(out, full_pn, header_bytes, payload)


def open_payload(
    header_bytes: bytes, ciphertext: bytes, aead: AeadContext, full_pn: int
) -> bytes:
    """Decrypt a packet payload given its reconstructed packet number."""
    return aead.open(full_pn, header_bytes, ciphertext)
