"""A pluginized QUIC implementation (sans-io) plus simulator endpoints."""

from .cc import DEFAULT_INITIAL_WINDOW, NewRenoController
from .connection import (
    Path,
    QuicConfiguration,
    QuicConnection,
    ReservedFrame,
)
from .crypto import AeadContext, CryptoPair
from .endpoint import ClientEndpoint, ServerEndpoint
from .errors import QuicError, TransportError, TransportErrorCode
from .packet import Epoch, PacketType
from .recovery import PacketNumberSpace, RttEstimator, SentPacket
from .stream import ReceiveStream, SendStream
from .transport_params import TransportParameters
from .wire import Buffer, RangeSet

__all__ = [
    "AeadContext",
    "Buffer",
    "ClientEndpoint",
    "CryptoPair",
    "DEFAULT_INITIAL_WINDOW",
    "Epoch",
    "NewRenoController",
    "PacketNumberSpace",
    "PacketType",
    "Path",
    "QuicConfiguration",
    "QuicConnection",
    "QuicError",
    "RangeSet",
    "ReceiveStream",
    "ReservedFrame",
    "RttEstimator",
    "SendStream",
    "SentPacket",
    "ServerEndpoint",
    "TransportError",
    "TransportErrorCode",
    "TransportParameters",
]
