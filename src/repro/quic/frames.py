"""QUIC frames: dataclasses, wire codecs and an extensible registry.

The registry is the wire-level half of PQUIC's extensibility: frame parsing
and processing are *parameterized protocol operations* keyed by frame type,
so a plugin that registers a new frame type (DATAGRAM, MP_ACK, FEC...) gets
parsed, processed and written through exactly the same path as core frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Type

from .errors import FrameEncodingError
from .wire import Buffer, RangeSet

# Core frame types (RFC 9000 numbering).
PADDING = 0x00
PING = 0x01
ACK = 0x02
RESET_STREAM = 0x04
STOP_SENDING = 0x05
CRYPTO = 0x06
STREAM_BASE = 0x08  # 0x08..0x0f with OFF/LEN/FIN bits
MAX_DATA = 0x10
MAX_STREAM_DATA = 0x11
MAX_STREAMS = 0x12
DATA_BLOCKED = 0x14
STREAM_DATA_BLOCKED = 0x15
NEW_CONNECTION_ID = 0x18
PATH_CHALLENGE = 0x1A
PATH_RESPONSE = 0x1B
CONNECTION_CLOSE = 0x1C
HANDSHAKE_DONE = 0x1E

#: Frame types that do NOT elicit acknowledgements.
NON_ACK_ELICITING = {PADDING, ACK, CONNECTION_CLOSE}


class Frame:
    """Base class; concrete frames are dataclasses below."""

    type: int = -1

    @property
    def ack_eliciting(self) -> bool:
        return self.type not in NON_ACK_ELICITING

    @property
    def retransmittable(self) -> bool:
        """Whether loss of this frame should trigger retransmission logic.

        Unreliable extension frames (e.g. DATAGRAM, §4.2) override this."""
        return self.ack_eliciting

    def serialize(self, buf: Buffer) -> None:
        raise NotImplementedError

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "Frame":
        raise NotImplementedError

    def to_bytes(self) -> bytes:
        buf = Buffer()
        self.serialize(buf)
        return buf.data()


@dataclass
class PaddingFrame(Frame):
    length: int = 1
    type = PADDING

    def serialize(self, buf: Buffer) -> None:
        buf.push_bytes(b"\x00" * self.length)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "PaddingFrame":
        length = 1
        while not buf.eof():
            if buf.pull_uint8() == 0:
                length += 1
            else:
                buf.seek(buf.position - 1)
                break
        return cls(length=length)


@dataclass
class PingFrame(Frame):
    type = PING

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(PING)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "PingFrame":
        return cls()


@dataclass
class AckFrame(Frame):
    """ACK with ranges, descending from the largest acknowledged."""

    ranges: RangeSet
    ack_delay: float = 0.0
    type = ACK

    def serialize(self, buf: Buffer) -> None:
        if not self.ranges:
            raise FrameEncodingError("ACK frame with no ranges")
        buf.push_varint(ACK)
        desc = self.ranges.descending()
        largest = desc[0].stop - 1
        buf.push_varint(largest)
        buf.push_varint(int(self.ack_delay * 1_000_000))
        buf.push_varint(len(desc) - 1)
        first = desc[0]
        buf.push_varint(first.stop - 1 - first.start)
        prev_start = first.start
        for r in desc[1:]:
            gap = prev_start - r.stop - 1
            if gap < 0:
                raise FrameEncodingError("ACK ranges overlap")
            buf.push_varint(gap)
            buf.push_varint(r.stop - 1 - r.start)
            prev_start = r.start
        return

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "AckFrame":
        largest = buf.pull_varint()
        ack_delay = buf.pull_varint() / 1_000_000
        count = buf.pull_varint()
        first_len = buf.pull_varint()
        ranges = RangeSet()
        end = largest + 1
        start = end - first_len - 1
        if start < 0:
            raise FrameEncodingError("ACK first range underflows")
        ranges.add(start, end)
        for _ in range(count):
            gap = buf.pull_varint()
            length = buf.pull_varint()
            end = start - gap - 1
            start = end - length - 1
            if start < 0:
                raise FrameEncodingError("ACK range underflows")
            ranges.add(start, end)
        return cls(ranges=ranges, ack_delay=ack_delay)


@dataclass
class ResetStreamFrame(Frame):
    stream_id: int
    error_code: int
    final_size: int
    type = RESET_STREAM

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(RESET_STREAM)
        buf.push_varint(self.stream_id)
        buf.push_varint(self.error_code)
        buf.push_varint(self.final_size)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "ResetStreamFrame":
        return cls(buf.pull_varint(), buf.pull_varint(), buf.pull_varint())


@dataclass
class StopSendingFrame(Frame):
    stream_id: int
    error_code: int
    type = STOP_SENDING

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(STOP_SENDING)
        buf.push_varint(self.stream_id)
        buf.push_varint(self.error_code)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "StopSendingFrame":
        return cls(buf.pull_varint(), buf.pull_varint())


@dataclass
class CryptoFrame(Frame):
    offset: int
    data: bytes
    type = CRYPTO

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(CRYPTO)
        buf.push_varint(self.offset)
        buf.push_varint_prefixed_bytes(self.data)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "CryptoFrame":
        # Zero-copy: ``data`` is a view into the packet plaintext (fresh
        # bytes per packet), materialized only at the handshake layer.
        offset = buf.pull_varint()
        return cls(offset, buf.pull_view(buf.pull_varint()))


@dataclass
class StreamFrame(Frame):
    stream_id: int
    offset: int = 0
    data: bytes = b""
    fin: bool = False

    @property
    def type(self) -> int:  # type: ignore[override]
        t = STREAM_BASE | 0x02  # always encode LEN
        if self.offset:
            t |= 0x04
        if self.fin:
            t |= 0x01
        return t

    @property
    def ack_eliciting(self) -> bool:
        return True

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(self.type)
        buf.push_varint(self.stream_id)
        if self.offset:
            buf.push_varint(self.offset)
        buf.push_varint_prefixed_bytes(self.data)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "StreamFrame":
        stream_id = buf.pull_varint()
        offset = buf.pull_varint() if frame_type & 0x04 else 0
        # Zero-copy: ``data`` aliases the packet plaintext; it is only
        # materialized to bytes at the app boundary (ReceiveStream).
        if frame_type & 0x02:
            data = buf.pull_view(buf.pull_varint())
        else:
            data = buf.pull_view(buf.remaining)
        return cls(stream_id=stream_id, offset=offset, data=data,
                   fin=bool(frame_type & 0x01))


@dataclass
class MaxDataFrame(Frame):
    maximum: int
    type = MAX_DATA

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(MAX_DATA)
        buf.push_varint(self.maximum)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "MaxDataFrame":
        return cls(buf.pull_varint())


@dataclass
class MaxStreamDataFrame(Frame):
    stream_id: int
    maximum: int
    type = MAX_STREAM_DATA

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(MAX_STREAM_DATA)
        buf.push_varint(self.stream_id)
        buf.push_varint(self.maximum)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "MaxStreamDataFrame":
        return cls(buf.pull_varint(), buf.pull_varint())


@dataclass
class MaxStreamsFrame(Frame):
    maximum: int
    type = MAX_STREAMS

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(MAX_STREAMS)
        buf.push_varint(self.maximum)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "MaxStreamsFrame":
        return cls(buf.pull_varint())


@dataclass
class DataBlockedFrame(Frame):
    limit: int
    type = DATA_BLOCKED

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(DATA_BLOCKED)
        buf.push_varint(self.limit)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "DataBlockedFrame":
        return cls(buf.pull_varint())


@dataclass
class StreamDataBlockedFrame(Frame):
    stream_id: int
    limit: int
    type = STREAM_DATA_BLOCKED

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(STREAM_DATA_BLOCKED)
        buf.push_varint(self.stream_id)
        buf.push_varint(self.limit)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "StreamDataBlockedFrame":
        return cls(buf.pull_varint(), buf.pull_varint())


@dataclass
class NewConnectionIdFrame(Frame):
    sequence: int
    connection_id: bytes
    #: §10.3: the stateless reset token the issuer will use for this CID
    #: (empty when the issuer does not support stateless reset).
    reset_token: bytes = b""
    type = NEW_CONNECTION_ID

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(NEW_CONNECTION_ID)
        buf.push_varint(self.sequence)
        buf.push_varint_prefixed_bytes(self.connection_id)
        buf.push_varint_prefixed_bytes(self.reset_token)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "NewConnectionIdFrame":
        return cls(buf.pull_varint(), buf.pull_varint_prefixed_bytes(),
                   buf.pull_varint_prefixed_bytes())


@dataclass
class PathChallengeFrame(Frame):
    data: bytes
    type = PATH_CHALLENGE

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(PATH_CHALLENGE)
        buf.push_bytes(self.data[:8].ljust(8, b"\x00"))

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "PathChallengeFrame":
        return cls(buf.pull_bytes(8))


@dataclass
class PathResponseFrame(Frame):
    data: bytes
    type = PATH_RESPONSE

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(PATH_RESPONSE)
        buf.push_bytes(self.data[:8].ljust(8, b"\x00"))

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "PathResponseFrame":
        return cls(buf.pull_bytes(8))


@dataclass
class ConnectionCloseFrame(Frame):
    error_code: int
    reason: str = ""
    frame_type: int = 0
    type = CONNECTION_CLOSE

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(CONNECTION_CLOSE)
        buf.push_varint(self.error_code)
        buf.push_varint(self.frame_type)
        buf.push_varint_prefixed_bytes(self.reason.encode("utf-8"))

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "ConnectionCloseFrame":
        code = buf.pull_varint()
        ftype = buf.pull_varint()
        reason = buf.pull_varint_prefixed_bytes().decode("utf-8", "replace")
        return cls(error_code=code, reason=reason, frame_type=ftype)


@dataclass
class HandshakeDoneFrame(Frame):
    type = HANDSHAKE_DONE

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(HANDSHAKE_DONE)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "HandshakeDoneFrame":
        return cls()


class FrameRegistry:
    """Maps frame types to frame classes; plugins extend it per connection."""

    def __init__(self) -> None:
        self._by_type: dict[int, Type[Frame]] = {}
        self._register_core()

    def _register_core(self) -> None:
        self.register(PADDING, PaddingFrame)
        self.register(PING, PingFrame)
        self.register(ACK, AckFrame)
        self.register(RESET_STREAM, ResetStreamFrame)
        self.register(STOP_SENDING, StopSendingFrame)
        self.register(CRYPTO, CryptoFrame)
        for t in range(STREAM_BASE, STREAM_BASE + 8):
            self.register(t, StreamFrame)
        self.register(MAX_DATA, MaxDataFrame)
        self.register(MAX_STREAM_DATA, MaxStreamDataFrame)
        self.register(MAX_STREAMS, MaxStreamsFrame)
        self.register(DATA_BLOCKED, DataBlockedFrame)
        self.register(STREAM_DATA_BLOCKED, StreamDataBlockedFrame)
        self.register(NEW_CONNECTION_ID, NewConnectionIdFrame)
        self.register(PATH_CHALLENGE, PathChallengeFrame)
        self.register(PATH_RESPONSE, PathResponseFrame)
        self.register(CONNECTION_CLOSE, ConnectionCloseFrame)
        self.register(CONNECTION_CLOSE + 1, ConnectionCloseFrame)  # app close
        self.register(HANDSHAKE_DONE, HandshakeDoneFrame)

    def register(self, frame_type: int, frame_class: Type[Frame]) -> None:
        self._by_type[frame_type] = frame_class

    def unregister(self, frame_type: int) -> None:
        self._by_type.pop(frame_type, None)

    def known(self, frame_type: int) -> bool:
        return frame_type in self._by_type

    def lookup(self, frame_type: int) -> Type[Frame]:
        try:
            return self._by_type[frame_type]
        except KeyError:
            raise FrameEncodingError(f"unknown frame type 0x{frame_type:x}")

    def parse_one(self, buf: Buffer) -> tuple[int, Frame]:
        """Parse a single frame; returns (frame_type, frame)."""
        frame_type = buf.pull_varint()
        cls = self.lookup(frame_type)
        return frame_type, cls.parse(buf, frame_type)

    def parse_all(self, payload: bytes) -> list[tuple[int, Frame]]:
        buf = Buffer(payload)
        out = []
        while not buf.eof():
            out.append(self.parse_one(buf))
        return out


def serialize_frames(frames: list, out: Optional[Buffer] = None) -> bytes:
    """Serialize frames back-to-back.

    Pass a reusable ``out`` buffer (cleared first) to skip the per-call
    allocation on hot encode paths.
    """
    if out is None:
        out = Buffer()
    else:
        out.clear()
    for f in frames:
        f.serialize(out)
    return out.data()
