"""Stream state: ordered byte streams with reassembly and flow control.

QUIC streams are the reliable, ordered byte-stream service the paper's
plugins build around (and that the Datagram plugin supplements with an
unreliable message mode).
"""

from __future__ import annotations

from typing import Optional

from .errors import FinalSizeError, FlowControlError, StreamStateError
from .wire import RangeSet


def stream_is_client_initiated(stream_id: int) -> bool:
    return stream_id % 2 == 0


def stream_is_unidirectional(stream_id: int) -> bool:
    return stream_id % 4 >= 2


class SendStream:
    """The sending half: buffers app data, tracks ACKed/lost ranges."""

    def __init__(self, stream_id: int, max_stream_data: int):
        self.stream_id = stream_id
        self.max_stream_data = max_stream_data  # peer-imposed limit
        self._buffer = bytearray()
        self._buffer_start = 0  # absolute offset of _buffer[0]
        self._pending = RangeSet()  # byte ranges needing (re)transmission
        self._acked = RangeSet()
        self._highest_offset = 0  # total bytes ever written
        self.fin = False
        self._fin_pending = False
        self._fin_acked = False
        self.blocked = False  # flow-control blocked on last send attempt
        self.fc_high = 0  # highest offset charged to connection flow control

    # --- application side ------------------------------------------------

    def write(self, data: bytes) -> None:
        if self.fin:
            raise StreamStateError(f"write after FIN on stream {self.stream_id}")
        if data:
            self._buffer.extend(data)
            self._pending.add(self._highest_offset, self._highest_offset + len(data))
            self._highest_offset += len(data)

    def finish(self) -> None:
        if not self.fin:
            self.fin = True
            self._fin_pending = True

    # --- transport side ---------------------------------------------------

    @property
    def final_size(self) -> Optional[int]:
        return self._highest_offset if self.fin else None

    @property
    def has_pending(self) -> bool:
        if self._pending:
            # Data is sendable only below the peer's limit; while every
            # pending byte sits at/above it the stream is flow-blocked
            # and must not be scheduled (a FIN behind blocked data
            # cannot jump the queue either).
            return self._pending.smallest() < self.max_stream_data
        # A bare FIN consumes no flow-control credit, so it stays
        # sendable even with the final offset exactly at
        # max_stream_data (the FIN-at-limit edge).
        return self._fin_pending

    @property
    def bytes_in_flight_or_pending(self) -> int:
        return self._pending.covered()

    def next_chunk(self, max_bytes: int) -> Optional[tuple[int, bytes, bool]]:
        """Pop the next (offset, data, fin) to send, or None.

        Respects the peer's MAX_STREAM_DATA limit; marks the stream
        ``blocked`` when the limit (not ``max_bytes``) is what stopped it.
        """
        self.blocked = False
        if self._pending:
            first = next(iter(self._pending))
            start = first.start
            if start >= self.max_stream_data:
                self.blocked = True
                return None
            stop = min(first.stop, start + max_bytes, self.max_stream_data)
            if stop <= start:
                return None
            data = bytes(
                self._buffer[start - self._buffer_start: stop - self._buffer_start]
            )
            # O(1): a bulk sender always consumes a prefix of the
            # lowest pending range, so chop it instead of rebuilding
            # the whole range list with subtract().
            self._pending.chop_first(stop)
            fin = (
                self.fin
                and stop == self._highest_offset
                and not self._pending
            )
            if fin:
                self._fin_pending = False
            return start, data, fin
        if self._fin_pending:
            # FIN with no data: empty stream, data already in flight, or
            # the final offset exactly at the flow-control limit.  An
            # empty FIN frame consumes no credit, so it may leave even
            # when _highest_offset == max_stream_data.
            self._fin_pending = False
            return self._highest_offset, b"", True
        return None

    def on_ack(self, offset: int, length: int, fin: bool) -> None:
        if length:
            self._acked.add(offset, offset + length)
        if fin:
            self._fin_acked = True
        self._release_acked_prefix()

    def on_loss(self, offset: int, length: int, fin: bool) -> None:
        """Requeue a lost chunk, minus anything ACKed since."""
        if length:
            lost = RangeSet([range(offset, offset + length)])
            for r in self._acked:
                lost.subtract(r.start, r.stop)
            for r in lost:
                self._pending.add(r.start, r.stop)
        if fin and not self._fin_acked:
            self._fin_pending = True

    def _release_acked_prefix(self) -> None:
        """Free buffer memory for the fully-ACKed prefix."""
        if not self._acked:
            return
        first = next(iter(self._acked))
        if first.start > self._buffer_start:
            return
        release_to = first.stop
        drop = release_to - self._buffer_start
        # Amortize: shifting the bytearray is O(remaining), so only release
        # once a sizeable prefix has been acknowledged.
        if drop >= 256 * 1024 or (drop > 0 and release_to >= self._highest_offset):
            del self._buffer[:drop]
            self._buffer_start = release_to

    @property
    def all_acked(self) -> bool:
        data_done = (
            not self._pending
            and self._acked.covered() == self._highest_offset
        )
        return data_done and (not self.fin or self._fin_acked)

    def update_max_stream_data(self, maximum: int) -> None:
        if maximum > self.max_stream_data:
            self.max_stream_data = maximum


class ReceiveStream:
    """The receiving half: reassembles, enforces flow control and final size."""

    def __init__(self, stream_id: int, max_stream_data: int):
        self.stream_id = stream_id
        self.max_stream_data = max_stream_data  # local limit we advertised
        self._received = RangeSet()
        # Out-of-order chunks; bytes or memoryviews into packet plaintext
        # (fresh per packet, so views stay valid until drained).
        self._chunks: dict[int, bytes] = {}
        self._read_offset = 0
        self.final_size: Optional[int] = None
        self.fin_delivered = False

    def receive(self, offset: int, data: bytes, fin: bool) -> bytes:
        """Accept a STREAM frame; returns newly readable in-order bytes."""
        end = offset + len(data)
        if end > self.max_stream_data:
            raise FlowControlError(
                f"stream {self.stream_id}: data beyond MAX_STREAM_DATA"
            )
        if fin:
            if self.final_size is not None and self.final_size != end:
                raise FinalSizeError("conflicting final sizes")
            if self._received and self._received.largest() + 1 > end:
                raise FinalSizeError("data received beyond final size")
            self.final_size = end
        elif self.final_size is not None and end > self.final_size:
            raise FinalSizeError("data received beyond final size")
        if data:
            if offset == self._read_offset and not self._chunks:
                # In-order fast path (the overwhelmingly common case on a
                # bulk transfer): nothing is buffered, so the chunk goes
                # straight to the reader.  This is the app boundary — the
                # one place a memoryview chunk is materialized to bytes.
                self._received.add(offset, end)
                self._read_offset = end
                return data if type(data) is bytes else bytes(data)
            self._received.add(offset, end)
            self._chunks[offset] = data
        return self.read()

    def read(self) -> bytes:
        """Drain contiguous bytes starting at the read offset."""
        if not self._chunks:
            return b""
        out = bytearray()
        # One pass in offset order suffices: once a gap appears, no later
        # chunk can be contiguous either.
        for off in sorted(self._chunks):
            data = self._chunks[off]
            chunk_end = off + len(data)
            if chunk_end <= self._read_offset:
                del self._chunks[off]
            elif off <= self._read_offset:
                skip = self._read_offset - off
                out += data[skip:] if skip else data
                self._read_offset = chunk_end
                del self._chunks[off]
            else:
                break
        return bytes(out)

    @property
    def is_finished(self) -> bool:
        return (
            self.final_size is not None
            and self._read_offset >= self.final_size
        )

    @property
    def bytes_received(self) -> int:
        return self._received.largest() + 1 if self._received else 0

    def grant_credit(self, window: int) -> int:
        """Advance the flow-control limit to read_offset + window.

        Returns the new limit (to advertise via MAX_STREAM_DATA) or 0 if
        unchanged.
        """
        new_limit = self._read_offset + window
        if new_limit > self.max_stream_data:
            self.max_stream_data = new_limit
            return new_limit
        return 0
