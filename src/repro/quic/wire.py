"""Wire-level primitives: variable-length integers, buffers, range sets.

QUIC's framing is built on varints (RFC 9000 §16); the same two-bit length
prefix scheme is used here.  ``Buffer`` is a bounds-checked reader/writer
and ``RangeSet`` tracks packet-number / byte ranges for ACKs and stream
reassembly.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, Optional

from .errors import FrameEncodingError

VARINT_MAX = (1 << 62) - 1


def varint_size(value: int) -> int:
    """Number of bytes the varint encoding of ``value`` occupies."""
    if value < 0 or value > VARINT_MAX:
        raise ValueError(f"varint out of range: {value}")
    if value < 1 << 6:
        return 1
    if value < 1 << 14:
        return 2
    if value < 1 << 30:
        return 4
    return 8


_VARINT_1BYTE = [bytes([v]) for v in range(64)]


def encode_varint(value: int) -> bytes:
    if 0 <= value < 64:
        return _VARINT_1BYTE[value]
    size = varint_size(value)
    prefix = {1: 0x00, 2: 0x40, 4: 0x80, 8: 0xC0}[size]
    data = value.to_bytes(size, "big")
    return bytes([data[0] | prefix]) + data[1:]


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint; returns (value, new_offset)."""
    if offset >= len(data):
        raise FrameEncodingError("varint truncated")
    first = data[offset]
    size = 1 << (first >> 6)
    if offset + size > len(data):
        raise FrameEncodingError("varint truncated")
    value = first & 0x3F
    for i in range(1, size):
        value = (value << 8) | data[offset + i]
    return value, offset + size


class Buffer:
    """A bounds-checked binary reader/writer used by all wire codecs.

    Read-only ingest is zero-copy: a ``bytes`` or ``memoryview`` backing
    is kept as-is and only promoted to a ``bytearray`` on the first
    write, so parsing a datagram never duplicates it.  A ``bytearray``
    input is still copied (the caller keeps ownership of its buffer).
    """

    def __init__(self, data: bytes = b"", capacity: Optional[int] = None):
        if type(data) is bytes or type(data) is memoryview:
            self._data = data
        else:
            self._data = bytearray(data)
        self._pos = 0
        self._capacity = capacity

    def _writable(self) -> bytearray:
        """Promote a read-only backing to a bytearray (copy-on-write)."""
        data = bytearray(self._data)
        self._data = data
        return data

    # --- reading -------------------------------------------------------

    @property
    def position(self) -> int:
        return self._pos

    def seek(self, pos: int) -> None:
        if not 0 <= pos <= len(self._data):
            raise FrameEncodingError(f"seek out of range: {pos}")
        self._pos = pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def eof(self) -> bool:
        return self._pos >= len(self._data)

    def pull_bytes(self, n: int) -> bytes:
        pos = self._pos
        data = self._data
        if n < 0 or pos + n > len(data):
            raise FrameEncodingError(f"read of {n} bytes past end")
        sliced = data[pos:pos + n]
        self._pos = pos + n
        return sliced if type(sliced) is bytes else bytes(sliced)

    def pull_view(self, n: int) -> memoryview:
        """Zero-copy read: a memoryview over the next ``n`` bytes.

        The view aliases the backing store; it stays valid as long as the
        backing outlives it and no write promotes/clears the buffer.
        """
        pos = self._pos
        if n < 0 or pos + n > len(self._data):
            raise FrameEncodingError(f"read of {n} bytes past end")
        self._pos = pos + n
        return memoryview(self._data)[pos:pos + n]

    def pull_uint8(self) -> int:
        return self.pull_bytes(1)[0]

    def pull_uint16(self) -> int:
        return int.from_bytes(self.pull_bytes(2), "big")

    def pull_uint32(self) -> int:
        return int.from_bytes(self.pull_bytes(4), "big")

    def pull_uint64(self) -> int:
        return int.from_bytes(self.pull_bytes(8), "big")

    def pull_varint(self) -> int:
        value, self._pos = decode_varint(self._data, self._pos)
        return value

    def pull_varint_prefixed_bytes(self) -> bytes:
        return self.pull_bytes(self.pull_varint())

    # --- writing -------------------------------------------------------

    def clear(self) -> None:
        """Reset to empty for reuse, keeping the backing bytearray's
        allocation (hot encode paths reuse one Buffer per packet)."""
        data = self._data
        if type(data) is bytearray:
            del data[:]
        else:
            self._data = bytearray()
        self._pos = 0

    def push_bytes(self, data) -> None:
        """Append ``data`` — bytes, bytearray or memoryview (no copy is
        made of the source beyond the append itself)."""
        buf = self._data
        if type(buf) is not bytearray:
            buf = self._writable()
        if self._capacity is not None and len(buf) + len(data) > self._capacity:
            raise FrameEncodingError("buffer capacity exceeded")
        buf.extend(data)

    def push_uint8(self, v: int) -> None:
        if self._capacity is None:
            buf = self._data
            if type(buf) is not bytearray:
                buf = self._writable()
            buf.append(v & 0xFF)
        else:
            self.push_bytes(bytes([v & 0xFF]))

    def push_uint16(self, v: int) -> None:
        self.push_bytes((v & 0xFFFF).to_bytes(2, "big"))

    def push_uint32(self, v: int) -> None:
        self.push_bytes((v & 0xFFFFFFFF).to_bytes(4, "big"))

    def push_uint64(self, v: int) -> None:
        self.push_bytes(v.to_bytes(8, "big"))

    def push_varint(self, v: int) -> None:
        if self._capacity is not None:
            self.push_bytes(encode_varint(v))
            return
        # Inline encode straight into the backing bytearray: varints
        # dominate frame serialization, and the intermediate bytes objects
        # of encode_varint() show up in per-packet allocation profiles.
        data = self._data
        if type(data) is not bytearray:
            data = self._writable()
        if 0 <= v < 64:
            data.append(v)
        elif v < 0 or v > VARINT_MAX:
            raise ValueError(f"varint out of range: {v}")
        elif v < 1 << 14:
            data.append(0x40 | (v >> 8))
            data.append(v & 0xFF)
        elif v < 1 << 30:
            data.extend((0x8000_0000 | v).to_bytes(4, "big"))
        else:
            data.extend(((0xC0 << 56) | v).to_bytes(8, "big"))

    def push_varint_prefixed_bytes(self, data: bytes) -> None:
        self.push_varint(len(data))
        self.push_bytes(data)

    def data(self) -> bytes:
        data = self._data
        return data if type(data) is bytes else bytes(data)

    def view(self) -> memoryview:
        """A zero-copy view over the whole backing store."""
        return memoryview(self._data)

    def __len__(self) -> int:
        return len(self._data)


class RangeSet:
    """An ordered set of disjoint half-open integer ranges [start, end).

    Used for received packet numbers (ACK generation) and stream byte
    reassembly.  Ranges are kept sorted ascending and coalesced.
    """

    def __init__(self, ranges: Iterable[range] = ()):
        self._ranges: list[range] = []
        for r in ranges:
            self.add(r.start, r.stop)

    def add(self, start: int, stop: Optional[int] = None) -> None:
        """Add [start, stop); ``add(n)`` adds the single integer n."""
        if stop is None:
            stop = start + 1
        if stop <= start:
            raise ValueError(f"empty range [{start}, {stop})")
        ranges = self._ranges
        # Fast paths: append after, or extend, the last range.
        if ranges:
            last = ranges[-1]
            if start > last.stop:
                ranges.append(range(start, stop))
                return
            if start >= last.start and stop > last.stop:
                ranges[-1] = range(last.start, stop)
                return
            if start >= last.start and stop <= last.stop:
                return
        else:
            ranges.append(range(start, stop))
            return
        # General case: find the window of overlapping/adjacent ranges
        # with bisect and splice once.
        starts = [r.start for r in ranges]
        lo = bisect.bisect_left(starts, start)
        # A range before lo may still touch [start, stop).
        if lo > 0 and ranges[lo - 1].stop >= start:
            lo -= 1
        hi = lo
        while hi < len(ranges) and ranges[hi].start <= stop:
            hi += 1
        if lo < hi:
            start = min(start, ranges[lo].start)
            stop = max(stop, ranges[hi - 1].stop)
        ranges[lo:hi] = [range(start, stop)]

    def subtract(self, start: int, stop: int) -> None:
        """Remove [start, stop) from the set."""
        if stop <= start:
            return
        new: list[range] = []
        for r in self._ranges:
            if r.stop <= start or r.start >= stop:
                new.append(r)
                continue
            if r.start < start:
                new.append(range(r.start, start))
            if r.stop > stop:
                new.append(range(stop, r.stop))
        self._ranges = new

    def chop_first(self, stop: int) -> None:
        """Remove ``[first.start, stop)`` from the first range in O(1).

        The fast path for sequential consumers that always take a prefix
        of the lowest pending range (``SendStream.next_chunk``); callers
        must not pass ``stop`` beyond the first range's end.
        """
        ranges = self._ranges
        if not ranges:
            return
        first = ranges[0]
        if stop >= first.stop:
            del ranges[0]
        elif stop > first.start:
            ranges[0] = range(stop, first.stop)

    def copy(self) -> "RangeSet":
        out = RangeSet()
        out._ranges = list(self._ranges)
        return out

    def tail(self, max_ranges: int) -> "RangeSet":
        """A copy keeping only the ``max_ranges`` highest ranges (ACK
        frames bound how much history they report)."""
        out = RangeSet()
        out._ranges = list(self._ranges[-max_ranges:])
        return out

    def prune_below(self, bound: int) -> int:
        """Drop ranges lying entirely below ``bound``; the range
        containing ``bound`` (if any) is kept whole, so the retained
        tail is unchanged.  Returns the number of ranges dropped."""
        ranges = self._ranges
        keep = 0
        while keep < len(ranges) and ranges[keep].stop <= bound:
            keep += 1
        if keep:
            del ranges[:keep]
        return keep

    def __contains__(self, value: int) -> bool:
        ranges = self._ranges
        if not ranges:
            return False
        idx = bisect.bisect_right([r.start for r in ranges], value) - 1
        return idx >= 0 and ranges[idx].start <= value < ranges[idx].stop

    def __len__(self) -> int:
        return len(self._ranges)

    def __iter__(self) -> Iterator[range]:
        return iter(self._ranges)

    def __bool__(self) -> bool:
        return bool(self._ranges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeSet):
            return NotImplemented
        return self._ranges == other._ranges

    def bounds(self) -> range:
        if not self._ranges:
            raise ValueError("empty RangeSet")
        return range(self._ranges[0].start, self._ranges[-1].stop)

    def largest(self) -> int:
        """Largest integer contained in the set."""
        if not self._ranges:
            raise ValueError("empty RangeSet")
        return self._ranges[-1].stop - 1

    def smallest(self) -> int:
        if not self._ranges:
            raise ValueError("empty RangeSet")
        return self._ranges[0].start

    def covered(self) -> int:
        """Total number of integers contained."""
        return sum(r.stop - r.start for r in self._ranges)

    def descending(self) -> list[range]:
        """Ranges from highest to lowest (ACK frame order)."""
        return list(reversed(self._ranges))

    def __repr__(self) -> str:
        inner = ", ".join(f"[{r.start},{r.stop})" for r in self._ranges)
        return f"RangeSet({inner})"
