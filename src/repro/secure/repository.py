"""The Plugin Repository (PR) and the epoch machinery (§3).

The PR centralizes identities: developers publish plugins under names they
own, PVs register their public keys, STRs are archived per-PV in
append-only hashchains, and equivocation / spurious-binding reports are
collected.  "The state of our system [...] progresses on a discrete time
scale defined by the epoch value."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .merkle import binding_bytes
from .str_log import HashChainLog
from .validator import PluginValidator, SignedTreeRoot


class PublicationError(Exception):
    """Name ownership or publication rules violated."""


@dataclass
class Alert:
    """A misbehaviour report visible to all participants."""

    kind: str  # "equivocation" | "spurious-binding"
    validator_id: str
    reporter: str
    detail: str


class PluginRepository:
    """The PR: name registry, plugin store, STR archive, alert board."""

    def __init__(self) -> None:
        self.epoch = 0
        self._owners: dict[str, str] = {}          # plugin name -> developer
        self._plugins: dict[str, bytes] = {}        # plugin name -> serialized
        self._validators: dict[str, PluginValidator] = {}
        self._str_logs: dict[str, HashChainLog] = {}
        self._strs: dict[tuple, SignedTreeRoot] = {}  # (pv, epoch) -> STR
        self.alerts: list[Alert] = []

    # --- identities -----------------------------------------------------

    def register_validator(self, validator: PluginValidator) -> None:
        if validator.validator_id in self._validators:
            raise PublicationError(
                f"validator {validator.validator_id!r} already registered"
            )
        self._validators[validator.validator_id] = validator
        self._str_logs[validator.validator_id] = HashChainLog()

    def validator_public_key(self, validator_id: str) -> bytes:
        return self._validators[validator_id].public_key

    @property
    def validator_ids(self) -> list:
        return sorted(self._validators)

    # --- publication ------------------------------------------------------

    def publish(self, developer: str, name: str, serialized_plugin: bytes) -> None:
        """Publish (or update) a plugin. Names are owned by their first
        publisher; the PR refuses to let anyone else bind to them."""
        owner = self._owners.get(name)
        if owner is not None and owner != developer:
            raise PublicationError(
                f"name {name!r} is owned by {owner!r}, not {developer!r}"
            )
        self._owners[name] = developer
        self._plugins[name] = serialized_plugin

    def plugin_code(self, name: str) -> Optional[bytes]:
        return self._plugins.get(name)

    @property
    def plugin_names(self) -> list:
        return sorted(self._plugins)

    # --- epochs -------------------------------------------------------------

    def advance_epoch(self) -> int:
        """Run one epoch: every PV validates the current plugin set and
        publishes its STR, which the PR archives in the PV's hashchain."""
        self.epoch += 1
        for vid, validator in sorted(self._validators.items()):
            tree_root = validator.run_epoch(dict(self._plugins), self.epoch)
            self.accept_str(tree_root)
        return self.epoch

    def accept_str(self, signed: SignedTreeRoot) -> None:
        validator = self._validators.get(signed.validator_id)
        if validator is None:
            raise PublicationError(f"unknown validator {signed.validator_id!r}")
        if not signed.verify(validator.public_key):
            raise PublicationError("STR signature invalid")
        key = (signed.validator_id, signed.epoch)
        existing = self._strs.get(key)
        if existing is not None and existing.root != signed.root:
            self.alerts.append(Alert(
                kind="equivocation",
                validator_id=signed.validator_id,
                reporter="PR",
                detail=f"two different STRs for epoch {signed.epoch}",
            ))
            return
        self._strs[key] = signed
        self._str_logs[signed.validator_id].append(
            signed.payload() + signed.signature
        )

    def get_str(self, validator_id: str, epoch: Optional[int] = None) -> SignedTreeRoot:
        epoch = self.epoch if epoch is None else epoch
        return self._strs[(validator_id, epoch)]

    def str_log(self, validator_id: str) -> HashChainLog:
        return self._str_logs[validator_id]

    # --- audits -------------------------------------------------------------

    def report_observed_str(self, reporter: str, observed: SignedTreeRoot) -> bool:
        """A peer (or another PV) reports the STR it was served; a mismatch
        with the archived STR is an equivocation (§3.2: "participants
        eventually detect this with the help of others")."""
        key = (observed.validator_id, observed.epoch)
        archived = self._strs.get(key)
        if archived is None:
            return False
        validator = self._validators[observed.validator_id]
        if not observed.verify(validator.public_key):
            return False
        if observed.root != archived.root:
            self.alerts.append(Alert(
                kind="equivocation",
                validator_id=observed.validator_id,
                reporter=reporter,
                detail=f"served STR differs from archived STR at epoch {observed.epoch}",
            ))
            return True
        return False

    def report_spurious_binding(self, developer: str, validator_id: str,
                                name: str, detail: str) -> None:
        """Developer alert after a failed developer-lookup check (§3.2)."""
        self.alerts.append(Alert(
            kind="spurious-binding",
            validator_id=validator_id,
            reporter=developer,
            detail=f"{name}: {detail}",
        ))

    def faulted_validators(self) -> set:
        return {a.validator_id for a in self.alerts}


def developer_epoch_check(repository: PluginRepository, developer: str,
                          validator: PluginValidator, name: str) -> bool:
    """The §B.2.1 developer lookup: verify the PV's tree holds exactly the
    developer's own binding for ``name``; report otherwise.

    Returns True if everything checked out."""
    from .merkle import H, verify_path

    expected_code = repository.plugin_code(name)
    path, clear_bindings = validator.developer_lookup(name)
    expected_binding = binding_bytes(name, expected_code or b"")
    trouble = None
    if expected_code is None:
        trouble = "developer has no such plugin"
    elif path is None:
        # Absent: fine only if the PV recorded a failure for it.
        if name not in validator.failures:
            trouble = "binding silently missing from the tree"
    else:
        for binding in clear_bindings:
            sep = binding.index(b"\x00")
            bname = binding[:sep].decode("utf-8")
            if bname == name and binding != expected_binding:
                trouble = "tree holds a modified binding for this name"
                break
        if trouble is None:
            root = validator.current_str.root
            if not verify_path(root, name, expected_code, path):
                trouble = "authentication path does not match the STR"
    if trouble is not None:
        repository.report_spurious_binding(
            developer, validator.validator_id, name, trouble
        )
        return False
    return True
