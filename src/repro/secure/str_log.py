"""Append-only log of Signed Tree Roots (Appendix B.1).

"STRs from different epochs should be stored in an append-only log
structure, preventing any tampering from the PR and PVs. CONIKS suggests
using a hashchain" — this module implements that hashchain: every entry
commits to the hash of its predecessor, so rewriting history changes every
subsequent link and is detected by :meth:`HashChainLog.verify`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, Optional


def _h(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


@dataclass(frozen=True)
class ChainEntry:
    index: int
    payload: bytes
    prev_hash: bytes

    @property
    def entry_hash(self) -> bytes:
        return _h(self.index.to_bytes(8, "big") + self.prev_hash + self.payload)


GENESIS = b"\x00" * 32


class HashChainLog:
    """A tamper-evident append-only log."""

    def __init__(self) -> None:
        self._entries: list[ChainEntry] = []

    def append(self, payload: bytes) -> ChainEntry:
        prev = self._entries[-1].entry_hash if self._entries else GENESIS
        entry = ChainEntry(len(self._entries), payload, prev)
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ChainEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> ChainEntry:
        return self._entries[index]

    @property
    def head(self) -> Optional[bytes]:
        return self._entries[-1].entry_hash if self._entries else None

    def verify(self) -> bool:
        """Linear re-check of the whole chain (CONIKS-style audit)."""
        prev = GENESIS
        for i, entry in enumerate(self._entries):
            if entry.index != i or entry.prev_hash != prev:
                return False
            prev = entry.entry_hash
        return True

    def tamper_check(self, index: int, payload: bytes) -> bool:
        """Would replacing entry ``index`` with ``payload`` go unnoticed?
        (Always False for a differing payload — used in tests.)"""
        if not 0 <= index < len(self._entries):
            return False
        return self._entries[index].payload == payload
