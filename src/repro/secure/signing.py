"""Digital signatures for Signed Tree Roots — simulation substitute.

The paper's PVs digitally sign their Merkle roots (§3.3).  Real
deployments use an asymmetric scheme; offline we substitute a keyed-hash
construction with a simulated PKI: the Plugin Repository publishes each
PV's public key ("the PR where its public-key information is available for
all participants"), and verification resolves the public key through that
directory.  The security properties exercised by the tests — a signature
binds a specific message to a specific key, tampering is detected, and a
party without the private key cannot produce a valid signature — hold
within the simulation.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from typing import Optional

_DIRECTORY: dict[bytes, bytes] = {}  # public key -> private key (simulated PKI)


class KeyPair:
    """A signing keypair registered with the simulated PKI."""

    def __init__(self, private: bytes):
        self.private = private
        self.public = hashlib.sha256(b"pub" + private).digest()
        _DIRECTORY[self.public] = private

    @classmethod
    def generate(cls, seed: Optional[int] = None) -> "KeyPair":
        if seed is None:
            private = os.urandom(32)
        else:
            private = hashlib.sha256(b"seed" + seed.to_bytes(8, "big")).digest()
        return cls(private)

    def sign(self, message: bytes) -> bytes:
        return hmac.new(self.private, message, hashlib.sha256).digest()


def verify_signature(public: bytes, message: bytes, signature: bytes) -> bool:
    """Verify through the simulated PKI directory."""
    private = _DIRECTORY.get(public)
    if private is None:
        return False
    expected = hmac.new(private, message, hashlib.sha256).digest()
    return hmac.compare_digest(expected, signature)
