"""A History Tree: the Appendix-B.1 alternative STR log.

"Other solutions with various advantages and inconveniences are possible
too, such as a History Tree [17] or append-only authenticated
dictionaries" — this implements the Crosby–Wallach history tree: an
append-only Merkle tree over the sequence of STRs whose *version-n root*
commits to the first n entries, with

* **membership proofs** — entry i is in version n, O(log n) hashes;
* **incremental (consistency) proofs** — version n extends version m
  without rewriting history, O(log n) hashes.

Compared with the hashchain of :mod:`repro.secure.str_log` (O(1) append,
O(n) audit), the history tree gives logarithmic audits — the trade-off the
appendix alludes to.

The incremental proof is the subtree-decomposition construction: the
prover ships the maximal perfect-subtree hashes covering ``[0, m)`` and
``[m, n)``; the verifier recombines the first set into the old root and
the union into the new root.  Any rewrite of an old entry changes an old
subtree hash and breaks the first recombination.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional


def _leaf_hash(payload: bytes) -> bytes:
    return hashlib.sha256(b"\x00" + payload).digest()


def _node_hash(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(b"\x01" + left + right).digest()


def _split_point(count: int) -> int:
    """Largest power of two strictly below count (count >= 2)."""
    split = 1
    while split * 2 < count:
        split *= 2
    return split


@dataclass
class MembershipProof:
    index: int
    version: int
    #: (sibling_hash, sibling_is_left) from the leaf upward.
    path: list

    def size_bytes(self) -> int:
        return 32 * len(self.path) + 16


@dataclass
class IncrementalProof:
    old_version: int
    new_version: int
    #: (start, stop, hash) of maximal perfect subtrees covering [0, old).
    old_subtrees: list
    #: Same, covering [old, new).
    added_subtrees: list

    def size_bytes(self) -> int:
        return 32 * (len(self.old_subtrees) + len(self.added_subtrees)) + 16


def combine_spans(spans: list) -> Optional[bytes]:
    """Recombine contiguous (start, stop, hash) spans into a root.

    The spans must tile [first.start, last.stop); combination follows the
    history tree's split rule, so any tampered span hash (or wrong
    geometry) yields a different root / None."""
    if not spans:
        return None

    def rec(lo: int, hi: int) -> Optional[bytes]:
        if hi - lo == 1:
            start, stop, value = spans[lo]
            return value
        total = spans[hi - 1][1] - spans[lo][0]
        target = spans[lo][0] + _split_point(total)
        for cut in range(lo + 1, hi):
            if spans[cut][0] == target:
                left = rec(lo, cut)
                right = rec(cut, hi)
                if left is None or right is None:
                    return None
                return _node_hash(left, right)
        return None

    # Contiguity check.
    for (s1, e1, _h1), (s2, e2, _h2) in zip(spans, spans[1:]):
        if e1 != s2:
            return None
    return rec(0, len(spans))


class HistoryTree:
    """Append-only Merkle tree over a growing log of byte entries."""

    def __init__(self) -> None:
        self._leaves: list[bytes] = []
        self._payloads: list[bytes] = []

    def append(self, payload: bytes) -> int:
        """Append an entry; returns its index."""
        self._payloads.append(payload)
        self._leaves.append(_leaf_hash(payload))
        return len(self._leaves) - 1

    def __len__(self) -> int:
        return len(self._leaves)

    def entry(self, index: int) -> bytes:
        return self._payloads[index]

    # --- roots ------------------------------------------------------------

    def _root_range(self, start: int, stop: int) -> bytes:
        if stop - start == 1:
            return self._leaves[start]
        mid = start + _split_point(stop - start)
        return _node_hash(self._root_range(start, mid),
                          self._root_range(mid, stop))

    def root(self, version: Optional[int] = None) -> bytes:
        """Root of the first ``version`` entries (default: all)."""
        version = len(self._leaves) if version is None else version
        if not 1 <= version <= len(self._leaves):
            raise ValueError(f"bad version {version}")
        return self._root_range(0, version)

    # --- membership -------------------------------------------------------

    def prove_membership(self, index: int,
                         version: Optional[int] = None) -> MembershipProof:
        version = len(self._leaves) if version is None else version
        if not 0 <= index < version <= len(self._leaves):
            raise ValueError("index outside version")
        path: list = []

        def walk(start: int, stop: int) -> None:
            if stop - start == 1:
                return
            mid = start + _split_point(stop - start)
            if index < mid:
                walk(start, mid)
                path.append((self._root_range(mid, stop), False))
            else:
                walk(mid, stop)
                path.append((self._root_range(start, mid), True))

        walk(0, version)
        return MembershipProof(index=index, version=version, path=path)

    @staticmethod
    def verify_membership(root: bytes, payload: bytes,
                          proof: MembershipProof) -> bool:
        value = _leaf_hash(payload)
        for sibling, sibling_is_left in proof.path:
            if sibling_is_left:
                value = _node_hash(sibling, value)
            else:
                value = _node_hash(value, sibling)
        return value == root

    # --- incremental consistency -------------------------------------------

    def prove_incremental(self, old_version: int,
                          new_version: Optional[int] = None) -> IncrementalProof:
        new_version = len(self._leaves) if new_version is None else new_version
        if not 1 <= old_version <= new_version <= len(self._leaves):
            raise ValueError("bad version pair")
        old_spans = _decompose(0, old_version, self._root_range)
        added = _decompose(old_version, new_version, self._root_range)
        return IncrementalProof(
            old_version=old_version,
            new_version=new_version,
            old_subtrees=old_spans,
            added_subtrees=added,
        )

    @staticmethod
    def verify_incremental(old_root: bytes, new_root: bytes,
                           proof: IncrementalProof) -> bool:
        old = proof.old_subtrees
        if not old or old[0][0] != 0 or old[-1][1] != proof.old_version:
            return False
        if combine_spans(old) != old_root:
            return False
        everything = old + proof.added_subtrees
        if proof.added_subtrees:
            if proof.added_subtrees[-1][1] != proof.new_version:
                return False
        elif proof.old_version != proof.new_version:
            return False
        return combine_spans(everything) == new_root


def _decompose(start: int, stop: int, root_range) -> list:
    """Tile [start, stop) with spans combinable by the split rule.

    Greedy: repeatedly take the largest block that (a) is aligned to the
    split structure and (b) fits.  For the history-tree split rule
    (largest power of two strictly below the count), tiling with maximal
    aligned power-of-two blocks recombines correctly."""
    out = []
    cursor = start
    while cursor < stop:
        size = 1
        while (
            cursor % (size * 2) == 0
            and cursor + size * 2 <= stop
        ):
            size *= 2
        out.append((cursor, cursor + size, root_range(cursor, cursor + size)))
        cursor += size
    return out
