"""Secure plugin management: validators, Merkle trees, the repository."""

from .formula import Formula, FormulaError, parse_formula
from .history_tree import HistoryTree, IncrementalProof, MembershipProof
from .merkle import (
    AbsenceProof,
    AuthenticationPath,
    MerklePrefixTree,
    binding_bytes,
    name_prefix,
    verify_absence,
    verify_path,
)
from .repository import (
    Alert,
    PluginRepository,
    PublicationError,
    developer_epoch_check,
)
from .signing import KeyPair, verify_signature
from .str_log import ChainEntry, HashChainLog
from .validator import (
    EquivocatingValidator,
    PluginValidator,
    SignedTreeRoot,
    default_validation,
    termination_validation,
)

__all__ = [
    "AbsenceProof",
    "Alert",
    "AuthenticationPath",
    "ChainEntry",
    "EquivocatingValidator",
    "Formula",
    "FormulaError",
    "HashChainLog",
    "HistoryTree",
    "IncrementalProof",
    "MembershipProof",
    "KeyPair",
    "MerklePrefixTree",
    "PluginRepository",
    "PluginValidator",
    "PublicationError",
    "SignedTreeRoot",
    "binding_bytes",
    "default_validation",
    "termination_validation",
    "developer_epoch_check",
    "name_prefix",
    "parse_formula",
    "verify_absence",
    "verify_path",
    "verify_signature",
]
