"""Validation formulas: ``PV1 & (PV2 | PV3)`` (§3.1).

"A PQUIC implementation can send a logical formula that expresses its
required validation [...] This design allows the PQUIC peers to precisely
express their required safety guarantees."

The grammar accepts identifiers, ``&``/``and``/``∧``, ``|``/``or``/``∨``
and parentheses.  Formulas serialize to canonical strings for the
PLUGIN_VALIDATE frame and evaluate against the set of validators whose
proofs checked out.
"""

from __future__ import annotations

import re
from typing import Iterable, Set


class FormulaError(ValueError):
    """Malformed validation formula."""


class Formula:
    """Base class for formula nodes."""

    def evaluate(self, satisfied: Set[str]) -> bool:
        raise NotImplementedError

    def validators(self) -> Set[str]:
        """Every validator mentioned."""
        raise NotImplementedError

    def minimal_sets(self) -> list:
        """Minimal sets of validators that satisfy the formula — what a
        sender uses to decide which PVs to query for proofs."""
        raise NotImplementedError

    def __str__(self) -> str:
        raise NotImplementedError

    def __eq__(self, other) -> bool:
        return isinstance(other, Formula) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash(str(self))


class Var(Formula):
    def __init__(self, name: str):
        self.name = name

    def evaluate(self, satisfied: Set[str]) -> bool:
        return self.name in satisfied

    def validators(self) -> Set[str]:
        return {self.name}

    def minimal_sets(self) -> list:
        return [{self.name}]

    def __str__(self) -> str:
        return self.name


class And(Formula):
    def __init__(self, left: Formula, right: Formula):
        self.left, self.right = left, right

    def evaluate(self, satisfied: Set[str]) -> bool:
        return self.left.evaluate(satisfied) and self.right.evaluate(satisfied)

    def validators(self) -> Set[str]:
        return self.left.validators() | self.right.validators()

    def minimal_sets(self) -> list:
        out = []
        for a in self.left.minimal_sets():
            for b in self.right.minimal_sets():
                candidate = a | b
                if candidate not in out:
                    out.append(candidate)
        return _prune(out)

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


class Or(Formula):
    def __init__(self, left: Formula, right: Formula):
        self.left, self.right = left, right

    def evaluate(self, satisfied: Set[str]) -> bool:
        return self.left.evaluate(satisfied) or self.right.evaluate(satisfied)

    def validators(self) -> Set[str]:
        return self.left.validators() | self.right.validators()

    def minimal_sets(self) -> list:
        return _prune(self.left.minimal_sets() + self.right.minimal_sets())

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


def _prune(sets: list) -> list:
    """Drop supersets so only minimal satisfying sets remain."""
    out = []
    for s in sorted(sets, key=len):
        if not any(kept <= s for kept in out):
            out.append(s)
    return out


_TOKEN = re.compile(
    r"\s*(?:(?P<and>&|∧|\band\b)|(?P<or>\||∨|\bor\b)|(?P<lp>\()|(?P<rp>\))"
    r"|(?P<ident>[A-Za-z_][\w.-]*))"
)


def parse_formula(text: str) -> Formula:
    """Parse a validation formula (| binds looser than &)."""
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if m is None:
            if text[pos:].strip():
                raise FormulaError(f"unexpected character at {pos}: {text[pos:]!r}")
            break
        pos = m.end()
        for kind in ("and", "or", "lp", "rp", "ident"):
            if m.group(kind):
                value = m.group(kind)
                if kind == "ident" and value in ("and", "or"):
                    kind = value
                tokens.append((kind, value))
                break
    if not tokens:
        raise FormulaError("empty formula")

    index = [0]

    def peek():
        return tokens[index[0]] if index[0] < len(tokens) else (None, None)

    def consume(kind):
        tok = peek()
        if tok[0] != kind:
            raise FormulaError(f"expected {kind}, got {tok}")
        index[0] += 1
        return tok[1]

    def parse_or() -> Formula:
        node = parse_and()
        while peek()[0] == "or":
            consume("or")
            node = Or(node, parse_and())
        return node

    def parse_and() -> Formula:
        node = parse_atom()
        while peek()[0] == "and":
            consume("and")
            node = And(node, parse_atom())
        return node

    def parse_atom() -> Formula:
        kind, value = peek()
        if kind == "lp":
            consume("lp")
            node = parse_or()
            consume("rp")
            return node
        if kind == "ident":
            consume("ident")
            return Var(value)
        raise FormulaError(f"unexpected token {value!r}")

    node = parse_or()
    if index[0] != len(tokens):
        raise FormulaError(f"trailing tokens: {tokens[index[0]:]}")
    return node
