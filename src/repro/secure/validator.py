"""Plugin Validators (PVs) and their Signed Tree Roots (§3).

A PV validates plugins (by whatever means it has — §5: manual inspection,
fuzzing, formal methods; here: bytecode verification plus an optional
termination check), builds one Merkle Prefix Tree per epoch containing the
plugins it vouches for, signs the root (STR) and serves lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.plugin import Plugin

from .merkle import (
    AbsenceProof,
    AuthenticationPath,
    MerklePrefixTree,
    binding_bytes,
)
from .signing import KeyPair, verify_signature


@dataclass(frozen=True)
class SignedTreeRoot:
    """An STR: the tamper-resistant commitment of one PV at one epoch."""

    validator_id: str
    epoch: int
    root: bytes
    signature: bytes

    def payload(self) -> bytes:
        return (
            self.validator_id.encode("utf-8")
            + self.epoch.to_bytes(8, "big")
            + self.root
        )

    def verify(self, public_key: bytes) -> bool:
        return verify_signature(public_key, self.payload(), self.signature)


def default_validation(name: str, code: bytes) -> Optional[str]:
    """Built-in validation: the plugin must deserialize, carry the claimed
    name and pass static verification.  Returns a failure reason or None."""
    try:
        plugin = Plugin.deserialize(code)
    except Exception as exc:
        return f"undecodable plugin: {exc}"
    if plugin.name != name:
        return "plugin name does not match binding name"
    try:
        plugin.verify_all()
    except Exception as exc:
        return f"verification failed: {exc}"
    return None


def termination_validation(name: str, code: bytes) -> Optional[str]:
    """A stricter §5 validator: static checks *plus* a termination proof
    for every pluglet ("A very important property for any code is its
    (correct) termination").  PVs differ in capability — this is the
    formal-methods profile, ``default_validation`` the basic one."""
    reason = default_validation(name, code)
    if reason is not None:
        return reason
    from repro.termination import check_termination

    plugin = Plugin.deserialize(code)
    for pluglet in plugin.pluglets:
        report = check_termination(pluglet.instructions)
        if not report.proven:
            return (
                f"pluglet {pluglet.name!r}: termination not proven "
                f"({report.reason})"
            )
    return None


class PluginValidator:
    """One PV: validates, commits, signs, serves proofs."""

    def __init__(
        self,
        validator_id: str,
        seed: Optional[int] = None,
        validate_fn: Optional[Callable] = None,
        tree_depth: int = 16,
    ):
        self.validator_id = validator_id
        self.keys = KeyPair.generate(seed)
        self.validate_fn = validate_fn or default_validation
        self.tree_depth = tree_depth
        self.epoch = -1
        self.tree = MerklePrefixTree(tree_depth)
        self.current_str: Optional[SignedTreeRoot] = None
        #: Failure causes communicated to the PR (§3.1).
        self.failures: dict[str, str] = {}

    @property
    def public_key(self) -> bytes:
        return self.keys.public

    # ------------------------------------------------------------------

    def run_epoch(self, plugins: dict, epoch: int) -> SignedTreeRoot:
        """Validate ``{name: serialized_plugin}`` and sign the new tree.

        A PV builds at most one tree per epoch (§3.1)."""
        if epoch <= self.epoch:
            raise ValueError(
                f"PV {self.validator_id} already signed epoch {self.epoch}"
            )
        tree = MerklePrefixTree(self.tree_depth)
        failures: dict[str, str] = {}
        for name, code in sorted(plugins.items()):
            reason = self.validate_fn(name, code)
            if reason is None:
                tree.insert(name, code)
            else:
                failures[name] = reason
        self.tree = tree
        self.failures = failures
        self.epoch = epoch
        self.current_str = self._sign_root(tree.root(), epoch)
        return self.current_str

    def _sign_root(self, root: bytes, epoch: int) -> SignedTreeRoot:
        unsigned = SignedTreeRoot(self.validator_id, epoch, root, b"")
        return SignedTreeRoot(
            self.validator_id, epoch, root, self.keys.sign(unsigned.payload())
        )

    # ------------------------------------------------------------------

    def lookup(self, name: str) -> AuthenticationPath:
        """PQUIC user lookup: the authentication path (co-located bindings
        as hashes only, for bandwidth — §B.2.1)."""
        return self.tree.prove(name)

    def developer_lookup(self, name: str):
        """Developer lookup: path plus clear-text co-located bindings."""
        return self.tree.developer_lookup(name)

    def lookup_absence(self, name: str) -> AbsenceProof:
        return self.tree.prove_absence(name)

    def validated(self, name: str) -> bool:
        return name in self.tree


class EquivocatingValidator(PluginValidator):
    """A malicious PV maintaining a second, doctored tree (App. B.2.3).

    It shows the honest tree to developers and the doctored one (with a
    spurious binding) to targeted PQUIC users.  Building two trees that
    hash to the same root is computationally infeasible, so the two STRs
    differ — which is exactly what the non-equivocation audit catches.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.shadow_tree: Optional[MerklePrefixTree] = None
        self.shadow_str: Optional[SignedTreeRoot] = None

    def inject_spurious(self, name: str, malicious_code: bytes) -> None:
        """Create the doctored tree containing a spurious binding."""
        shadow = MerklePrefixTree(self.tree_depth)
        for entries in self.tree._leaves.values():
            for entry_name, _h, binding in entries:
                sep = binding.index(b"\x00")
                shadow.insert(entry_name, binding[sep + 1:])
        shadow.insert(name, malicious_code)
        self.shadow_tree = shadow
        self.shadow_str = self._sign_root(shadow.root(), self.epoch)

    def lookup_for_victim(self, name: str):
        """What the PV serves the targeted user: a *valid* proof against
        the shadow STR."""
        assert self.shadow_tree is not None
        return self.shadow_tree.prove(name), self.shadow_str
