"""The Merkle Prefix Tree built by each Plugin Validator (§3.3, App. B).

Bindings (``pluginname || plugincode``) are placed in leaves selected by
the truncated bits of ``H(pluginname)``.  Empty leaves take a large
constant ``c`` chosen by the PV.  A leaf holding one binding hashes to
``H(binding)``; hash-prefix collisions make the leaf a list and it hashes
to ``H(H(b_i) || H(b_j) || ...)``.  Interior nodes hash to ``H(h_l||h_r)``.

The construction differs from CONIKS exactly as the paper says: the leaf
position is fixed by the *name* hash, so a PV cannot keep two bindings for
one plugin name with one stealthily malicious — both would land in the same
leaf and the developer's lookup reveals them (Theorem B.1's uniqueness of
the authentication path backs this).

Lookups return an authentication path of Θ(log n + α) hashes: the sibling
hashes up the tree plus the hashes of any co-located bindings.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

DEFAULT_DEPTH = 16


def H(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def binding_bytes(name: str, code: bytes) -> bytes:
    """binding = pluginname || plugincode (§3.1)."""
    return name.encode("utf-8") + b"\x00" + code


def name_prefix(name: str, depth: int) -> int:
    """Leaf index: the first ``depth`` bits of H(pluginname)."""
    digest = H(name.encode("utf-8"))
    return int.from_bytes(digest[:8], "big") >> (64 - depth)


@dataclass
class AuthenticationPath:
    """Everything needed to recompute the root for one binding (Fig. 5)."""

    leaf_index: int
    depth: int
    #: Sibling hash at each level, leaf-adjacent first.
    siblings: list
    #: Hashes of the *other* bindings sharing the leaf, in leaf order,
    #: with None marking the position of the proven binding.
    leaf_slots: list

    def size_bytes(self) -> int:
        """Bandwidth cost Θ(λ(log n + α)) — Appendix B.3."""
        hashes = len(self.siblings) + sum(1 for s in self.leaf_slots if s)
        return hashes * 32 + 16


@dataclass
class AbsenceProof:
    """Proof that no binding for a name exists at its leaf (§3.3)."""

    leaf_index: int
    depth: int
    siblings: list
    #: All binding hashes present at the leaf (empty when the leaf is empty).
    present_hashes: list
    empty_constant: Optional[bytes]


class MerklePrefixTree:
    """Sparse Merkle prefix tree over ``2**depth`` leaves."""

    def __init__(self, depth: int = DEFAULT_DEPTH,
                 empty_constant: bytes = b"\xff" * 32):
        if not 1 <= depth <= 64:
            raise ValueError("depth must be within [1, 64]")
        self.depth = depth
        self.empty_constant = empty_constant
        #: leaf index -> list of (name, binding_hash, binding)
        self._leaves: dict[int, list] = {}
        self._root: Optional[bytes] = None
        # Precompute the hash of an all-empty subtree at each height.
        self._empty_at: list = [empty_constant]
        for _ in range(depth):
            prev = self._empty_at[-1]
            self._empty_at.append(H(prev + prev))

    # ------------------------------------------------------------------

    def insert(self, name: str, code: bytes) -> None:
        """Insert (or replace) the binding for ``name``."""
        index = name_prefix(name, self.depth)
        binding = binding_bytes(name, code)
        entries = self._leaves.setdefault(index, [])
        entries[:] = [e for e in entries if e[0] != name]
        entries.append((name, H(binding), binding))
        entries.sort(key=lambda e: e[1])  # deterministic leaf order
        self._root = None

    def remove(self, name: str) -> None:
        index = name_prefix(name, self.depth)
        entries = self._leaves.get(index)
        if entries:
            entries[:] = [e for e in entries if e[0] != name]
            if not entries:
                del self._leaves[index]
            self._root = None

    def __contains__(self, name: str) -> bool:
        index = name_prefix(name, self.depth)
        return any(e[0] == name for e in self._leaves.get(index, ()))

    def __len__(self) -> int:
        return sum(len(v) for v in self._leaves.values())

    # ------------------------------------------------------------------

    def _leaf_hash(self, index: int) -> bytes:
        entries = self._leaves.get(index)
        if not entries:
            return self.empty_constant
        if len(entries) == 1:
            return entries[0][1]
        return H(b"".join(e[1] for e in entries))

    def root(self) -> bytes:
        if self._root is not None:
            return self._root
        # Sparse bottom-up fold: only populated subtrees are hashed.
        level = {idx: self._leaf_hash(idx) for idx in self._leaves}
        for height in range(self.depth):
            nxt: dict[int, bytes] = {}
            for idx, value in level.items():
                parent = idx >> 1
                if parent in nxt:
                    continue
                sib = idx ^ 1
                sib_val = level.get(sib, self._empty_at[height])
                left, right = (value, sib_val) if idx % 2 == 0 else (sib_val, value)
                nxt[parent] = H(left + right)
            level = nxt
        self._root = level.get(0, self._empty_at[self.depth])
        return self._root

    # ------------------------------------------------------------------

    def _siblings(self, index: int) -> list:
        """Sibling hashes from the leaf to the root."""
        # Build per-level maps once (O(n log n) worst case, fine for tests
        # and benchmarked in Appendix B.3's bench).
        levels = [{idx: self._leaf_hash(idx) for idx in self._leaves}]
        for height in range(self.depth - 1):
            cur = levels[-1]
            nxt: dict[int, bytes] = {}
            for idx, value in cur.items():
                parent = idx >> 1
                if parent in nxt:
                    continue
                sib_val = cur.get(idx ^ 1, self._empty_at[height])
                left, right = (value, sib_val) if idx % 2 == 0 else (sib_val, value)
                nxt[parent] = H(left + right)
            levels.append(nxt)
        siblings = []
        idx = index
        for height in range(self.depth):
            siblings.append(levels[height].get(idx ^ 1, self._empty_at[height]))
            idx >>= 1
        return siblings

    def prove(self, name: str) -> AuthenticationPath:
        """Authentication path for an existing binding (PQUIC user lookup:
        co-located bindings as hashes only, §B.2.1)."""
        index = name_prefix(name, self.depth)
        entries = self._leaves.get(index, [])
        if not any(e[0] == name for e in entries):
            raise KeyError(f"no binding for {name!r}")
        slots = [None if e[0] == name else e[1] for e in entries]
        return AuthenticationPath(
            leaf_index=index,
            depth=self.depth,
            siblings=self._siblings(index),
            leaf_slots=slots,
        )

    def developer_lookup(self, name: str):
        """Developer lookup: the clear text of every co-located binding so
        spurious additions are visible (§B.2.1)."""
        index = name_prefix(name, self.depth)
        entries = self._leaves.get(index, [])
        path = None
        if any(e[0] == name for e in entries):
            path = self.prove(name)
        return path, [e[2] for e in entries]

    def prove_absence(self, name: str) -> AbsenceProof:
        index = name_prefix(name, self.depth)
        entries = self._leaves.get(index, [])
        if any(e[0] == name for e in entries):
            raise KeyError(f"{name!r} is present; no absence proof")
        return AbsenceProof(
            leaf_index=index,
            depth=self.depth,
            siblings=self._siblings(index),
            present_hashes=[e[1] for e in entries],
            empty_constant=self.empty_constant if not entries else None,
        )


def verify_path(root: bytes, name: str, code: bytes,
                path: AuthenticationPath) -> bool:
    """Recompute the root from a binding + path and compare (Figure 5)."""
    if path.leaf_index != name_prefix(name, path.depth):
        return False
    my_hash = H(binding_bytes(name, code))
    slots = [my_hash if s is None else s for s in path.leaf_slots]
    if my_hash not in slots:
        return False
    if len(slots) == 1:
        value = my_hash
    else:
        value = H(b"".join(slots))
    idx = path.leaf_index
    if len(path.siblings) != path.depth:
        return False
    for sibling in path.siblings:
        left, right = (value, sibling) if idx % 2 == 0 else (sibling, value)
        value = H(left + right)
        idx >>= 1
    return value == root


def verify_absence(root: bytes, name: str, proof: AbsenceProof) -> bool:
    """Check a proof of absence against a signed root."""
    if proof.leaf_index != name_prefix(name, proof.depth):
        return False
    if proof.present_hashes:
        if len(proof.present_hashes) == 1:
            value = proof.present_hashes[0]
        else:
            value = H(b"".join(proof.present_hashes))
    else:
        if proof.empty_constant is None:
            return False
        value = proof.empty_constant
    idx = proof.leaf_index
    for sibling in proof.siblings:
        left, right = (value, sibling) if idx % 2 == 0 else (sibling, value)
        value = H(left + right)
        idx >>= 1
    return value == root
