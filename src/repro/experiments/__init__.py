"""Experiment harness: WSP design sampling and scenario runners."""

from .design import PAPER_DESIGN_POINTS, wsp_design, wsp_sample
from .harness import (
    DEFAULT_RANGES,
    INFLIGHT_RANGES,
    TransferResult,
    median,
    run_quic_transfer,
    run_tcp_direct,
    run_tcp_through_tunnel,
)

__all__ = [
    "DEFAULT_RANGES",
    "INFLIGHT_RANGES",
    "PAPER_DESIGN_POINTS",
    "TransferResult",
    "median",
    "run_quic_transfer",
    "run_tcp_direct",
    "run_tcp_through_tunnel",
    "wsp_design",
    "wsp_sample",
]
