"""Scenario runners shared by the examples and the benchmark suite.

Each runner builds the Figure-7 topology, wires endpoints, plugins and
applications, runs the simulation to completion and returns measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.apps.transfer import BulkClient, BulkServer
from repro.apps.vpn import VpnTunnel
from repro.core import PluginInstance
from repro.netsim import Simulator, symmetric_topology
from repro.netsim.tcp import TcpBulkTransfer
from repro.netsim.topology import Figure7Topology, PathParams
from repro.quic import (
    ClientEndpoint,
    QuicConfiguration,
    ServerEndpoint,
    TransportParameters,
)
from repro.trace import ConnectionMetrics, MetricsRegistry, PreProfiler

#: The paper's default parameter ranges (§4): d in ms, bw in Mbps, l in %.
DEFAULT_RANGES = {"d": (2.5, 25.0), "bw": (5.0, 50.0), "l": 0.0}
#: The In-Flight Communications ranges of §4.4 (Rula et al.).
INFLIGHT_RANGES = {"d": (100.0, 400.0), "bw": (0.3, 10.0), "l": (1.0, 8.0)}


@dataclass
class TransferResult:
    dct: Optional[float]
    completed: bool
    client_stats: dict
    plugin_instances: list = field(default_factory=list)
    extra: dict = field(default_factory=dict)
    #: Simulator-wide metrics registry (set when a run asked for one).
    metrics: Optional[MetricsRegistry] = None
    #: PRE profiler with per-pluglet attribution (set when profiling).
    profile: Optional[PreProfiler] = None


def _timeout_for(size: int, bw_mbps: float, d_ms: float, loss: float) -> float:
    ideal = size * 8 / (bw_mbps * 1e6)
    return max(60.0, 30 * ideal + 4 * d_ms / 1000 * 50 + loss * 10)


def _buffer_for(bw_mbps: float, d_ms: float) -> int:
    """Router buffer sized like the testbed's HTB queues: at least one
    bandwidth-delay product, floor of 96 kB."""
    bdp = bw_mbps * 1e6 / 8 * (2 * d_ms / 1000)
    return max(96_000, int(1.5 * bdp))


def run_quic_transfer(
    size: int,
    d_ms: float,
    bw_mbps: float,
    loss_pct: float = 0.0,
    seed: int = 1,
    client_plugins: Sequence[Callable] = (),
    server_plugins: Sequence[Callable] = (),
    multipath: bool = False,
    initial_window: Optional[int] = None,
    timeout: Optional[float] = None,
    metrics: Optional[MetricsRegistry] = None,
    profile=False,
) -> TransferResult:
    """One GET transfer over PQUIC, optionally with plugins attached.

    ``client_plugins`` / ``server_plugins`` are zero-argument plugin
    builders (so each run gets fresh instances).

    Observability is opt-in: pass a
    :class:`~repro.trace.MetricsRegistry` as ``metrics`` to collect
    per-connection counters/histograms plus simulator totals into it, and
    ``profile=True`` (or an existing :class:`~repro.trace.PreProfiler`,
    to accumulate across runs) for per-pluglet PRE attribution on both
    sides of the connection."""
    sim = Simulator(metrics=metrics)
    topo = symmetric_topology(sim, d_ms=d_ms, bw_mbps=bw_mbps,
                              loss_pct=loss_pct, seed=seed,
                              buffer_bytes=_buffer_for(bw_mbps, d_ms))
    instances: list = []
    if profile is False or profile is None:
        profiler = None
    elif profile is True:
        profiler = PreProfiler()
    else:
        profiler = profile

    def server_config() -> QuicConfiguration:
        cfg = QuicConfiguration(is_client=False)
        if initial_window:
            cfg.initial_window = initial_window
        return cfg

    bulk_server = BulkServer()
    server = ServerEndpoint(sim, topo.server, "server.0", 443,
                            configuration_factory=server_config)

    def on_connection(conn):
        if profiler is not None:
            profiler.attach(conn)
        if metrics is not None:
            ConnectionMetrics(conn, metrics, prefix="server.")
        for build in server_plugins:
            instance = PluginInstance(build(), conn)
            instance.attach()
            instances.append(instance)
        driver = server._by_cid[conn.local_cid]
        bulk_server.attach(conn, driver.pump)

    server.on_connection = on_connection

    client_cfg = QuicConfiguration(is_client=True, seed=seed)
    if initial_window:
        client_cfg.initial_window = initial_window
    client = ClientEndpoint(sim, topo.client, "client.0", 5000,
                            "server.0", 443, configuration=client_cfg)
    if multipath:
        client.conn.extra_local_addresses = ["client.1"]
    if profiler is not None:
        profiler.attach(client.conn)
    if metrics is not None:
        ConnectionMetrics(client.conn, metrics, prefix="client.")
    for build in client_plugins:
        instance = PluginInstance(build(), client.conn)
        instance.attach()
        instances.append(instance)

    bulk_client = BulkClient(client.conn, client.pump)
    client.connect()
    if not sim.run_until(lambda: client.conn.is_established, timeout=30):
        return TransferResult(None, False, dict(client.conn.stats), instances,
                              metrics=metrics, profile=profiler)
    bulk_client.request(size, now=sim.now)
    limit = timeout or _timeout_for(size, bw_mbps, d_ms, loss_pct)
    sim.run_until(lambda: bulk_client.completed, timeout=limit)
    if metrics is not None:
        metrics.counter("transfers.total").inc()
        if bulk_client.completed:
            metrics.counter("transfers.completed").inc()
            metrics.histogram("transfer.dct_ms").observe(
                bulk_client.dct * 1000.0)
    return TransferResult(
        dct=bulk_client.dct,
        completed=bulk_client.completed,
        client_stats=dict(client.conn.stats),
        plugin_instances=instances,
        metrics=metrics,
        profile=profiler,
    )


def run_tcp_direct(
    size: int,
    d_ms: float,
    bw_mbps: float,
    loss_pct: float = 0.0,
    seed: int = 1,
    mss: int = 1460,
    timeout: Optional[float] = None,
) -> TransferResult:
    """Baseline: TCP Cubic straight over the top Figure-7 path."""
    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=d_ms, bw_mbps=bw_mbps,
                              loss_pct=loss_pct, seed=seed,
                              buffer_bytes=_buffer_for(bw_mbps, d_ms))
    flow = TcpBulkTransfer(sim, size, mss=mss)
    flow.wire(
        sender_send=lambda seg: topo.client.sendto(
            seg, "client.0", 6000, "server.0", 6001),
        receiver_send=lambda seg: topo.server.sendto(
            seg, "server.0", 6001, "client.0", 6000),
    )
    topo.client.bind(6000, lambda d: flow.sender.on_segment(d.payload))
    topo.server.bind(6001, lambda d: flow.receiver.on_segment(d.payload))
    flow.start()
    limit = timeout or _timeout_for(size, bw_mbps, d_ms, loss_pct)
    sim.run_until(lambda: flow.completed, timeout=limit)
    return TransferResult(
        dct=flow.dct, completed=flow.completed,
        client_stats={"retransmissions": flow.sender.retransmissions},
    )


def run_tcp_through_tunnel(
    size: int,
    d_ms: float,
    bw_mbps: float,
    loss_pct: float = 0.0,
    seed: int = 1,
    multipath: bool = False,
    tunnel_mtu: int = 1400,
    timeout: Optional[float] = None,
) -> TransferResult:
    """TCP Cubic through the PQUIC VPN (Figures 8 and 11)."""
    from repro.plugins.datagram import build_datagram_plugin
    from repro.plugins.multipath import build_multipath_plugin

    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=d_ms, bw_mbps=bw_mbps,
                              loss_pct=loss_pct, seed=seed,
                              buffer_bytes=_buffer_for(bw_mbps, d_ms))
    instances = []
    tunnels = {}

    # 1500-byte-class outer packets so the 1400-byte tunnel MTU fits
    # (paper: "a 1400-byte MTU inside the tunnel and 1500 outside").
    outer_payload = 1472

    def tunnel_server_config() -> QuicConfiguration:
        return QuicConfiguration(
            is_client=False, max_udp_payload_size=outer_payload,
            transport_parameters=TransportParameters(
                max_udp_payload_size=outer_payload),
        )

    server = ServerEndpoint(sim, topo.server, "server.0", 443,
                            configuration_factory=tunnel_server_config)

    def on_connection(conn):
        builders = [build_datagram_plugin]
        if multipath:
            builders.append(build_multipath_plugin)
        for build in builders:
            instance = PluginInstance(build(), conn)
            instance.attach()
            instances.append(instance)
        driver = server._by_cid[conn.local_cid]
        tunnels["server"] = VpnTunnel(conn, driver.pump, mtu=tunnel_mtu)

    server.on_connection = on_connection

    client = ClientEndpoint(
        sim, topo.client, "client.0", 5000, "server.0", 443,
        configuration=QuicConfiguration(
            is_client=True, max_udp_payload_size=outer_payload,
            transport_parameters=TransportParameters(
                max_udp_payload_size=outer_payload),
        ),
    )
    if multipath:
        client.conn.extra_local_addresses = ["client.1"]
    builders = [build_datagram_plugin]
    if multipath:
        builders.append(build_multipath_plugin)
    for build in builders:
        instance = PluginInstance(build(), client.conn)
        instance.attach()
        instances.append(instance)
    tunnels["client"] = VpnTunnel(client.conn, client.pump, mtu=tunnel_mtu)

    client.connect()
    if not sim.run_until(
        lambda: client.conn.is_established and "server" in tunnels, timeout=30
    ):
        return TransferResult(None, False, dict(client.conn.stats), instances)

    # Inner TCP flow: MSS constrained by the tunnel MTU (paper: 1400).
    flow = TcpBulkTransfer(sim, size, mss=tunnel_mtu - 40 - 1)
    flow.wire(
        sender_send=lambda seg: tunnels["client"].send(1, seg),
        receiver_send=lambda seg: tunnels["server"].send(1, seg),
    )
    tunnels["server"].bind(1, lambda pkt: flow.receiver.on_segment(pkt))
    tunnels["client"].bind(1, lambda pkt: flow.sender.on_segment(pkt))
    flow.start()
    limit = timeout or _timeout_for(size, bw_mbps, d_ms, loss_pct)
    sim.run_until(lambda: flow.completed, timeout=limit)
    return TransferResult(
        dct=flow.dct, completed=flow.completed,
        client_stats=dict(client.conn.stats),
        plugin_instances=instances,
        extra={
            "tunnel_dropped": tunnels["client"].dropped_queue,
            "retransmissions": flow.sender.retransmissions,
        },
    )


def median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ValueError("median of empty sequence")
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2
