"""Experimental design: the WSP space-filling sampler (§4).

"We define ranges on the possible values for the parameters presented and
use the WSP algorithm [88] to broadly sample this parameter space into 139
points.  Each parameter combination is run 9 times and the median run is
reported."

The WSP (Wootton–Sergent–Phan-Tan-Luu) algorithm selects a well-spread
subset of a candidate cloud: starting from a seed point, all candidates
closer than ``dmin`` are discarded and the nearest survivor becomes the
next point.  A bisection on ``dmin`` reaches the requested design size.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

import numpy as np

PAPER_DESIGN_POINTS = 139


def _wsp_select(points: np.ndarray, dmin: float, start: int = 0) -> list:
    """One WSP pass: indices of the selected, well-spread subset."""
    n = len(points)
    alive = np.ones(n, dtype=bool)
    selected = []
    current = start
    while True:
        selected.append(current)
        alive[current] = False
        d = np.linalg.norm(points - points[current], axis=1)
        alive &= d >= dmin
        if not alive.any():
            break
        remaining = np.where(alive)[0]
        current = remaining[np.argmin(d[remaining])]
    return selected


def wsp_design(
    count: int,
    dimensions: int,
    seed: int = 0,
    candidates: int = 4096,
    tolerance: int = 0,
) -> np.ndarray:
    """A WSP design of ~``count`` points in the unit hypercube.

    Bisection on ``dmin`` until the selection size is within
    ``tolerance`` of ``count`` (or the bracket collapses; the closest
    design found is returned)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    if dimensions < 1:
        raise ValueError("dimensions must be >= 1")
    rng = np.random.default_rng(seed)
    cloud = rng.random((candidates, dimensions))
    lo, hi = 0.0, float(np.sqrt(dimensions))
    best: Optional[list] = None
    for _ in range(60):
        dmin = (lo + hi) / 2
        selected = _wsp_select(cloud, dmin)
        if best is None or abs(len(selected) - count) < abs(len(best) - count):
            best = selected
        if abs(len(selected) - count) <= tolerance:
            best = selected
            break
        if len(selected) > count:
            lo = dmin  # too many points: raise the exclusion radius
        else:
            hi = dmin
    return cloud[best]


def wsp_sample(
    ranges: dict,
    count: int = PAPER_DESIGN_POINTS,
    seed: int = 0,
) -> list:
    """Sample named parameter ranges into ``count`` WSP design points.

    ``ranges`` maps name -> (low, high) or a fixed scalar.  Returns a list
    of dicts; fixed scalars are copied into every point."""
    varying = {k: v for k, v in ranges.items() if isinstance(v, (tuple, list))}
    fixed = {k: v for k, v in ranges.items() if not isinstance(v, (tuple, list))}
    if not varying:
        return [dict(fixed) for _ in range(count)]
    design = wsp_design(count, len(varying), seed=seed)
    out = []
    keys = sorted(varying)
    for row in design:
        point = dict(fixed)
        for value, key in zip(row, keys):
            lo, hi = varying[key]
            point[key] = lo + float(value) * (hi - lo)
        out.append(point)
    return out


def min_interpoint_distance(points: np.ndarray) -> float:
    """Quality metric of a design: smallest pairwise distance."""
    n = len(points)
    best = float("inf")
    for i in range(n):
        d = np.linalg.norm(points[i + 1:] - points[i], axis=1)
        if len(d):
            best = min(best, float(d.min()))
    return best
