"""The monitoring plugin (§4.1).

"Our monitoring plugin adds passive pluglets, i.e. pluglets that hook to
pre and post anchors, to several protocol operations in PQUIC to record
the performance indicators (PI) such as the bytes/packets sent/received,
lost, received out-of-order, etc.  A set of PIs are recorded during the
handshake and a second are updated while the connection is active.  Our
plugin exports these PIs to a local daemon."

All fourteen pluglets (the Table-2 count) are passive, written in
restricted Python, compiled to PRE bytecode, and keep their PI block in
the plugin's dedicated memory through ``get_opaque_data``.  Reports are
pushed to the application/daemon as a flat block of 64-bit counters.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.api import (
    FLD_ACKS_RECEIVED,
    FLD_BYTES_RECEIVED,
    FLD_BYTES_SENT,
    FLD_PACKETS_LOST,
    FLD_PACKETS_RECEIVED,
    FLD_PACKETS_SENT,
    FLD_SPURIOUS_RECEIVED,
    FLD_SRTT_US,
)
from repro.core.plugin import Plugin, Pluglet

PLUGIN_NAME = "org.pquic.monitoring"

#: PI block layout (byte offsets into the opaque area, 8 bytes each).
PI_AREA_ID = 1
PI_SIZE = 256
OFF_PACKETS_SENT = 0
OFF_PACKETS_RECEIVED = 8
OFF_PACKETS_LOST = 16
OFF_RTT_LATEST = 24
OFF_RTT_MIN = 32
OFF_RTT_MAX = 40
OFF_STREAMS_OPENED = 48
OFF_STREAMS_CLOSED = 56
OFF_ACKS_BUILT = 64
OFF_PACKETS_ACKED = 72
OFF_MAX_CWND = 80
OFF_SPIN_FLIPS = 88
OFF_FC_RAISES = 96
OFF_PATHS_CREATED = 104
OFF_LOSS_ALARMS = 112
OFF_HANDSHAKE_US = 120
OFF_HS_PACKETS = 128  # handshake-time PI snapshot (first set, §4.1)
OFF_FINAL_BASE = 136  # final report: live fields read via get()
# Optional containment PIs (build_monitoring_plugin(containment=True)).
OFF_PLUGIN_FAULTS = 200
OFF_PLUGIN_QUARANTINES = 208

PI_FIELDS = [
    ("packets_sent", OFF_PACKETS_SENT),
    ("packets_received", OFF_PACKETS_RECEIVED),
    ("packets_lost", OFF_PACKETS_LOST),
    ("rtt_latest_us", OFF_RTT_LATEST),
    ("rtt_min_us", OFF_RTT_MIN),
    ("rtt_max_us", OFF_RTT_MAX),
    ("streams_opened", OFF_STREAMS_OPENED),
    ("streams_closed", OFF_STREAMS_CLOSED),
    ("acks_built", OFF_ACKS_BUILT),
    ("packets_acked", OFF_PACKETS_ACKED),
    ("max_cwnd", OFF_MAX_CWND),
    ("spin_flips", OFF_SPIN_FLIPS),
    ("flow_control_raises", OFF_FC_RAISES),
    ("paths_created", OFF_PATHS_CREATED),
    ("loss_alarms", OFF_LOSS_ALARMS),
    ("handshake_us", OFF_HANDSHAKE_US),
    ("handshake_packets", OFF_HS_PACKETS),
    ("final_packets_sent", OFF_FINAL_BASE),
    ("final_packets_received", OFF_FINAL_BASE + 8),
    ("final_bytes_sent", OFF_FINAL_BASE + 16),
    ("final_bytes_received", OFF_FINAL_BASE + 24),
    ("final_packets_lost", OFF_FINAL_BASE + 32),
    ("final_acks_received", OFF_FINAL_BASE + 40),
    ("final_srtt_us", OFF_FINAL_BASE + 48),
    ("final_spurious", OFF_FINAL_BASE + 56),
    # Zero unless the plugin was built with containment=True.
    ("plugin_faults", OFF_PLUGIN_FAULTS),
    ("plugin_quarantines", OFF_PLUGIN_QUARANTINES),
]


def _counter_pluglet(name: str, protoop: str, offset: int) -> Pluglet:
    """A passive pluglet bumping one PI counter."""
    source = f"""
def {name}():
    pi = get_opaque_data({PI_AREA_ID}, {PI_SIZE})
    mem64[pi + {offset}] = mem64[pi + {offset}] + 1
"""
    return Pluglet.from_source(name, protoop, "post", source)


def _rtt_pluglet() -> Pluglet:
    # post args: (path_index, latest_rtt) + (result,). latest arrives in
    # r2 marshaled to microseconds.
    source = f"""
def rtt_observer(path_id, latest):
    pi = get_opaque_data({PI_AREA_ID}, {PI_SIZE})
    mem64[pi + {OFF_RTT_LATEST}] = latest
    lo = mem64[pi + {OFF_RTT_MIN}]
    if lo == 0 or latest < lo:
        mem64[pi + {OFF_RTT_MIN}] = latest
    if latest > mem64[pi + {OFF_RTT_MAX}]:
        mem64[pi + {OFF_RTT_MAX}] = latest
"""
    return Pluglet.from_source("rtt_observer", "rtt_updated", "post", source)


def _cwnd_pluglet() -> Pluglet:
    source = f"""
def cwnd_observer(path_id, cwnd):
    pi = get_opaque_data({PI_AREA_ID}, {PI_SIZE})
    if cwnd > mem64[pi + {OFF_MAX_CWND}]:
        mem64[pi + {OFF_MAX_CWND}] = cwnd
"""
    return Pluglet.from_source("cwnd_observer", "cc_window_updated", "post", source)


def _handshake_pluglet() -> Pluglet:
    """First PI set: recorded when the handshake completes (§4.1)."""
    source = f"""
def handshake_report():
    pi = get_opaque_data({PI_AREA_ID}, {PI_SIZE})
    mem64[pi + {OFF_HANDSHAKE_US}] = get_time_us()
    mem64[pi + {OFF_HS_PACKETS}] = get({FLD_PACKETS_RECEIVED}, 0)
    push_message(pi, {PI_SIZE})
"""
    return Pluglet.from_source(
        "handshake_report", "connection_established", "post", source
    )


def _final_report_pluglet() -> Pluglet:
    """Second PI set: read live fields through get() and export."""
    base = OFF_FINAL_BASE
    source = f"""
def final_report():
    pi = get_opaque_data({PI_AREA_ID}, {PI_SIZE})
    mem64[pi + {base}] = get({FLD_PACKETS_SENT}, 0)
    mem64[pi + {base + 8}] = get({FLD_PACKETS_RECEIVED}, 0)
    mem64[pi + {base + 16}] = get({FLD_BYTES_SENT}, 0)
    mem64[pi + {base + 24}] = get({FLD_BYTES_RECEIVED}, 0)
    mem64[pi + {base + 32}] = get({FLD_PACKETS_LOST}, 0)
    mem64[pi + {base + 40}] = get({FLD_ACKS_RECEIVED}, 0)
    mem64[pi + {base + 48}] = get({FLD_SRTT_US}, 0)
    mem64[pi + {base + 56}] = get({FLD_SPURIOUS_RECEIVED}, 0)
    push_message(pi, {PI_SIZE})
"""
    return Pluglet.from_source(
        "final_report", "connection_closing", "post", source
    )


def build_monitoring_plugin(containment: bool = False) -> Plugin:
    """Assemble the 14-pluglet monitoring plugin (Table 2).

    ``containment=True`` adds two extra passive pluglets counting
    ``plugin_fault`` and ``plugin_quarantined`` recovery events, so a
    deployment can monitor how often containment fires.  They are opt-in
    to keep the paper's 14-pluglet figure intact by default."""
    pluglets = [
        _counter_pluglet("count_sent", "packet_sent_event", OFF_PACKETS_SENT),
        _counter_pluglet("count_received", "packet_received_event",
                         OFF_PACKETS_RECEIVED),
        _counter_pluglet("count_lost", "packet_lost_event", OFF_PACKETS_LOST),
        _counter_pluglet("count_acked", "packet_acked_event", OFF_PACKETS_ACKED),
        _counter_pluglet("count_stream_open", "stream_opened",
                         OFF_STREAMS_OPENED),
        _counter_pluglet("count_stream_close", "stream_closed",
                         OFF_STREAMS_CLOSED),
        _counter_pluglet("count_acks_built", "ack_frame_built", OFF_ACKS_BUILT),
        _counter_pluglet("count_spin_flip", "spin_bit_flipped", OFF_SPIN_FLIPS),
        _counter_pluglet("count_path", "path_created", OFF_PATHS_CREATED),
        _counter_pluglet("count_loss_alarm", "loss_alarm_fired",
                         OFF_LOSS_ALARMS),
        _rtt_pluglet(),
        _cwnd_pluglet(),
        _handshake_pluglet(),
        _final_report_pluglet(),
    ]
    assert len(pluglets) == 14  # Table 2: the monitoring plugin has 14
    if containment:
        pluglets.append(_counter_pluglet(
            "count_plugin_fault", "plugin_fault", OFF_PLUGIN_FAULTS))
        pluglets.append(_counter_pluglet(
            "count_plugin_quarantine", "plugin_quarantined",
            OFF_PLUGIN_QUARANTINES))
    return Plugin(PLUGIN_NAME, pluglets)


@dataclass
class PerformanceReport:
    """A decoded PI block as exported by the plugin."""

    values: dict

    @classmethod
    def parse(cls, data: bytes) -> "PerformanceReport":
        values = {}
        for name, offset in PI_FIELDS:
            values[name] = struct.unpack_from("<Q", data, offset)[0]
        return cls(values)

    def __getitem__(self, key: str) -> int:
        return self.values[key]


class MonitoringCollector:
    """The local daemon/collector: receives PI exports from connections.

    Attach with :meth:`attach`; reports accumulate in :attr:`reports`.
    ``forward`` optionally relays each raw report (e.g. over a simulated
    UDP socket to a remote collector, as in the paper)."""

    def __init__(self, forward: Optional[Callable[[bytes], None]] = None):
        self.reports: list = []
        self.forward = forward

    def attach(self, conn) -> None:
        previous = conn.on_plugin_message

        def on_message(plugin_name: str, data: bytes) -> None:
            if plugin_name == PLUGIN_NAME:
                self.reports.append(PerformanceReport.parse(data))
                if self.forward is not None:
                    self.forward(data)
            elif previous is not None:
                previous(plugin_name, data)

        conn.on_plugin_message = on_message
