"""The paper's four protocol plugins (§4)."""

from .ccontrol import build_ccontrol_plugin
from .datagram import DatagramSocket, build_datagram_plugin
from .ecn import build_ecn_plugin
from .fec import build_fec_plugin
from .monitoring import MonitoringCollector, build_monitoring_plugin
from .multipath import build_multipath_plugin

__all__ = [
    "DatagramSocket",
    "MonitoringCollector",
    "build_ccontrol_plugin",
    "build_ecn_plugin",
    "build_datagram_plugin",
    "build_fec_plugin",
    "build_monitoring_plugin",
    "build_multipath_plugin",
]
