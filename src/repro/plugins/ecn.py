"""The ECN plugin: Explicit Congestion Notification support (§4).

"With less than 100 lines of C code a PQUIC plugin can add the equivalent
of Tail Loss Probe in TCP, or support for Explicit Congestion Notification
[102]."  This module is that ECN plugin.

Design: the receiver counts CE-marked packets (exposed by the host as a
connection field) and, whenever the count grows, books an ECN_FEEDBACK
frame carrying the cumulative count.  The sender compares the echoed count
against the last one it has reacted to and, on growth, halves its
congestion window — a congestion response *without* packet loss, which is
ECN's whole point.  All decision logic is PRE bytecode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.api import (
    FLD_CWND,
    FLD_ECN_CE_RECEIVED,
    FLD_SRTT_US,
    H_PLUGIN_BASE,
)
from repro.core.plugin import Plugin, Pluglet, register_host_resolver
from repro.quic import frames as F
from repro.quic.connection import ReservedFrame
from repro.quic.wire import Buffer

PLUGIN_NAME = "org.pquic.ecn"
ECN_FEEDBACK_FRAME_TYPE = 0x49

H_ECN_RESERVE = H_PLUGIN_BASE + 0
H_ECN_PARSE = H_PLUGIN_BASE + 1
H_ECN_WRITE = H_PLUGIN_BASE + 2
H_ECN_FRAME_COUNT = H_PLUGIN_BASE + 3

ECN_HELPERS = {
    "ecn_reserve": H_ECN_RESERVE,
    "ecn_parse": H_ECN_PARSE,
    "ecn_write": H_ECN_WRITE,
    "ecn_frame_count": H_ECN_FRAME_COUNT,
}

ST_AREA = 6
ST_SIZE = 40
OFF_LAST_REPORTED = 0   # receiver: CE count last fed back
OFF_LAST_REACTED = 8    # sender: CE count last responded to
OFF_REDUCTIONS = 16     # sender: number of ECN-driven window cuts
OFF_LAST_CUT_US = 24    # sender: time of the last cut (once per RTT)


@dataclass
class EcnFeedbackFrame(F.Frame):
    """Echoes the cumulative count of CE-marked packets received."""

    ce_count: int = 0
    type = ECN_FEEDBACK_FRAME_TYPE

    @property
    def ack_eliciting(self) -> bool:
        return False  # feedback, like ACK

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(self.type)
        buf.push_varint(self.ce_count)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "EcnFeedbackFrame":
        return cls(ce_count=buf.pull_varint())


def _host_helpers(runtime) -> dict:
    def h_reserve(vm, count, *_):
        runtime.conn.reserve_frames([
            ReservedFrame(
                frame=EcnFeedbackFrame(ce_count=count),
                plugin=PLUGIN_NAME,
                retransmittable=False,
                congestion_controlled=False,
            )
        ])
        return 1

    def h_parse(vm, buf_handle, *_):
        frame = EcnFeedbackFrame.parse(
            runtime.context.raw_args[buf_handle], ECN_FEEDBACK_FRAME_TYPE)
        runtime.set_result(frame)
        return frame.ce_count

    def h_write(vm, frame_handle, buf_handle, *_):
        ctx = runtime.context
        ctx.raw_args[frame_handle].serialize(ctx.raw_args[buf_handle])
        return 0

    def h_frame_count(vm, frame_handle, *_):
        frame = runtime.context.raw_args[frame_handle]
        return frame.ce_count if isinstance(frame, EcnFeedbackFrame) else 0

    return {
        H_ECN_RESERVE: h_reserve,
        H_ECN_PARSE: h_parse,
        H_ECN_WRITE: h_write,
        H_ECN_FRAME_COUNT: h_frame_count,
    }


def _register_frames(conn) -> None:
    conn.frame_registry.register(ECN_FEEDBACK_FRAME_TYPE, EcnFeedbackFrame)


register_host_resolver(
    PLUGIN_NAME, lambda name: (_host_helpers, _register_frames)
)


def build_ecn_plugin() -> Plugin:
    pluglets = [
        # Receiver: feed back whenever the CE count grows.
        Pluglet.from_source(
            "ecn_feedback", "packet_received_event", "post",
            f"""
def ecn_feedback(epoch, path_id, pn):
    ce = get({FLD_ECN_CE_RECEIVED}, 0)
    st = get_opaque_data({ST_AREA}, {ST_SIZE})
    if ce > mem64[st + {OFF_LAST_REPORTED}]:
        ecn_reserve(ce)
        mem64[st + {OFF_LAST_REPORTED}] = ce
""",
            helpers=ECN_HELPERS),
        # Sender: frame handling + congestion response.
        Pluglet.from_source(
            "parse_ecn", "parse_frame", "replace",
            """
def parse_ecn(buf, frame_type):
    return ecn_parse(buf)
""",
            helpers=ECN_HELPERS, param=ECN_FEEDBACK_FRAME_TYPE),
        Pluglet.from_source(
            "write_ecn", "write_frame", "replace",
            """
def write_ecn(frame, buf):
    ecn_write(frame, buf)
""",
            helpers=ECN_HELPERS, param=ECN_FEEDBACK_FRAME_TYPE),
        Pluglet.from_source(
            "process_ecn", "process_frame", "replace",
            f"""
def process_ecn(frame, ctx):
    count = ecn_frame_count(frame)
    st = get_opaque_data({ST_AREA}, {ST_SIZE})
    if count > mem64[st + {OFF_LAST_REACTED}]:
        mem64[st + {OFF_LAST_REACTED}] = count
        now = get_time_us()
        srtt = get({FLD_SRTT_US}, 0)
        if now - mem64[st + {OFF_LAST_CUT_US}] > srtt:
            # RFC 3168 semantics: at most one reduction per RTT.
            cwnd = get({FLD_CWND}, 0)
            set({FLD_CWND}, 0, cwnd // 2)
            mem64[st + {OFF_REDUCTIONS}] = mem64[st + {OFF_REDUCTIONS}] + 1
            mem64[st + {OFF_LAST_CUT_US}] = now
""",
            helpers=ECN_HELPERS, param=ECN_FEEDBACK_FRAME_TYPE),
    ]
    return Plugin(
        PLUGIN_NAME,
        pluglets,
        host_helpers=_host_helpers,
        frame_registrar=_register_frames,
    )
