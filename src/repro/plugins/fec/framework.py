"""The FEC framework plugin (§4.4), after QUIC-FEC [69].

"Our plugin sends redundancy (Repair Symbols) to enable PQUIC receivers
to recover lost QUIC packets without waiting for retransmissions."

Two new frame types: the **FEC ID frame** "identifies the packets that are
FEC-protected and their corresponding window", and the **FEC RS frame**
contains a Repair Symbol.  The framework attaches passive pluglets to the
protocol operations that send and receive packets; the protection *mode*
is chosen by swapping a single sender pluglet:

* ``mode='full'``   — protect the whole stream, emitting ``repair``
  symbols every ``window`` source symbols;
* ``mode='eos'``    — protect only the end of the stream: repair symbols
  are emitted when a FIN is observed.

The erasure-correcting code (XOR or RLC, :mod:`repro.plugins.fec.codes`)
is likewise a parameter; "other erasure-correcting codes could easily be
added by implementing new pluglets."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.api import H_PLUGIN_BASE
from repro.core.plugin import Plugin, Pluglet
from repro.quic import frames as F
from repro.quic.connection import ReservedFrame
from repro.quic.packet import Epoch
from repro.quic.wire import Buffer

from .codes import CODES

PLUGIN_BASE_NAME = "org.pquic.fec"
FEC_ID_FRAME_TYPE = 0x46
FEC_RS_FRAME_TYPE = 0x47

H_FEC_REGISTER = H_PLUGIN_BASE + 0
H_FEC_EMIT = H_PLUGIN_BASE + 1
H_FEC_RX_STORE = H_PLUGIN_BASE + 2
H_FEC_PARSE_ID = H_PLUGIN_BASE + 3
H_FEC_PROCESS_ID = H_PLUGIN_BASE + 4
H_FEC_PARSE_RS = H_PLUGIN_BASE + 5
H_FEC_PROCESS_RS = H_PLUGIN_BASE + 6
H_FEC_WRITE = H_PLUGIN_BASE + 7

FEC_HELPERS = {
    "fec_register": H_FEC_REGISTER,
    "fec_emit": H_FEC_EMIT,
    "fec_rx_store": H_FEC_RX_STORE,
    "fec_parse_id": H_FEC_PARSE_ID,
    "fec_process_id": H_FEC_PROCESS_ID,
    "fec_parse_rs": H_FEC_PARSE_RS,
    "fec_process_rs": H_FEC_PROCESS_RS,
    "fec_write": H_FEC_WRITE,
}

ST_AREA = 4
ST_SIZE = 64
OFF_SINCE_EMIT = 0
OFF_PROTECTED = 8
OFF_WINDOWS_SENT = 16
OFF_RS_RECEIVED = 24
OFF_RECOVERED = 32

ECC_IDS = {"xor": 0, "rlc": 1}
ECC_NAMES = {v: k for k, v in ECC_IDS.items()}


@dataclass
class FecIdFrame(F.Frame):
    """Announces one encoding window: which packets it protects."""

    window_id: int = 0
    protected_pns: list = field(default_factory=list)
    type = FEC_ID_FRAME_TYPE

    @property
    def retransmittable(self) -> bool:
        return False

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(self.type)
        buf.push_varint(self.window_id)
        buf.push_varint(len(self.protected_pns))
        for pn in self.protected_pns:
            buf.push_varint(pn)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "FecIdFrame":
        window_id = buf.pull_varint()
        pns = [buf.pull_varint() for _ in range(buf.pull_varint())]
        return cls(window_id=window_id, protected_pns=pns)


#: Repair symbols are larger than one packet's frame budget, so they are
#: carried as fragments and reassembled by the receiver.
RS_FRAGMENT = 600


@dataclass
class FecRepairFrame(F.Frame):
    """One fragment of a Repair Symbol for a window."""

    window_id: int = 0
    ecc: int = 0
    rs_index: int = 0
    seed: int = 0
    total_len: int = 0
    offset: int = 0
    payload: bytes = b""
    type = FEC_RS_FRAME_TYPE

    @property
    def retransmittable(self) -> bool:
        return False

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(self.type)
        buf.push_varint(self.window_id)
        buf.push_varint(self.ecc)
        buf.push_varint(self.rs_index)
        buf.push_varint(self.seed)
        buf.push_varint(self.total_len)
        buf.push_varint(self.offset)
        buf.push_varint_prefixed_bytes(self.payload)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "FecRepairFrame":
        return cls(
            window_id=buf.pull_varint(),
            ecc=buf.pull_varint(),
            rs_index=buf.pull_varint(),
            seed=buf.pull_varint(),
            total_len=buf.pull_varint(),
            offset=buf.pull_varint(),
            payload=buf.pull_varint_prefixed_bytes(),
        )


@dataclass
class _RxWindow:
    protected_pns: list = field(default_factory=list)
    #: Completed repair symbols: (rs_index, payload, ecc, seed).
    repairs: list = field(default_factory=list)
    #: rs_index -> (buffer, offsets received) while fragments reassemble.
    partial: dict = field(default_factory=dict)
    complete: set = field(default_factory=set)
    recovered: bool = False


class _FecState:
    """Host-side symbol buffers (the bulky part the PRE delegates)."""

    def __init__(self, window: int, repair: int, ecc: str):
        self.window = window
        self.repair = repair
        self.ecc = ecc
        self.send_symbols: list = []  # (pn, payload) newest last
        self.window_counter = 0
        self.rx_payloads: dict = {}  # pn -> payload (recent packets)
        self.rx_windows: dict = {}   # window_id -> _RxWindow
        self.recovered_total = 0

    def prune(self) -> None:
        if len(self.rx_payloads) > 4096:
            for pn in sorted(self.rx_payloads)[:2048]:
                del self.rx_payloads[pn]
        if len(self.rx_windows) > 256:
            for wid in sorted(self.rx_windows)[:128]:
                del self.rx_windows[wid]


def _contains_stream_frames(conn, payload: bytes):
    """(protectable, has_fin) for an outgoing plaintext payload.

    Packets carrying FEC frames themselves are never protected: a
    recovered packet is re-processed through ``process_frame``, and a
    repair fragment inside it would re-enter ``process_frame[FEC_RS]`` —
    the very call-graph loop PQUIC's runtime detection (Fig. 3) kills the
    connection for."""
    try:
        frames = conn.frame_registry.parse_all(payload)
    except Exception:
        return False, False
    has_stream = False
    has_fin = False
    for ftype, frame in frames:
        if ftype in (FEC_ID_FRAME_TYPE, FEC_RS_FRAME_TYPE):
            return False, False
        if isinstance(frame, F.StreamFrame):
            has_stream = True
            if frame.fin:
                has_fin = True
    return has_stream, has_fin


def _host_helpers_factory(window: int, repair: int, ecc: str):
    def make(runtime) -> dict:
        state = _FecState(window, repair, ecc)
        runtime.fec_state = state  # introspectable in tests
        conn = runtime.conn
        code = CODES[ecc]

        def h_register(vm, *_):
            """Register the packet being sent; flags: 1 stream, +2 fin."""
            ctx = runtime.context
            # packet_ready args: (epoch, path_index, pn, plaintext[, result])
            epoch, _path, pn, payload = ctx.raw_args[:4]
            if epoch is not Epoch.ONE_RTT and epoch != int(Epoch.ONE_RTT):
                return 0
            has_stream, has_fin = _contains_stream_frames(runtime.conn, payload)
            if not has_stream:
                return 0
            state.send_symbols.append((pn, payload))
            if len(state.send_symbols) > state.window:
                state.send_symbols = state.send_symbols[-state.window:]
            return 1 | (2 if has_fin else 0)

        def h_emit(vm, *_):
            """Emit FEC_ID + repair symbols over the current window."""
            if not state.send_symbols:
                return 0
            symbols = list(state.send_symbols)
            wid = state.window_counter
            state.window_counter += 1
            pns = [pn for pn, _p in symbols]
            payloads = [p for _pn, p in symbols]
            seed = wid & 0x3FFFFFFF
            frames = [FecIdFrame(window_id=wid, protected_pns=pns)]
            nrs = min(state.repair, code.max_repair)
            for rs_index in range(nrs):
                repair = code.encode(payloads, rs_index, seed)
                for offset in range(0, len(repair), RS_FRAGMENT):
                    frames.append(FecRepairFrame(
                        window_id=wid,
                        ecc=ECC_IDS[state.ecc],
                        rs_index=rs_index,
                        seed=seed,
                        total_len=len(repair),
                        offset=offset,
                        payload=repair[offset:offset + RS_FRAGMENT],
                    ))
            conn = runtime.conn
            conn.reserve_frames([
                ReservedFrame(frame=f, plugin=runtime.plugin_name,
                              retransmittable=False,
                              congestion_controlled=True)
                for f in frames
            ])
            return nrs

        def h_rx_store(vm, *_):
            ctx = runtime.context
            epoch, path, pn, payload = ctx.raw_args[:4]
            if epoch is Epoch.ONE_RTT or epoch == int(Epoch.ONE_RTT):
                state.rx_payloads[pn] = payload
                state.prune()
                return 1
            return 0

        def h_parse_id(vm, buf_handle, *_):
            frame = FecIdFrame.parse(
                runtime.context.raw_args[buf_handle], FEC_ID_FRAME_TYPE
            )
            runtime.set_result(frame)
            return frame.window_id

        def h_process_id(vm, frame_handle, *_):
            frame = runtime.context.raw_args[frame_handle]
            rxw = state.rx_windows.setdefault(frame.window_id, _RxWindow())
            rxw.protected_pns = list(frame.protected_pns)
            return _try_recover(frame.window_id)

        def h_parse_rs(vm, buf_handle, *_):
            frame = FecRepairFrame.parse(
                runtime.context.raw_args[buf_handle], FEC_RS_FRAME_TYPE
            )
            runtime.set_result(frame)
            return frame.window_id

        def h_process_rs(vm, frame_handle, *_):
            frame = runtime.context.raw_args[frame_handle]
            rxw = state.rx_windows.setdefault(frame.window_id, _RxWindow())
            key = frame.rs_index
            buf, got = rxw.partial.setdefault(
                key, (bytearray(frame.total_len), set())
            )
            buf[frame.offset:frame.offset + len(frame.payload)] = frame.payload
            got.add(frame.offset)
            received = sum(
                min(RS_FRAGMENT, frame.total_len - off) for off in got
            )
            if received >= frame.total_len and key not in rxw.complete:
                rxw.complete.add(key)
                rxw.repairs.append((key, bytes(buf), frame.ecc, frame.seed))
            return _try_recover(frame.window_id)

        def _try_recover(window_id: int) -> int:
            """Attempt recovery; returns number of packets recovered."""
            rxw = state.rx_windows.get(window_id)
            if rxw is None or rxw.recovered or not rxw.protected_pns:
                return 0
            if not rxw.repairs:
                return 0
            conn = runtime.conn
            space = conn.paths[0].space
            window_payloads = [
                state.rx_payloads.get(pn) for pn in rxw.protected_pns
            ]
            missing = [
                i for i, p in enumerate(window_payloads) if p is None
            ]
            if not missing or len(missing) > len(rxw.repairs):
                return 0
            rs_index0, _payload0, ecc0, seed0 = rxw.repairs[0]
            rcode = CODES[ECC_NAMES.get(ecc0, "xor")]
            repairs = [(idx, payload) for idx, payload, _e, _s in rxw.repairs]
            solution = rcode.recover(window_payloads, repairs, seed0)
            if solution is None:
                return 0
            rxw.recovered = True
            recovered = 0
            for i in missing:
                pn = rxw.protected_pns[i]
                payload = solution[i]
                if payload is None or pn in space.received:
                    continue
                conn.protoops.run(
                    conn, "process_recovered_payload", None, 0, pn, payload
                )
                state.rx_payloads[pn] = payload
                recovered += 1
            state.recovered_total += recovered
            return recovered

        def h_write(vm, frame_handle, buf_handle, *_):
            ctx = runtime.context
            ctx.raw_args[frame_handle].serialize(ctx.raw_args[buf_handle])
            return 0

        return {
            H_FEC_REGISTER: h_register,
            H_FEC_EMIT: h_emit,
            H_FEC_RX_STORE: h_rx_store,
            H_FEC_PARSE_ID: h_parse_id,
            H_FEC_PROCESS_ID: h_process_id,
            H_FEC_PARSE_RS: h_parse_rs,
            H_FEC_PROCESS_RS: h_process_rs,
            H_FEC_WRITE: h_write,
        }

    return make


def _register_frames(conn) -> None:
    conn.frame_registry.register(FEC_ID_FRAME_TYPE, FecIdFrame)
    conn.frame_registry.register(FEC_RS_FRAME_TYPE, FecRepairFrame)


#: Sender pluglet, full protection: emit every `interval` source symbols.
_SENDER_FULL = """
def fec_sender_full(epoch, path_id, pn):
    if epoch != {one_rtt}:
        return 0
    flags = fec_register()
    if flags == 0:
        return 0
    st = get_opaque_data({st_area}, {st_size})
    mem64[st + {off_protected}] = mem64[st + {off_protected}] + 1
    cnt = mem64[st + {off_since}] + 1
    if cnt >= {interval} or flags & 2 == 2:
        fec_emit()
        mem64[st + {off_windows}] = mem64[st + {off_windows}] + 1
        cnt = 0
    mem64[st + {off_since}] = cnt
    return 0
"""

#: Sender pluglet, end-of-stream protection: only emit at a FIN.
_SENDER_EOS = """
def fec_sender_eos(epoch, path_id, pn):
    if epoch != {one_rtt}:
        return 0
    flags = fec_register()
    if flags == 0:
        return 0
    st = get_opaque_data({st_area}, {st_size})
    mem64[st + {off_protected}] = mem64[st + {off_protected}] + 1
    if flags & 2 == 2:
        fec_emit()
        mem64[st + {off_windows}] = mem64[st + {off_windows}] + 1
    return 0
"""


from repro.core.plugin import register_host_resolver


def _resolve_fec_hooks(name: str):
    parts = name[len(PLUGIN_BASE_NAME) + 1:].split(".")
    ecc = parts[0] if parts and parts[0] in CODES else "rlc"
    repair = 1 if ecc == "xor" else 5
    return _host_helpers_factory(25, repair, ecc), _register_frames


register_host_resolver(PLUGIN_BASE_NAME, _resolve_fec_hooks)


def plugin_name(ecc: str, mode: str) -> str:
    return f"{PLUGIN_BASE_NAME}.{ecc}.{mode}"


def build_fec_plugin(
    ecc: str = "rlc",
    mode: str = "full",
    window: int = 25,
    repair: int = 5,
) -> Plugin:
    """Assemble a FEC plugin variant.

    Defaults match the paper's evaluation: "by sending 5 Repair Symbols
    every 25 Source Symbols" (code rate 5/6)."""
    if ecc not in CODES:
        raise ValueError(f"unknown ecc {ecc!r}")
    if mode not in ("full", "eos"):
        raise ValueError(f"unknown mode {mode!r}")
    if ecc == "xor":
        repair = 1  # a XOR window yields a single useful repair symbol

    fmt = dict(
        one_rtt=int(Epoch.ONE_RTT),
        st_area=ST_AREA,
        st_size=ST_SIZE,
        off_protected=OFF_PROTECTED,
        off_since=OFF_SINCE_EMIT,
        off_windows=OFF_WINDOWS_SENT,
        interval=window,
    )
    sender_src = (_SENDER_FULL if mode == "full" else _SENDER_EOS).format(**fmt)
    sender_name = "fec_sender_full" if mode == "full" else "fec_sender_eos"

    pluglets = [
        Pluglet.from_source(sender_name, "packet_ready", "post",
                            sender_src, helpers=FEC_HELPERS),
        Pluglet.from_source(
            "fec_receiver_store", "packet_received_event", "post",
            """
def fec_receiver_store(epoch, path_id, pn):
    fec_rx_store()
""",
            helpers=FEC_HELPERS),
        Pluglet.from_source(
            "parse_fec_id", "parse_frame", "replace",
            """
def parse_fec_id(buf, frame_type):
    return fec_parse_id(buf)
""",
            helpers=FEC_HELPERS, param=FEC_ID_FRAME_TYPE),
        Pluglet.from_source(
            "process_fec_id", "process_frame", "replace",
            f"""
def process_fec_id(frame, ctx):
    n = fec_process_id(frame)
    if n > 0:
        st = get_opaque_data({ST_AREA}, {ST_SIZE})
        mem64[st + {OFF_RECOVERED}] = mem64[st + {OFF_RECOVERED}] + n
""",
            helpers=FEC_HELPERS, param=FEC_ID_FRAME_TYPE),
        Pluglet.from_source(
            "write_fec_id", "write_frame", "replace",
            """
def write_fec_id(frame, buf):
    fec_write(frame, buf)
""",
            helpers=FEC_HELPERS, param=FEC_ID_FRAME_TYPE),
        Pluglet.from_source(
            "parse_fec_rs", "parse_frame", "replace",
            """
def parse_fec_rs(buf, frame_type):
    return fec_parse_rs(buf)
""",
            helpers=FEC_HELPERS, param=FEC_RS_FRAME_TYPE),
        Pluglet.from_source(
            "process_fec_rs", "process_frame", "replace",
            f"""
def process_fec_rs(frame, ctx):
    st = get_opaque_data({ST_AREA}, {ST_SIZE})
    mem64[st + {OFF_RS_RECEIVED}] = mem64[st + {OFF_RS_RECEIVED}] + 1
    n = fec_process_rs(frame)
    if n > 0:
        mem64[st + {OFF_RECOVERED}] = mem64[st + {OFF_RECOVERED}] + n
""",
            helpers=FEC_HELPERS, param=FEC_RS_FRAME_TYPE),
        Pluglet.from_source(
            "write_fec_rs", "write_frame", "replace",
            """
def write_fec_rs(frame, buf):
    fec_write(frame, buf)
""",
            helpers=FEC_HELPERS, param=FEC_RS_FRAME_TYPE),
        # External introspection op: recovered-packet count for the app.
        Pluglet.from_source(
            "fec_recovered_count", "fec_recovered_count", "external",
            f"""
def fec_recovered_count():
    st = get_opaque_data({ST_AREA}, {ST_SIZE})
    return mem64[st + {OFF_RECOVERED}]
""",
            helpers=FEC_HELPERS),
    ]
    return Plugin(
        plugin_name(ecc, mode),
        pluglets,
        host_helpers=_host_helpers_factory(window, repair, ecc),
        frame_registrar=_register_frames,
        memory_size=32 * 1024,
    )
