"""The FEC framework plugin (§4.4) and its erasure-correcting codes."""

from .codes import CODES, ErasureCode, RlcCode, XorCode, gf_div, gf_inv, gf_mul
from .framework import (
    FEC_ID_FRAME_TYPE,
    FEC_RS_FRAME_TYPE,
    FecIdFrame,
    FecRepairFrame,
    build_fec_plugin,
    plugin_name,
)

__all__ = [
    "CODES",
    "ErasureCode",
    "FEC_ID_FRAME_TYPE",
    "FEC_RS_FRAME_TYPE",
    "FecIdFrame",
    "FecRepairFrame",
    "RlcCode",
    "XorCode",
    "build_fec_plugin",
    "gf_div",
    "gf_inv",
    "gf_mul",
    "plugin_name",
]
