"""The Datagram plugin (§4.2): unreliable messages over PQUIC.

Adds the DATAGRAM frame [75]: "only maintains the transported data
boundaries but not transmission order nor reliable delivery".  Lost
DATAGRAM frames are never retransmitted.  The plugin also demonstrates
§2.4: it extends the application-facing API with an *external* protocol
operation (``datagram_send``) and pushes received messages back to the
application asynchronously — together these form the "message socket"
the VPN application uses.

Pluglet split: the decision logic (size admission, statistics, drop
accounting) runs as PRE bytecode; frame object construction/serialization
are host helpers the plugin exposes to its bytecode, like PQUIC exposing
implementation functions to the PRE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.api import H_PLUGIN_BASE
from repro.core.plugin import Plugin, Pluglet
from repro.quic import frames as F
from repro.quic.connection import ReservedFrame
from repro.quic.wire import Buffer

PLUGIN_NAME = "org.pquic.datagram"
DATAGRAM_FRAME_TYPE = 0x30

#: Plugin-specific helpers.
H_DG_RESERVE = H_PLUGIN_BASE + 0
H_DG_PUSH = H_PLUGIN_BASE + 1
H_DG_LEN = H_PLUGIN_BASE + 2
H_DG_WRITE = H_PLUGIN_BASE + 3
H_DG_PARSE = H_PLUGIN_BASE + 4
H_DG_MAX_SIZE = H_PLUGIN_BASE + 5

DG_HELPERS = {
    "dg_reserve": H_DG_RESERVE,
    "dg_push": H_DG_PUSH,
    "dg_len": H_DG_LEN,
    "dg_write": H_DG_WRITE,
    "dg_parse": H_DG_PARSE,
    "dg_max_size": H_DG_MAX_SIZE,
}

#: Stats block in plugin memory.
ST_AREA = 2
ST_SIZE = 64
OFF_SENT = 0
OFF_RECEIVED = 8
OFF_DROPPED_LOST = 16
OFF_REFUSED_TOO_BIG = 24


@dataclass
class DatagramFrame(F.Frame):
    """DATAGRAM frame with explicit length (draft-pauly-quic-datagram)."""

    data: bytes = b""
    type = DATAGRAM_FRAME_TYPE

    @property
    def ack_eliciting(self) -> bool:
        return True

    @property
    def retransmittable(self) -> bool:
        return False  # unreliable: loss is never repaired

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(self.type)
        buf.push_varint_prefixed_bytes(self.data)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "DatagramFrame":
        return cls(data=buf.pull_varint_prefixed_bytes())


def _host_helpers(runtime) -> dict:
    """Host functions exposed to the datagram pluglets."""

    def max_datagram_size() -> int:
        budget = runtime.conn.configuration.max_udp_payload_size
        return budget - 64  # headers, AEAD tag, frame overhead

    def h_reserve(vm, handle, *_):
        ctx = runtime.context
        data = ctx.raw_args[handle]
        if not isinstance(data, (bytes, bytearray)):
            return 0
        runtime.conn.reserve_frames([
            ReservedFrame(
                frame=DatagramFrame(data=bytes(data)),
                plugin=PLUGIN_NAME,
                retransmittable=False,
                congestion_controlled=True,
            )
        ])
        return 1

    def h_push(vm, handle, *_):
        ctx = runtime.context
        frame = ctx.raw_args[handle]
        if isinstance(frame, DatagramFrame):
            runtime.conn.push_message_to_app(PLUGIN_NAME, frame.data)
            return len(frame.data)
        return 0

    def h_len(vm, handle, *_):
        ctx = runtime.context
        value = ctx.raw_args[handle]
        if isinstance(value, DatagramFrame):
            return len(value.data)
        if isinstance(value, (bytes, bytearray)):
            return len(value)
        return 0

    def h_write(vm, frame_handle, buf_handle, *_):
        ctx = runtime.context
        frame = ctx.raw_args[frame_handle]
        buf = ctx.raw_args[buf_handle]
        frame.serialize(buf)
        return 0

    def h_parse(vm, buf_handle, *_):
        ctx = runtime.context
        buf = ctx.raw_args[buf_handle]
        frame = DatagramFrame.parse(buf, DATAGRAM_FRAME_TYPE)
        runtime.set_result(frame)
        return len(frame.data)

    def h_max(vm, *_):
        return max_datagram_size()

    return {
        H_DG_RESERVE: h_reserve,
        H_DG_PUSH: h_push,
        H_DG_LEN: h_len,
        H_DG_WRITE: h_write,
        H_DG_PARSE: h_parse,
        H_DG_MAX_SIZE: h_max,
    }


def _register_frames(conn) -> None:
    conn.frame_registry.register(DATAGRAM_FRAME_TYPE, DatagramFrame)


from repro.core.plugin import register_host_resolver

register_host_resolver(
    PLUGIN_NAME, lambda name: (_host_helpers, _register_frames)
)


def build_datagram_plugin() -> Plugin:
    """Assemble the datagram plugin."""
    pluglets = [
        # parse_frame[DATAGRAM]: replace — produce the frame object.
        Pluglet.from_source(
            "parse_datagram",
            "parse_frame",
            "replace",
            f"""
def parse_datagram(buf, frame_type):
    n = dg_parse(buf)
    return n
""",
            helpers=DG_HELPERS,
            param=DATAGRAM_FRAME_TYPE,
        ),
        # process_frame[DATAGRAM]: replace — deliver to the app, count.
        Pluglet.from_source(
            "process_datagram",
            "process_frame",
            "replace",
            f"""
def process_datagram(frame, ctx):
    st = get_opaque_data({ST_AREA}, {ST_SIZE})
    mem64[st + {OFF_RECEIVED}] = mem64[st + {OFF_RECEIVED}] + 1
    dg_push(frame)
""",
            helpers=DG_HELPERS,
            param=DATAGRAM_FRAME_TYPE,
        ),
        # write_frame[DATAGRAM]: replace — serialize into the packet.
        Pluglet.from_source(
            "write_datagram",
            "write_frame",
            "replace",
            f"""
def write_datagram(frame, buf):
    dg_write(frame, buf)
""",
            helpers=DG_HELPERS,
            param=DATAGRAM_FRAME_TYPE,
        ),
        # notify_frame[DATAGRAM]: replace — unreliable, only count losses.
        Pluglet.from_source(
            "notify_datagram",
            "notify_frame",
            "replace",
            f"""
def notify_datagram(frame, acked, pkt):
    if not acked:
        st = get_opaque_data({ST_AREA}, {ST_SIZE})
        mem64[st + {OFF_DROPPED_LOST}] = mem64[st + {OFF_DROPPED_LOST}] + 1
""",
            helpers=DG_HELPERS,
            param=DATAGRAM_FRAME_TYPE,
        ),
        # datagram_send: external — the app-facing message-socket entry.
        Pluglet.from_source(
            "datagram_send",
            "datagram_send",
            "external",
            f"""
def datagram_send(payload):
    st = get_opaque_data({ST_AREA}, {ST_SIZE})
    size = dg_len(payload)
    if size == 0 or size > dg_max_size():
        mem64[st + {OFF_REFUSED_TOO_BIG}] = mem64[st + {OFF_REFUSED_TOO_BIG}] + 1
        return 0
    dg_reserve(payload)
    mem64[st + {OFF_SENT}] = mem64[st + {OFF_SENT}] + 1
    return size
""",
            helpers=DG_HELPERS,
        ),
        # datagram_max_size: external — lets the app size its messages.
        Pluglet.from_source(
            "datagram_max_size",
            "datagram_max_size",
            "external",
            """
def datagram_max_size():
    return dg_max_size()
""",
            helpers=DG_HELPERS,
        ),
    ]
    return Plugin(
        PLUGIN_NAME,
        pluglets,
        host_helpers=_host_helpers,
        frame_registrar=_register_frames,
    )


class DatagramSocket:
    """The message socket the VPN application reads/writes (§4.2).

    ``send`` queues an unreliable message; incoming messages arrive via
    the receive callback (asynchronous push from the plugin, §2.4)."""

    def __init__(self, conn, on_message: Optional[Callable[[bytes], None]] = None):
        if PLUGIN_NAME not in conn.plugins:
            raise RuntimeError("datagram plugin not attached to connection")
        self.conn = conn
        self.on_message = on_message
        previous = conn.on_plugin_message

        def dispatch(plugin_name: str, data: bytes) -> None:
            if plugin_name == PLUGIN_NAME:
                if self.on_message is not None:
                    self.on_message(data)
            elif previous is not None:
                previous(plugin_name, data)

        conn.on_plugin_message = dispatch

    def send(self, data: bytes) -> int:
        """Queue one message; returns bytes accepted (0 = refused)."""
        return self.conn.run_external_protoop("datagram_send", None, bytes(data))

    def max_size(self) -> int:
        return self.conn.run_external_protoop("datagram_max_size", None)
