"""A pluggable congestion controller (§6 / CCP [71]).

"Although we did not describe it in this paper, a new congestion
controller could easily be implemented as a protocol plugin."  This module
does exactly that: an AIMD controller whose entire control law runs as PRE
bytecode, replacing the ``congestion_on_ack`` / ``congestion_on_loss``
protocol operations and steering the window through the ``set`` API's
``cwnd`` field.

Two variants:

* ``aimd`` — classic additive-increase (one MSS per window of ACKs),
  multiplicative-decrease (halving) with a slow-start phase;
* ``fixed`` — a constant-window controller (useful for experiments that
  need a non-reactive sender).
"""

from __future__ import annotations

from repro.core.api import (
    FLD_BYTES_IN_FLIGHT,
    FLD_CWND,
    H_PLUGIN_BASE,
)
from repro.core.plugin import Plugin, Pluglet, register_host_resolver

PLUGIN_BASE_NAME = "org.pquic.ccontrol"
MSS = 1280

H_CC_RELEASE = H_PLUGIN_BASE + 0
H_CC_PKT_SIZE = H_PLUGIN_BASE + 1

CC_HELPERS = {"cc_release": H_CC_RELEASE, "cc_pkt_size": H_CC_PKT_SIZE}

#: Plugin-memory state block.
ST_AREA = 5
ST_SIZE = 64
OFF_SSTHRESH = 0
OFF_ACKED_SINCE_GROWTH = 8
OFF_LOSS_EVENTS = 16
OFF_ACK_EVENTS = 24


def _host_helpers(runtime) -> dict:
    def h_release(vm, path_index, size, *_):
        """Book-keep bytes leaving flight (the controller owns only the
        window; in-flight accounting stays with the host)."""
        conn = runtime.conn
        if 0 <= path_index < len(conn.paths):
            cc = conn.paths[path_index].cc
            cc.bytes_in_flight = max(0, cc.bytes_in_flight - size)
            return cc.bytes_in_flight
        return 0

    def h_pkt_size(vm, handle, *_):
        ctx = runtime.context
        pkt = ctx.raw_args[handle] if ctx else None
        return getattr(pkt, "size", 0)

    return {H_CC_RELEASE: h_release, H_CC_PKT_SIZE: h_pkt_size}


register_host_resolver(PLUGIN_BASE_NAME, lambda name: (_host_helpers, None))

# congestion_on_ack(pkt, path_index): post wrapper gives marshaled args;
# replace receives (pkt, path_index) -> pkt is a handle, size via input.
_AIMD_ON_ACK = f"""
def cc_aimd_on_ack(pkt, path_index):
    size = cc_pkt_size(pkt)
    cc_release(path_index, size)
    st = get_opaque_data({ST_AREA}, {ST_SIZE})
    mem64[st + {OFF_ACK_EVENTS}] = mem64[st + {OFF_ACK_EVENTS}] + 1
    cwnd = get({FLD_CWND}, path_index)
    ssthresh = mem64[st + {OFF_SSTHRESH}]
    if ssthresh == 0 or cwnd < ssthresh:
        set({FLD_CWND}, path_index, cwnd + size)
        return 0
    acked = mem64[st + {OFF_ACKED_SINCE_GROWTH}] + size
    if acked >= cwnd:
        set({FLD_CWND}, path_index, cwnd + {MSS})
        acked = 0
    mem64[st + {OFF_ACKED_SINCE_GROWTH}] = acked
    return 0
"""

_AIMD_ON_LOSS = f"""
def cc_aimd_on_loss(pkt, path_index):
    size = cc_pkt_size(pkt)
    cc_release(path_index, size)
    st = get_opaque_data({ST_AREA}, {ST_SIZE})
    mem64[st + {OFF_LOSS_EVENTS}] = mem64[st + {OFF_LOSS_EVENTS}] + 1
    cwnd = get({FLD_CWND}, path_index)
    half = cwnd // 2
    set({FLD_CWND}, path_index, half)
    mem64[st + {OFF_SSTHRESH}] = half
    return 0
"""

_FIXED_ON_ACK = f"""
def cc_fixed_on_ack(pkt, path_index):
    size = cc_pkt_size(pkt)
    cc_release(path_index, size)
    return 0
"""

_FIXED_ON_LOSS = f"""
def cc_fixed_on_loss(pkt, path_index):
    size = cc_pkt_size(pkt)
    cc_release(path_index, size)
    st = get_opaque_data({ST_AREA}, {ST_SIZE})
    mem64[st + {OFF_LOSS_EVENTS}] = mem64[st + {OFF_LOSS_EVENTS}] + 1
    return 0
"""


def build_ccontrol_plugin(variant: str = "aimd",
                          fixed_window: int = 64 * 1024) -> Plugin:
    """Assemble the congestion-control plugin.

    The replace pluglets receive ``(pkt, path_index)``; the packet's size
    is fetched through the ``cc_pkt_size`` host helper from the opaque
    SentPacket handle."""
    if variant == "aimd":
        on_ack_src, on_ack_name = _AIMD_ON_ACK, "cc_aimd_on_ack"
        on_loss_src, on_loss_name = _AIMD_ON_LOSS, "cc_aimd_on_loss"
    elif variant == "fixed":
        on_ack_src, on_ack_name = _FIXED_ON_ACK, "cc_fixed_on_ack"
        on_loss_src, on_loss_name = _FIXED_ON_LOSS, "cc_fixed_on_loss"
    else:
        raise ValueError(f"unknown variant {variant!r}")

    pluglets = [
        Pluglet.from_source(on_ack_name, "congestion_on_ack", "replace",
                            on_ack_src, helpers=CC_HELPERS),
        Pluglet.from_source(on_loss_name, "congestion_on_loss", "replace",
                            on_loss_src, helpers=CC_HELPERS),
    ]
    name = f"{PLUGIN_BASE_NAME}.{variant}"
    plugin = Plugin(name, pluglets, host_helpers=_host_helpers)
    if variant == "fixed":
        original_attach = plugin  # set window at instantiation

        def frame_registrar(conn):
            for path in conn.paths:
                path.cc.cwnd = fixed_window

        plugin.frame_registrar = frame_registrar
    return plugin
